"""Quickstart: solve ice velocities and profile the kernels in 40 lines.

Builds a coarse synthetic Antarctica, runs the full FO Stokes velocity
solve (8 damped Newton steps, GMRES + MDSC preconditioning), then asks
the GPU performance model what the paper's two kernels cost on an A100
and one MI250X GCD.

Run:  python examples/quickstart.py
"""

from repro.app import AntarcticaConfig, AntarcticaTest
from repro.gpusim import A100, MI250X_GCD, GPUSimulator, ANTARCTICA_16KM


def main() -> None:
    # 1. the physics: a coarse Antarctica velocity solve -----------------
    config = AntarcticaConfig(resolution_km=300.0, num_layers=5)
    test = AntarcticaTest.build(config)
    print(
        f"mesh: {test.mesh.num_elems} hexahedra "
        f"({test.mesh.footprint.num_elems} columns x {test.mesh.nlayers} layers), "
        f"{test.problem.dofmap.num_dofs} velocity dofs"
    )

    sol = test.run(callback=lambda k, x, f, lin: print(f"  newton {k + 1}: |F| = {f:.3e}"))
    print(f"mean |u| = {sol.mean_velocity:.3f} m/yr, max = {sol.max_velocity:.1f} m/yr")
    passed, ref = test.check(sol)
    print(f"regression vs stored reference: {'PASS' if passed else 'FAIL'} (ref = {ref})")

    # 2. the performance model: the paper's kernels at 256K cells --------
    print("\nGPU kernel profiles at the paper's problem size (~256K cells):")
    from repro.kokkos.policy import LaunchBounds

    for spec in (A100, MI250X_GCD):
        sim = GPUSimulator(spec)
        # optimized kernels on AMD use the paper's tuned LaunchBounds
        tuned = LaunchBounds(128, 2) if spec.vendor == "amd" else None
        for key in ("baseline-jacobian", "optimized-jacobian"):
            lb = tuned if key.startswith("optimized") else None
            p = sim.run(key, ANTARCTICA_16KM, launch_bounds=lb)
            print(
                f"  {spec.name:11s} {key:20s} time/call = {p.time_s:.3e} s, "
                f"{p.gbytes_moved:6.1f} GB moved, AI = {p.arithmetic_intensity:.2f}"
            )


if __name__ == "__main__":
    main()
