"""A tour of the paper's GPU optimizations and performance models.

Walks through the whole Section V/VI story on the simulated GPUs:

1. per-thread trace of the baseline vs optimized kernel (what the
   optimizations change at the access level);
2. Table-III-style time/speedup comparison on A100 and MI250X;
3. roofline placement (Fig. 3);
4. the time-oriented performance portability plane (Figs. 4-5) with
   e_time/e_DM efficiencies and the Phi metric (Table IV).

Run:  python examples/kernel_optimization_tour.py
"""

from repro.core.launch import default_launch_bounds
from repro.gpusim import A100, MI250X_GCD, GPUSimulator, ANTARCTICA_16KM, record_kernel_trace
from repro.kokkos.policy import LaunchBounds
from repro.perf import (
    RooflineModel,
    TimeOrientedModel,
    theoretical_minimum,
    performance_portability,
    format_table,
)

AMD_TUNED = LaunchBounds(128, 2)


def trace_story() -> None:
    print("=== 1. what the optimizations change (per-thread trace) ===")
    rows = []
    for key in ("baseline-jacobian", "optimized-jacobian"):
        p = record_kernel_trace(key)
        res_writes = sum(1 for a, w in zip(p.slot_trace, p.writes) if w and a.view == "Residual")
        res_reads = sum(1 for a, w in zip(p.slot_trace, p.writes) if not w and a.view == "Residual")
        rows.append([key, len(p.slot_trace), res_reads, res_writes, p.flops])
    print(format_table(["kernel", "slot accesses", "Residual reads", "Residual writes", "flops"], rows))
    print("-> local accumulation turns hundreds of global read-modify-writes into one write per slot\n")


def speedup_story(profiles) -> None:
    print("=== 2. time per invocation (Table III analogue) ===")
    rows = []
    for mode in ("jacobian", "residual"):
        for gpu in ("A100", "MI250X-GCD"):
            b = profiles[("baseline", mode, gpu)]
            o = profiles[("optimized", mode, gpu)]
            rows.append([mode, gpu, b.time_s, o.time_s, f"{b.time_s / o.time_s:.2f}x"])
    print(format_table(["kernel", "GPU", "baseline [s]", "optimized [s]", "speedup"], rows))
    print()


def roofline_story(profiles) -> None:
    print("=== 3. roofline placement (Fig. 3 analogue) ===")
    rows = []
    for gpu, spec in (("A100", A100), ("MI250X-GCD", MI250X_GCD)):
        model = RooflineModel(spec)
        for impl in ("baseline", "optimized"):
            p = profiles[(impl, "jacobian", gpu)]
            pt = RooflineModel.point_from_profile(p)
            rows.append(
                [gpu, impl, f"{pt.arithmetic_intensity:.3f}", f"{pt.gflops:.0f}",
                 f"{model.bandwidth_fraction(pt):.0%}"]
            )
    print(format_table(["GPU", "Jacobian impl", "AI [flop/B]", "GFLOP/s", "frac peak BW"], rows))
    print("-> optimization raises arithmetic intensity (less data moved) and bandwidth fraction\n")


def portability_story(profiles) -> None:
    print("=== 4. time-oriented model and Phi (Figs. 4-5, Table IV analogue) ===")
    rows = []
    for mode in ("jacobian", "residual"):
        th = theoretical_minimum(f"optimized-{mode}", ANTARCTICA_16KM.num_cells)
        m = TimeOrientedModel(kernel=mode, theoretical=th, peak_bandwidth=A100.hbm_bytes_per_s)
        for impl in ("baseline", "optimized"):
            effs_t, effs_d = [], []
            for gpu in ("A100", "MI250X-GCD"):
                pt = m.add_profile(profiles[(impl, mode, gpu)])
                effs_t.append(min(1.0, m.efficiency_time(pt)))
                effs_d.append(min(1.0, m.efficiency_data_movement(pt)))
            rows.append(
                [mode, impl,
                 f"{effs_t[0]:.0%}/{effs_t[1]:.0%}", f"{performance_portability(effs_t):.0%}",
                 f"{effs_d[0]:.0%}/{effs_d[1]:.0%}", f"{performance_portability(effs_d):.0%}"]
            )
    print(format_table(
        ["kernel", "impl", "e_time A100/MI", "Phi(time)", "e_DM A100/MI", "Phi(DM)"], rows
    ))
    print("-> the paper's conclusion: data-locality optimizations lift Phi by tens of points")


def main() -> None:
    profiles = {}
    for gpu, spec in (("A100", A100), ("MI250X-GCD", MI250X_GCD)):
        sim = GPUSimulator(spec)
        for mode in ("jacobian", "residual"):
            profiles[("baseline", mode, gpu)] = sim.run(f"baseline-{mode}", ANTARCTICA_16KM)
            lb = AMD_TUNED if gpu == "MI250X-GCD" else default_launch_bounds(mode)
            profiles[("optimized", mode, gpu)] = sim.run(f"optimized-{mode}", ANTARCTICA_16KM, launch_bounds=lb)

    trace_story()
    speedup_story(profiles)
    roofline_story(profiles)
    portability_story(profiles)


if __name__ == "__main__":
    main()
