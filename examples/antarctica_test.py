"""The Antarctica standalone test (paper Section III-B), configurable.

Runs the velocity solver on the synthetic Antarctica: N damped Newton
steps with GMRES (linear tolerance 1e-6), then compares the mean of the
final solution against the stored reference at relative tolerance 1e-5.

Run:  python examples/antarctica_test.py [--resolution-km 300] [--layers 5]
      [--impl optimized|baseline] [--precond mdsc|vline|jacobi|none]

Note: the paper's single-GPU setting is 16 km / 20 layers (~256K cells);
pure-Python numerics make that expensive, so the default here is coarse.
The GPU benchmarks always simulate the full 256K-cell kernel workload.
"""

import argparse
import time

from repro.app import AntarcticaConfig, AntarcticaTest, VelocityConfig


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--resolution-km", type=float, default=300.0)
    ap.add_argument("--layers", type=int, default=5)
    ap.add_argument("--impl", default="optimized", choices=["optimized", "baseline"])
    ap.add_argument("--precond", default="mdsc", choices=["mdsc", "vline", "mdsc-amg", "jacobi", "none"])
    ap.add_argument(
        "--footprint",
        default="quad",
        choices=["quad", "voronoi"],
        help="quad = paper's hexahedral test; voronoi = MALI's MPAS/prism path",
    )
    ap.add_argument("--newton-steps", type=int, default=8)
    ap.add_argument(
        "--no-fused-assembly",
        action="store_true",
        help="evaluate residual and Jacobian in separate DAG sweeps (the pre-fusion path)",
    )
    ap.add_argument("--store-reference", action="store_true", help="record this run as the regression reference")
    args = ap.parse_args()

    config = AntarcticaConfig(
        resolution_km=args.resolution_km,
        num_layers=args.layers,
        footprint=args.footprint,
        velocity=VelocityConfig(
            kernel_impl=args.impl,
            preconditioner=args.precond,
            newton_steps=args.newton_steps,
            fused_assembly=not args.no_fused_assembly,
        ),
    )
    print(f"building Antarctica test: {args.resolution_km} km, {args.layers} layers, {args.impl} kernel")
    t0 = time.time()
    test = AntarcticaTest.build(config)
    print(
        f"  {test.mesh.num_elems} hexahedra, {test.problem.dofmap.num_dofs} dofs "
        f"({time.time() - t0:.1f} s to build)"
    )

    t0 = time.time()
    sol = test.run(
        callback=lambda k, x, f, lin: print(
            f"  newton {k + 1}: |F| = {f:.4e}  gmres its = {lin.iterations} "
            f"({'converged' if lin.converged else 'NOT converged'})"
        )
    )
    print(f"solve time: {time.time() - t0:.1f} s")
    d = sol.diagnostics
    phases = d["phase_seconds"]
    print(
        f"  {d['newton_steps_per_s']:.2f} newton steps/s "
        f"({'fused' if d['fused_assembly'] else 'unfused'} assembly; "
        f"sweeps: {d['eval_sweeps']['jacobian']} jacobian, {d['eval_sweeps']['residual']} residual)"
    )
    print(
        "  phases [s]: "
        + "  ".join(f"{name} {phases[name]:.3f}" for name in ("evaluate", "scatter", "preconditioner", "gmres"))
    )
    print(f"mean |u| = {sol.mean_velocity:.6f} m/yr (surface mean {sol.surface_mean_velocity:.3f})")

    if args.store_reference:
        test.store_reference(sol.mean_velocity)
        print("stored as the new reference value")
    else:
        passed, ref = test.check(sol)
        if ref is None:
            print("no stored reference for this configuration (run with --store-reference)")
        else:
            rel = abs(sol.mean_velocity - ref) / abs(ref)
            print(f"regression: {'PASS' if passed else 'FAIL'} (reference {ref:.6f}, rel diff {rel:.2e})")


if __name__ == "__main__":
    main()
