"""Transient coupling on the scenario engine (velocity + Eq. 2).

MALI advances the ice sheet by alternating a diagnostic FO Stokes solve
with a prognostic thickness update.  This example runs that loop through
:class:`repro.transient.TransientEngine` -- the engine re-extrudes only
the vertical coordinate each step (every topology-derived artifact is
reused), warm-starts each Newton solve from the previous velocity, caps
the step at the CFL bound, and advects a Lagrangian particle ensemble
through the evolving velocity field.

Run:  python examples/transient_ice_sheet.py [--scenario antarctica-retreat]
      python examples/transient_ice_sheet.py --list
"""

import argparse

import numpy as np

from repro.transient import SCENARIOS, TransientEngine, get_scenario


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--scenario",
        default="antarctica-retreat",
        help="library scenario name (see --list)",
    )
    ap.add_argument("--steps", type=int, default=None, help="override the step count")
    ap.add_argument("--list", action="store_true", help="list library scenarios")
    args = ap.parse_args()

    if args.list:
        for name, sc in sorted(SCENARIOS.items()):
            print(f"{name:20s} {sc.description.splitlines()[0]}")
        return

    scenario = get_scenario(args.scenario)
    if args.steps is not None:
        scenario = scenario.with_steps(args.steps)

    engine = TransientEngine(scenario)
    print(
        f"scenario {scenario.name!r}: {scenario.num_steps} steps of "
        f"<= {scenario.dt_years:g} yr on the {scenario.family} family "
        f"({engine.footprint.num_elems} columns, {engine.mesh.nlayers} layers), "
        f"forcing = {scenario.forcing}"
    )

    def report(step, info):
        print(
            f"  step {step + 1:3d}: t = {info['t_years']:7.1f} yr  "
            f"dt = {info['dt']:6.1f}  newton = {info['newton_iterations']}"
            f"{' warm' if info['warm_started'] else ' COLD'}  "
            f"volume = {info['volume'] / 1e9:.1f} km^3  "
            f"particles = {info['active_particles']}"
        )

    result = engine.run(callback=report)

    v0, v1 = result.volumes[0], result.volumes[-1]
    print(
        f"\nvolume: {v0 / 1e9:.1f} -> {v1 / 1e9:.1f} km^3 "
        f"({(v1 - v0) / v0:+.3%}); budget residual "
        f"{result.diagnostics['volume_budget_residual'] / 1e9:+.3e} km^3"
    )
    print(
        f"newton: cold start {result.cold_iterations} iterations, warm mean "
        f"{result.warm_mean_iterations:.2f} (tol_abs {result.tol_abs:.3e})"
    )
    drift = np.hypot(
        *(result.particles.xy - ParticleStart(engine, scenario).xy).T
    )
    print(
        f"particles: {result.particles.num_active}/{len(result.particles)} active, "
        f"mean drift {drift.mean() / 1e3:.2f} km, max {drift.max() / 1e3:.2f} km"
    )


class ParticleStart:
    """Reconstruct the deterministic seed positions for drift reporting."""

    def __init__(self, engine, scenario):
        from repro.transient import ParticleSet

        self.xy = ParticleSet.seed(
            engine.footprint,
            engine.initial_thickness(),
            scenario.num_particles,
            seed=scenario.particle_seed,
        ).xy


if __name__ == "__main__":
    main()
