"""Transient coupling: velocity solve + thickness evolution (Eq. 2).

MALI couples the FO Stokes velocity solver to a mass-conservation
equation for the ice thickness.  This example closes that loop on the
synthetic Antarctica: solve velocities, depth-average them per column,
advect the thickness with the upwind FV scheme, and repeat -- reporting
ice volume and the velocity response over a few coupling steps.

Run:  python examples/transient_ice_sheet.py [--steps 3] [--dt-years 20]
"""

import argparse

import numpy as np

from repro.app import AntarcticaConfig, AntarcticaTest, VelocityConfig
from repro.physics import ThicknessEvolver


def depth_averaged_cell_velocity(test, u):
    """Depth-averaged velocity per footprint element from nodal dofs."""
    mesh = test.mesh
    nodal = test.problem.dofmap.nodal_view(u)  # (nn3, 2)
    # average over a column: node (n2d, lev) = n2d * levels + lev
    col_avg = nodal.reshape(mesh.footprint.num_nodes, mesh.levels, 2).mean(axis=1)
    # then average the footprint element's nodes
    return col_avg[mesh.footprint.elems].mean(axis=1)  # (ne2, 2)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=3)
    ap.add_argument("--dt-years", type=float, default=20.0)
    ap.add_argument("--smb", type=float, default=0.1, help="surface mass balance [m/yr]")
    args = ap.parse_args()

    config = AntarcticaConfig(
        resolution_km=300.0,
        num_layers=5,
        velocity=VelocityConfig(newton_steps=6),
    )
    test = AntarcticaTest.build(config)
    fp = test.mesh.footprint
    evolver = ThicknessEvolver(fp)

    # cell-centered thickness from the geometry
    centers = fp.elem_centers()
    h = np.asarray(test.geometry.thickness(centers[:, 0], centers[:, 1]), dtype=float)
    vol0 = evolver.total_volume(h)
    print(f"initial ice volume: {vol0 / 1e9:.1f} km^3 over {fp.num_elems} columns")

    u = None
    for step in range(args.steps):
        sol = test.problem.solve(u0=u)
        u = sol.u
        v_cell = depth_averaged_cell_velocity(test, u)
        dt_max = evolver.max_stable_dt(v_cell)
        dt = min(args.dt_years, 0.9 * dt_max)
        h = evolver.step(h, v_cell, dt, smb=args.smb)
        vol = evolver.total_volume(h)
        print(
            f"step {step + 1}: mean |u| = {sol.mean_velocity:7.3f} m/yr, "
            f"dt = {dt:6.1f} yr (CFL max {dt_max:7.1f}), "
            f"volume = {vol / 1e9:.1f} km^3 ({(vol - vol0) / vol0:+.3%})"
        )

    print("done: the velocity-thickness loop is stable and mass change tracks SMB minus outflow")


if __name__ == "__main__":
    main()
