"""Kokkos LaunchBounds tuning on the MI250X (the paper's Table II study).

Sweeps ``LaunchBounds<MaxThreads, MinBlocks>`` for the optimized
Jacobian and Residual kernels on the simulated MI250X GCD, reporting
time per call, architectural/accumulation VGPRs, occupancy and speedup
-- and explains the mechanism (the CDNA2 per-wave VGPR budget).

Run:  python examples/launchbounds_tuning.py
"""

from repro.core.launch import TABLE2_LAUNCH_CONFIGS, default_launch_bounds
from repro.gpusim import GPUSimulator, MI250X_GCD, ANTARCTICA_16KM
from repro.gpusim.registers import cdna2_vgpr_budget
from repro.perf.report import format_table


def main() -> None:
    sim = GPUSimulator(MI250X_GCD)
    for mode in ("jacobian", "residual"):
        rows = []
        base_time = None
        for lb in TABLE2_LAUNCH_CONFIGS:
            eff = lb if lb.explicit else default_launch_bounds(mode)
            budget, waves = cdna2_vgpr_budget(MI250X_GCD, eff)
            p = sim.run(f"optimized-{mode}", ANTARCTICA_16KM, launch_bounds=eff)
            if base_time is None:
                base_time = p.time_s
            rows.append(
                [
                    str(lb),
                    p.time_s,
                    p.arch_vgprs,
                    p.accum_vgprs,
                    p.scratch_bytes_per_thread,
                    f"{waves} w/SIMD",
                    f"{budget} vgpr/wave",
                    f"{base_time / p.time_s:.2f}x",
                ]
            )
        print(f"\n=== optimized {mode} kernel on MI250X GCD ===")
        print(
            format_table(
                ["LaunchBounds", "time [s]", "Arch VGPR", "Accum VGPR", "scratch B/thr", "occupancy target", "budget", "speedup"],
                rows,
            )
        )
    print(
        "\nMechanism: an occupancy target of <=2 waves/SIMD leaves >=256 VGPRs per wave,"
        "\nletting the compiler keep the SFad accumulators in accumulation VGPRs instead"
        "\nof spilling to scratch memory -- the paper's 1.54x / 1.17x LaunchBounds wins."
    )


if __name__ == "__main__":
    main()
