"""Profiler-interface demo: the paper's appendix methodology, simulated.

Shows the kernels through the same lenses the authors used: NVIDIA
Nsight Compute (``dram__bytes.sum`` & friends) on the A100 and AMD
rocprof (``TCC_EA_*`` request counters, arch/accum VGPR columns) on the
MI250X GCD -- including the appendix's GPU-bytes-moved formula and the
command lines / input files the paper documents.

Run:  python examples/profiler_demo.py
"""

from repro.gpusim import (
    A100,
    MI250X_GCD,
    GPUSimulator,
    ANTARCTICA_16KM,
    NsightComputeReport,
    RocprofReport,
)
from repro.kokkos.policy import LaunchBounds


def main() -> None:
    print("# Perlmutter (A100): NVIDIA Nsight Compute")
    print("$", NsightComputeReport.command_line("StokesFOResid"))
    sim = GPUSimulator(A100)
    for key in ("baseline-jacobian", "optimized-jacobian"):
        rep = NsightComputeReport.from_profile(sim.run(key, ANTARCTICA_16KM))
        print()
        print(rep.render())

    print("\n# Frontier (MI250X GCD): AMD rocprof")
    print("$", RocprofReport.command_line())
    print("--- input_file.txt ---")
    print(RocprofReport.input_file())
    print("----------------------")
    sim = GPUSimulator(MI250X_GCD)
    for key, lb in (("baseline-jacobian", None), ("optimized-jacobian", LaunchBounds(128, 2))):
        p = sim.run(key, ANTARCTICA_16KM, launch_bounds=lb)
        rep = RocprofReport.from_profile(p)
        print()
        print(rep.render())
        print(f"  (simulator ground truth: {p.hbm_bytes:.6g} bytes)")


if __name__ == "__main__":
    main()
