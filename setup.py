"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` requires bdist_wheel; when that is
unavailable, `python setup.py develop` installs the package in editable
mode using plain setuptools.
"""
from setuptools import setup

setup()
