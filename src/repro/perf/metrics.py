"""Alternative portability efficiencies from the related work.

The paper's Section II cites portability studies built on other
efficiency definitions; implementing them lets the benches compare the
paper's time-oriented efficiencies against:

* **architectural (roofline) efficiency** -- attained performance over
  the roofline at the kernel's arithmetic intensity (Kwack et al.,
  Antepara et al.);
* **application efficiency** -- best observed performance across
  implementations on the platform over this implementation's
  (Pennycook's original formulation);
* **fraction of theoretical arithmetic intensity** -- measured AI over
  the AI implied by minimal data movement (Antepara et al. 2023).
"""

from __future__ import annotations

from repro.gpusim.simulator import KernelProfile
from repro.gpusim.specs import GPUSpec
from repro.perf.roofline import RooflineModel, RooflinePoint
from repro.perf.theoretical import TheoreticalMovement

__all__ = [
    "architectural_efficiency",
    "application_efficiency",
    "ai_fraction",
]


def architectural_efficiency(spec: GPUSpec, profile: KernelProfile) -> float:
    """Fraction of the roofline attained at the kernel's AI."""
    model = RooflineModel(spec)
    pt = RooflinePoint(profile.variant_key, profile.arithmetic_intensity, profile.gflops_per_s)
    return min(1.0, model.fraction_of_roofline(pt))


def application_efficiency(profile: KernelProfile, best_time_s: float) -> float:
    """Best implementation's time over this implementation's time.

    ``best_time_s`` is the fastest observed time for the same problem on
    the same platform (usually the optimized kernel's).
    """
    if best_time_s <= 0 or profile.time_s <= 0:
        raise ValueError("times must be positive")
    return min(1.0, best_time_s / profile.time_s)


def ai_fraction(profile: KernelProfile, theoretical: TheoreticalMovement) -> float:
    """Measured arithmetic intensity over the theoretical maximum AI.

    The theoretical AI divides the kernel's flops by its minimum data
    movement; an implementation moving extra bytes shows a lower AI.
    Identical to e_DM for fixed flops -- included because the cited
    prior work reports portability in these terms.
    """
    ai_theory = profile.flops / theoretical.total_bytes
    return min(1.0, profile.arithmetic_intensity / ai_theory)
