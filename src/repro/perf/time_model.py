"""The time-oriented performance portability model (paper Figs. 4-5).

Each kernel implementation is a point in the (HBM GBytes moved, time per
invocation) plane.  Two bounds frame every point:

* the **architectural bound**: the diagonal ``t = bytes / peak_BW`` --
  running below it would be faster-than-light;
* the **application bound**: the vertical wall at the kernel's
  theoretical minimum data movement (no implementation can move less).

The "achievable" corner is their intersection: minimum bytes at peak
bandwidth.  Efficiencies measured against these bounds feed the
portability metric (:mod:`repro.perf.portability`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.specs import GPUSpec
from repro.perf.theoretical import TheoreticalMovement

__all__ = ["TimeOrientedPoint", "TimeOrientedModel"]


@dataclass(frozen=True)
class TimeOrientedPoint:
    """One observed kernel: (bytes moved, time per invocation)."""

    label: str
    gpu: str
    bytes_moved: float
    time_s: float

    def __post_init__(self):
        if self.bytes_moved <= 0 or self.time_s <= 0:
            raise ValueError("observed point must have positive coordinates")

    @property
    def gbytes(self) -> float:
        return self.bytes_moved / 1.0e9

    @property
    def time_ms(self) -> float:
        return self.time_s * 1.0e3


@dataclass
class TimeOrientedModel:
    """Bounds + observed points for one kernel (possibly many GPUs)."""

    kernel: str
    theoretical: TheoreticalMovement
    #: common bandwidth bound -- the paper plots both GPUs against one
    #: diagonal because A100 and the MI250X GCD have comparable BW
    peak_bandwidth: float
    points: list[TimeOrientedPoint] = field(default_factory=list)

    def add_profile(self, profile, label: str | None = None) -> TimeOrientedPoint:
        p = TimeOrientedPoint(
            label=label or f"{profile.variant_key}@{profile.gpu}",
            gpu=profile.gpu,
            bytes_moved=profile.hbm_bytes,
            time_s=profile.time_s,
        )
        self.points.append(p)
        return p

    # -- bounds ----------------------------------------------------------
    def architectural_bound_time(self, bytes_moved) -> np.ndarray:
        """The diagonal: fastest possible time for a given data volume."""
        return np.asarray(bytes_moved, dtype=np.float64) / self.peak_bandwidth

    @property
    def application_wall_bytes(self) -> float:
        return self.theoretical.total_bytes

    @property
    def achievable_point(self) -> tuple[float, float]:
        """(bytes, time) of the theoretical optimum corner."""
        b = self.theoretical.total_bytes
        return b, b / self.peak_bandwidth

    # -- per-point diagnostics -------------------------------------------
    def efficiency_time(self, p: TimeOrientedPoint) -> float:
        """theoretical minimum time / observed time (paper's e_time)."""
        _, t_min = self.achievable_point
        return t_min / p.time_s

    def efficiency_data_movement(self, p: TimeOrientedPoint) -> float:
        """theoretical minimum bytes / observed bytes (paper's e_DM)."""
        return self.application_wall_bytes / p.bytes_moved

    def validate(self) -> None:
        """All observed points must respect both bounds (model sanity)."""
        for p in self.points:
            if p.bytes_moved < self.application_wall_bytes * (1.0 - 1.0e-9):
                raise ValueError(f"{p.label}: moved less than the application bound")
            if p.time_s < float(self.architectural_bound_time(p.bytes_moved)) * (1.0 - 1.0e-9):
                raise ValueError(f"{p.label}: faster than the architectural bound")

    def series(self, n: int = 32):
        """Plot data: (diagonal bytes, diagonal times, wall bytes)."""
        lo = 0.5 * self.application_wall_bytes
        hi = 4.0 * max([p.bytes_moved for p in self.points] + [self.application_wall_bytes])
        xs = np.logspace(np.log10(lo), np.log10(hi), n)
        return xs, self.architectural_bound_time(xs), self.application_wall_bytes
