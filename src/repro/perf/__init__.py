"""Performance models from the paper's Section VI.

* :mod:`~repro.perf.theoretical` -- theoretical minimum HBM data
  movement from the kernel's array inventory (the "application wall").
* :mod:`~repro.perf.roofline` -- the classic Roofline model (Fig. 3).
* :mod:`~repro.perf.time_model` -- the paper's contribution: the
  time-oriented performance portability plane (Figs. 4-5).
* :mod:`~repro.perf.portability` -- e_time / e_DM efficiencies and the
  Pennycook harmonic-mean metric Phi (Table IV, Eq. 4).
* :mod:`~repro.perf.report` -- table renderers, CSV emitters, and ASCII
  plots used by the benchmark harness.
"""

from repro.perf.theoretical import TheoreticalMovement, theoretical_minimum
from repro.perf.roofline import RooflinePoint, RooflineModel
from repro.perf.time_model import TimeOrientedPoint, TimeOrientedModel
from repro.perf.portability import (
    performance_portability,
    efficiency_time,
    efficiency_data_movement,
    PortabilityEntry,
    portability_table,
)
from repro.perf.report import format_table, ascii_scatter, write_csv
from repro.perf.metrics import architectural_efficiency, application_efficiency, ai_fraction

__all__ = [
    "TheoreticalMovement",
    "theoretical_minimum",
    "RooflinePoint",
    "RooflineModel",
    "TimeOrientedPoint",
    "TimeOrientedModel",
    "performance_portability",
    "efficiency_time",
    "efficiency_data_movement",
    "PortabilityEntry",
    "portability_table",
    "format_table",
    "ascii_scatter",
    "write_csv",
    "architectural_efficiency",
    "application_efficiency",
    "ai_fraction",
]
