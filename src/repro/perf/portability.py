"""Performance portability metric Phi (Pennycook et al.; paper Eq. 4).

``Phi(a, p, H) = |H| / sum_i 1/e_i`` -- the harmonic mean of the
per-platform efficiencies, zero when any platform is unsupported.  The
paper instantiates two efficiencies: time per invocation relative to the
architectural+application bound (e_time) and HBM data movement relative
to the application bound (e_DM).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "performance_portability",
    "efficiency_time",
    "efficiency_data_movement",
    "PortabilityEntry",
    "portability_table",
]


def performance_portability(efficiencies: list[float | None]) -> float:
    """Harmonic mean over platforms; 0 if any platform is unsupported.

    ``None`` marks an unsupported platform.  Efficiencies must be in
    (0, 1] -- a measured efficiency slightly above 1 (bound noise) is
    clamped.
    """
    if not efficiencies:
        raise ValueError("at least one platform required")
    if any(e is None for e in efficiencies):
        return 0.0
    vals = []
    for e in efficiencies:
        if e <= 0.0:
            raise ValueError("efficiency must be positive for supported platforms")
        vals.append(min(float(e), 1.0))
    return len(vals) / sum(1.0 / e for e in vals)


def efficiency_time(theoretical_min_time: float, observed_time: float) -> float:
    """e_time: achievable (bound) time over observed time."""
    if theoretical_min_time <= 0 or observed_time <= 0:
        raise ValueError("times must be positive")
    return theoretical_min_time / observed_time


def efficiency_data_movement(theoretical_min_bytes: float, observed_bytes: float) -> float:
    """e_DM: theoretical minimum bytes over observed bytes."""
    if theoretical_min_bytes <= 0 or observed_bytes <= 0:
        raise ValueError("byte counts must be positive")
    return theoretical_min_bytes / observed_bytes


@dataclass(frozen=True)
class PortabilityEntry:
    """One row of the paper's Table IV."""

    implementation: str  # "Baseline" | "Optimized"
    efficiency: str  # "e_time" | "e_DM"
    kernel: str  # "Jacobian" | "Residual"
    per_platform: dict  # gpu name -> efficiency
    phi: float


def portability_table(rows: list[dict]) -> list[PortabilityEntry]:
    """Build Table-IV entries from raw efficiency dictionaries.

    Each input row: ``{"implementation", "efficiency", "kernel",
    "per_platform": {gpu: e}}``; Phi is computed over the platforms.
    """
    out = []
    for r in rows:
        effs = list(r["per_platform"].values())
        out.append(
            PortabilityEntry(
                implementation=r["implementation"],
                efficiency=r["efficiency"],
                kernel=r["kernel"],
                per_platform=dict(r["per_platform"]),
                phi=performance_portability(effs),
            )
        )
    return out
