"""Theoretical minimum data movement (the "application wall" of Fig. 4).

"No degree of optimization for a given GPU kernel would ever allow that
kernel to move less data than this theoretical minimum": every input
array element the kernel touches must cross HBM once, and every output
element must be written once.  We derive it from the recorded thread
program's unique read/written slots -- i.e., directly from the sizes of
the multidimensional arrays the kernel operates on, exactly as the
paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.trace import ThreadProgram, record_kernel_trace

__all__ = ["TheoreticalMovement", "theoretical_minimum"]

_BYTES_PER_COMPONENT = 8  # double precision


@dataclass(frozen=True)
class TheoreticalMovement:
    """Minimum-bytes inventory for one kernel on one problem size."""

    variant_key: str
    num_cells: int
    read_bytes: float
    write_bytes: float
    per_view_bytes: dict

    @property
    def total_bytes(self) -> float:
        return self.read_bytes + self.write_bytes

    def min_time_s(self, peak_bandwidth: float) -> float:
        """The architectural bound: minimum bytes at peak HBM bandwidth."""
        if peak_bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        return self.total_bytes / peak_bandwidth


def theoretical_minimum(
    program: ThreadProgram | str,
    num_cells: int,
    num_nodes: int = 8,
    num_qps: int = 8,
) -> TheoreticalMovement:
    """Theoretical minimum HBM bytes for a kernel over ``num_cells``.

    Accepts a recorded :class:`ThreadProgram` or a variant key.  Slots
    read are charged one 8-byte read per cell; slots written one write;
    a slot that is both read and written (none in these kernels' minimal
    form) would be charged both.
    """
    if isinstance(program, str):
        program = record_kernel_trace(program, num_nodes=num_nodes, num_qps=num_qps)
    if num_cells <= 0:
        raise ValueError("num_cells must be positive")

    # The minimum is a property of the *kernel*, not the implementation:
    # each input element crosses HBM once, each output element once.  A
    # baseline implementation's extra read-modify-writes of the output
    # view must not inflate the bound, so classification is by view role.
    output_views = set(program.output_views)
    slots = program.unique_slots()
    reads = {s for s in slots if s.view not in output_views}
    writes = {s for s in slots if s.view in output_views}
    per_view: dict[str, float] = {}
    for s in reads:
        per_view[s.view] = per_view.get(s.view, 0.0) + _BYTES_PER_COMPONENT * num_cells
    for s in writes:
        per_view[s.view] = per_view.get(s.view, 0.0) + _BYTES_PER_COMPONENT * num_cells

    return TheoreticalMovement(
        variant_key=program.variant_key,
        num_cells=num_cells,
        read_bytes=float(len(reads) * _BYTES_PER_COMPONENT * num_cells),
        write_bytes=float(len(writes) * _BYTES_PER_COMPONENT * num_cells),
        per_view_bytes=per_view,
    )
