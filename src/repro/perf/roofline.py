"""The Roofline model (Williams, Waterman & Patterson) -- paper Fig. 3.

Kernels are placed at (arithmetic intensity, attained GFLOP/s) against
the two ceilings of each GPU: peak HBM bandwidth (the diagonal) and
peak FP64 throughput (the flat roof).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.specs import GPUSpec

__all__ = ["RooflinePoint", "RooflineModel"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel measurement in roofline coordinates."""

    label: str
    arithmetic_intensity: float  # flops / byte
    gflops: float

    def __post_init__(self):
        if self.arithmetic_intensity <= 0 or self.gflops <= 0:
            raise ValueError("roofline coordinates must be positive")


class RooflineModel:
    """Roofline ceilings and efficiency queries for one GPU."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec

    @property
    def ridge_point(self) -> float:
        """AI at which the kernel transitions memory- to compute-bound."""
        return self.spec.fp64_flops / self.spec.hbm_bytes_per_s

    def attainable_gflops(self, ai) -> np.ndarray:
        """The roofline itself: min(peak, BW * AI), in GFLOP/s."""
        ai = np.asarray(ai, dtype=np.float64)
        return np.minimum(self.spec.fp64_flops, self.spec.hbm_bytes_per_s * ai) / 1.0e9

    def fraction_of_roofline(self, point: RooflinePoint) -> float:
        """Attained performance over the roofline at the point's AI."""
        return point.gflops / float(self.attainable_gflops(point.arithmetic_intensity))

    def bandwidth_fraction(self, point: RooflinePoint) -> float:
        """Implied HBM bandwidth over peak (memory-bound reading)."""
        implied_bw = point.gflops * 1.0e9 / point.arithmetic_intensity
        return implied_bw / self.spec.hbm_bytes_per_s

    def is_memory_bound(self, point: RooflinePoint) -> bool:
        return point.arithmetic_intensity < self.ridge_point

    def ceiling_series(self, ai_min: float = 2.0 ** -4, ai_max: float = 2.0 ** 8, n: int = 64):
        """(AI, GFLOP/s) samples of the roofline for plotting/CSV."""
        ai = np.logspace(np.log10(ai_min), np.log10(ai_max), n)
        return ai, self.attainable_gflops(ai)

    @staticmethod
    def point_from_profile(profile, label: str | None = None) -> RooflinePoint:
        """Build a point from a :class:`~repro.gpusim.simulator.KernelProfile`."""
        return RooflinePoint(
            label=label or f"{profile.variant_key}@{profile.gpu}",
            arithmetic_intensity=profile.arithmetic_intensity,
            gflops=profile.gflops_per_s,
        )
