"""Rendering: text tables, CSV emitters, and ASCII log-log scatter plots.

The benchmark harness prints the same rows/series the paper reports;
with no plotting stack available offline, figures are emitted as CSV
data series plus an ASCII rendering for quick inspection.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path

__all__ = ["format_table", "ascii_scatter", "write_csv"]


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Fixed-width text table (right-aligned numerics)."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(c) -> str:
    if isinstance(c, float):
        if c == 0.0:
            return "0"
        if abs(c) >= 1.0e4 or abs(c) < 1.0e-3:
            return f"{c:.2e}"
        return f"{c:.3g}"
    return str(c)


def ascii_scatter(
    points: list[tuple[float, float, str]],
    width: int = 64,
    height: int = 20,
    logx: bool = True,
    logy: bool = True,
    xlabel: str = "x",
    ylabel: str = "y",
    lines: list[tuple[float, float, float, float, str]] | None = None,
) -> str:
    """ASCII scatter plot; each point is (x, y, single-char marker).

    ``lines`` draws straight segments ((x0, y0, x1, y1, char)) in the
    transformed space -- used for roofline ceilings and bound diagonals.
    """
    if not points:
        raise ValueError("nothing to plot")

    def tx(v):
        return math.log10(v) if logx else v

    def ty(v):
        return math.log10(v) if logy else v

    xs = [tx(p[0]) for p in points]
    ys = [ty(p[1]) for p in points]
    if lines:
        xs += [tx(l[0]) for l in lines] + [tx(l[2]) for l in lines]
        ys += [ty(l[1]) for l in lines] + [ty(l[3]) for l in lines]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    grid = [[" "] * width for _ in range(height)]

    def put(x, y, ch):
        cx = int((tx(x) - x0) / (x1 - x0) * (width - 1))
        cy = int((ty(y) - y0) / (y1 - y0) * (height - 1))
        if 0 <= cx < width and 0 <= cy < height:
            grid[height - 1 - cy][cx] = ch

    if lines:
        for lx0, ly0, lx1, ly1, ch in lines:
            n = max(width, 2)
            for k in range(n):
                t = k / (n - 1)
                gx = (1 - t) * tx(lx0) + t * tx(lx1)
                gy = (1 - t) * ty(ly0) + t * ty(ly1)
                cx = int((gx - x0) / (x1 - x0) * (width - 1))
                cy = int((gy - y0) / (y1 - y0) * (height - 1))
                if 0 <= cx < width and 0 <= cy < height:
                    if grid[height - 1 - cy][cx] == " ":
                        grid[height - 1 - cy][cx] = ch

    for x, y, ch in points:
        put(x, y, ch)

    out = ["".join(r) for r in grid]
    out.append("-" * width)
    out.append(f"x: {xlabel}  [{10**x0:.3g} .. {10**x1:.3g}]" if logx else f"x: {xlabel}")
    out.append(f"y: {ylabel}  [{10**y0:.3g} .. {10**y1:.3g}]" if logy else f"y: {ylabel}")
    return "\n".join(out)


def write_csv(path, headers: list[str], rows: list[list]) -> Path:
    """Write a CSV artifact (creates parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(headers)
        w.writerows(rows)
    return path
