"""Ice-thickness evolution: dH/dt + div(H u_bar) = a_dot + b_dot (Eq. 2).

MALI couples the FO velocity solve to a mass-conservation equation for
the thickness.  We discretize it finite-volume style on the footprint:
each footprint element is a control volume, fluxes are first-order
upwind on shared edges, and the update is explicit Euler under a CFL
restriction.  This substrate closes the dynamic loop (velocity solve ->
thickness update -> new geometry) used by the transient example.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.planar import Footprint2D

__all__ = ["ThicknessEvolver", "CflViolationError"]


class CflViolationError(ValueError):
    """A requested ``dt`` exceeds the explicit-stepping CFL bound.

    Explicit upwind advection past its CFL limit does not fail loudly --
    it produces growing thickness oscillations that poison every later
    velocity solve.  The evolver therefore refuses the step with this
    typed error (carrying ``dt`` and ``dt_max``) so callers -- the
    transient engine's adaptive stepper above all -- can cap the step
    instead of integrating garbage.
    """

    def __init__(self, dt: float, dt_max: float):
        self.dt = float(dt)
        self.dt_max = float(dt_max)
        super().__init__(
            f"dt={self.dt:g} exceeds the CFL stability bound {self.dt_max:.6g}; "
            "cap the step (dt <= cfl_safety * max_stable_dt(velocity)) or pass "
            "enforce_cfl=False to accept the oscillation risk explicitly"
        )


class ThicknessEvolver:
    """Explicit upwind FV solver for the thickness equation on a footprint."""

    def __init__(self, footprint: Footprint2D):
        self.footprint = footprint
        self.areas = footprint.elem_areas()
        self._build_edges()
        #: diagnostics of the most recent :meth:`step`: ``clipped_volume``
        #: is the (nonnegative) ice volume created by the ``H >= 0`` clip
        #: -- the exact correction a conservation audit must credit
        self.last_step_stats: dict = {}

    def _build_edges(self) -> None:
        fp = self.footprint
        k = fp.nodes_per_elem
        pairs = np.concatenate([fp.elems[:, [i, (i + 1) % k]] for i in range(k)], axis=0)
        owner = np.tile(np.arange(fp.num_elems), k)
        key = np.sort(pairs, axis=1)
        uniq, inv = np.unique(key, axis=0, return_inverse=True)
        left = np.full(len(uniq), -1, dtype=np.int64)
        right = np.full(len(uniq), -1, dtype=np.int64)
        for e, o in zip(inv, owner):
            if left[e] < 0:
                left[e] = o
            else:
                right[e] = o
        interior = right >= 0
        self.edge_left = left[interior]
        self.edge_right = right[interior]
        nodes = uniq[interior]
        p0, p1 = fp.coords[nodes[:, 0]], fp.coords[nodes[:, 1]]
        dvec = p1 - p0
        self.edge_length = np.hypot(dvec[:, 0], dvec[:, 1])
        # normal pointing from left cell to right cell
        normal = np.stack([dvec[:, 1], -dvec[:, 0]], axis=1)
        normal /= self.edge_length[:, None]
        centers = fp.elem_centers()
        lr = centers[right[interior]] - centers[left[interior]]
        flip = np.sum(normal * lr, axis=1) < 0.0
        normal[flip] *= -1.0
        self.edge_normal = normal

    def max_stable_dt(self, velocity_cell: np.ndarray) -> float:
        """CFL bound: dt <= min over cells of area / (|u| * perimeter-ish)."""
        speed = np.hypot(velocity_cell[:, 0], velocity_cell[:, 1])
        vmax = float(speed.max())
        if vmax == 0.0:
            return np.inf
        length_scale = np.sqrt(self.areas.min())
        return 0.4 * length_scale / vmax

    def step(
        self,
        thickness: np.ndarray,
        velocity_cell: np.ndarray,
        dt: float,
        smb: np.ndarray | float = 0.0,
        bmb: np.ndarray | float = 0.0,
        enforce_cfl: bool = True,
        flux_leak: float = 0.0,
    ) -> np.ndarray:
        """Advance ``H`` by ``dt`` years.

        Parameters
        ----------
        thickness:
            (num_elems,) cell-centered thickness [m].
        velocity_cell:
            (num_elems, 2) depth-averaged velocity [m/yr].
        smb, bmb:
            Surface/basal mass balance [m/yr] (scalar or per cell).
        enforce_cfl:
            Refuse ``dt`` beyond the stability bound with a typed
            :class:`CflViolationError` (the default); explicit opt-out
            for callers that sub-cycle themselves.
        flux_leak:
            Deliberate conservation violation: each edge flux deposits an
            extra ``flux_leak`` fraction into its left cell only, so the
            edge sum no longer telescopes to zero.  This is the planted
            defect the CI ``transient-scenarios`` negative control arms
            to prove the volume-conservation gate actually fires; it is
            never set in production paths.
        """
        fp = self.footprint
        thickness = np.asarray(thickness, dtype=np.float64)
        if thickness.shape != (fp.num_elems,):
            raise ValueError("thickness must be per footprint element")
        if velocity_cell.shape != (fp.num_elems, 2):
            raise ValueError("velocity must be (num_elems, 2)")
        if enforce_cfl:
            dt_max = self.max_stable_dt(velocity_cell)
            if dt > dt_max:
                raise CflViolationError(dt, dt_max)

        l, r = self.edge_left, self.edge_right
        u_edge = 0.5 * (velocity_cell[l] + velocity_cell[r])
        un = np.sum(u_edge * self.edge_normal, axis=1)  # normal speed, left->right
        h_up = np.where(un >= 0.0, thickness[l], thickness[r])
        flux = h_up * un * self.edge_length  # [m^3/yr] per edge

        dh = np.zeros(fp.num_elems)
        np.add.at(dh, l, -flux)
        np.add.at(dh, r, flux)
        if flux_leak != 0.0:
            np.add.at(dh, l, -flux_leak * np.abs(flux))
        dh /= self.areas

        h_unclipped = thickness + dt * (dh + np.asarray(smb) + np.asarray(bmb))
        h_new = np.maximum(h_unclipped, 0.0)
        self.last_step_stats = {
            "dt": float(dt),
            "clipped_volume": float(np.sum((h_new - h_unclipped) * self.areas)),
            "source_volume": float(
                dt * np.sum((np.asarray(smb) + np.asarray(bmb)) * self.areas)
            ),
        }
        return h_new

    def node_thickness(self, thickness: np.ndarray) -> np.ndarray:
        """Area-weighted cell->node thickness interpolation.

        The FV state is cell-centered but the extruded velocity mesh
        needs nodal columns; the weight of each incident cell is its
        footprint area, accumulated with ``np.add.at`` in element order
        so the interpolation is a deterministic pure function of the
        input (bitwise-resume safe).
        """
        fp = self.footprint
        thickness = np.asarray(thickness, dtype=np.float64)
        if thickness.shape != (fp.num_elems,):
            raise ValueError("thickness must be per footprint element")
        acc = np.zeros(fp.num_nodes)
        wt = np.zeros(fp.num_nodes)
        for j in range(fp.nodes_per_elem):
            np.add.at(acc, fp.elems[:, j], thickness * self.areas)
            np.add.at(wt, fp.elems[:, j], self.areas)
        return acc / wt

    def total_volume(self, thickness: np.ndarray) -> float:
        return float(np.sum(thickness * self.areas))
