"""Phalanx-style evaluator DAG for the FO Stokes residual/Jacobian.

Albany evaluates physics as a directed acyclic graph of small evaluators
over *worksets* (bounded chunks of cells); the scalar type -- double or
``SFad(16)`` -- selects Residual vs Jacobian evaluation.  This module
reproduces that structure:

``GatherSolution -> DOFVecGradInterpolation -> ViscosityFO -> BodyForce
-> StokesFOResid (the paper's kernel) -> BasalFrictionResid ->
ScatterResidual``

The field manager topologically orders evaluators by their
requires/provides field names and runs them per workset.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.autodiff import ops
from repro.autodiff.sfad import FadArray, SFad, is_fad
from repro.constants import RHO_G_KPA
from repro.core.fields import JACOBIAN_FAD_SIZE, StokesFields
from repro.core.jacobian import local_jacobian_blocks, local_residual_blocks, run_kernel
from repro.kokkos.view import DOUBLE, View, fad_spec
from repro.observability import get_tracer
from repro.physics.viscosity import effective_strain_rate_squared, glen_viscosity

__all__ = [
    "Workset",
    "Evaluator",
    "FieldManager",
    "GatherSolution",
    "DOFVecGradInterpolation",
    "ViscosityFOEvaluator",
    "BodyForceEvaluator",
    "StokesFOResidEvaluator",
    "BasalFrictionResidEvaluator",
    "ScatterResidual",
    "build_stokes_field_manager",
]


@dataclass
class Workset:
    """One chunk of cells plus the precomputed mesh/physics inputs.

    Basal arrays are ``None`` for worksets with no basal faces.  The
    evaluators populate :attr:`fields` and finally the ``out_*`` blocks.
    """

    mode: str  # "residual" | "jacobian"
    solution_local: np.ndarray  # (nc, nn, 2) nodal velocities
    w_bf: np.ndarray  # (nc, nn, nq)
    w_grad_bf: np.ndarray  # (nc, nn, nq, 3)
    grad_bf: np.ndarray  # (nc, nn, nq, 3)
    flow_factor_qp: np.ndarray  # (nc, nq)
    grad_s_qp: np.ndarray  # (nc, nq, 2)
    basal_w_bf: np.ndarray | None = None  # (nb, nnf, nqf)
    basal_beta_qp: np.ndarray | None = None  # (nb, nqf)
    basal_bf: np.ndarray | None = None  # (nqf, nnf) reference face shapes
    basal_cells: np.ndarray | None = None  # workset-local cell ids of basal cells
    fields: dict = dc_field(default_factory=dict)
    out_residual: np.ndarray | None = None  # (nc, 2*nn)
    out_jacobian: np.ndarray | None = None  # (nc, 2*nn, 2*nn)

    def __post_init__(self):
        if self.mode not in ("residual", "jacobian"):
            raise ValueError(f"unknown workset mode {self.mode!r}")

    @property
    def num_cells(self) -> int:
        return self.solution_local.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.solution_local.shape[1]

    @property
    def num_qps(self) -> int:
        return self.w_bf.shape[2]

    @property
    def is_jacobian(self) -> bool:
        return self.mode == "jacobian"

    @property
    def fad_size(self) -> int:
        """Derivative components of the Jacobian evaluation: nodes x 2."""
        return self.num_nodes * 2


class Evaluator:
    """Base evaluator: declares required and provided field names."""

    name: str = "evaluator"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()

    def evaluate(self, ws: Workset) -> None:
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} {self.requires} -> {self.provides}>"


class FieldManager:
    """Topologically-ordered evaluator execution (Phalanx analogue).

    ``num_sweeps`` counts per-workset DAG executions by mode -- the unit
    of cost the paper's loop-fusion optimization reduces.  A
    jacobian-mode sweep produces *both* the residual (SFad value
    component) and the Jacobian (derivative components), so a fused
    solver needs exactly one sweep per workset per Newton step plus one
    residual-mode sweep per workset per line-search trial.
    """

    def __init__(self, evaluators: list[Evaluator]):
        self.evaluators = self._toposort(evaluators)
        self.num_sweeps = {"residual": 0, "jacobian": 0}

    @staticmethod
    def _toposort(evaluators: list[Evaluator]) -> list[Evaluator]:
        providers: dict[str, Evaluator] = {}
        for ev in evaluators:
            for f in ev.provides:
                if f in providers:
                    raise ValueError(f"field {f!r} provided by two evaluators")
                providers[f] = ev
        order: list[Evaluator] = []
        state: dict[int, int] = {}  # id -> 0 new, 1 visiting, 2 done

        def visit(ev: Evaluator):
            s = state.get(id(ev), 0)
            if s == 2:
                return
            if s == 1:
                raise ValueError(f"evaluator cycle through {ev!r}")
            state[id(ev)] = 1
            for f in ev.requires:
                dep = providers.get(f)
                if dep is not None and dep is not ev:
                    visit(dep)
            state[id(ev)] = 2
            order.append(ev)

        for ev in evaluators:
            visit(ev)
        return order

    def evaluate(self, ws: Workset) -> Workset:
        self.num_sweeps[ws.mode] += 1
        tr = get_tracer()
        for ev in self.evaluators:
            for f in ev.requires:
                if f not in ws.fields and f not in ("__workset__",):
                    raise KeyError(f"{ev!r} requires missing field {f!r}")
            if tr.recording:
                with tr.span(ev.name, cat="evaluator", mode=ws.mode):
                    ev.evaluate(ws)
            else:
                ev.evaluate(ws)
        return ws


# ----------------------------------------------------------------------
# concrete evaluators
# ----------------------------------------------------------------------
class GatherSolution(Evaluator):
    """Gather nodal unknowns; seed SFad(16) derivatives in Jacobian mode."""

    name = "GatherSolution"
    provides = ("U",)

    def evaluate(self, ws: Workset) -> None:
        u = np.ascontiguousarray(ws.solution_local, dtype=np.float64)
        if ws.is_jacobian:
            nc, nn, nk = u.shape
            n = ws.fad_size
            dx = np.zeros((nc, nn, nk, n))
            j = np.arange(n)
            dx.reshape(nc, n, n)[:, j, j] = 1.0
            ws.fields["U"] = SFad(n)(u, dx)
        else:
            ws.fields["U"] = u


def _interp_grad(U, grad_bf: np.ndarray):
    """Ugrad(c,q,k,d) = sum_n U(c,n,k) * grad_bf(c,n,q,d) (Fad-aware)."""
    if is_fad(U):
        val = np.einsum("cnk,cnqd->cqkd", U.val, grad_bf)
        dx = np.einsum("cnkf,cnqd->cqkdf", U.dx, grad_bf)
        return type(U)(val, dx)
    return np.einsum("cnk,cnqd->cqkd", U, grad_bf)


def _interp_value(U, bf: np.ndarray):
    """u(c,q,k) = sum_n U(c,n,k) * bf(q,n) (Fad-aware)."""
    if is_fad(U):
        val = np.einsum("cnk,qn->cqk", U.val, bf)
        dx = np.einsum("cnkf,qn->cqkf", U.dx, bf)
        return type(U)(val, dx)
    return np.einsum("cnk,qn->cqk", U, bf)


class DOFVecGradInterpolation(Evaluator):
    """Velocity gradients at quadrature points."""

    name = "DOFVecGradInterpolation"
    requires = ("U",)
    provides = ("Ugrad",)

    def evaluate(self, ws: Workset) -> None:
        ws.fields["Ugrad"] = _interp_grad(ws.fields["U"], ws.grad_bf)


class ViscosityFOEvaluator(Evaluator):
    """Glen's-law effective viscosity at quadrature points."""

    name = "ViscosityFO"
    requires = ("Ugrad",)
    provides = ("mu",)

    def evaluate(self, ws: Workset) -> None:
        g = ws.fields["Ugrad"]
        eps_sq = effective_strain_rate_squared(
            g[:, :, 0, 0], g[:, :, 0, 1], g[:, :, 0, 2],
            g[:, :, 1, 0], g[:, :, 1, 1], g[:, :, 1, 2],
        )
        ws.fields["mu"] = glen_viscosity(eps_sq, flow_factor=ws.flow_factor_qp)


class BodyForceEvaluator(Evaluator):
    """Gravitational driving stress ``rho g grad(s)`` at quadrature points.

    The force does not depend on the velocity, so in Jacobian mode it is
    an SFad constant (zero derivatives) -- exactly Albany's behavior.
    """

    name = "StokesFOBodyForce"
    provides = ("force",)

    def evaluate(self, ws: Workset) -> None:
        f = RHO_G_KPA * np.ascontiguousarray(ws.grad_s_qp, dtype=np.float64)
        if ws.is_jacobian:
            ws.fields["force"] = SFad(ws.fad_size).constant(f)
        else:
            ws.fields["force"] = f


class StokesFOResidEvaluator(Evaluator):
    """Run the paper's kernel (baseline or optimized) over the workset."""

    name = "StokesFOResid"
    requires = ("Ugrad", "mu", "force")
    provides = ("Residual", "__stokes_fields__")

    def __init__(self, impl: str = "optimized"):
        if impl not in ("baseline", "optimized"):
            raise ValueError(f"unknown kernel impl {impl!r}")
        self.impl = impl

    def evaluate(self, ws: Workset) -> None:
        nc, nn, nq = ws.num_cells, ws.num_nodes, ws.num_qps
        scalar = fad_spec(ws.fad_size) if ws.is_jacobian else DOUBLE
        mu = ws.fields["mu"]
        force = ws.fields["force"]
        if ws.is_jacobian:
            # promote any non-Fad inputs to Fad constants
            if not is_fad(force):
                force = SFad(ws.fad_size).constant(force)
        sf = StokesFields(
            Ugrad=View("Ugrad", (nc, nq, 2, 3), scalar, data=ws.fields["Ugrad"]),
            muLandIce=View("muLandIce", (nc, nq), scalar, data=mu),
            force=View("force", (nc, nq, 2), scalar, data=force),
            wBF=View("wBF", (nc, nn, nq), DOUBLE, data=ws.w_bf),
            wGradBF=View("wGradBF", (nc, nn, nq, 3), DOUBLE, data=ws.w_grad_bf),
            Residual=View("Residual", (nc, nn, 2), scalar),
            scalar=scalar,
            mesh_scalar=scalar,
        )
        run_kernel(f"{self.impl}-{ws.mode}", sf)
        ws.fields["__stokes_fields__"] = sf
        ws.fields["Residual"] = sf.Residual.data


class BasalFrictionResidEvaluator(Evaluator):
    """Add the basal sliding term ``beta * u * phi`` on bottom faces.

    Only cells listed in ``ws.basal_cells`` receive contributions, on
    their first ``nnf`` local nodes (the bottom face of the extruded
    element).  Linear sliding law: well-posed and Newton-friendly.
    """

    name = "StokesFOBasalResid"
    requires = ("U", "Residual")
    provides = ("ResidualWithFriction",)

    def evaluate(self, ws: Workset) -> None:
        res = ws.fields["Residual"]
        if ws.basal_cells is None or len(ws.basal_cells) == 0:
            ws.fields["ResidualWithFriction"] = res
            return
        if ws.basal_w_bf is None or ws.basal_beta_qp is None or ws.basal_bf is None:
            raise ValueError("basal workset is missing face basis data")
        bc = np.asarray(ws.basal_cells, dtype=np.int64)
        nnf = ws.basal_w_bf.shape[1]

        U = ws.fields["U"]
        u_face = U[bc, :nnf, :] if is_fad(U) else U[bc, :nnf, :]
        u_qp = _interp_value(u_face, ws.basal_bf)  # (nb, nqf, 2)

        if is_fad(u_qp):
            cv = np.einsum("bq,bqkf,bnq->bnkf", ws.basal_beta_qp, u_qp.dx, ws.basal_w_bf)
            vv = np.einsum("bq,bqk,bnq->bnk", ws.basal_beta_qp, u_qp.val, ws.basal_w_bf)
            res.val[bc, :nnf, :] += vv
            res.dx[bc, :nnf, :, :] += cv
        else:
            vv = np.einsum("bq,bqk,bnq->bnk", ws.basal_beta_qp, u_qp, ws.basal_w_bf)
            res[bc, :nnf, :] += vv
        ws.fields["ResidualWithFriction"] = res


class ScatterResidual(Evaluator):
    """Extract per-element residual blocks (and Jacobian blocks)."""

    name = "ScatterResidual"
    requires = ("ResidualWithFriction", "__stokes_fields__")
    provides = ("__scattered__",)

    def evaluate(self, ws: Workset) -> None:
        sf: StokesFields = ws.fields["__stokes_fields__"]
        ws.out_residual = local_residual_blocks(sf)
        if ws.is_jacobian:
            ws.out_jacobian = local_jacobian_blocks(sf)
        ws.fields["__scattered__"] = True


def build_stokes_field_manager(impl: str = "optimized") -> FieldManager:
    """The default FO Stokes evaluation DAG for a kernel implementation."""
    return FieldManager(
        [
            ScatterResidual(),
            BasalFrictionResidEvaluator(),
            StokesFOResidEvaluator(impl=impl),
            BodyForceEvaluator(),
            ViscosityFOEvaluator(),
            DOFVecGradInterpolation(),
            GatherSolution(),
        ]
    )
