"""Glen's-law effective viscosity for the first-order Stokes model.

The first-order (Blatter-Pattyn) approximation uses the effective strain
rate

``e_e^2 = u_x^2 + v_y^2 + u_x v_y + 1/4 (u_y + v_x)^2 + 1/4 u_z^2 + 1/4 v_z^2``

and the viscosity

``mu = 1/2 A^(-1/n) (e_e^2 + reg)^((1-n)/(2n))``

(Glen's flow law; Cuffey & Paterson 2010).  All functions dispatch on
plain arrays and Fad values so the same code serves Residual and
Jacobian evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import ops
from repro.constants import GLEN_A_DEFAULT, GLEN_N, STRAIN_RATE_REG

__all__ = ["effective_strain_rate_squared", "glen_viscosity", "flow_factor_arrhenius"]


def effective_strain_rate_squared(ux, uy, uz, vx, vy, vz):
    """FO effective strain rate squared from velocity-gradient components."""
    shear = uy + vx
    return (
        ux * ux
        + vy * vy
        + ux * vy
        + 0.25 * (shear * shear)
        + 0.25 * (uz * uz)
        + 0.25 * (vz * vz)
    )


def glen_viscosity(eps_sq, flow_factor=GLEN_A_DEFAULT, n: float = GLEN_N, reg: float = STRAIN_RATE_REG):
    """Effective viscosity ``mu`` [kPa yr] from ``eps_sq`` [yr^-2].

    ``flow_factor`` may be a scalar or per-point array of Glen's ``A`` in
    kPa^-n yr^-1.  The regularization keeps ``mu`` finite (and the
    Jacobian well-defined) at zero strain rate.
    """
    if np.any(np.asarray(flow_factor) <= 0.0):
        raise ValueError("Glen flow factor must be positive")
    exponent = (1.0 - n) / (2.0 * n)
    a_term = np.asarray(flow_factor, dtype=np.float64) ** (-1.0 / n)
    return 0.5 * a_term * ops.power(eps_sq + reg, exponent)


def flow_factor_arrhenius(temperature_k) -> np.ndarray:
    """Temperature-dependent Glen ``A`` [kPa^-3 yr^-1] (Arrhenius law).

    Uses the standard two-regime Paterson-Budd parameterization with the
    cold/warm switch at 263.15 K, rescaled to this library's kPa/yr
    units and normalized so that A(263 K) matches ``GLEN_A_DEFAULT``.
    """
    t = np.asarray(temperature_k, dtype=np.float64)
    if np.any(t <= 0.0):
        raise ValueError("temperature must be in Kelvin")
    r_gas = 8.314  # J / (mol K)
    q_cold, q_warm = 6.0e4, 13.9e4  # activation energies [J/mol]
    t_switch = 263.15
    q = np.where(t < t_switch, q_cold, q_warm)
    # continuous at the switch; anchored to GLEN_A_DEFAULT at 263.15 K
    a = GLEN_A_DEFAULT * np.exp(-q / r_gas * (1.0 / t - 1.0 / t_switch))
    return a
