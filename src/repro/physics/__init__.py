"""Land-ice physics: Glen's law viscosity, FO Stokes terms, thickness.

Evaluators are templated on the scalar type exactly like Albany: passing
plain arrays evaluates the Residual; passing ``SFad(16)`` values carries
derivatives through for the Jacobian.
"""

from repro.physics.viscosity import (
    effective_strain_rate_squared,
    glen_viscosity,
    flow_factor_arrhenius,
)
from repro.physics.thickness import CflViolationError, ThicknessEvolver
from repro.physics.evaluators import (
    Workset,
    Evaluator,
    FieldManager,
    GatherSolution,
    DOFVecGradInterpolation,
    ViscosityFOEvaluator,
    BodyForceEvaluator,
    StokesFOResidEvaluator,
    BasalFrictionResidEvaluator,
    ScatterResidual,
    build_stokes_field_manager,
)

__all__ = [
    "effective_strain_rate_squared",
    "glen_viscosity",
    "flow_factor_arrhenius",
    "ThicknessEvolver",
    "CflViolationError",
    "Workset",
    "Evaluator",
    "FieldManager",
    "GatherSolution",
    "DOFVecGradInterpolation",
    "ViscosityFOEvaluator",
    "BodyForceEvaluator",
    "StokesFOResidEvaluator",
    "BasalFrictionResidEvaluator",
    "ScatterResidual",
    "build_stokes_field_manager",
]
