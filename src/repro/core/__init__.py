"""The paper's core contribution: the ``StokesFOResid`` GPU kernels.

This package holds the baseline and optimized element Residual/Jacobian
kernels of Fig. 2 (single-source: the same body runs vectorized host
numerics, serial reference numerics, and the trace mode that feeds the
GPU performance simulator), the variant registry with the loop-structure
and register metadata the simulator consumes, and the LaunchBounds
configurations studied in Table II.
"""

from repro.core.fields import StokesFields, TraceFields, make_stokes_fields, JACOBIAN_FAD_SIZE
from repro.core.kernels import StokesFOResidBaseline, StokesFOResidOptimized
from repro.core.variants import (
    KernelVariant,
    RegisterProfile,
    VARIANTS,
    get_variant,
    variant_names,
)
from repro.core.launch import (
    TABLE2_LAUNCH_CONFIGS,
    default_launch_bounds,
)
from repro.core.jacobian import (
    local_residual_blocks,
    local_jacobian_blocks,
    run_kernel,
)

__all__ = [
    "StokesFields",
    "TraceFields",
    "make_stokes_fields",
    "JACOBIAN_FAD_SIZE",
    "StokesFOResidBaseline",
    "StokesFOResidOptimized",
    "KernelVariant",
    "RegisterProfile",
    "VARIANTS",
    "get_variant",
    "variant_names",
    "TABLE2_LAUNCH_CONFIGS",
    "default_launch_bounds",
    "local_residual_blocks",
    "local_jacobian_blocks",
    "run_kernel",
]
