"""The ``StokesFOResid`` kernel bodies, mirroring the paper's Fig. 2.

Both functors compute the same weak-form volume terms of the first-order
Stokes residual

.. code-block:: text

    R0 += strs00 * dphi/dx + strs01 * dphi/dy + strs02 * dphi/dz + f0 * phi
    R1 += strs01 * dphi/dx + strs11 * dphi/dy + strs12 * dphi/dz + f1 * phi

with ``strs00 = 2 mu (2 u_x + v_y)``, ``strs11 = 2 mu (2 v_y + u_x)``,
``strs01 = mu (u_y + v_x)``, ``strs02 = mu u_z``, ``strs12 = mu v_z``.

**Baseline** (left listing of Fig. 2): a separate zero-initialization
loop over nodes, a configuration branch inside the kernel, a qp loop
accumulating the stress terms *directly into the global Residual view*,
and a second, redundant qp loop adding the body-force term -- each
global accumulation is a read-modify-write of HBM-backed data.

**Optimized** (right listing): compile-time trip counts, the branch
hoisted out of the kernel, the force loop fused into the stress loop,
and per-thread local accumulators ``res0``/``res1`` written back to the
global view exactly once.

The bodies are single-source in the Kokkos sense: ``cell`` may be a
slice (vectorized host numerics), an int (serial reference), or the
symbolic thread index 0 with :class:`~repro.core.fields.TraceFields`
(performance tracing) -- same code path each time.
"""

from __future__ import annotations

__all__ = ["StokesFOResidBaseline", "StokesFOResidOptimized", "StokesFOResidFusedOnly"]


class StokesFOResidBaseline:
    """Baseline Jacobian/Residual kernel (Fig. 2, left).

    ``numNodes``/``numQPs`` are runtime ints (the paper's loop-bound
    pessimization) and ``side_set_equations`` reproduces the in-kernel
    configuration branch (``cond``) the optimization hoists out.
    """

    name = "StokesFOResid<LandIce_3D>"

    def __init__(self, fields, side_set_equations: bool = False):
        self.fields = fields
        self.Ugrad = fields.Ugrad
        self.muLandIce = fields.muLandIce
        self.force = fields.force
        self.wBF = fields.wBF
        self.wGradBF = fields.wGradBF
        self.Residual = fields.Residual
        # runtime loop bounds, as in the baseline listing
        self.numNodes = int(fields.num_nodes)
        self.numQPs = int(fields.num_qps)
        self.side_set_equations = side_set_equations

    def __call__(self, cell):
        Residual = self.Residual
        Ugrad = self.Ugrad
        wGradBF = self.wGradBF

        for node in range(self.numNodes):
            Residual[cell, node, 0] = self.fields.zero(cell)
            Residual[cell, node, 1] = self.fields.zero(cell)

        if self.side_set_equations:
            # Lateral side-set branch of the production code: the paper's
            # Antarctica configuration never takes it, but its presence in
            # the kernel causes branch divergence (removed in the
            # optimized variant by generating a configuration-specific
            # kernel).
            self._side_set_contributions(cell)
        else:
            for qp in range(self.numQPs):
                mu = self.muLandIce[cell, qp]
                strs00 = 2.0 * mu * (2.0 * Ugrad[cell, qp, 0, 0] + Ugrad[cell, qp, 1, 1])
                strs11 = 2.0 * mu * (2.0 * Ugrad[cell, qp, 1, 1] + Ugrad[cell, qp, 0, 0])
                strs01 = mu * (Ugrad[cell, qp, 1, 0] + Ugrad[cell, qp, 0, 1])
                strs02 = mu * Ugrad[cell, qp, 0, 2]
                strs12 = mu * Ugrad[cell, qp, 1, 2]
                for node in range(self.numNodes):
                    Residual[cell, node, 0] += (
                        strs00 * wGradBF[cell, node, qp, 0]
                        + strs01 * wGradBF[cell, node, qp, 1]
                        + strs02 * wGradBF[cell, node, qp, 2]
                    )
                    Residual[cell, node, 1] += (
                        strs01 * wGradBF[cell, node, qp, 0]
                        + strs11 * wGradBF[cell, node, qp, 1]
                        + strs12 * wGradBF[cell, node, qp, 2]
                    )

        for qp in range(self.numQPs):
            frc0 = self.force[cell, qp, 0]
            frc1 = self.force[cell, qp, 1]
            for node in range(self.numNodes):
                Residual[cell, node, 0] += frc0 * self.wBF[cell, node, qp]
                Residual[cell, node, 1] += frc1 * self.wBF[cell, node, qp]

    def _side_set_contributions(self, cell):
        """Degenerate side-set path (never taken in the Antarctica test)."""
        for qp in range(self.numQPs):
            mu = self.muLandIce[cell, qp]
            for node in range(self.numNodes):
                Residual = self.Residual
                Residual[cell, node, 0] += mu * self.wGradBF[cell, node, qp, 0]
                Residual[cell, node, 1] += mu * self.wGradBF[cell, node, qp, 1]


class StokesFOResidOptimized:
    """Optimized Jacobian/Residual kernel (Fig. 2, right).

    Loop fusion + compile-time trip counts + local accumulation.  The
    node count is bound at construction as a "template parameter"
    (``LandIce_3D_Opt_Tag<NumNodes>``); the configuration branch is gone
    -- the specific optimized kernel only exists for the configuration
    being run.
    """

    name = "StokesFOResid<LandIce_3D_Opt>"

    def __init__(self, fields):
        self.fields = fields
        self.Ugrad = fields.Ugrad
        self.muLandIce = fields.muLandIce
        self.force = fields.force
        self.wBF = fields.wBF
        self.wGradBF = fields.wGradBF
        self.Residual = fields.Residual
        # compile-time constant (static constexpr int num_nodes)
        self.num_nodes = int(fields.num_nodes)
        self.numQPs = int(fields.num_qps)

    def __call__(self, cell):
        fields = self.fields
        Ugrad = self.Ugrad
        wGradBF = self.wGradBF
        wBF = self.wBF
        num_nodes = self.num_nodes

        res0 = [fields.zero(cell) for _ in range(num_nodes)]
        res1 = [fields.zero(cell) for _ in range(num_nodes)]

        for qp in range(self.numQPs):
            mu = self.muLandIce[cell, qp]
            strs00 = 2.0 * mu * (2.0 * Ugrad[cell, qp, 0, 0] + Ugrad[cell, qp, 1, 1])
            strs11 = 2.0 * mu * (2.0 * Ugrad[cell, qp, 1, 1] + Ugrad[cell, qp, 0, 0])
            strs01 = mu * (Ugrad[cell, qp, 1, 0] + Ugrad[cell, qp, 0, 1])
            strs02 = mu * Ugrad[cell, qp, 0, 2]
            strs12 = mu * Ugrad[cell, qp, 1, 2]
            frc0 = self.force[cell, qp, 0]
            frc1 = self.force[cell, qp, 1]
            for node in range(num_nodes):
                res0[node] = res0[node] + (
                    strs00 * wGradBF[cell, node, qp, 0]
                    + strs01 * wGradBF[cell, node, qp, 1]
                    + strs02 * wGradBF[cell, node, qp, 2]
                    + frc0 * wBF[cell, node, qp]
                )
                res1[node] = res1[node] + (
                    strs01 * wGradBF[cell, node, qp, 0]
                    + strs11 * wGradBF[cell, node, qp, 1]
                    + strs12 * wGradBF[cell, node, qp, 2]
                    + frc1 * wBF[cell, node, qp]
                )

        for node in range(num_nodes):
            self.Residual[cell, node, 0] = res0[node]
            self.Residual[cell, node, 1] = res1[node]


class StokesFOResidFusedOnly:
    """Ablation variant: loop fusion without local accumulation.

    The force term is folded into the stress loop and the branch is
    hoisted out (like the optimized kernel), but accumulation still goes
    straight to the global ``Residual`` view (like the baseline).
    Isolates how much of the paper's win comes from fusion alone versus
    the local-accumulation data-locality optimization.
    """

    name = "StokesFOResid<LandIce_3D_FusedOnly>"

    def __init__(self, fields):
        self.fields = fields
        self.Ugrad = fields.Ugrad
        self.muLandIce = fields.muLandIce
        self.force = fields.force
        self.wBF = fields.wBF
        self.wGradBF = fields.wGradBF
        self.Residual = fields.Residual
        self.num_nodes = int(fields.num_nodes)
        self.numQPs = int(fields.num_qps)

    def __call__(self, cell):
        Residual = self.Residual
        Ugrad = self.Ugrad
        wGradBF = self.wGradBF
        wBF = self.wBF

        for node in range(self.num_nodes):
            Residual[cell, node, 0] = self.fields.zero(cell)
            Residual[cell, node, 1] = self.fields.zero(cell)

        for qp in range(self.numQPs):
            mu = self.muLandIce[cell, qp]
            strs00 = 2.0 * mu * (2.0 * Ugrad[cell, qp, 0, 0] + Ugrad[cell, qp, 1, 1])
            strs11 = 2.0 * mu * (2.0 * Ugrad[cell, qp, 1, 1] + Ugrad[cell, qp, 0, 0])
            strs01 = mu * (Ugrad[cell, qp, 1, 0] + Ugrad[cell, qp, 0, 1])
            strs02 = mu * Ugrad[cell, qp, 0, 2]
            strs12 = mu * Ugrad[cell, qp, 1, 2]
            frc0 = self.force[cell, qp, 0]
            frc1 = self.force[cell, qp, 1]
            for node in range(self.num_nodes):
                Residual[cell, node, 0] += (
                    strs00 * wGradBF[cell, node, qp, 0]
                    + strs01 * wGradBF[cell, node, qp, 1]
                    + strs02 * wGradBF[cell, node, qp, 2]
                    + frc0 * wBF[cell, node, qp]
                )
                Residual[cell, node, 1] += (
                    strs01 * wGradBF[cell, node, qp, 0]
                    + strs11 * wGradBF[cell, node, qp, 1]
                    + strs12 * wGradBF[cell, node, qp, 2]
                    + frc1 * wBF[cell, node, qp]
                )
