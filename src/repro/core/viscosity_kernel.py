"""The ``ViscosityFO`` kernel as a single-source per-cell body.

The paper's future work proposes evaluating *several* velocity-solver
kernels with the time-oriented portability model.  ``ViscosityFO`` is
the next kernel in Albany's evaluation chain after the gradient
interpolation: per quadrature point it reads the six velocity-gradient
components, forms the FO effective strain rate, and writes Glen's-law
viscosity.  Unlike the Residual/Jacobian kernel it is purely streaming
(no accumulation), so its baseline and optimized forms differ only in
loop bounds -- a useful contrast point in the portability plane.

The body is single-source like ``StokesFOResid``: numeric (vectorized or
serial) and trace execution run the same code.  Numerics are tested
against the vectorized evaluator in :mod:`repro.physics.evaluators`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autodiff.sfad import SFad
from repro.kokkos.instrument import TraceContext, TraceView
from repro.kokkos.view import DOUBLE, ScalarSpec, View, fad_spec

__all__ = ["ViscosityFields", "ViscosityTraceFields", "make_viscosity_fields", "ViscosityFOKernel"]


@dataclass
class ViscosityFields:
    """Views consumed by the ViscosityFO kernel."""

    Ugrad: View  # (nc, nqp, 2, 3), ScalarT
    flowFactor: View  # (nc, nqp), double (temperature-derived)
    muLandIce: View  # (nc, nqp), ScalarT (output)
    scalar: ScalarSpec
    glen_n: float = 3.0
    reg: float = 1.0e-10

    @property
    def num_cells(self) -> int:
        return self.Ugrad.shape[0]

    @property
    def num_qps(self) -> int:
        return self.Ugrad.shape[1]


class ViscosityTraceFields:
    """Trace-mode twin of :class:`ViscosityFields`."""

    def __init__(self, fields: ViscosityFields, ctx: TraceContext | None = None):
        self.ctx = ctx or TraceContext()
        self.scalar = fields.scalar
        self.glen_n = fields.glen_n
        self.reg = fields.reg
        for name in ("Ugrad", "flowFactor", "muLandIce"):
            setattr(self, name, TraceView(self.ctx, getattr(fields, name)))
        self._num_qps = fields.num_qps

    @property
    def num_cells(self) -> int:
        return 1

    @property
    def num_qps(self) -> int:
        return self._num_qps


def make_viscosity_fields(num_cells: int, num_qps: int = 8, mode: str = "residual") -> ViscosityFields:
    """Allocate the kernel's views (Fad-typed for the Jacobian pass)."""
    if mode == "residual":
        scalar = DOUBLE
    elif mode == "jacobian":
        scalar = fad_spec(16)
    else:
        raise ValueError(f"unknown kernel mode {mode!r}")
    return ViscosityFields(
        Ugrad=View("Ugrad", (num_cells, num_qps, 2, 3), scalar),
        flowFactor=View("flowFactor", (num_cells, num_qps), DOUBLE),
        muLandIce=View("muLandIce", (num_cells, num_qps), scalar),
        scalar=scalar,
    )


def _power(x, p):
    """x**p for floats, Fad values and trace scalars alike."""
    return x**p


class ViscosityFOKernel:
    """Glen's-law viscosity at each quadrature point (streaming kernel)."""

    name = "ViscosityFO<LandIce>"

    def __init__(self, fields):
        self.fields = fields
        self.Ugrad = fields.Ugrad
        self.flowFactor = fields.flowFactor
        self.muLandIce = fields.muLandIce
        self.numQPs = int(fields.num_qps)
        self.glen_n = fields.glen_n
        self.reg = fields.reg

    def __call__(self, cell):
        Ugrad = self.Ugrad
        n = self.glen_n
        exponent = (1.0 - n) / (2.0 * n)
        for qp in range(self.numQPs):
            ux = Ugrad[cell, qp, 0, 0]
            uy = Ugrad[cell, qp, 0, 1]
            uz = Ugrad[cell, qp, 0, 2]
            vx = Ugrad[cell, qp, 1, 0]
            vy = Ugrad[cell, qp, 1, 1]
            vz = Ugrad[cell, qp, 1, 2]
            shear = uy + vx
            eps_sq = (
                ux * ux
                + vy * vy
                + ux * vy
                + 0.25 * (shear * shear)
                + 0.25 * (uz * uz)
                + 0.25 * (vz * vz)
            )
            a_term = _power(self.flowFactor[cell, qp], -1.0 / n)
            self.muLandIce[cell, qp] = 0.5 * a_term * _power(eps_sq + self.reg, exponent)
