"""LaunchBounds configurations of the paper's Table II.

The paper sweeps ``Kokkos::LaunchBounds<MaxThreads, MinBlocks>`` on the
MI250X for the optimized kernels.  Defaults (no explicit bounds) are
256 threads for the Jacobian and 1024 for the Residual, per Section VI.
"""

from __future__ import annotations

from repro.kokkos.policy import DEFAULT_LAUNCH_BOUNDS, LaunchBounds

__all__ = ["TABLE2_LAUNCH_CONFIGS", "default_launch_bounds"]

#: The five columns of Table II.
TABLE2_LAUNCH_CONFIGS: list[LaunchBounds] = [
    DEFAULT_LAUNCH_BOUNDS,
    LaunchBounds(128, 2),
    LaunchBounds(128, 4),
    LaunchBounds(256, 2),
    LaunchBounds(1024, 2),
]


def default_launch_bounds(mode: str) -> LaunchBounds:
    """Kokkos default block size per kernel (Jacobian 256, Residual 1024)."""
    if mode == "jacobian":
        return LaunchBounds(256, 1, explicit=False)
    if mode == "residual":
        return LaunchBounds(1024, 1, explicit=False)
    raise ValueError(f"unknown kernel mode {mode!r}")
