"""Kernel-variant registry with the metadata the GPU simulator consumes.

Four variants span the paper's evaluation matrix: {baseline, optimized}
x {residual, jacobian}.  Each records its loop structure (what the
optimizations changed) and its *register demand profiles*.

Register profiles are compiler calibration data: the paper's Table II
reports the Architectural/Accumulation VGPR allocations the ROCm
compiler actually chose for each kernel under each LaunchBounds, and we
take those observed allocations as the per-kernel demand description.
The *consequences* -- occupancy, scratch-spill traffic, achieved
bandwidth, time -- are produced mechanistically by
:mod:`repro.gpusim`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kernels import (
    StokesFOResidBaseline,
    StokesFOResidFusedOnly,
    StokesFOResidOptimized,
)
from repro.core.viscosity_kernel import ViscosityFOKernel

__all__ = ["RegisterProfile", "KernelVariant", "VARIANTS", "get_variant", "variant_names"]


@dataclass(frozen=True)
class RegisterProfile:
    """One compiler register-allocation outcome for a kernel.

    ``arch_vgprs``/``accum_vgprs`` are per-thread 32-bit register counts
    (CDNA2 reports both classes); ``scratch_bytes`` is per-thread scratch
    (spill) memory that generates extra HBM traffic; ``issue_penalty``
    multiplies the instruction-issue time (lost ILP when the allocation
    is tight).
    """

    arch_vgprs: int
    accum_vgprs: int
    scratch_bytes: int = 0
    issue_penalty: float = 1.0

    @property
    def total_vgprs(self) -> int:
        return self.arch_vgprs + self.accum_vgprs


@dataclass(frozen=True)
class KernelVariant:
    """A kernel implementation plus everything the simulator needs."""

    key: str  # e.g. "baseline-jacobian"
    impl: str  # "baseline" | "optimized"
    mode: str  # "residual" | "jacobian"
    functor_cls: type
    display_name: str
    #: loop-structure flags (what the paper's optimizations changed)
    compile_time_bounds: bool
    fused: bool
    local_accum: bool
    branch_in_kernel: bool
    #: per-thread accumulator footprint in doubles (local arrays)
    accumulator_doubles: int
    #: CDNA2 allocation when the VGPR budget is generous (>= 2x wave share)
    profile_relaxed: RegisterProfile
    #: CDNA2 allocation when the budget is one wave share (256 regs -> 128)
    profile_tight: RegisterProfile
    #: CUDA (A100) registers per thread
    cuda_regs: int
    #: CUDA local-memory (spill) bytes per thread -- the 255-register cap
    #: cannot hold the optimized Jacobian's SFad accumulators either
    cuda_scratch_bytes: int = 0
    #: kernel family: selects the field set ("stokes" | "viscosity")
    family: str = "stokes"

    @property
    def fad_dim(self) -> int:
        return 16 if self.mode == "jacobian" else 0

    def make_functor(self, fields):
        return self.functor_cls(fields)


def _nn(mode: str) -> int:
    return 17 if mode == "jacobian" else 1


VARIANTS: dict[str, KernelVariant] = {}


def _register(v: KernelVariant) -> None:
    VARIANTS[v.key] = v


_register(
    KernelVariant(
        key="baseline-jacobian",
        impl="baseline",
        mode="jacobian",
        functor_cls=StokesFOResidBaseline,
        display_name="Jacobian baseline",
        compile_time_bounds=False,
        fused=False,
        local_accum=False,
        branch_in_kernel=True,
        accumulator_doubles=0,
        # no local arrays: moderate pressure regardless of budget
        profile_relaxed=RegisterProfile(96, 0),
        profile_tight=RegisterProfile(96, 0),
        cuda_regs=112,
    )
)

_register(
    KernelVariant(
        key="optimized-jacobian",
        impl="optimized",
        mode="jacobian",
        functor_cls=StokesFOResidOptimized,
        display_name="Jacobian optimized",
        compile_time_bounds=True,
        fused=True,
        local_accum=True,
        branch_in_kernel=False,
        # res0/res1: 2 x 8 nodes x SFad<16> (17 doubles)
        accumulator_doubles=2 * 8 * 17,
        # Table II: generous budget -> 128 arch + 128 accum (AGPRs absorb
        # the accumulator spill); tight budget -> accumulators overflow to
        # scratch memory.
        profile_relaxed=RegisterProfile(128, 128),
        profile_tight=RegisterProfile(128, 0, scratch_bytes=2900),
        cuda_regs=232,
        cuda_scratch_bytes=704,
    )
)

_register(
    KernelVariant(
        key="baseline-residual",
        impl="baseline",
        mode="residual",
        functor_cls=StokesFOResidBaseline,
        display_name="Residual baseline",
        compile_time_bounds=False,
        fused=False,
        local_accum=False,
        branch_in_kernel=True,
        accumulator_doubles=0,
        profile_relaxed=RegisterProfile(64, 0),
        profile_tight=RegisterProfile(64, 0),
        cuda_regs=64,
    )
)

_register(
    KernelVariant(
        key="optimized-residual",
        impl="optimized",
        mode="residual",
        functor_cls=StokesFOResidOptimized,
        display_name="Residual optimized",
        compile_time_bounds=True,
        fused=True,
        local_accum=True,
        branch_in_kernel=False,
        accumulator_doubles=2 * 8,
        # Table II: generous budget -> 128 arch, no accum; tight budget ->
        # 84 arch + 4 accum with a small residual spill and scheduling
        # penalty.
        profile_relaxed=RegisterProfile(128, 0),
        profile_tight=RegisterProfile(84, 4, scratch_bytes=64, issue_penalty=1.17),
        cuda_regs=96,
    )
)


# ablation variants: fusion without local accumulation (not part of the
# paper's headline matrix, used by the ablation benchmarks)
_register(
    KernelVariant(
        key="fused-jacobian",
        impl="fused",
        mode="jacobian",
        functor_cls=StokesFOResidFusedOnly,
        display_name="Jacobian fused-only",
        compile_time_bounds=True,
        fused=True,
        local_accum=False,
        branch_in_kernel=False,
        accumulator_doubles=0,
        profile_relaxed=RegisterProfile(100, 0),
        profile_tight=RegisterProfile(100, 0),
        cuda_regs=120,
    )
)

_register(
    KernelVariant(
        key="fused-residual",
        impl="fused",
        mode="residual",
        functor_cls=StokesFOResidFusedOnly,
        display_name="Residual fused-only",
        compile_time_bounds=True,
        fused=True,
        local_accum=False,
        branch_in_kernel=False,
        accumulator_doubles=0,
        profile_relaxed=RegisterProfile(72, 0),
        profile_tight=RegisterProfile(72, 0),
        cuda_regs=72,
    )
)


# the next kernel in the evaluation chain (paper future work: apply the
# portability model to several kernels); purely streaming
_register(
    KernelVariant(
        key="viscosity-residual",
        impl="viscosity",
        mode="residual",
        functor_cls=ViscosityFOKernel,
        display_name="ViscosityFO",
        compile_time_bounds=True,
        fused=True,
        local_accum=False,
        branch_in_kernel=False,
        accumulator_doubles=0,
        profile_relaxed=RegisterProfile(48, 0),
        profile_tight=RegisterProfile(48, 0),
        cuda_regs=40,
        family="viscosity",
    )
)

_register(
    KernelVariant(
        key="viscosity-jacobian",
        impl="viscosity",
        mode="jacobian",
        functor_cls=ViscosityFOKernel,
        display_name="ViscosityFO (Jacobian pass)",
        compile_time_bounds=True,
        fused=True,
        local_accum=False,
        branch_in_kernel=False,
        accumulator_doubles=0,
        profile_relaxed=RegisterProfile(96, 0),
        profile_tight=RegisterProfile(96, 0),
        cuda_regs=88,
        family="viscosity",
    )
)


def get_variant(key: str) -> KernelVariant:
    """Look up a variant, accepting either 'impl-mode' or (impl, mode)."""
    if key not in VARIANTS:
        raise KeyError(f"unknown kernel variant {key!r}; available: {sorted(VARIANTS)}")
    return VARIANTS[key]


def variant_names() -> list[str]:
    return sorted(VARIANTS)
