"""Running the Stokes kernels and extracting local residual/Jacobian blocks.

Local dof numbering is node-major (``j = node * 2 + component``),
matching both the ``SFad(16)`` seeding and
:meth:`repro.fem.dofmap.DofMap.elem_dofs`.
"""

from __future__ import annotations

import numpy as np

from repro.core.fields import StokesFields
from repro.core.variants import KernelVariant, get_variant
from repro.kokkos.parallel import parallel_for
from repro.kokkos.policy import RangePolicy
from repro.kokkos.space import ExecutionSpace

__all__ = ["run_kernel", "local_residual_blocks", "local_jacobian_blocks"]


def run_kernel(
    variant: KernelVariant | str,
    fields: StokesFields,
    space: ExecutionSpace | None = None,
) -> None:
    """Execute a kernel variant over all cells of ``fields``.

    Fills ``fields.Residual`` (values, plus derivative components when the
    fields were allocated in Jacobian mode).
    """
    if isinstance(variant, str):
        variant = get_variant(variant)
    if variant.mode == "jacobian" and not fields.scalar.is_fad:
        raise ValueError("jacobian variant requires Fad-typed fields")
    if variant.mode == "residual" and fields.scalar.is_fad:
        raise ValueError("residual variant requires double-typed fields")
    functor = variant.make_functor(fields)
    parallel_for(variant.display_name, RangePolicy(0, fields.num_cells), functor, space=space)


def local_residual_blocks(fields: StokesFields) -> np.ndarray:
    """Residual values as per-element blocks, shape ``(nc, 2 * nn)``."""
    vals = fields.Residual.values()  # (nc, nn, 2)
    nc = vals.shape[0]
    return vals.reshape(nc, -1).copy()


def local_jacobian_blocks(fields: StokesFields) -> np.ndarray:
    """Local Jacobians d(local residual)/d(local dof), shape ``(nc, k, k)``.

    Requires fields allocated in Jacobian mode (Fad residual).
    """
    if not fields.scalar.is_fad:
        raise ValueError("fields were not evaluated in Jacobian mode")
    dx = fields.Residual.data.dx  # (nc, nn, 2, 16)
    nc = dx.shape[0]
    k = dx.shape[1] * dx.shape[2]
    return dx.reshape(nc, k, k).copy()
