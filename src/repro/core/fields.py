"""Field containers for the ``StokesFOResid`` kernels.

A :class:`StokesFields` bundles the six views of the paper's kernel
(Fig. 2): ``Ugrad``, ``muLandIce``, ``force``, ``wBF``, ``wGradBF`` and
``Residual``.  For the Jacobian evaluation the solution-dependent views
carry ``SFad(16)`` scalars (8 nodes x 2 velocity components); the basis
views stay plain doubles (Albany's ``MeshScalarT``).

:class:`TraceFields` exposes the same attribute surface backed by
recording views, so the identical kernel body yields the per-thread
access program for the GPU simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autodiff.sfad import SFad
from repro.kokkos.instrument import TraceContext, TraceView
from repro.kokkos.view import DOUBLE, ScalarSpec, View, fad_spec

__all__ = ["StokesFields", "TraceFields", "make_stokes_fields", "JACOBIAN_FAD_SIZE"]

#: Derivative components of the Jacobian evaluation: 8 nodes x 2 dofs.
JACOBIAN_FAD_SIZE = 16


@dataclass
class StokesFields:
    """Numeric views consumed by the Stokes residual/Jacobian kernel.

    In Albany's Jacobian evaluation the weighted-basis views carry the
    Fad scalar type too (``MeshScalarT``), which is why the paper's
    Jacobian kernel moves ~16x the Residual's data.  Numerically those
    derivative components are identically zero, so the host storage
    keeps them as plain doubles; ``mesh_scalar`` records the *layout*
    scalar type the GPU data-movement model must charge for.
    """

    Ugrad: View  # (nc, nqp, 2, 3), ScalarT
    muLandIce: View  # (nc, nqp), ScalarT
    force: View  # (nc, nqp, 2), ScalarT
    wBF: View  # (nc, nn, nqp), MeshScalarT (stored double, zero derivs)
    wGradBF: View  # (nc, nn, nqp, 3), MeshScalarT
    Residual: View  # (nc, nn, 2), ScalarT
    scalar: ScalarSpec
    mesh_scalar: ScalarSpec = DOUBLE

    @property
    def num_cells(self) -> int:
        return self.Ugrad.shape[0]

    @property
    def num_qps(self) -> int:
        return self.Ugrad.shape[1]

    @property
    def num_nodes(self) -> int:
        return self.wBF.shape[1]

    def zero(self, cell):
        """A zero of the kernel scalar type (broadcasts over the cell set)."""
        if self.scalar.is_fad:
            n = self.scalar.fad_dim
            return SFad(n)(0.0, np.zeros(n))
        return 0.0

    def views(self) -> list[View]:
        return [self.Ugrad, self.muLandIce, self.force, self.wBF, self.wGradBF, self.Residual]

    def input_views(self) -> list[View]:
        return [self.Ugrad, self.muLandIce, self.force, self.wBF, self.wGradBF]

    def output_views(self) -> list[View]:
        return [self.Residual]


class TraceFields:
    """Trace-mode twin of :class:`StokesFields` (same attribute names)."""

    def __init__(self, fields: StokesFields, ctx: TraceContext | None = None):
        self.ctx = ctx or TraceContext()
        self.scalar = fields.scalar
        for name in ("Ugrad", "muLandIce", "force", "Residual"):
            setattr(self, name, TraceView(self.ctx, getattr(fields, name)))
        # basis views trace with their MeshScalarT layout (Fad for the
        # Jacobian), even though host numerics store them as doubles
        for name in ("wBF", "wGradBF"):
            tv = TraceView(self.ctx, getattr(fields, name))
            tv.scalar = fields.mesh_scalar
            setattr(self, name, tv)
        self._num_nodes = fields.num_nodes
        self._num_qps = fields.num_qps

    @property
    def num_cells(self) -> int:
        return 1

    @property
    def num_qps(self) -> int:
        return self._num_qps

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def zero(self, cell):
        return self.ctx.scalar(self.scalar.fad_dim)


def make_stokes_fields(
    num_cells: int,
    num_nodes: int = 8,
    num_qps: int = 8,
    mode: str = "residual",
) -> StokesFields:
    """Allocate the kernel's views for ``mode`` in {"residual", "jacobian"}.

    Jacobian mode gives the solution-dependent views ``SFad(2 *
    num_nodes)`` scalars, multiplying their storage by ``2*num_nodes + 1``
    (the 17x data-volume amplification of the paper's Jacobian kernel).
    """
    if mode == "residual":
        scalar = DOUBLE
    elif mode == "jacobian":
        scalar = fad_spec(2 * num_nodes)
    else:
        raise ValueError(f"unknown kernel mode {mode!r}")
    mesh_scalar = scalar if mode == "jacobian" else DOUBLE
    return StokesFields(
        mesh_scalar=mesh_scalar,
        Ugrad=View("Ugrad", (num_cells, num_qps, 2, 3), scalar),
        muLandIce=View("muLandIce", (num_cells, num_qps), scalar),
        force=View("force", (num_cells, num_qps, 2), scalar),
        wBF=View("wBF", (num_cells, num_nodes, num_qps), DOUBLE),
        wGradBF=View("wGradBF", (num_cells, num_nodes, num_qps, 3), DOUBLE),
        Residual=View("Residual", (num_cells, num_nodes, 2), scalar),
        scalar=scalar,
    )
