"""Finite-element substrate (Albany's discretization layer analogue).

Provides reference elements, Gauss quadrature, the per-element basis
data the Stokes kernels consume (``wBF``, ``wGradBF``), dof maps, a CSR
sparse matrix, and vectorized local-to-global assembly.
"""

from repro.fem.reference import Quad4, Tri3, Hex8, Wedge6, reference_element
from repro.fem.quadrature import gauss_legendre_1d, quadrature_rule
from repro.fem.discretization import BasisData, compute_basis_data, compute_face_basis_data
from repro.fem.dofmap import DofMap
from repro.fem.sparse import CsrMatrix
from repro.fem.assembly import (
    AssemblyPlan,
    build_sparsity,
    assemble_matrix,
    assemble_vector,
    apply_dirichlet,
)
from repro.fem.distributed import DistributedStokesAssembly, DistributedMatrix

__all__ = [
    "Quad4",
    "Tri3",
    "Hex8",
    "Wedge6",
    "reference_element",
    "gauss_legendre_1d",
    "quadrature_rule",
    "BasisData",
    "compute_basis_data",
    "compute_face_basis_data",
    "DofMap",
    "CsrMatrix",
    "AssemblyPlan",
    "build_sparsity",
    "assemble_matrix",
    "assemble_vector",
    "apply_dirichlet",
    "DistributedStokesAssembly",
    "DistributedMatrix",
]
