"""Per-element basis data: the arrays the Stokes kernels consume.

Albany's ``ComputeBasisFunctions`` evaluator produces, for every element
and quadrature point, the weighted basis values ``wBF(cell, node, qp)``
and weighted physical basis gradients ``wGradBF(cell, node, qp, dim)``.
This module reproduces that computation, vectorized over all cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.quadrature import quadrature_rule
from repro.fem.reference import reference_element

__all__ = ["BasisData", "compute_basis_data", "compute_face_basis_data"]


@dataclass
class BasisData:
    """Precomputed FE basis data over a set of elements.

    Shapes (``nc`` cells, ``nn`` nodes/elem, ``nq`` qps, ``d`` dims):

    * ``bf``: (nq, nn) reference shape values,
    * ``w_bf``: (nc, nn, nq) basis values x quadrature weight x |detJ|,
    * ``grad_bf``: (nc, nn, nq, d) physical gradients,
    * ``w_grad_bf``: (nc, nn, nq, d) physical gradients x weight x |detJ|,
    * ``det_j``: (nc, nq), ``qp_coords``: (nc, nq, d), ``weights``: (nq,).
    """

    elem_type: str
    bf: np.ndarray
    w_bf: np.ndarray
    grad_bf: np.ndarray
    w_grad_bf: np.ndarray
    det_j: np.ndarray
    qp_coords: np.ndarray
    weights: np.ndarray

    @property
    def num_cells(self) -> int:
        return self.w_bf.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.w_bf.shape[1]

    @property
    def num_qps(self) -> int:
        return self.w_bf.shape[2]

    @property
    def dim(self) -> int:
        return self.w_grad_bf.shape[3]

    def cell_volumes(self) -> np.ndarray:
        """Element volumes (areas in 2-D): sum of weighted |detJ|."""
        return self.det_j @ self.weights


def compute_basis_data(coords: np.ndarray, elems: np.ndarray, elem_type: str, order: int = 2) -> BasisData:
    """Compute :class:`BasisData` for elements of one type.

    Parameters
    ----------
    coords:
        ``(num_nodes, d)`` global node coordinates.
    elems:
        ``(nc, nn)`` element connectivity.
    elem_type:
        Reference element name (``hex8``, ``wedge6``, ``quad4``, ``tri3``).
    order:
        Gauss points per direction (2 -> the paper's 8-point hex rule).
    """
    ref = reference_element(elem_type)
    qp, w = quadrature_rule(elem_type, order)
    bf = ref.shape(qp)  # (nq, nn)
    gref = ref.grad(qp)  # (nq, nn, d)

    cell_coords = coords[elems]  # (nc, nn, d)
    # Jacobian dX/dxi at each qp: (nc, nq, d, d)
    jac = np.einsum("qnr,cnd->cqdr", gref, cell_coords)
    det_j = np.linalg.det(jac)
    if np.any(det_j <= 0.0):
        bad = int(np.argmin(det_j.min(axis=1)))
        raise ValueError(f"non-positive Jacobian in element {bad}; mesh is tangled")
    inv_jac = np.linalg.inv(jac)  # (nc, nq, r, d) with inv[r,d]=dxi_r/dx_d

    # physical gradients: dN/dx_d = dN/dxi_r * dxi_r/dx_d
    grad_bf = np.einsum("qnr,cqrd->cnqd", gref, inv_jac)
    wdet = det_j * w[None, :]  # (nc, nq)
    w_bf = bf.T[None, :, :] * wdet[:, None, :]  # (nc, nn, nq)
    w_grad_bf = grad_bf * wdet[:, None, :, None]
    qp_coords = np.einsum("qn,cnd->cqd", bf, cell_coords)

    return BasisData(
        elem_type=elem_type,
        bf=bf,
        w_bf=np.ascontiguousarray(w_bf),
        grad_bf=np.ascontiguousarray(grad_bf),
        w_grad_bf=np.ascontiguousarray(w_grad_bf),
        det_j=det_j,
        qp_coords=qp_coords,
        weights=w,
    )


def compute_face_basis_data(
    coords: np.ndarray, face_nodes: np.ndarray, face_type: str, order: int = 2
) -> BasisData:
    """Basis data on boundary faces embedded in 3-D (for basal friction).

    The face element is 2-D (``quad4`` or ``tri3``) with 3-D node
    coordinates; ``detJ`` is the surface measure ``|t_s x t_t|``, and the
    returned ``w_grad_bf``/``grad_bf`` hold the *tangential-parameter*
    gradients (unused by the friction term, which only needs ``w_bf``).
    """
    ref = reference_element(face_type)
    qp, w = quadrature_rule(face_type, order)
    bf = ref.shape(qp)
    gref = ref.grad(qp)  # (nq, nn, 2)

    cell_coords = coords[face_nodes]  # (nf, nn, 3)
    # tangent vectors: (nf, nq, 3, 2)
    tang = np.einsum("qnr,cnd->cqdr", gref, cell_coords)
    normal = np.cross(tang[..., 0], tang[..., 1])  # (nf, nq, 3)
    det_j = np.linalg.norm(normal, axis=-1)
    if np.any(det_j <= 0.0):
        raise ValueError("degenerate boundary face")

    wdet = det_j * w[None, :]
    w_bf = bf.T[None, :, :] * wdet[:, None, :]
    # parameter-space gradients, kept for completeness
    grad_bf = np.broadcast_to(gref.transpose(1, 0, 2)[None], cell_coords.shape[:1] + gref.transpose(1, 0, 2).shape).copy()
    w_grad_bf = grad_bf * wdet[:, None, :, None]
    qp_coords = np.einsum("qn,cnd->cqd", bf, cell_coords)

    return BasisData(
        elem_type=face_type,
        bf=bf,
        w_bf=np.ascontiguousarray(w_bf),
        grad_bf=grad_bf,
        w_grad_bf=w_grad_bf,
        det_j=det_j,
        qp_coords=qp_coords,
        weights=w,
    )
