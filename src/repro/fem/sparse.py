"""A compressed-sparse-row matrix built for FE assembly.

Self-contained CSR implementation (construction from COO triplets with
duplicate summation, SpMV, diagonal extraction, row operations) with
scipy interop used only at the coarse-solver level and in tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CsrMatrix"]


try:  # fast SpMV backend; the numpy path below is the fallback
    import scipy.sparse as _sp
except ImportError:  # pragma: no cover - scipy is part of the toolchain
    _sp = None


class CsrMatrix:
    """Square-or-rectangular CSR matrix over float64."""

    __slots__ = ("shape", "indptr", "indices", "data", "_spmv")

    def __init__(self, shape: tuple[int, int], indptr, indices, data):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self._spmv = None  # lazily-built scipy handle for the matvec hot path
        if len(self.indptr) != self.shape[0] + 1:
            raise ValueError("indptr length must be nrows + 1")
        if self.indptr[-1] != len(self.indices) or len(self.indices) != len(self.data):
            raise ValueError("inconsistent CSR buffers")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self.shape[1]):
            raise ValueError("column index out of range")

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, rows, cols, vals, shape: tuple[int, int]) -> "CsrMatrix":
        """Build from COO triplets, summing duplicate (row, col) entries."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        vals = np.asarray(vals, dtype=np.float64).ravel()
        if not (len(rows) == len(cols) == len(vals)):
            raise ValueError("COO triplet arrays must have equal length")
        if len(rows) == 0:
            return cls(shape, np.zeros(shape[0] + 1, np.int64), np.empty(0, np.int64), np.empty(0))
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        # collapse duplicates
        new = np.empty(len(rows), dtype=bool)
        new[0] = True
        new[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        idx = np.flatnonzero(new)
        summed = np.add.reduceat(vals, idx)
        rows, cols = rows[idx], cols[idx]
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(shape, indptr, cols, summed)

    @classmethod
    def identity(cls, n: int) -> "CsrMatrix":
        return cls((n, n), np.arange(n + 1), np.arange(n), np.ones(n))

    @classmethod
    def from_scipy(cls, m) -> "CsrMatrix":
        m = m.tocsr()
        return cls(m.shape, m.indptr, m.indices, m.data)

    def to_scipy(self):
        import scipy.sparse as sp

        return sp.csr_matrix((self.data, self.indices, self.indptr), shape=self.shape)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.data)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """y = A @ x.

        GMRES and the multigrid smoothers apply the same operator
        hundreds of times per Newton step, so the first call builds a
        scipy CSR handle over the (shared) buffers and every subsequent
        call runs the compiled SpMV; without scipy a vectorized
        segmented reduction is used.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"matvec expects a vector of length {self.shape[1]}")
        if _sp is not None:
            if self._spmv is None:
                self._spmv = _sp.csr_matrix(
                    (self.data, self.indices, self.indptr), shape=self.shape
                )
            return self._spmv @ x
        prod = self.data * x[self.indices]
        y = np.zeros(self.shape[0])
        nonempty = self.indptr[:-1] != self.indptr[1:]
        if prod.size:
            sums = np.add.reduceat(prod, self.indptr[:-1][nonempty])
            y[nonempty] = sums
        return y

    def __matmul__(self, x):
        return self.matvec(x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """x = A^T @ y."""
        y = np.asarray(y, dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        x = np.zeros(self.shape[1])
        np.add.at(x, self.indices, self.data * y[rows])
        return x

    def diagonal(self) -> np.ndarray:
        n = min(self.shape)
        d = np.zeros(n)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        hit = (rows == self.indices) & (rows < n)
        d[rows[hit]] = self.data[hit]
        return d

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row ``i`` (views, do not mutate ids)."""
        a, b = self.indptr[i], self.indptr[i + 1]
        return self.indices[a:b], self.data[a:b]

    def scale_rows(self, s: np.ndarray) -> "CsrMatrix":
        """Return diag(s) @ A."""
        s = np.asarray(s, dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return CsrMatrix(self.shape, self.indptr.copy(), self.indices.copy(), self.data * s[rows])

    def transpose(self) -> "CsrMatrix":
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return CsrMatrix.from_coo(self.indices, rows, self.data, (self.shape[1], self.shape[0]))

    def norm_inf(self) -> float:
        if self.nnz == 0:
            return 0.0
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        sums = np.zeros(self.shape[0])
        np.add.at(sums, rows, np.abs(self.data))
        return float(sums.max())

    def norm_fro(self) -> float:
        return float(np.sqrt(np.sum(self.data**2)))

    def toarray(self) -> np.ndarray:
        out = np.zeros(self.shape)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    def copy(self) -> "CsrMatrix":
        return CsrMatrix(self.shape, self.indptr.copy(), self.indices.copy(), self.data.copy())

    def __repr__(self):
        return f"CsrMatrix(shape={self.shape}, nnz={self.nnz})"
