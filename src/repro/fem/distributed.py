"""SPMD distributed assembly and SpMV over a real mesh partition.

MALI runs one MPI rank per GPU: each rank assembles the residual and
Jacobian over its *owned* element columns, ships ghost contributions to
their owners (Tpetra ``Export`` with ADD), refreshes ghost solution
values before every evaluation (``Import``), and runs Newton/GMRES on
row-partitioned operators with partitioned dot products.  This module
reproduces that execution structure in-process: one
:class:`DistributedStokesAssembly` per problem precomputes the
per-rank restricted dof maps, entry-exchange routes and CSR structures,
and every Newton step is then a set of rank-local numeric fills plus
metered exchanges.

Ownership rules (matching the extruded column-major numbering):

* footprint *elements* are owned by the rank :func:`repro.mesh.
  partition.partition_footprint` assigned them; a 3-D element belongs to
  its footprint element's owner (whole columns, never split vertically);
* footprint *nodes* are owned by the smallest rank among adjacent
  element owners; all ``levels`` 3-D nodes of a column -- and therefore
  the column's ``levels x ndof`` contiguous dofs -- belong to that rank;
* matrix *rows* follow dof ownership (row-partitioned operators);
  columns are whatever a rank's rows reference (owned + ghost).

Bit-for-bit reproducibility.  E3SM-class climate codes require the
distributed solve to be *bitwise* identical to the serial one (and
across rank counts).  Floating-point addition is not associative, so
this cannot be left to chance; three invariants make it hold here:

1. **Owner-ordered scatter.**  The serial ``AssemblyPlan`` sums
   element contributions per dof (and per CSR slot) in ascending
   global-entry order via ``np.bincount``.  Each owner here consumes
   the same entries in the same ascending order -- interleaving
   neighbors' streams by global entry index -- so every per-dof and
   per-slot sequential sum is bitwise equal to the serial one.
2. **Owner-rows SpMV.**  Each rank's local CSR keeps its rows' entries
   in the serial (ascending-column) order; the local column map is the
   sorted unique column set, so restriction preserves within-row order
   and per-row sums match the serial SpMV bitwise.  Row results are
   placed, never summed, across ranks.
3. **Blocked reductions.**  Dot products and norms go through
   :class:`repro.solvers.reductions.BlockReducer` with one block per
   footprint column (single-owner blocks), which both the serial and
   SPMD solves use -- the fixed-order allreduce of E3SM's BFB mode.

Traffic accounting is *protocol-level*: the meter records the bytes a
real halo protocol would move (one summed value per ghost dof on the
residual export, one value per ghost CSR slot on the Jacobian export,
ghost dof values on each refresh, one scalar per rank per allreduce),
not the internal entry streams this in-process simulation routes.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro.fem.assembly import AssemblyPlan
from repro.fem.sparse import CsrMatrix
from repro.gpusim.solver_bytes import spmv_bytes, spmv_flops
from repro.mesh.partition import HaloExchange, Partition, TrafficMeter
from repro.observability import get_tracer
from repro.resilience.detectors import payload_checksum, verify_payload
from repro.resilience.injectors import HaloCorruptionError, fault_plane

__all__ = ["DistributedStokesAssembly", "DistributedMatrix"]

_FP64 = 8  # bytes per exchanged value


class DistributedStokesAssembly:
    """Per-rank restricted assembly of the FO Stokes residual/Jacobian.

    Built once per problem from the serial :class:`AssemblyPlan` and a
    footprint :class:`Partition`; precomputes, per rank:

    * the owned 3-D element list (all layers of owned footprint
      elements) and owned dof list (whole vertical columns);
    * entry-exchange routes: for every residual entry ``(elem, i)`` and
      Jacobian entry ``(elem, i, j)`` whose row dof it owns, the source
      rank and the position in that rank's local block array, kept in
      ascending global-entry order (the BFB invariant);
    * the restricted CSR structure (owned rows x referenced columns)
      with its slot map into the serial CSR, plus per-rank Dirichlet
      masks;
    * protocol-level byte counts for every exchange class.
    """

    def __init__(
        self,
        plan: AssemblyPlan,
        partition: Partition,
        levels: int,
        nlayers: int,
        meter: TrafficMeter | None = None,
    ):
        fp = partition.footprint
        nc, k = plan.elem_dofs.shape
        if nc != fp.num_elems * nlayers:
            raise ValueError("plan element count does not match footprint x layers")
        ndof = plan.num_dofs // (fp.num_nodes * levels)
        if ndof * fp.num_nodes * levels != plan.num_dofs:
            raise ValueError("dof count is not (footprint nodes) x levels x ndof")

        self.plan = plan
        self.partition = partition
        self.nparts = partition.nparts
        self.levels = levels
        self.nlayers = nlayers
        self.ndof = ndof
        self.num_dofs = plan.num_dofs
        self.meter = meter if meter is not None else TrafficMeter(partition.nparts)
        self.halo = HaloExchange(partition, self.meter)

        nparts = self.nparts
        nz = nlayers
        k2 = k * k

        # ownership: elements by footprint-element owner, dofs by
        # footprint-node owner (a column's levels x ndof dofs are
        # contiguous under the column-major numbering).  Footprint nodes
        # untouched by any element have no owner; park them on rank 0
        # (their rows are structurally empty).
        node_owner = np.where(partition.node_part < nparts, partition.node_part, 0)
        elem_owner = np.repeat(partition.elem_part, nz)  # (nc,) 3-D element owner
        dof_owner = np.repeat(node_owner, levels * ndof)  # (num_dofs,)
        self.dof_owner = dof_owner

        # per-rank owned sets + global -> local renumbering
        elem_local_pos = np.empty(nc, dtype=np.int64)
        dof_local_row = np.empty(plan.num_dofs, dtype=np.int64)
        self._owned_elems: list[np.ndarray] = []
        self._owned_dofs: list[np.ndarray] = []
        for p in range(nparts):
            e2d = partition.owned_elems(p)
            e3d = (e2d[:, None] * nz + np.arange(nz)[None, :]).ravel()  # ascending
            elem_local_pos[e3d] = np.arange(len(e3d))
            self._owned_elems.append(e3d)
            dofs = np.flatnonzero(dof_owner == p)  # ascending
            dof_local_row[dofs] = np.arange(len(dofs))
            self._owned_dofs.append(dofs)

        # ---- residual exchange: entries (elem, i) routed to row owners
        # in ascending global-entry order ``ent = elem * k + i``
        ent_dof = plan.elem_dofs.ravel()
        ent_src = np.repeat(elem_owner, k)
        ent_owner = dof_owner[ent_dof]
        self._res_rows: list[np.ndarray] = []  # local row per stream entry
        self._res_groups: list[dict[int, tuple[np.ndarray, np.ndarray]]] = []
        self._res_export: list[dict[int, int]] = []  # owner p <- src q bytes
        for p in range(nparts):
            ent_p = np.flatnonzero(ent_owner == p)  # ascending ent order
            self._res_rows.append(dof_local_row[ent_dof[ent_p]])
            src = ent_src[ent_p]
            srcpos = elem_local_pos[ent_p // k] * k + ent_p % k
            groups, export = {}, {}
            for q in np.unique(src):
                sel = np.flatnonzero(src == q)
                groups[int(q)] = (sel, srcpos[sel])
                if q != p:
                    # protocol: q pre-sums its contributions and ships one
                    # value per distinct ghost dof it shares with p
                    export[int(q)] = int(len(np.unique(ent_dof[ent_p[sel]]))) * _FP64
            self._res_groups.append(groups)
            self._res_export.append(export)

        # ---- restricted CSR structure: owned rows x referenced columns
        slot_rows = np.repeat(np.arange(plan.num_dofs), np.diff(plan.indptr))
        slot_owner = dof_owner[slot_rows]
        slot_local = np.empty(plan.nnz, dtype=np.int64)
        self._gslots: list[np.ndarray] = []  # serial slots of p's rows, ascending
        self._indptr: list[np.ndarray] = []
        self._indices: list[np.ndarray] = []
        self._colmap: list[np.ndarray] = []
        self._bc_clear: list[np.ndarray | None] = []
        self._bc_diag: list[np.ndarray | None] = []
        self._spmv_ghost: list[dict[int, int]] = []  # ghost columns by owner
        #: local column positions of each neighbor's ghost columns -- the
        #: receive buffer layout of the SpMV ghost refresh, used by the
        #: checksum-verified path when the fault plane is armed
        self._spmv_ghost_idx: list[dict[int, np.ndarray]] = []
        for p in range(nparts):
            gslots = np.flatnonzero(slot_owner == p)
            slot_local[gslots] = np.arange(len(gslots))
            lrows = dof_local_row[slot_rows[gslots]]
            gcols = plan.indices[gslots]
            colmap = np.unique(gcols)  # ascending: preserves within-row order
            indptr = np.zeros(len(self._owned_dofs[p]) + 1, dtype=np.int64)
            np.add.at(indptr, lrows + 1, 1)
            np.cumsum(indptr, out=indptr)
            self._gslots.append(gslots)
            self._indptr.append(indptr)
            self._indices.append(np.searchsorted(colmap, gcols))
            self._colmap.append(colmap)
            self._bc_clear.append(None if plan.bc_clear is None else plan.bc_clear[gslots])
            self._bc_diag.append(None if plan.bc_diag is None else plan.bc_diag[gslots])
            ghost_cols = colmap[dof_owner[colmap] != p]
            owners, counts = np.unique(dof_owner[ghost_cols], return_counts=True)
            self._spmv_ghost.append({int(q): int(c) for q, c in zip(owners, counts)})
            self._spmv_ghost_idx.append(
                {int(q): np.flatnonzero(dof_owner[colmap] == q) for q in owners}
            )

        # ---- Jacobian exchange: entries (elem, i, j) routed to row
        # owners in ascending order ``jent = (elem * k + i) * k + j``
        jent_owner = dof_owner[np.repeat(plan.elem_dofs, k, axis=1).ravel()]
        jent_src = np.repeat(elem_owner, k2)
        self._jac_slots: list[np.ndarray] = []  # local slot per stream entry
        self._jac_groups: list[dict[int, tuple[np.ndarray, np.ndarray]]] = []
        self._jac_export: list[dict[int, int]] = []
        for p in range(nparts):
            jent_p = np.flatnonzero(jent_owner == p)
            self._jac_slots.append(slot_local[plan.scatter[jent_p]])
            src = jent_src[jent_p]
            srcpos = elem_local_pos[jent_p // k2] * k2 + jent_p % k2
            groups, export = {}, {}
            for q in np.unique(src):
                sel = np.flatnonzero(src == q)
                groups[int(q)] = (sel, srcpos[sel])
                if q != p:
                    # protocol: one value per distinct ghost CSR slot
                    export[int(q)] = int(len(np.unique(plan.scatter[jent_p[sel]]))) * _FP64
            self._jac_groups.append(groups)
            self._jac_export.append(export)

        # ---- ghost-refresh routes: dofs each rank's elements read but
        # does not own, grouped by owner (the Import before a sweep)
        self._gather_ghost: list[dict[int, int]] = []
        for p in range(nparts):
            local_dofs = np.unique(plan.elem_dofs[self._owned_elems[p]])
            ghosts = local_dofs[dof_owner[local_dofs] != p]
            owners, counts = np.unique(dof_owner[ghosts], return_counts=True)
            self._gather_ghost.append({int(q): int(c) for q, c in zip(owners, counts)})

    # -- per-rank views ------------------------------------------------
    def owned_elems(self, part: int) -> np.ndarray:
        """Global 3-D element ids rank ``part`` evaluates (ascending)."""
        return self._owned_elems[part]

    def owned_dofs(self, part: int) -> np.ndarray:
        """Global dof ids (matrix rows) owned by ``part`` (ascending)."""
        return self._owned_dofs[part]

    def column_map(self, part: int) -> np.ndarray:
        """Global dofs backing rank ``part``'s local matrix columns."""
        return self._colmap[part]

    def imbalance(self) -> float:
        """max/mean owned 3-D elements (slowest rank sets the step time)."""
        counts = np.array([len(e) for e in self._owned_elems], dtype=np.float64)
        return float(counts.max() / max(1.0, counts.mean()))

    # -- exchanges -----------------------------------------------------
    def record_ghost_refresh(self) -> None:
        """Meter one ghost-dof refresh (Import) before an evaluation sweep."""
        tr = get_tracer()
        with tr.span("halo.ghost_refresh", cat="halo", nparts=self.nparts):
            for p in range(self.nparts):
                for q, count in self._gather_ghost[p].items():
                    nbytes = count * _FP64
                    if tr.recording:
                        with tr.span(
                            "halo.recv", cat="halo", rank=p, src=int(q), bytes=nbytes
                        ):
                            self.meter.record("vector_gather", q, p, nbytes)
                    else:
                        self.meter.record("vector_gather", q, p, nbytes)
            self.meter.count_event("gather")

    def _stream(self, groups, length, rank_blocks) -> np.ndarray:
        """Assemble one owner's entry stream from the sources' blocks."""
        stream = np.empty(length)
        for q, (sel, srcpos) in groups.items():
            stream[sel] = rank_blocks[q].ravel()[srcpos]
        return stream

    def assemble_residual(self, rank_blocks: list[np.ndarray]) -> np.ndarray:
        """Additive residual scatter: rank blocks -> global dof vector.

        ``rank_blocks[p]`` has shape ``(len(owned_elems(p)), k)``.  Every
        owner sums its rows' entries in serial entry order, so the result
        is bitwise equal to ``plan.assemble_vector`` on the unpartitioned
        block array.  Ghost exports are metered per neighbor.
        """
        tr = get_tracer()
        f = np.zeros(self.num_dofs)
        with tr.span("spmd.assemble_residual", cat="halo", nparts=self.nparts):
            for p in range(self.nparts):
                for q, nbytes in self._res_export[p].items():
                    if tr.recording:
                        with tr.span(
                            "halo.send", cat="halo", rank=int(q), dst=p, bytes=nbytes
                        ):
                            self.meter.record("vector_scatter", q, p, nbytes)
                    else:
                        self.meter.record("vector_scatter", q, p, nbytes)
                # rank-local scatter work: the compute side of the
                # halo/compute critical-path split
                with (
                    tr.span("rank.assemble", cat="compute", rank=p, phase="residual")
                    if tr.recording
                    else nullcontext()
                ):
                    stream = self._stream(self._res_groups[p], len(self._res_rows[p]), rank_blocks)
                    f[self._owned_dofs[p]] = np.bincount(
                        self._res_rows[p], weights=stream, minlength=len(self._owned_dofs[p])
                    )
            self.meter.count_event("residual_exchange")
        return f

    def assemble_jacobian(
        self, rank_blocks: list[np.ndarray], diag_scale: float | None = None
    ) -> "DistributedMatrix":
        """Row-partitioned Jacobian from per-rank ``(ne_p, k, k)`` blocks.

        Each owner's CSR data is bitwise equal to the serial plan's data
        restricted to its rows (same per-slot summation order, same
        Dirichlet masking).  Ghost-row exports are metered per neighbor.
        """
        tr = get_tracer()
        data_parts = []
        with tr.span("spmd.assemble_jacobian", cat="halo", nparts=self.nparts):
            for p in range(self.nparts):
                for q, nbytes in self._jac_export[p].items():
                    if tr.recording:
                        with tr.span(
                            "halo.send", cat="halo", rank=int(q), dst=p, bytes=nbytes
                        ):
                            self.meter.record("matrix_export", q, p, nbytes)
                    else:
                        self.meter.record("matrix_export", q, p, nbytes)
                with (
                    tr.span("rank.assemble", cat="compute", rank=p, phase="jacobian")
                    if tr.recording
                    else nullcontext()
                ):
                    stream = self._stream(self._jac_groups[p], len(self._jac_slots[p]), rank_blocks)
                    data = np.bincount(
                        self._jac_slots[p], weights=stream, minlength=len(self._gslots[p])
                    )
                    if diag_scale is not None:
                        if self._bc_clear[p] is None:
                            raise ValueError("plan was built without Dirichlet dofs")
                        if diag_scale <= 0.0:
                            raise ValueError("diag_scale must be positive")
                        data[self._bc_clear[p]] = 0.0
                        data[self._bc_diag[p]] = diag_scale
                    data_parts.append(data)
            self.meter.count_event("jacobian_exchange")
        return DistributedMatrix(self, data_parts)


class DistributedMatrix:
    """Row-partitioned CSR operator with metered ghost-column refresh.

    ``matvec`` runs one rank-local SpMV per rank (owned rows x local
    column map) and places the row results -- no cross-rank sums -- so
    the product is bitwise equal to the serial SpMV.  ``gather_global``
    reconstructs the serial :class:`CsrMatrix` (for the replicated
    preconditioner setup), metering the operator gather.
    """

    def __init__(self, assembly: DistributedStokesAssembly, data_parts: list[np.ndarray]):
        self.assembly = assembly
        self.data_parts = data_parts
        n = assembly.num_dofs
        self.shape = (n, n)
        self._local: list[CsrMatrix] | None = None
        self._global: CsrMatrix | None = None

    @property
    def nparts(self) -> int:
        return self.assembly.nparts

    def local_matrix(self, part: int) -> CsrMatrix:
        """Rank ``part``'s (owned rows x column map) CSR block."""
        if self._local is None:
            a = self.assembly
            self._local = [
                CsrMatrix(
                    (len(a._owned_dofs[p]), len(a._colmap[p])),
                    a._indptr[p],
                    a._indices[p],
                    self.data_parts[p],
                )
                for p in range(a.nparts)
            ]
        return self._local[part]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """y = A @ x with a metered ghost-column refresh per rank."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"matvec expects a vector of length {self.shape[1]}")
        a = self.assembly
        y = np.zeros(self.shape[0])
        tr = get_tracer()
        # the SpMV is GMRES's inner loop: keep the untraced path free of
        # span bookkeeping beyond the single enclosing handle
        with tr.span("spmd.spmv", cat="halo", nparts=a.nparts):
            for p in range(a.nparts):
                for q, count in a._spmv_ghost[p].items():
                    nbytes = count * _FP64
                    if tr.recording:
                        with tr.span(
                            "halo.recv", cat="halo", rank=p, src=int(q), bytes=nbytes
                        ):
                            a.meter.record("vector_gather", q, p, nbytes)
                    else:
                        a.meter.record("vector_gather", q, p, nbytes)
                xl = x[a._colmap[p]]
                plane = fault_plane()
                if plane.active:
                    self._refresh_ghosts_checked(p, x, xl, plane)
                if tr.recording:
                    # rank-local SpMV, priced so the critical-path pass
                    # and roofline attribution see per-rank compute
                    lm = self.local_matrix(p)
                    with tr.span(
                        "rank.spmv", cat="compute", rank=p,
                        bytes=spmv_bytes(lm.shape[0], lm.nnz),
                        flops=spmv_flops(lm.nnz),
                    ):
                        y[a._owned_dofs[p]] = lm.matvec(xl)
                else:
                    y[a._owned_dofs[p]] = self.local_matrix(p).matvec(xl)
            a.meter.count_event("spmv")
        return y

    def _refresh_ghosts_checked(self, part: int, x, xl, plane) -> None:
        """Armed-plane SpMV ghost refresh with checksum verification.

        Each neighbor's ghost-column payload routes through the fault
        plane and is verified against the owner's CRC32; a mismatch
        re-fetches (and re-meters) the message up to the policy's retry
        budget, then raises :class:`HaloCorruptionError`.  On success the
        verified values land in ``xl`` -- corrupted ghosts never reach
        the rank-local SpMV.
        """
        a = self.assembly
        policy, log = plane.policy, plane.log
        for q, idx in a._spmv_ghost_idx[part].items():
            clean = np.ascontiguousarray(xl[idx])
            expected = payload_checksum(clean)
            payload = plane.perturb(
                "halo.payload", clean, rank=part, src=int(q), channel="spmv"
            )
            attempt = 0
            while not verify_payload(payload, expected):
                attempt += 1
                log.record(
                    "detection", "halo_checksum_mismatch", "halo.payload",
                    rank=part, src=int(q), channel="spmv", attempt=attempt,
                )
                if attempt > policy.max_retries:
                    raise HaloCorruptionError(
                        f"SpMV ghost payload from rank {q} to rank {part} "
                        f"failed checksum verification {attempt} times"
                    )
                a.meter.record("vector_gather", int(q), part, len(idx) * _FP64)
                a.meter.count_event("gather_retry")
                payload = plane.perturb(
                    "halo.payload",
                    np.ascontiguousarray(x[a._colmap[part][idx]]),
                    rank=part, src=int(q), channel="spmv", retry=attempt,
                )
            if attempt > 0:
                log.record(
                    "recovery", "halo_refetch", "halo.payload",
                    rank=part, src=int(q), channel="spmv", attempts=attempt,
                )
            xl[idx] = payload

    def __matmul__(self, x):
        return self.matvec(x)

    def gather_global(self) -> CsrMatrix:
        """Serial-identical global CSR (each rank ships its rows' values).

        Used for the replicated preconditioner setup; bytes are metered
        once per matrix on the ``matrix_gather`` channel (the fixed CSR
        structure is exchanged once per problem, only values move per
        Newton step).
        """
        a = self.assembly
        if self._global is None:
            data = np.empty(a.plan.nnz)
            for p in range(a.nparts):
                data[a._gslots[p]] = self.data_parts[p]
                if p != 0:
                    a.meter.record("matrix_gather", p, 0, len(a._gslots[p]) * _FP64)
            a.meter.count_event("matrix_gather")
            self._global = CsrMatrix(
                (a.num_dofs, a.num_dofs), a.plan.indptr, a.plan.indices, data
            )
        return self._global
