"""Gauss quadrature rules for the reference elements.

The paper's hexahedral elements use the 2x2x2 tensor Gauss rule
(``numQPs == 8``); wedges use (triangle rule) x (1-D Gauss).
"""

from __future__ import annotations

import numpy as np

__all__ = ["gauss_legendre_1d", "triangle_rule", "quadrature_rule"]


def gauss_legendre_1d(n: int) -> tuple[np.ndarray, np.ndarray]:
    """n-point Gauss-Legendre rule on [-1, 1] (exact to degree 2n-1)."""
    if n <= 0:
        raise ValueError("quadrature order must be positive")
    pts, wts = np.polynomial.legendre.leggauss(n)
    return pts, wts


#: Symmetric triangle rules on the unit simplex: degree -> (points, weights).
_TRI_RULES = {
    1: (np.array([[1 / 3, 1 / 3]]), np.array([0.5])),
    2: (
        np.array([[1 / 6, 1 / 6], [2 / 3, 1 / 6], [1 / 6, 2 / 3]]),
        np.full(3, 1.0 / 6.0),
    ),
    3: (
        np.array(
            [[1 / 3, 1 / 3], [0.6, 0.2], [0.2, 0.6], [0.2, 0.2]]
        ),
        np.array([-27.0, 25.0, 25.0, 25.0]) / 96.0,
    ),
}


def triangle_rule(degree: int) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric Gauss rule on the unit triangle exact to ``degree``."""
    for d in sorted(_TRI_RULES):
        if d >= degree:
            return _TRI_RULES[d]
    raise ValueError(f"no triangle rule of degree {degree} available")


def _tensor2(p1, w1):
    """1-D rule -> tensor rule on [-1,1]^2."""
    P = np.array([(a, b) for a in p1 for b in p1])
    W = np.array([wa * wb for wa in w1 for wb in w1])
    return P, W


def _tensor3(p1, w1):
    P = np.array([(a, b, c) for a in p1 for b in p1 for c in p1])
    W = np.array([wa * wb * wc for wa in w1 for wb in w1 for wc in w1])
    return P, W


def quadrature_rule(elem_type: str, order: int = 2) -> tuple[np.ndarray, np.ndarray]:
    """Quadrature points and weights for a reference element.

    ``order`` is the number of 1-D Gauss points per tensor direction (and
    the polynomial degree for triangle factors).  The default ``order=2``
    gives the 8-point hex rule of the paper.
    """
    if elem_type == "quad4":
        return _tensor2(*gauss_legendre_1d(order))
    if elem_type == "hex8":
        return _tensor3(*gauss_legendre_1d(order))
    if elem_type == "tri3":
        return triangle_rule(order)
    if elem_type == "wedge6":
        tp, tw = triangle_rule(order)
        lp, lw = gauss_legendre_1d(order)
        P = np.array([(a, b, c) for (a, b) in tp for c in lp])
        W = np.array([wt * wl for wt in tw for wl in lw])
        return P, W
    raise ValueError(f"unknown element type {elem_type!r}")
