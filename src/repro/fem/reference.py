"""Reference elements: shape functions and gradients, vectorized.

Low-order nodal elements as used by MALI: bilinear quads and linear
triangles in the footprint, trilinear hexahedra and linear wedges
(prisms) in the extruded mesh.  ``shape``/``grad`` accept an ``(npts,
dim)`` array of reference coordinates and return ``(npts, nn)`` /
``(npts, nn, dim)`` arrays.

Reference domains: quad/hex use ``[-1, 1]^d``; triangle uses the unit
simplex; the wedge is (unit triangle) x ``[-1, 1]``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Quad4", "Tri3", "Hex8", "Wedge6", "reference_element"]


class _ReferenceElement:
    name: str
    dim: int
    num_nodes: int
    #: reference coordinates of the nodes, shape (num_nodes, dim)
    nodes: np.ndarray

    @classmethod
    def shape(cls, xi: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @classmethod
    def grad(cls, xi: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @classmethod
    def _check(cls, xi) -> np.ndarray:
        xi = np.atleast_2d(np.asarray(xi, dtype=np.float64))
        if xi.shape[1] != cls.dim:
            raise ValueError(f"{cls.name}: reference points must have dim {cls.dim}")
        return xi


class Quad4(_ReferenceElement):
    """Bilinear quadrilateral on [-1,1]^2, CCW node order."""

    name = "quad4"
    dim = 2
    num_nodes = 4
    nodes = np.array([[-1.0, -1.0], [1.0, -1.0], [1.0, 1.0], [-1.0, 1.0]])

    @classmethod
    def shape(cls, xi):
        xi = cls._check(xi)
        s, t = xi[:, 0], xi[:, 1]
        return 0.25 * np.stack(
            [(1 - s) * (1 - t), (1 + s) * (1 - t), (1 + s) * (1 + t), (1 - s) * (1 + t)],
            axis=1,
        )

    @classmethod
    def grad(cls, xi):
        xi = cls._check(xi)
        s, t = xi[:, 0], xi[:, 1]
        g = np.empty((len(xi), 4, 2))
        g[:, 0] = np.stack([-(1 - t), -(1 - s)], axis=1) * 0.25
        g[:, 1] = np.stack([(1 - t), -(1 + s)], axis=1) * 0.25
        g[:, 2] = np.stack([(1 + t), (1 + s)], axis=1) * 0.25
        g[:, 3] = np.stack([-(1 + t), (1 - s)], axis=1) * 0.25
        return g


class Tri3(_ReferenceElement):
    """Linear triangle on the unit simplex."""

    name = "tri3"
    dim = 2
    num_nodes = 3
    nodes = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])

    @classmethod
    def shape(cls, xi):
        xi = cls._check(xi)
        s, t = xi[:, 0], xi[:, 1]
        return np.stack([1.0 - s - t, s, t], axis=1)

    @classmethod
    def grad(cls, xi):
        xi = cls._check(xi)
        g = np.empty((len(xi), 3, 2))
        g[:, 0] = (-1.0, -1.0)
        g[:, 1] = (1.0, 0.0)
        g[:, 2] = (0.0, 1.0)
        return g


class Hex8(_ReferenceElement):
    """Trilinear hexahedron on [-1,1]^3.

    Node order matches the extruded mesh: footprint quad at the bottom
    face (zeta=-1), then the same quad at the top face (zeta=+1).
    """

    name = "hex8"
    dim = 3
    num_nodes = 8
    nodes = np.array(
        [
            [-1.0, -1.0, -1.0],
            [1.0, -1.0, -1.0],
            [1.0, 1.0, -1.0],
            [-1.0, 1.0, -1.0],
            [-1.0, -1.0, 1.0],
            [1.0, -1.0, 1.0],
            [1.0, 1.0, 1.0],
            [-1.0, 1.0, 1.0],
        ]
    )

    @classmethod
    def shape(cls, xi):
        xi = cls._check(xi)
        s, t, u = xi[:, 0], xi[:, 1], xi[:, 2]
        q = Quad4.shape(xi[:, :2])
        lo, hi = 0.5 * (1 - u), 0.5 * (1 + u)
        return np.concatenate([q * lo[:, None], q * hi[:, None]], axis=1)

    @classmethod
    def grad(cls, xi):
        xi = cls._check(xi)
        u = xi[:, 2]
        q = Quad4.shape(xi[:, :2])
        qg = Quad4.grad(xi[:, :2])
        lo, hi = 0.5 * (1 - u), 0.5 * (1 + u)
        g = np.empty((len(xi), 8, 3))
        g[:, :4, :2] = qg * lo[:, None, None]
        g[:, 4:, :2] = qg * hi[:, None, None]
        g[:, :4, 2] = -0.5 * q
        g[:, 4:, 2] = 0.5 * q
        return g


class Wedge6(_ReferenceElement):
    """Linear wedge (prism): unit triangle x [-1,1], bottom then top."""

    name = "wedge6"
    dim = 3
    num_nodes = 6
    nodes = np.concatenate(
        [
            np.concatenate([Tri3.nodes, -np.ones((3, 1))], axis=1),
            np.concatenate([Tri3.nodes, np.ones((3, 1))], axis=1),
        ]
    )

    @classmethod
    def shape(cls, xi):
        xi = cls._check(xi)
        u = xi[:, 2]
        t = Tri3.shape(xi[:, :2])
        lo, hi = 0.5 * (1 - u), 0.5 * (1 + u)
        return np.concatenate([t * lo[:, None], t * hi[:, None]], axis=1)

    @classmethod
    def grad(cls, xi):
        xi = cls._check(xi)
        u = xi[:, 2]
        t = Tri3.shape(xi[:, :2])
        tg = Tri3.grad(xi[:, :2])
        lo, hi = 0.5 * (1 - u), 0.5 * (1 + u)
        g = np.empty((len(xi), 6, 3))
        g[:, :3, :2] = tg * lo[:, None, None]
        g[:, 3:, :2] = tg * hi[:, None, None]
        g[:, :3, 2] = -0.5 * t
        g[:, 3:, 2] = 0.5 * t
        return g


_REGISTRY = {cls.name: cls for cls in (Quad4, Tri3, Hex8, Wedge6)}


def reference_element(name: str):
    """Look up a reference element by name (``quad4``/``tri3``/``hex8``/``wedge6``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown reference element {name!r}") from None
