"""Degree-of-freedom maps for vector-valued nodal unknowns.

The FO Stokes solve has two velocity components per node; dofs are
numbered ``node * ndof_per_node + component`` (interleaved), which keeps
each node's components adjacent -- the layout Albany/Trilinos use and
the one the vertical-line smoother relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DofMap"]


@dataclass
class DofMap:
    """Maps (node, component) to global dof ids and elements to dof lists."""

    num_nodes: int
    ndof_per_node: int
    elems: np.ndarray  # (nc, nn) node connectivity

    def __post_init__(self):
        self.elems = np.asarray(self.elems, dtype=np.int64)
        if self.elems.size and self.elems.max() >= self.num_nodes:
            raise ValueError("connectivity references nodes beyond num_nodes")
        self._elem_dofs = None  # built lazily; connectivity is immutable

    @property
    def num_dofs(self) -> int:
        return self.num_nodes * self.ndof_per_node

    @property
    def dofs_per_elem(self) -> int:
        return self.elems.shape[1] * self.ndof_per_node

    def dof(self, node, comp):
        """Global dof id(s) of (node, component)."""
        return np.asarray(node) * self.ndof_per_node + comp

    def node_of(self, dof):
        return np.asarray(dof) // self.ndof_per_node

    def comp_of(self, dof):
        return np.asarray(dof) % self.ndof_per_node

    def elem_dofs(self) -> np.ndarray:
        """Per-element dof lists, shape (nc, nn * ndof).

        Local ordering is node-major: ``(node0, c0), (node0, c1), (node1,
        c0) ...`` matching the 16-derivative SFad layout of the Jacobian
        kernel (8 nodes x 2 components).  The array is built once and
        cached: ``gather`` runs on every evaluator-DAG sweep, so
        rebuilding the ``(nc, k)`` map per call is pure hot-path waste.
        """
        if self._elem_dofs is None:
            nd = self.ndof_per_node
            base = self.elems[:, :, None] * nd  # (nc, nn, 1)
            comps = np.arange(nd)[None, None, :]
            self._elem_dofs = (base + comps).reshape(len(self.elems), -1)
        return self._elem_dofs

    def gather(self, solution: np.ndarray) -> np.ndarray:
        """Per-element local solution blocks, shape (nc, nn * ndof)."""
        solution = np.asarray(solution)
        if solution.shape != (self.num_dofs,):
            raise ValueError(f"solution must have {self.num_dofs} dofs")
        return solution[self.elem_dofs()]

    def nodal_view(self, solution: np.ndarray) -> np.ndarray:
        """Reshape a dof vector to ``(num_nodes, ndof_per_node)`` (a view)."""
        return np.asarray(solution).reshape(self.num_nodes, self.ndof_per_node)
