"""Vectorized local-to-global FE assembly (Albany's scatter phase).

``assemble_matrix`` turns the per-element dense Jacobian blocks produced
by the SFad kernel into a global CSR matrix; ``assemble_vector`` scatters
per-element residual blocks.  ``apply_dirichlet`` imposes strong boundary
conditions symmetrically-enough for a nonsymmetric solve (row
replacement with unit diagonal).
"""

from __future__ import annotations

import numpy as np

from repro.fem.dofmap import DofMap
from repro.fem.sparse import CsrMatrix

__all__ = ["build_sparsity", "assemble_matrix", "assemble_vector", "apply_dirichlet"]


def build_sparsity(dofmap: DofMap) -> tuple[np.ndarray, np.ndarray]:
    """COO (rows, cols) pattern of the element-coupled dof graph.

    Entries are repeated per element pair; :meth:`CsrMatrix.from_coo`
    collapses duplicates during assembly.
    """
    ed = dofmap.elem_dofs()  # (nc, k)
    k = ed.shape[1]
    rows = np.repeat(ed, k, axis=1).ravel()
    cols = np.tile(ed, (1, k)).ravel()
    return rows, cols


def assemble_matrix(dofmap: DofMap, local_jac: np.ndarray) -> CsrMatrix:
    """Assemble per-element dense blocks into a global CSR matrix.

    ``local_jac`` has shape ``(nc, k, k)`` where ``local_jac[c, i, j]`` is
    d(residual of local dof i)/d(local dof j) -- exactly the layout the
    SFad evaluation produces.
    """
    ed = dofmap.elem_dofs()
    nc, k = ed.shape
    if local_jac.shape != (nc, k, k):
        raise ValueError(f"local Jacobian must have shape {(nc, k, k)}, got {local_jac.shape}")
    rows = np.repeat(ed, k, axis=1).ravel()
    cols = np.tile(ed, (1, k)).ravel()
    n = dofmap.num_dofs
    return CsrMatrix.from_coo(rows, cols, local_jac.ravel(), (n, n))


def assemble_vector(dofmap: DofMap, local_res: np.ndarray) -> np.ndarray:
    """Scatter-add per-element residual blocks into a global dof vector."""
    ed = dofmap.elem_dofs()
    if local_res.shape != ed.shape:
        raise ValueError(f"local residual must have shape {ed.shape}, got {local_res.shape}")
    out = np.zeros(dofmap.num_dofs)
    np.add.at(out, ed.ravel(), local_res.ravel())
    return out


def apply_dirichlet(
    matrix: CsrMatrix,
    rhs: np.ndarray,
    bc_dofs: np.ndarray,
    bc_values: np.ndarray | float = 0.0,
    diag_scale: float = 1.0,
) -> tuple[CsrMatrix, np.ndarray]:
    """Impose ``x[bc_dofs] = bc_values`` by row replacement.

    Rows of constrained dofs are cleared and given diagonal
    ``diag_scale``; the right-hand side receives ``diag_scale *
    bc_values``.  Matching ``diag_scale`` to the magnitude of the
    physics rows keeps algebraic coarsening well conditioned (a unit
    diagonal next to O(1e13) physics entries poisons aggregation-based
    multigrid).  For the Newton update the prescribed increment is zero,
    so column elimination is not required -- constrained unknowns
    decouple.
    """
    if diag_scale <= 0.0:
        raise ValueError("diag_scale must be positive")
    bc_dofs = np.asarray(bc_dofs, dtype=np.int64)
    if bc_dofs.size and (bc_dofs.min() < 0 or bc_dofs.max() >= matrix.shape[0]):
        raise ValueError("Dirichlet dof out of range")
    bc_values = np.broadcast_to(np.asarray(bc_values, dtype=np.float64), bc_dofs.shape)

    is_bc = np.zeros(matrix.shape[0], dtype=bool)
    is_bc[bc_dofs] = True

    rows = np.repeat(np.arange(matrix.shape[0]), np.diff(matrix.indptr))
    data = matrix.data.copy()
    # clear constrained rows, set unit diagonal
    clear = is_bc[rows]
    data[clear] = 0.0
    diag_hit = clear & (matrix.indices == rows)
    data[diag_hit] = diag_scale

    out_rhs = np.array(rhs, dtype=np.float64)
    out_rhs[bc_dofs] = diag_scale * bc_values
    return CsrMatrix(matrix.shape, matrix.indptr.copy(), matrix.indices.copy(), data), out_rhs
