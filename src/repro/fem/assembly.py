"""Vectorized local-to-global FE assembly (Albany's scatter phase).

``assemble_matrix`` turns the per-element dense Jacobian blocks produced
by the SFad kernel into a global CSR matrix; ``assemble_vector`` scatters
per-element residual blocks.  ``apply_dirichlet`` imposes strong boundary
conditions symmetrically-enough for a nonsymmetric solve (row
replacement with unit diagonal).

:class:`AssemblyPlan` splits assembly into a symbolic phase (done once
per problem: sort/dedup the COO pattern, build the CSR structure and the
COO->CSR scatter permutation, precompute Dirichlet masks) and a numeric
phase (done every Newton step: a pure scatter-add into a preallocated
``data`` array).  This mirrors how Albany/Tpetra reuse a fixed crs graph
across nonlinear iterations instead of re-sorting the full ``nc * k^2``
triplet list each time.
"""

from __future__ import annotations

import numpy as np

from repro.fem.dofmap import DofMap
from repro.fem.sparse import CsrMatrix

__all__ = [
    "build_sparsity",
    "assemble_matrix",
    "assemble_vector",
    "apply_dirichlet",
    "AssemblyPlan",
]


def build_sparsity(dofmap: DofMap) -> tuple[np.ndarray, np.ndarray]:
    """COO (rows, cols) pattern of the element-coupled dof graph.

    Entries are repeated per element pair; :meth:`CsrMatrix.from_coo`
    collapses duplicates during assembly.
    """
    ed = dofmap.elem_dofs()  # (nc, k)
    k = ed.shape[1]
    rows = np.repeat(ed, k, axis=1).ravel()
    cols = np.tile(ed, (1, k)).ravel()
    return rows, cols


class AssemblyPlan:
    """Cached symbolic assembly for a fixed dof map (and optional BCs).

    Built once per problem; every subsequent assembly is a numeric fill:

    * ``elem_dofs`` -- per-element global dof lists, gathered once;
    * ``scatter`` -- permutation mapping each entry of the raveled
      ``(nc, k, k)`` local-Jacobian array to its CSR ``data`` slot
      (duplicates map to the same slot and are summed);
    * ``indptr``/``indices`` -- the fixed CSR structure, shared by every
      matrix the plan assembles;
    * ``bc_clear``/``bc_diag`` -- masks over ``data`` marking Dirichlet
      rows to clear and their diagonal slots.
    """

    def __init__(self, dofmap: DofMap, bc_dofs: np.ndarray | None = None):
        ed = dofmap.elem_dofs()
        nc, k = ed.shape
        n = dofmap.num_dofs
        self.dofmap = dofmap
        self.elem_dofs = ed
        self.num_dofs = n
        self.block_shape = (nc, k, k)

        rows = np.repeat(ed, k, axis=1).ravel()
        cols = np.tile(ed, (1, k)).ravel()
        order = np.lexsort((cols, rows))
        rs, cs = rows[order], cols[order]
        new = np.empty(len(rs), dtype=bool)
        new[0] = True
        new[1:] = (rs[1:] != rs[:-1]) | (cs[1:] != cs[:-1])
        csr_slot_of_sorted = np.cumsum(new) - 1
        self.nnz = int(csr_slot_of_sorted[-1]) + 1
        self.scatter = np.empty(len(rows), dtype=np.int64)
        self.scatter[order] = csr_slot_of_sorted

        unique_rows = rs[new]
        self.indices = np.ascontiguousarray(cs[new])
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, unique_rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        self.indptr = indptr

        self.bc_dofs = None
        self.bc_clear = None
        self.bc_diag = None
        if bc_dofs is not None:
            bc_dofs = np.asarray(bc_dofs, dtype=np.int64)
            if bc_dofs.size and (bc_dofs.min() < 0 or bc_dofs.max() >= n):
                raise ValueError("Dirichlet dof out of range")
            is_bc = np.zeros(n, dtype=bool)
            is_bc[bc_dofs] = True
            row_of_slot = np.repeat(np.arange(n), np.diff(indptr))
            self.bc_dofs = bc_dofs
            self.bc_clear = is_bc[row_of_slot]
            self.bc_diag = self.bc_clear & (self.indices == row_of_slot)

        #: numeric fills performed so far (instrumentation for tests/benches)
        self.num_matrix_fills = 0
        #: matrix-free operators wrapped so far (the matrix-free mode's
        #: analogue of ``num_matrix_fills``)
        self.num_operator_wraps = 0

    # ------------------------------------------------------------------
    def assemble_matrix(self, local_jac: np.ndarray, diag_scale: float | None = None) -> CsrMatrix:
        """Numeric fill: scatter-add local blocks into a fresh ``data`` array.

        With ``diag_scale`` (requires the plan's ``bc_dofs``), Dirichlet
        rows are cleared and given that diagonal in the same pass --
        no per-step re-sort, no structure copies.
        """
        if local_jac.shape != self.block_shape:
            raise ValueError(
                f"local Jacobian must have shape {self.block_shape}, got {local_jac.shape}"
            )
        data = np.bincount(self.scatter, weights=local_jac.ravel(), minlength=self.nnz)
        if diag_scale is not None:
            if self.bc_clear is None:
                raise ValueError("plan was built without Dirichlet dofs")
            if diag_scale <= 0.0:
                raise ValueError("diag_scale must be positive")
            data[self.bc_clear] = 0.0
            data[self.bc_diag] = diag_scale
        self.num_matrix_fills += 1
        return CsrMatrix((self.num_dofs, self.num_dofs), self.indptr, self.indices, data)

    def matrix_free_operator(self, local_jac: np.ndarray, diag_scale: float | None = None):
        """Wrap local blocks as a matrix-free operator (no CSR fill).

        The matrix-free counterpart of :meth:`assemble_matrix`: the same
        ``(nc, k, k)`` SFad blocks, the same Dirichlet row replacement,
        but the global matrix is never formed -- GMRES consumes the
        returned :class:`repro.fem.matfree.MatrixFreeJacobian` through
        its ``matvec``.  The plan's cached connectivity is shared, so
        wrapping is O(1) in the problem size; every matvec is a pure
        numeric sweep over the element blocks.
        """
        from repro.fem.matfree import MatrixFreeJacobian

        if local_jac.shape != self.block_shape:
            raise ValueError(
                f"local Jacobian must have shape {self.block_shape}, got {local_jac.shape}"
            )
        if diag_scale is not None and self.bc_dofs is None:
            raise ValueError("plan was built without Dirichlet dofs")
        op = MatrixFreeJacobian(
            self.elem_dofs,
            local_jac,
            self.num_dofs,
            bc_dofs=self.bc_dofs if diag_scale is not None else None,
            diag_scale=1.0 if diag_scale is None else diag_scale,
        )
        self.num_operator_wraps += 1
        return op

    def assemble_vector(self, local_res: np.ndarray) -> np.ndarray:
        """Scatter-add per-element residual blocks into a global dof vector."""
        if local_res.shape != self.elem_dofs.shape:
            raise ValueError(
                f"local residual must have shape {self.elem_dofs.shape}, got {local_res.shape}"
            )
        return np.bincount(
            self.elem_dofs.ravel(), weights=local_res.ravel(), minlength=self.num_dofs
        )


def assemble_matrix(dofmap: DofMap, local_jac: np.ndarray) -> CsrMatrix:
    """Assemble per-element dense blocks into a global CSR matrix.

    ``local_jac`` has shape ``(nc, k, k)`` where ``local_jac[c, i, j]`` is
    d(residual of local dof i)/d(local dof j) -- exactly the layout the
    SFad evaluation produces.  One-shot path; for repeated assemblies on
    a fixed dof map use :class:`AssemblyPlan`.
    """
    ed = dofmap.elem_dofs()
    nc, k = ed.shape
    if local_jac.shape != (nc, k, k):
        raise ValueError(f"local Jacobian must have shape {(nc, k, k)}, got {local_jac.shape}")
    rows = np.repeat(ed, k, axis=1).ravel()
    cols = np.tile(ed, (1, k)).ravel()
    n = dofmap.num_dofs
    return CsrMatrix.from_coo(rows, cols, local_jac.ravel(), (n, n))


def assemble_vector(dofmap: DofMap, local_res: np.ndarray) -> np.ndarray:
    """Scatter-add per-element residual blocks into a global dof vector."""
    ed = dofmap.elem_dofs()
    if local_res.shape != ed.shape:
        raise ValueError(f"local residual must have shape {ed.shape}, got {local_res.shape}")
    out = np.zeros(dofmap.num_dofs)
    np.add.at(out, ed.ravel(), local_res.ravel())
    return out


def apply_dirichlet(
    matrix: CsrMatrix,
    rhs: np.ndarray,
    bc_dofs: np.ndarray,
    bc_values: np.ndarray | float = 0.0,
    diag_scale: float = 1.0,
) -> tuple[CsrMatrix, np.ndarray]:
    """Impose ``x[bc_dofs] = bc_values`` by row replacement.

    Rows of constrained dofs are cleared and given diagonal
    ``diag_scale``; the right-hand side receives ``diag_scale *
    bc_values``.  Matching ``diag_scale`` to the magnitude of the
    physics rows keeps algebraic coarsening well conditioned (a unit
    diagonal next to O(1e13) physics entries poisons aggregation-based
    multigrid).  For the Newton update the prescribed increment is zero,
    so column elimination is not required -- constrained unknowns
    decouple.
    """
    if diag_scale <= 0.0:
        raise ValueError("diag_scale must be positive")
    bc_dofs = np.asarray(bc_dofs, dtype=np.int64)
    if bc_dofs.size and (bc_dofs.min() < 0 or bc_dofs.max() >= matrix.shape[0]):
        raise ValueError("Dirichlet dof out of range")
    bc_values = np.broadcast_to(np.asarray(bc_values, dtype=np.float64), bc_dofs.shape)

    is_bc = np.zeros(matrix.shape[0], dtype=bool)
    is_bc[bc_dofs] = True

    rows = np.repeat(np.arange(matrix.shape[0]), np.diff(matrix.indptr))
    data = matrix.data.copy()
    # clear constrained rows, set unit diagonal
    clear = is_bc[rows]
    data[clear] = 0.0
    diag_hit = clear & (matrix.indices == rows)
    data[diag_hit] = diag_scale

    out_rhs = np.array(rhs, dtype=np.float64)
    out_rhs[bc_dofs] = diag_scale * bc_values
    return CsrMatrix(matrix.shape, matrix.indptr.copy(), matrix.indices.copy(), data), out_rhs
