"""Matrix-free Jacobian operator (element-by-element ``J @ v``).

GMRES never needs the assembled CRS Jacobian -- only its action on a
vector.  The SFad jacobian-mode sweep already produces the per-element
dense blocks ``local_jac[c, i, j] = d r_i / d u_j``; assembling them
into CSR and then streaming values + column indices on every matvec is
pure data-movement overhead.  :class:`MatrixFreeJacobian` instead keeps
the element blocks and applies them directly:

    gather   xe = x[elem_dofs]                  (nc, k)
    apply    ye = local_jac @ xe                (nc, k)  batched GEMV
    scatter  y  = sum-into-global(ye)           (n,)
    bc       y[bc_dofs] = diag_scale * x[bc_dofs]

The symbolic phase (connectivity, Dirichlet mask) is cached by the
owning :class:`repro.fem.assembly.AssemblyPlan`, so each matvec is a
pure numeric sweep -- no sorting, no structure rebuild, no ``nnz``
array.  The Dirichlet step reproduces the assembled row-replacement
(rows cleared, ``diag_scale`` on the diagonal) exactly: cleared rows
contribute ``diag_scale * x[bc]`` and nothing else.

The operator also exposes what MDSC preconditioning needs without a
matrix: ``diagonal()`` (point Jacobi), ``column_blocks()`` (the
vertical-line blocks, extracted per-element instead of from CSR), and
``collapse()`` (the vertically-collapsed membrane coarse operator).
"""

from __future__ import annotations

import numpy as np

from repro.fem.sparse import CsrMatrix

__all__ = ["MatrixFreeJacobian", "OperatorModeError"]


class OperatorModeError(TypeError):
    """A solver component received an operator it cannot consume.

    Raised with an actionable message naming ``operator_mode`` instead
    of the opaque ``AttributeError`` a CSR-only code path would hit on
    a matrix-free operator.
    """


class MatrixFreeJacobian:
    """Element-block operator with the protocol GMRES and the matrix-free
    smoothers consume (``shape``, ``matvec``, ``diagonal``).

    Parameters
    ----------
    elem_dofs:
        ``(nc, k)`` global dof ids per element (the plan's cached
        connectivity).
    local_jac:
        ``(nc, k, k)`` dense element Jacobian blocks from the SFad sweep.
    num_dofs:
        Global dof count ``n``.
    bc_dofs / diag_scale:
        Dirichlet row-replacement: constrained rows act as
        ``diag_scale * I`` (matching the assembled path's
        ``AssemblyPlan.assemble_matrix(..., diag_scale=...)``).
    """

    operator_mode = "matrix-free"

    def __init__(
        self,
        elem_dofs: np.ndarray,
        local_jac: np.ndarray,
        num_dofs: int,
        bc_dofs: np.ndarray | None = None,
        diag_scale: float = 1.0,
    ):
        elem_dofs = np.asarray(elem_dofs, dtype=np.int64)
        local_jac = np.asarray(local_jac, dtype=np.float64)
        nc, k = elem_dofs.shape
        if local_jac.shape != (nc, k, k):
            raise ValueError(
                f"local Jacobian must have shape {(nc, k, k)}, got {local_jac.shape}"
            )
        if diag_scale <= 0.0:
            raise ValueError("diag_scale must be positive")
        self.elem_dofs = elem_dofs
        self.local_jac = local_jac
        self.n = int(num_dofs)
        self.shape = (self.n, self.n)
        self.diag_scale = float(diag_scale)
        self.bc_dofs = None
        self._is_bc = None
        if bc_dofs is not None:
            bc_dofs = np.asarray(bc_dofs, dtype=np.int64)
            if bc_dofs.size and (bc_dofs.min() < 0 or bc_dofs.max() >= self.n):
                raise ValueError("Dirichlet dof out of range")
            self.bc_dofs = bc_dofs
            self._is_bc = np.zeros(self.n, dtype=bool)
            self._is_bc[bc_dofs] = True
        #: matvecs applied so far (instrumentation for tests/benches)
        self.num_matvecs = 0

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``J @ x`` by gather / batched block GEMV / scatter-add."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise ValueError(f"expected a vector of length {self.n}")
        xe = x[self.elem_dofs]  # (nc, k) gather
        ye = np.matmul(self.local_jac, xe[..., None])[..., 0]  # (nc, k)
        if self.bc_dofs is not None:
            # cleared Dirichlet rows must not receive element
            # contributions; zero them before the scatter so the result
            # matches the assembled row replacement exactly
            ye[self._is_bc[self.elem_dofs]] = 0.0
        y = np.bincount(self.elem_dofs.ravel(), weights=ye.ravel(), minlength=self.n)
        if self.bc_dofs is not None:
            y[self.bc_dofs] = self.diag_scale * x[self.bc_dofs]
        self.num_matvecs += 1
        return y

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def diagonal(self) -> np.ndarray:
        """Global diagonal (scatter of element block diagonals)."""
        de = np.einsum("cii->ci", self.local_jac)
        if self.bc_dofs is not None:
            de = np.where(self._is_bc[self.elem_dofs], 0.0, de)
        d = np.bincount(self.elem_dofs.ravel(), weights=de.ravel(), minlength=self.n)
        if self.bc_dofs is not None:
            d[self.bc_dofs] = self.diag_scale
        return d

    def isfinite(self) -> bool:
        """Finiteness of the stored element blocks (the step-boundary
        health check :func:`repro.solvers.newton._jacobian_finite` uses)."""
        return bool(np.all(np.isfinite(self.local_jac)))

    # ------------------------------------------------------------------
    # what MDSC needs without a CRS matrix
    # ------------------------------------------------------------------
    def column_blocks(self, block_size: int) -> np.ndarray:
        """Dense on-diagonal column blocks ``(nb, blk, blk)``.

        With column-major dof numbering, block ``p`` covers the dof
        range ``[p*blk, (p+1)*blk)`` (one vertical column); the entries
        are gathered straight from the element blocks by masking
        same-column (row, col) pairs -- the matrix-free analogue of the
        CSR extraction in :class:`~repro.solvers.smoothers.
        VerticalLineSmoother`, and the block source for its 3D-blocked
        matrix-free variant.
        """
        blk = int(block_size)
        if self.n % blk != 0:
            raise ValueError(f"operator size {self.n} not divisible by column block {blk}")
        nb = self.n // blk
        ed = self.elem_dofs
        nc, k = ed.shape
        rows = np.repeat(ed, k, axis=1)  # (nc, k*k) row dof of each entry
        cols = np.tile(ed, (1, k))  # (nc, k*k) col dof
        vals = self.local_jac.reshape(nc, k * k)
        rb, cb = rows // blk, cols // blk
        on = rb == cb
        if self.bc_dofs is not None:
            on = on & ~self._is_bc[rows]
        flat = (rb * blk + rows % blk) * blk + cols % blk
        blocks = np.bincount(
            flat[on].ravel(), weights=vals[on].ravel(), minlength=nb * blk * blk
        ).reshape(nb, blk, blk)
        if self.bc_dofs is not None:
            bc = self.bc_dofs
            blocks[bc // blk, bc % blk, bc % blk] = self.diag_scale
        return blocks

    def collapse(self, agg: np.ndarray, num_coarse: int) -> CsrMatrix:
        """Galerkin collapse ``P^T J P`` for a piecewise-constant
        aggregation map, assembled directly from the element blocks.

        Used by the matrix-free column-collapse MDSC: the coarse
        membrane operator is tiny (one dof per column and component),
        so assembling *it* is cheap -- only the fine-level matrix is
        never formed.  Bitwise association differs from the CSR
        Galerkin product, but the result agrees to rounding.
        """
        agg = np.asarray(agg, dtype=np.int64)
        if agg.shape != (self.n,):
            raise ValueError("aggregate map must cover every fine dof")
        ed = self.elem_dofs
        nc, k = ed.shape
        rows = np.repeat(ed, k, axis=1).ravel()
        cols = np.tile(ed, (1, k)).ravel()
        vals = self.local_jac.ravel()
        if self.bc_dofs is not None:
            keep_vals = np.where(self._is_bc[rows], 0.0, vals)
        else:
            keep_vals = vals
        cr, cc = agg[rows], agg[cols]
        if self.bc_dofs is not None:
            # each Dirichlet row contributes its diag_scale diagonal
            bc = self.bc_dofs
            cr = np.concatenate([cr, agg[bc]])
            cc = np.concatenate([cc, agg[bc]])
            keep_vals = np.concatenate(
                [keep_vals, np.full(len(bc), self.diag_scale)]
            )
        return CsrMatrix.from_coo(cr, cc, keep_vals, (num_coarse, num_coarse))

    # ------------------------------------------------------------------
    @property
    def bytes_per_matvec(self) -> float:
        """Modeled HBM traffic of one apply (see gpusim.solver_bytes)."""
        from repro.gpusim.solver_bytes import element_apply_bytes

        nc, k = self.elem_dofs.shape
        return element_apply_bytes(self.n, nc, k)

    @property
    def flops_per_matvec(self) -> float:
        """Modeled float64 ops of one apply (see gpusim.solver_bytes)."""
        from repro.gpusim.solver_bytes import element_apply_flops

        nc, k = self.elem_dofs.shape
        return element_apply_flops(nc, k)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        nc, k = self.elem_dofs.shape
        return (
            f"MatrixFreeJacobian(n={self.n}, cells={nc}, k={k}, "
            f"bc={0 if self.bc_dofs is None else len(self.bc_dofs)})"
        )
