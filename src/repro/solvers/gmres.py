"""Restarted GMRES with right preconditioning (Saad & Schultz).

Arnoldi with Givens-rotation updates of the least-squares problem;
right preconditioning keeps the monitored residual equal to the true
residual of ``A x = b``.

Two orthogonalization kernels are available:

* ``orth="mgs"`` (default): classic modified Gram-Schmidt, one dot and
  one axpy pass per basis column -- the bitwise-stable reference that
  the golden trajectories pin.
* ``orth="fused"``: batched classical Gram-Schmidt with a DGKS
  re-orthogonalization safeguard.  All ``k+1`` projection coefficients
  come from one fused block-dot pass and are applied in one fused
  update pass, so each Krylov vector is streamed **twice per
  iteration** instead of twice per column -- the Chalmers & Warburton
  "streaming operations" fusion that makes the matrix-free hot path
  bandwidth-lean.  When the post-projection norm collapses below half
  the pre-projection norm, one DGKS repeat pass restores the
  orthogonality that CGS alone would lose.

The solver also *measures* its modeled HBM traffic: every matvec is
priced via :mod:`repro.gpusim.solver_bytes` (CSR SpMV vs element-block
apply vs opaque), every orthogonalization pass at the Krylov depth it
actually ran at, and the totals land both in the returned
:class:`GmresResult` and in the ``gmres.matvec.bytes.<mode>`` /
``gmres.stream.bytes.<mode>`` metrics counters.  Preconditioner
applications are not priced here (they are identical in both operator
modes and are modeled by their own components).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim import solver_bytes as _bytes
from repro.observability import get_metrics, get_series, get_tracer
from repro.resilience.detectors import classify_gmres
from repro.verify.sanitizer import sanitizer

__all__ = ["GmresResult", "gmres"]

# disarmed fast path: one attribute read per instrumented site
_SAN = sanitizer()

_FLAG_REASONS = {
    "converged": "relative residual reached tolerance",
    "maxiter": "iteration budget exhausted while still reducing the residual",
    "stagnated": "iteration budget exhausted with a stagnant last restart cycle",
    "breakdown": "Arnoldi breakdown: Krylov subspace exhausted short of tolerance",
}


@dataclass
class GmresResult:
    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list[float]
    #: outcome classification: ``converged`` | ``maxiter`` | ``stagnated``
    #: | ``breakdown`` -- callers branch on this, never on the length of
    #: ``residual_norms`` (see repro.resilience.detectors.classify_gmres)
    flag: str = "converged"
    #: operator applications actually performed (initial residual when
    #: ``x0`` is given, one per inner iteration, one true-residual check
    #: per cycle).  Never exceeds ``maxiter``: the final cycle's Krylov
    #: dimension is clamped to leave room for its closing matvec.
    matvecs: int = 0
    #: operator-mode label of ``A`` as priced by the byte model
    #: (``assembled`` | ``matrix-free`` | ``opaque``)
    operator_mode: str = "opaque"
    #: modeled HBM bytes moved by the ``matvecs`` operator applications
    matvec_bytes: float = 0.0
    #: modeled HBM bytes of the GMRES vector work (orthogonalization,
    #: basis writes, cycle-closing updates) at the depths actually run
    stream_bytes: float = 0.0
    #: DGKS re-orthogonalization passes taken (``orth="fused"`` only)
    reorthogonalizations: int = 0

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1]

    @property
    def reason(self) -> str:
        """Human-readable description of :attr:`flag`."""
        return _FLAG_REASONS.get(self.flag, self.flag)

    @property
    def total_bytes(self) -> float:
        """Modeled matvec + vector-stream traffic of the whole solve."""
        return self.matvec_bytes + self.stream_bytes


def _as_operator(A):
    if callable(A):
        return A
    return A.matvec


def gmres(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1.0e-6,
    restart: int = 50,
    maxiter: int = 500,
    M=None,
    dot=None,
    norm=None,
    orth: str = "mgs",
    dot_many=None,
    deadline=None,
) -> GmresResult:
    """Solve ``A x = b`` with restarted right-preconditioned GMRES.

    Parameters
    ----------
    A:
        Matrix with ``matvec`` or a callable ``x -> A @ x``.
    M:
        Right preconditioner with ``apply(r) -> ~A^-1 r`` (optional).
    tol:
        Relative residual tolerance ``||b - A x|| <= tol * ||b||``.
    restart:
        Krylov dimension per cycle.
    maxiter:
        Total **matvec** budget across restarts, honored exactly: the
        last cycle's Krylov dimension is clamped so that its inner
        matvecs plus the closing true-residual matvec stay within
        budget (``GmresResult.matvecs <= maxiter`` always).
    dot, norm:
        Inner product and 2-norm implementations (default ``np.dot`` /
        ``np.linalg.norm``).  A distributed run passes partitioned
        reductions here (e.g. :class:`repro.solvers.reductions.
        BlockReducer`) so the Arnoldi recurrence runs on rank-local
        partial sums combined in a decomposition-independent order.
    orth:
        ``"mgs"`` (modified Gram-Schmidt, the bitwise reference) or
        ``"fused"`` (batched one-pass classical Gram-Schmidt with DGKS
        re-orthogonalization -- streams each Krylov vector once per
        fused pass instead of once per column).
    dot_many:
        Optional batched inner product ``(X, y) -> [x_i . y]`` used by
        the fused path (e.g. :meth:`repro.solvers.reductions.
        BlockReducer.dot_many`); defaults to a single BLAS-2 product
        when ``dot`` is the numpy default.
    deadline:
        Optional :class:`repro.resilience.Deadline`.  Checked at every
        cycle start and inner iteration; expiry raises a typed
        :class:`repro.resilience.SolveTimeout` (the caller -- usually
        ``newton_solve`` -- attaches its last checkpoint).  Checks only
        read the clock, so a solve that finishes within budget is
        bitwise equal to one run without a deadline.
    """
    if orth not in ("mgs", "fused"):
        raise ValueError(f"unknown orthogonalization {orth!r}; have: mgs, fused")
    matvec = _as_operator(A)
    if dot is None:
        dot = np.dot
    if norm is None:
        norm = np.linalg.norm
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    precond = (lambda r: r) if M is None else M.apply

    op_mode, apply_bytes = _bytes.operator_traffic(A)
    apply_flops = _bytes.operator_flops(A)
    nmv = 0
    stream_bytes = 0.0
    stream_flops = 0.0
    reorths = 0

    def _finish(res: GmresResult) -> GmresResult:
        res.matvecs = nmv
        res.operator_mode = op_mode
        res.matvec_bytes = nmv * apply_bytes
        res.stream_bytes = stream_bytes
        res.reorthogonalizations = reorths
        metrics = get_metrics()
        metrics.counter("gmres.matvecs").inc(nmv)
        metrics.counter(f"gmres.matvec.bytes.{op_mode}").inc(res.matvec_bytes)
        metrics.counter(f"gmres.stream.bytes.{op_mode}").inc(stream_bytes)
        if reorths:
            metrics.counter("gmres.reorthogonalizations").inc(reorths)
        return res

    bnorm = norm(b)
    if bnorm == 0.0:
        return _finish(GmresResult(np.zeros(n), True, 0, [0.0], flag="converged"))
    target = tol * bnorm

    if x0 is None:
        # the initial residual at x = 0 is b exactly; spending a matvec
        # on A @ 0 would bill the budget (and the byte model) for work
        # with a bitwise-guaranteed answer
        r = b.copy()
    else:
        r = b - matvec(x)
        nmv += 1
    rnorm = norm(r)
    norms = [float(rnorm)]
    total_it = 0
    breakdown = False
    #: per-cycle true-residual reduction factors (stagnation classifier)
    cycle_reductions: list[float] = []
    tr = get_tracer()
    series = get_series()
    it_counter = get_metrics().counter("gmres.iterations")

    batched_dots = None
    if orth == "fused":
        if dot_many is not None:
            batched_dots = dot_many
        elif dot is np.dot:
            batched_dots = lambda X, y: X @ y  # noqa: E731 - one fused BLAS-2 pass
        else:
            batched_dots = lambda X, y: np.array(  # noqa: E731
                [dot(y, X[i]) for i in range(X.shape[0])]
            )

    cycle = 0
    while rnorm > target and not breakdown:
        # clamp the final cycle: its inner matvecs plus the closing
        # true-residual matvec must fit the remaining budget.  (The old
        # accounting clamped inner iterations only, so a final partial
        # cycle could overrun ``maxiter`` by up to ``restart - 1``
        # matvecs once the initial and per-cycle closing applications
        # were counted.)
        m = min(restart, maxiter - nmv - 1)
        if m <= 0:
            break
        if deadline is not None:
            deadline.check(f"gmres cycle {cycle}")
        rnorm_cycle_start = rnorm
        nmv_cycle0, stream_cycle0, flops_cycle0 = nmv, stream_bytes, stream_flops
        with tr.span("gmres.cycle", cycle=cycle, krylov_dim=m) as cycle_span:
            V = np.zeros((m + 1, n))
            Z = np.zeros((m, n))  # preconditioned directions (flexible storage)
            H = np.zeros((m + 1, m))
            cs = np.zeros(m)
            sn = np.zeros(m)
            g = np.zeros(m + 1)
            V[0] = r / rnorm
            g[0] = rnorm

            k_used = 0
            for k in range(m):
                if deadline is not None:
                    deadline.check(f"gmres cycle {cycle} it {total_it}")
                with tr.span("gmres.iteration", it=total_it):
                    Z[k] = precond(V[k])
                    w = matvec(Z[k])
                    nmv += 1
                    if _SAN.active:
                        _SAN.check("gmres.matvec", w, Z[k], site=f"cycle {cycle} k={k}")
                    if orth == "mgs":
                        if _SAN.active:
                            _wnorm0 = norm(w)
                        # modified Gram-Schmidt: one dot + one axpy pass
                        # per column (the k-fold re-stream of the basis)
                        for i in range(k + 1):
                            H[i, k] = dot(w, V[i])
                            w -= H[i, k] * V[i]
                        H[k + 1, k] = norm(w)
                        if _SAN.active:
                            # the orthogonalized remainder collapsing
                            # relative to the pre-MGS norm is the classic
                            # loss-of-orthogonality cancellation
                            _SAN.check_cancellation(
                                "gmres.mgs", _wnorm0, _wnorm0, H[k + 1, k],
                                site=f"cycle {cycle} k={k}",
                            )
                        stream_bytes += _bytes.mgs_orth_bytes(n, k + 1)
                        stream_flops += _bytes.mgs_orth_flops(n, k + 1)
                    else:
                        # fused batched CGS: all coefficients from one
                        # block-dot pass, one fused update pass
                        wnorm0 = norm(w)
                        Vk = V[: k + 1]
                        h = np.asarray(batched_dots(Vk, w), dtype=np.float64)
                        w = w - h @ Vk
                        wn = norm(w)
                        stream_bytes += _bytes.fused_orth_bytes(n, k + 1)
                        stream_flops += _bytes.fused_orth_flops(n, k + 1)
                        if wn < 0.5 * wnorm0:
                            # DGKS safeguard: severe cancellation means
                            # CGS left O(eps * wnorm0) components along
                            # the basis; one repeat pass removes them
                            h2 = np.asarray(batched_dots(Vk, w), dtype=np.float64)
                            w = w - h2 @ Vk
                            h = h + h2
                            wn = norm(w)
                            reorths += 1
                            stream_bytes += _bytes.fused_reorth_bytes(n, k + 1)
                            stream_flops += _bytes.fused_reorth_flops(n, k + 1)
                        H[: k + 1, k] = h
                        H[k + 1, k] = wn
                        if _SAN.active:
                            _SAN.check_cancellation(
                                "gmres.mgs", wnorm0, wnorm0, H[k + 1, k],
                                site=f"cycle {cycle} k={k}",
                            )
                    if H[k + 1, k] > 1.0e-14 * max(1.0, abs(H[k, k])):
                        V[k + 1] = w / H[k + 1, k]
                    else:
                        # lucky breakdown: the Krylov subspace is
                        # (preconditioned-) A-invariant, so the
                        # least-squares solution over it is the best GMRES
                        # can ever reach from this right-hand side --
                        # iterating further would orthogonalize against
                        # zero vectors and waste matvecs.  Finish this
                        # column's rotations, solve, and stop.
                        breakdown = True

                    # apply stored Givens rotations to the new column
                    for i in range(k):
                        t = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                        H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                        H[i, k] = t
                    # new rotation to annihilate H[k+1, k]
                    denom = np.hypot(H[k, k], H[k + 1, k])
                    if denom == 0.0:
                        cs[k], sn[k] = 1.0, 0.0
                    else:
                        cs[k], sn[k] = H[k, k] / denom, H[k + 1, k] / denom
                    H[k, k] = denom
                    H[k + 1, k] = 0.0
                    g[k + 1] = -sn[k] * g[k]
                    g[k] = cs[k] * g[k]

                    total_it += 1
                    it_counter.inc()
                    k_used = k + 1
                    rnorm = abs(g[k + 1])
                    norms.append(float(rnorm))
                    series.record("gmres.residual", float(rnorm), mode=op_mode)
                if rnorm <= target or breakdown:
                    break

            # solve the small triangular system and update x; diagonal
            # entries at rounding level (singular projection after a
            # breakdown on a singular operator) contribute nothing and
            # would otherwise blow up the back-substitution
            y = np.zeros(k_used)
            hmax = np.max(np.abs(np.diagonal(H)[:k_used])) if k_used else 0.0
            for i in range(k_used - 1, -1, -1):
                if abs(H[i, i]) <= 1.0e-12 * hmax:
                    y[i] = 0.0
                    continue
                y[i] = (g[i] - H[i, i + 1 : k_used] @ y[i + 1 : k_used]) / H[i, i]
            x = x + Z[:k_used].T @ y

            r = b - matvec(x)
            nmv += 1
            rnorm = norm(r)
            stream_bytes += _bytes.cycle_close_bytes(n, k_used)
            stream_flops += _bytes.cycle_close_flops(n, k_used)
            if _SAN.active:
                _SAN.check("gmres.residual_norm", rnorm, site=f"cycle {cycle}")
            norms[-1] = float(rnorm)  # replace estimate with true residual
            if rnorm_cycle_start > 0.0:
                cycle_reductions.append(float(rnorm / rnorm_cycle_start))
            if tr.recording:
                # per-cycle traffic deltas for roofline attribution: the
                # cycle span carries exactly the bytes/flops it moved
                mv_cycle = nmv - nmv_cycle0
                cycle_span.args.update(
                    matvec_bytes=mv_cycle * apply_bytes,
                    stream_bytes=stream_bytes - stream_cycle0,
                    flops=mv_cycle * apply_flops + (stream_flops - flops_cycle0),
                    operator_mode=op_mode,
                )
        cycle += 1

    converged = bool(rnorm <= target)
    flag = classify_gmres(converged, breakdown, cycle_reductions)
    return _finish(GmresResult(x, converged, total_it, norms, flag=flag))
