"""Restarted GMRES with right preconditioning (Saad & Schultz).

Arnoldi with modified Gram-Schmidt and Givens-rotation updates of the
least-squares problem; right preconditioning keeps the monitored
residual equal to the true residual of ``A x = b``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.observability import get_metrics, get_tracer
from repro.resilience.detectors import classify_gmres
from repro.verify.sanitizer import sanitizer

__all__ = ["GmresResult", "gmres"]

# disarmed fast path: one attribute read per instrumented site
_SAN = sanitizer()

_FLAG_REASONS = {
    "converged": "relative residual reached tolerance",
    "maxiter": "iteration budget exhausted while still reducing the residual",
    "stagnated": "iteration budget exhausted with a stagnant last restart cycle",
    "breakdown": "Arnoldi breakdown: Krylov subspace exhausted short of tolerance",
}


@dataclass
class GmresResult:
    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list[float]
    #: outcome classification: ``converged`` | ``maxiter`` | ``stagnated``
    #: | ``breakdown`` -- callers branch on this, never on the length of
    #: ``residual_norms`` (see repro.resilience.detectors.classify_gmres)
    flag: str = "converged"

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1]

    @property
    def reason(self) -> str:
        """Human-readable description of :attr:`flag`."""
        return _FLAG_REASONS.get(self.flag, self.flag)


def _as_operator(A):
    if callable(A):
        return A
    return A.matvec


def gmres(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1.0e-6,
    restart: int = 50,
    maxiter: int = 500,
    M=None,
    dot=None,
    norm=None,
) -> GmresResult:
    """Solve ``A x = b`` with restarted right-preconditioned GMRES.

    Parameters
    ----------
    A:
        Matrix with ``matvec`` or a callable ``x -> A @ x``.
    M:
        Right preconditioner with ``apply(r) -> ~A^-1 r`` (optional).
    tol:
        Relative residual tolerance ``||b - A x|| <= tol * ||b||``.
    restart:
        Krylov dimension per cycle.
    maxiter:
        Total iteration (matvec) budget across restarts.
    dot, norm:
        Inner product and 2-norm implementations (default ``np.dot`` /
        ``np.linalg.norm``).  A distributed run passes partitioned
        reductions here (e.g. :class:`repro.solvers.reductions.
        BlockReducer`) so the Arnoldi recurrence runs on rank-local
        partial sums combined in a decomposition-independent order.
    """
    matvec = _as_operator(A)
    if dot is None:
        dot = np.dot
    if norm is None:
        norm = np.linalg.norm
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    precond = (lambda r: r) if M is None else M.apply

    bnorm = norm(b)
    if bnorm == 0.0:
        return GmresResult(np.zeros(n), True, 0, [0.0], flag="converged")
    target = tol * bnorm

    r = b - matvec(x)
    rnorm = norm(r)
    norms = [float(rnorm)]
    total_it = 0
    breakdown = False
    #: per-cycle true-residual reduction factors (stagnation classifier)
    cycle_reductions: list[float] = []
    tr = get_tracer()
    it_counter = get_metrics().counter("gmres.iterations")

    cycle = 0
    while rnorm > target and total_it < maxiter and not breakdown:
        m = min(restart, maxiter - total_it)
        rnorm_cycle_start = rnorm
        with tr.span("gmres.cycle", cycle=cycle, krylov_dim=m):
            V = np.zeros((m + 1, n))
            Z = np.zeros((m, n))  # preconditioned directions (flexible storage)
            H = np.zeros((m + 1, m))
            cs = np.zeros(m)
            sn = np.zeros(m)
            g = np.zeros(m + 1)
            V[0] = r / rnorm
            g[0] = rnorm

            k_used = 0
            for k in range(m):
                with tr.span("gmres.iteration", it=total_it):
                    Z[k] = precond(V[k])
                    w = matvec(Z[k])
                    if _SAN.active:
                        _SAN.check("gmres.matvec", w, Z[k], site=f"cycle {cycle} k={k}")
                        _wnorm0 = norm(w)
                    # modified Gram-Schmidt
                    for i in range(k + 1):
                        H[i, k] = dot(w, V[i])
                        w -= H[i, k] * V[i]
                    H[k + 1, k] = norm(w)
                    if _SAN.active:
                        # the orthogonalized remainder collapsing relative
                        # to the pre-MGS norm is the classic loss-of-
                        # orthogonality cancellation
                        _SAN.check_cancellation(
                            "gmres.mgs", _wnorm0, _wnorm0, H[k + 1, k],
                            site=f"cycle {cycle} k={k}",
                        )
                    if H[k + 1, k] > 1.0e-14 * max(1.0, abs(H[k, k])):
                        V[k + 1] = w / H[k + 1, k]
                    else:
                        # lucky breakdown: the Krylov subspace is
                        # (preconditioned-) A-invariant, so the
                        # least-squares solution over it is the best GMRES
                        # can ever reach from this right-hand side --
                        # iterating further would orthogonalize against
                        # zero vectors and waste matvecs.  Finish this
                        # column's rotations, solve, and stop.
                        breakdown = True

                    # apply stored Givens rotations to the new column
                    for i in range(k):
                        t = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                        H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                        H[i, k] = t
                    # new rotation to annihilate H[k+1, k]
                    denom = np.hypot(H[k, k], H[k + 1, k])
                    if denom == 0.0:
                        cs[k], sn[k] = 1.0, 0.0
                    else:
                        cs[k], sn[k] = H[k, k] / denom, H[k + 1, k] / denom
                    H[k, k] = denom
                    H[k + 1, k] = 0.0
                    g[k + 1] = -sn[k] * g[k]
                    g[k] = cs[k] * g[k]

                    total_it += 1
                    it_counter.inc()
                    k_used = k + 1
                    rnorm = abs(g[k + 1])
                    norms.append(float(rnorm))
                if rnorm <= target or breakdown:
                    break

            # solve the small triangular system and update x; diagonal
            # entries at rounding level (singular projection after a
            # breakdown on a singular operator) contribute nothing and
            # would otherwise blow up the back-substitution
            y = np.zeros(k_used)
            hmax = np.max(np.abs(np.diagonal(H)[:k_used])) if k_used else 0.0
            for i in range(k_used - 1, -1, -1):
                if abs(H[i, i]) <= 1.0e-12 * hmax:
                    y[i] = 0.0
                    continue
                y[i] = (g[i] - H[i, i + 1 : k_used] @ y[i + 1 : k_used]) / H[i, i]
            x = x + Z[:k_used].T @ y

            r = b - matvec(x)
            rnorm = norm(r)
            if _SAN.active:
                _SAN.check("gmres.residual_norm", rnorm, site=f"cycle {cycle}")
            norms[-1] = float(rnorm)  # replace estimate with true residual
            if rnorm_cycle_start > 0.0:
                cycle_reductions.append(float(rnorm / rnorm_cycle_start))
        cycle += 1

    converged = bool(rnorm <= target)
    flag = classify_gmres(converged, breakdown, cycle_reductions)
    return GmresResult(x, converged, total_it, norms, flag=flag)
