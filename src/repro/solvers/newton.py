"""Damped Newton's method with backtracking line search and recovery.

MALI's velocity solve runs a fixed number of damped Newton steps (eight
in the paper's Antarctica test); each step assembles residual and
Jacobian via the SFad kernel and solves the linear system with
preconditioned GMRES.

The paper's headline optimization is loop fusion: SFad evaluation
already produces the residual as the value component of the Jacobian
sweep, so ``newton_solve`` accepts an optional fused
``residual_jacobian_fn`` that returns ``(F(x), J(x))`` from one sweep.
Line-search trials still use the cheap residual-only path.

Resilience.  Production ice-sheet runs hit non-finite residuals (thin-
ice viscosity blowups), stagnating GMRES and corrupted evaluations, and
survive them by step rejection and restart rather than aborting.  This
solver guards every phase -- evaluation, linear solve, line search --
with finiteness checks that (absent a policy) raise a
``FloatingPointError`` naming the step and phase.  With a
:class:`repro.resilience.RecoveryPolicy` attached it instead climbs the
recovery ladder: re-evaluate a poisoned sweep, drop the preconditioner
and escalate the GMRES restart for a sick linear solve, reject the step
and resume from the last good iterate with a halved damping cap, and
snapshot the iterate every ``checkpoint_every`` accepted steps so a
killed solve can resume via ``resume_from=``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.observability import get_metrics, get_series, get_tracer
from repro.resilience.checkpoint import NewtonCheckpoint
from repro.resilience.deadline import SolveTimeout
from repro.resilience.detectors import nonfinite_count
from repro.solvers.gmres import gmres
from repro.verify.sanitizer import sanitizer

__all__ = ["NewtonResult", "newton_solve"]

# disarmed fast path: one attribute read per instrumented site
_SAN = sanitizer()


@dataclass
class NewtonResult:
    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list[float] = field(default_factory=list)
    step_lengths: list[float] = field(default_factory=list)
    linear_iterations: list[int] = field(default_factory=list)
    #: per-step GMRES outcome flag (``converged`` / ``maxiter`` /
    #: ``stagnated`` / ``breakdown``), aligned with ``linear_iterations``
    linear_flags: list[str] = field(default_factory=list)
    #: residual-only evaluations: line-search trials, plus the initial
    #: check when no fused ``residual_jacobian_fn`` is supplied
    num_residual_evals: int = 0
    #: Jacobian (or fused residual+Jacobian) sweeps -- one per accepted
    #: step (the fused initial evaluation doubles as the step-0 Jacobian)
    num_jacobian_evals: int = 0
    #: wall time per solver phase: evaluate (residual/Jacobian callbacks),
    #: preconditioner (setup per step), gmres (linear solves).  Sourced
    #: from observability spans (newton.evaluate / newton.precond_setup /
    #: gmres.solve), so the numbers agree with a recorded trace exactly.
    phase_seconds: dict = field(default_factory=dict)
    #: most recent state snapshot (``checkpoint_every`` accepted steps);
    #: feed it back via ``newton_solve(resume_from=...)`` to restart
    checkpoint: NewtonCheckpoint | None = None
    #: the solve started from a nonzero ``x0`` (a warm start).  Transient
    #: stepping feeds each solve the previous step's velocity; this flag
    #: is the provenance the warm-start regression tests assert on.
    warm_started: bool = False

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1]


def _jacobian_finite(J) -> bool:
    """Cheap finiteness check on a Jacobian's stored values.

    Covers :class:`CsrMatrix` (``data``), :class:`DistributedMatrix`
    (``data_parts``) and operators that advertise their own check via
    ``isfinite()`` (e.g. :class:`repro.fem.matfree.MatrixFreeJacobian`,
    which scans its element blocks).  A ``matvec``-only operator is
    probed with a single ones-vector application: non-finite storage
    anywhere in a row surfaces as a non-finite output entry, because a
    NaN/Inf coefficient contaminates its row's sum.  Only operators
    exposing none of the above (not even ``matvec`` + ``shape``) are
    assumed healthy -- previously *every* non-CSR operator was, so in
    matrix-free mode Jacobian damage skipped the step-boundary check
    and the resilience ladder mis-attributed the failure to GMRES.
    """
    data = getattr(J, "data", None)
    if data is not None:
        return bool(np.all(np.isfinite(data)))
    parts = getattr(J, "data_parts", None)
    if parts is not None:
        return all(bool(np.all(np.isfinite(d))) for d in parts)
    own_check = getattr(J, "isfinite", None)
    if callable(own_check):
        return bool(own_check())
    probe_op = getattr(J, "matvec", None)
    shape = getattr(J, "shape", None)
    if callable(probe_op) and shape is not None:
        return bool(np.all(np.isfinite(probe_op(np.ones(shape[1])))))
    return True


def _raise_nonfinite(step: int, phase: str, arr=None) -> None:
    detail = ""
    if arr is not None:
        detail = f": {nonfinite_count(np.asarray(arr))} non-finite entries"
    raise FloatingPointError(
        f"non-finite values at Newton step {step} (phase {phase!r}){detail}; "
        "attach resilience=repro.resilience.RecoveryPolicy() to recover "
        "instead of aborting"
    )


def newton_solve(
    residual_fn,
    jacobian_fn,
    x0: np.ndarray,
    max_steps: int = 8,
    tol: float = 1.0e-8,
    linear_tol: float = 1.0e-6,
    gmres_restart: int = 50,
    gmres_maxiter: int = 400,
    gmres_orth: str = "mgs",
    preconditioner_fn=None,
    damping_min: float = 1.0 / 64.0,
    callback=None,
    residual_jacobian_fn=None,
    reducer=None,
    resilience=None,
    checkpoint_every: int | None = None,
    checkpoint_cb=None,
    resume_from: NewtonCheckpoint | None = None,
    deadline=None,
) -> NewtonResult:
    """Solve ``F(x) = 0`` by damped Newton.

    Parameters
    ----------
    residual_fn:
        ``x -> F(x)``.
    jacobian_fn:
        ``x -> J`` (object with ``matvec``).
    residual_jacobian_fn:
        Optional fused ``x -> (F(x), J(x))`` evaluated in one sweep; when
        given it replaces the per-step ``jacobian_fn`` call and provides
        the step's residual for free (``jacobian_fn`` is then unused and
        may be ``None``).
    preconditioner_fn:
        Optional ``J -> M`` building a preconditioner per Newton step.
    gmres_orth:
        Orthogonalization kernel passed through to :func:`gmres`
        (``"mgs"`` reference or ``"fused"`` single-pass batched CGS).
    max_steps:
        Maximum (and, when ``tol`` is not reached, exact) Newton steps --
        the paper's test uses eight.
    damping_min:
        Smallest backtracking step before accepting a non-decreasing
        update (keeps the fixed-step-count workflow robust).
    reducer:
        Optional object with ``dot(x, y)`` and ``norm(x)`` (e.g.
        :class:`repro.solvers.reductions.BlockReducer`) used for every
        residual norm, line-search test and GMRES inner product.  A
        distributed solve passes a partitioned, decomposition-independent
        reducer so serial and SPMD trajectories stay bit-for-bit equal.
    resilience:
        Optional :class:`repro.resilience.RecoveryPolicy`.  Without it,
        any non-finite value detected mid-solve raises a
        ``FloatingPointError`` naming the step and phase; with it the
        solver recovers (re-evaluation, step rejection with damping
        backoff, GMRES restart escalation) and logs every event.
    checkpoint_every:
        Snapshot the accepted iterate every N steps into
        ``NewtonResult.checkpoint`` (and ``checkpoint_cb`` when given).
        Defaults to the policy's ``checkpoint_every`` (0 = off without a
        policy).
    resume_from:
        A :class:`NewtonCheckpoint` to restart from: the loop re-enters
        at the checkpointed step with the saved iterate and histories.
    deadline:
        Optional :class:`repro.resilience.Deadline` -- the cooperative
        wall-clock budget of a served request.  Checked at every step
        attempt, line-search trial and (propagated) GMRES iteration;
        expiry raises a typed :class:`repro.resilience.SolveTimeout`
        carrying the last completed checkpoint, so the caller can serve
        a partial result or resume later (``resume_from=exc.checkpoint``
        continues bitwise-identically).  A budget that expires before
        the first step completes raises with ``checkpoint=None`` --
        an immediate typed timeout, never partial garbage.
    """
    if residual_jacobian_fn is None and jacobian_fn is None:
        raise ValueError("either jacobian_fn or residual_jacobian_fn is required")
    norm_fn = np.linalg.norm if reducer is None else reducer.norm
    gmres_dot = None if reducer is None else reducer.dot
    gmres_norm = None if reducer is None else reducer.norm
    gmres_dot_many = getattr(reducer, "dot_many", None) if reducer is not None else None
    phases = {"evaluate": 0.0, "preconditioner": 0.0, "gmres": 0.0}
    tr = get_tracer()
    metrics = get_metrics()
    policy = resilience
    log = policy.log if policy is not None else None
    if checkpoint_every is None:
        checkpoint_every = policy.checkpoint_every if policy is not None else 0

    x = np.array(x0, dtype=np.float64)
    res = NewtonResult(x, False, 0)
    res.warm_started = bool(np.any(x != 0.0))
    res.phase_seconds = phases
    start_step = 0
    if resume_from is not None:
        x = np.array(resume_from.x, dtype=np.float64)
        start_step = int(resume_from.step)
        res.x = x
        res.iterations = start_step
        res.residual_norms = list(resume_from.residual_norms)
        res.step_lengths = list(resume_from.step_lengths)
        res.linear_iterations = list(resume_from.linear_iterations)
        res.linear_flags = list(resume_from.linear_flags)
        res.checkpoint = resume_from

    def evaluate_full(what: str):
        """One evaluation at the current ``x``: (f, J_or_None)."""
        with tr.span("newton.evaluate", what=what) as sp:
            if residual_jacobian_fn is not None:
                f_new, J_new = residual_jacobian_fn(x)
                res.num_jacobian_evals += 1
            else:
                f_new = residual_fn(x)
                res.num_residual_evals += 1
                J_new = None
        phases["evaluate"] += sp.dur_s
        return f_new, J_new

    def _check_deadline(phase: str) -> None:
        # cooperative budget check: reads the clock and branches only,
        # so within-budget trajectories are bitwise-deadline-free.  The
        # raised SolveTimeout carries the last completed checkpoint
        # (None before the first one: immediate timeout, no partial
        # garbage).
        if deadline is not None:
            deadline.check(phase, checkpoint=res.checkpoint)

    # initial evaluation: the fused path gets the step-0 Jacobian for
    # free (the residual is the value component of the same SFad sweep),
    # so a full solve performs exactly one DAG sweep per accepted step
    # plus one residual-only sweep per line-search trial.  A resumed
    # solve re-evaluates at the checkpointed iterate (same sweep shape).
    what0 = "initial" if resume_from is None else "resume"
    _check_deadline(f"newton.{what0}")
    f, J_next = evaluate_full(what0)
    attempts = 0
    while not (np.all(np.isfinite(f)) and _jacobian_finite(J_next)):
        # a poisoned initial sweep is retryable under a policy; a truly
        # bad initial guess (bad thickness/viscosity inputs) is not
        attempts += 1
        if policy is None or attempts > policy.max_reevaluations:
            raise FloatingPointError(
                "non-finite residual at the initial guess; check inputs "
                "(thickness/viscosity fields) before starting Newton"
            )
        log.record(
            "detection", "nonfinite_evaluation", "newton.evaluate",
            step=start_step, phase=what0, attempt=attempts,
        )
        f, J_next = evaluate_full(f"{what0}_retry")
        log.record(
            "recovery", "reevaluation", "newton.evaluate",
            step=start_step, phase=what0, attempts=attempts,
        )
    fnorm = float(norm_fn(f))
    if _SAN.active:
        _SAN.check("newton.residual_norm", fnorm, f, site="initial")
    series = get_series()
    if resume_from is None:
        res.residual_norms.append(fnorm)
        series.record("newton.residual", fnorm)
    if fnorm <= tol:
        res.converged = True
        return res

    for step in range(start_step, max_steps):
        with tr.span("newton.step", step=step):
            alpha_cap = 1.0
            rejections = 0
            while True:  # step-attempt loop: rejected attempts retry here
                _check_deadline(f"newton.step {step}")
                with tr.span("newton.evaluate", step=step) as sp:
                    if J_next is not None:
                        J, J_next = J_next, None
                    elif residual_jacobian_fn is not None:
                        # fused: one jacobian-mode sweep yields both
                        # outputs; its value component replaces the
                        # carried line-search residual
                        f, J = residual_jacobian_fn(x)
                        fnorm = float(norm_fn(f))
                        res.num_jacobian_evals += 1
                    else:
                        J = jacobian_fn(x)
                        res.num_jacobian_evals += 1
                phases["evaluate"] += sp.dur_s

                # per-step guard: a NaN produced by this (or a carried)
                # sweep must not propagate silently into norms and GMRES
                attempts = 0
                while not (np.all(np.isfinite(f)) and _jacobian_finite(J)):
                    if policy is None:
                        _raise_nonfinite(step, "evaluate", f)
                    attempts += 1
                    if attempts > policy.max_reevaluations:
                        _raise_nonfinite(step, "evaluate", f)
                    log.record(
                        "detection", "nonfinite_evaluation", "newton.evaluate",
                        step=step, phase="evaluate", attempt=attempts,
                    )
                    with tr.span("resilience.recover", site="newton.evaluate", step=step):
                        f2, J2 = evaluate_full("reevaluate")
                        if J2 is not None:
                            f, J = f2, J2
                            fnorm = float(norm_fn(f))
                        else:
                            if not np.all(np.isfinite(f)):
                                f = f2
                                fnorm = float(norm_fn(f))
                            with tr.span("newton.evaluate", what="reevaluate_jac") as sp:
                                J = jacobian_fn(x)
                                res.num_jacobian_evals += 1
                            phases["evaluate"] += sp.dur_s
                    if np.all(np.isfinite(f)) and _jacobian_finite(J):
                        log.record(
                            "recovery", "reevaluation", "newton.evaluate",
                            step=step, attempts=attempts,
                        )

                with tr.span("newton.precond_setup", step=step) as sp:
                    M = preconditioner_fn(J) if preconditioner_fn is not None else None
                phases["preconditioner"] += sp.dur_s

                # linear solve with restart escalation: a stagnating (or
                # non-finite) GMRES retries with a grown Krylov space; a
                # non-finite direction additionally drops the
                # preconditioner (the usual culprit)
                restart_eff, maxiter_eff = gmres_restart, gmres_maxiter
                escalations = 0
                while True:
                    try:
                        with tr.span("gmres.solve", step=step) as sp:
                            lin = gmres(
                                J,
                                -f,
                                tol=linear_tol,
                                restart=restart_eff,
                                maxiter=maxiter_eff,
                                M=M,
                                dot=gmres_dot,
                                norm=gmres_norm,
                                orth=gmres_orth,
                                dot_many=gmres_dot_many,
                                deadline=deadline,
                            )
                    except SolveTimeout as exc:
                        # GMRES raises bare (it has no Newton state);
                        # attach the last completed checkpoint here so
                        # the service can serve/resume the partial result
                        if exc.checkpoint is None:
                            exc.checkpoint = res.checkpoint
                        raise
                    phases["gmres"] += sp.dur_s
                    dx = lin.x
                    if not np.all(np.isfinite(dx)):
                        problem = "nonfinite_direction"
                    elif lin.flag == "stagnated":
                        problem = "gmres_stagnated"
                    else:
                        problem = None
                    if problem is None:
                        break
                    if policy is None:
                        if problem == "nonfinite_direction":
                            _raise_nonfinite(step, "gmres", dx)
                        break  # stagnation without a policy: proceed damped
                    if escalations >= policy.max_gmres_escalations:
                        if problem == "nonfinite_direction":
                            _raise_nonfinite(step, "gmres", dx)
                        break
                    log.record(
                        "detection", problem, "gmres.solve",
                        step=step, flag=lin.flag, restart=restart_eff,
                        final_residual=lin.final_residual,
                    )
                    escalations += 1
                    restart_eff *= policy.gmres_restart_growth
                    maxiter_eff *= policy.gmres_restart_growth
                    if problem == "nonfinite_direction":
                        M = None
                    with tr.span(
                        "resilience.recover", site="gmres.solve",
                        step=step, restart=restart_eff,
                    ):
                        log.record(
                            "recovery", "gmres_escalation", "gmres.solve",
                            step=step, escalation=escalations,
                            restart=restart_eff, maxiter=maxiter_eff,
                            dropped_preconditioner=problem == "nonfinite_direction",
                        )

                # backtracking on ||F||, capped by the rejection backoff
                alpha = alpha_cap
                rejected = False
                nonfinite_trials = 0
                with tr.span("newton.line_search", step=step):
                    while True:
                        _check_deadline(f"newton.line_search step {step}")
                        x_trial = x + alpha * dx
                        with tr.span("newton.evaluate", what="line_search") as sp:
                            f_trial = residual_fn(x_trial)
                        phases["evaluate"] += sp.dur_s
                        res.num_residual_evals += 1
                        if np.all(np.isfinite(f_trial)):
                            fnorm_trial = float(norm_fn(f_trial))
                            if _SAN.active:
                                _SAN.check(
                                    "newton.residual_norm", fnorm_trial, f_trial,
                                    site=f"step {step} line_search alpha={alpha:g}",
                                )
                            if (
                                fnorm_trial < (1.0 - 1.0e-4 * alpha) * fnorm
                                or alpha <= damping_min
                            ):
                                if nonfinite_trials and policy is not None:
                                    log.record(
                                        "recovery", "line_search_reeval",
                                        "newton.line_search", step=step,
                                        alpha=alpha, bad_trials=nonfinite_trials,
                                    )
                                break
                        else:
                            # a non-finite trial is never acceptable --
                            # without this guard a NaN reaching
                            # ``damping_min`` would be silently accepted
                            if policy is None:
                                _raise_nonfinite(step, "line_search", f_trial)
                            nonfinite_trials += 1
                            log.record(
                                "detection", "nonfinite_line_search",
                                "newton.line_search", step=step, alpha=alpha,
                            )
                            if alpha <= damping_min:
                                rejected = True
                                break
                        alpha *= 0.5

                if not rejected:
                    break  # step attempt succeeded
                # reject the step: resume from the last good iterate with
                # a halved damping cap (x was never overwritten)
                rejections += 1
                if rejections > policy.max_step_rejections:
                    _raise_nonfinite(step, "step_rejection")
                alpha_cap *= policy.step_damping_backoff
                with tr.span(
                    "resilience.recover", site="newton.step",
                    step=step, rejection=rejections,
                ):
                    log.record(
                        "recovery", "step_rejection", "newton.step",
                        step=step, rejections=rejections, alpha_cap=alpha_cap,
                    )
                metrics.counter("resilience.step_rejections").inc()

            x, f, fnorm = x_trial, f_trial, fnorm_trial
            res.step_lengths.append(alpha)
            res.residual_norms.append(fnorm)
            series.record("newton.residual", fnorm)
            series.record("newton.step_length", alpha)
            res.linear_iterations.append(lin.iterations)
            res.linear_flags.append(lin.flag)
            metrics.histogram("gmres.iterations_per_solve").observe(lin.iterations)
            res.iterations = step + 1
            metrics.counter("newton.steps").inc()
            if checkpoint_every and (step + 1) % checkpoint_every == 0:
                res.checkpoint = NewtonCheckpoint(
                    step=step + 1,
                    x=x.copy(),
                    residual_norms=list(res.residual_norms),
                    step_lengths=list(res.step_lengths),
                    linear_iterations=list(res.linear_iterations),
                    linear_flags=list(res.linear_flags),
                )
                metrics.counter("newton.checkpoints").inc()
                if checkpoint_cb is not None:
                    checkpoint_cb(res.checkpoint)
        if callback is not None:
            callback(step, x, fnorm, lin)
        if fnorm <= tol:
            res.converged = True
            break

    res.x = x
    res.converged = bool(res.converged or fnorm <= tol)
    return res
