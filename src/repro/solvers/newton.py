"""Damped Newton's method with backtracking line search.

MALI's velocity solve runs a fixed number of damped Newton steps (eight
in the paper's Antarctica test); each step assembles residual and
Jacobian via the SFad kernel and solves the linear system with
preconditioned GMRES.

The paper's headline optimization is loop fusion: SFad evaluation
already produces the residual as the value component of the Jacobian
sweep, so ``newton_solve`` accepts an optional fused
``residual_jacobian_fn`` that returns ``(F(x), J(x))`` from one sweep.
Line-search trials still use the cheap residual-only path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.observability import get_metrics, get_tracer
from repro.solvers.gmres import gmres

__all__ = ["NewtonResult", "newton_solve"]


@dataclass
class NewtonResult:
    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list[float] = field(default_factory=list)
    step_lengths: list[float] = field(default_factory=list)
    linear_iterations: list[int] = field(default_factory=list)
    #: residual-only evaluations: line-search trials, plus the initial
    #: check when no fused ``residual_jacobian_fn`` is supplied
    num_residual_evals: int = 0
    #: Jacobian (or fused residual+Jacobian) sweeps -- one per accepted
    #: step (the fused initial evaluation doubles as the step-0 Jacobian)
    num_jacobian_evals: int = 0
    #: wall time per solver phase: evaluate (residual/Jacobian callbacks),
    #: preconditioner (setup per step), gmres (linear solves).  Sourced
    #: from observability spans (newton.evaluate / newton.precond_setup /
    #: gmres.solve), so the numbers agree with a recorded trace exactly.
    phase_seconds: dict = field(default_factory=dict)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1]


def newton_solve(
    residual_fn,
    jacobian_fn,
    x0: np.ndarray,
    max_steps: int = 8,
    tol: float = 1.0e-8,
    linear_tol: float = 1.0e-6,
    gmres_restart: int = 50,
    gmres_maxiter: int = 400,
    preconditioner_fn=None,
    damping_min: float = 1.0 / 64.0,
    callback=None,
    residual_jacobian_fn=None,
    reducer=None,
) -> NewtonResult:
    """Solve ``F(x) = 0`` by damped Newton.

    Parameters
    ----------
    residual_fn:
        ``x -> F(x)``.
    jacobian_fn:
        ``x -> J`` (object with ``matvec``).
    residual_jacobian_fn:
        Optional fused ``x -> (F(x), J(x))`` evaluated in one sweep; when
        given it replaces the per-step ``jacobian_fn`` call and provides
        the step's residual for free (``jacobian_fn`` is then unused and
        may be ``None``).
    preconditioner_fn:
        Optional ``J -> M`` building a preconditioner per Newton step.
    max_steps:
        Maximum (and, when ``tol`` is not reached, exact) Newton steps --
        the paper's test uses eight.
    damping_min:
        Smallest backtracking step before accepting a non-decreasing
        update (keeps the fixed-step-count workflow robust).
    reducer:
        Optional object with ``dot(x, y)`` and ``norm(x)`` (e.g.
        :class:`repro.solvers.reductions.BlockReducer`) used for every
        residual norm, line-search test and GMRES inner product.  A
        distributed solve passes a partitioned, decomposition-independent
        reducer so serial and SPMD trajectories stay bit-for-bit equal.
    """
    if residual_jacobian_fn is None and jacobian_fn is None:
        raise ValueError("either jacobian_fn or residual_jacobian_fn is required")
    norm_fn = np.linalg.norm if reducer is None else reducer.norm
    gmres_dot = None if reducer is None else reducer.dot
    gmres_norm = None if reducer is None else reducer.norm
    phases = {"evaluate": 0.0, "preconditioner": 0.0, "gmres": 0.0}
    tr = get_tracer()
    metrics = get_metrics()

    x = np.array(x0, dtype=np.float64)
    res = NewtonResult(x, False, 0)
    res.phase_seconds = phases

    # initial evaluation: the fused path gets the step-0 Jacobian for
    # free (the residual is the value component of the same SFad sweep),
    # so a full solve performs exactly one DAG sweep per accepted step
    # plus one residual-only sweep per line-search trial
    with tr.span("newton.evaluate", what="initial") as sp:
        if residual_jacobian_fn is not None:
            f, J_next = residual_jacobian_fn(x)
            res.num_jacobian_evals += 1
        else:
            f = residual_fn(x)
            res.num_residual_evals += 1
            J_next = None
    phases["evaluate"] += sp.dur_s
    if not np.all(np.isfinite(f)):
        raise FloatingPointError(
            "non-finite residual at the initial guess; check inputs "
            "(thickness/viscosity fields) before starting Newton"
        )
    fnorm = float(norm_fn(f))
    res.residual_norms.append(fnorm)
    if fnorm <= tol:
        res.converged = True
        return res

    for step in range(max_steps):
        with tr.span("newton.step", step=step):
            with tr.span("newton.evaluate", step=step) as sp:
                if J_next is not None:
                    J, J_next = J_next, None
                elif residual_jacobian_fn is not None:
                    # fused: one jacobian-mode sweep yields both outputs;
                    # its value component replaces the carried
                    # line-search residual
                    f, J = residual_jacobian_fn(x)
                    fnorm = float(norm_fn(f))
                    res.num_jacobian_evals += 1
                else:
                    J = jacobian_fn(x)
                    res.num_jacobian_evals += 1
            phases["evaluate"] += sp.dur_s

            with tr.span("newton.precond_setup", step=step) as sp:
                M = preconditioner_fn(J) if preconditioner_fn is not None else None
            phases["preconditioner"] += sp.dur_s

            with tr.span("gmres.solve", step=step) as sp:
                lin = gmres(
                    J,
                    -f,
                    tol=linear_tol,
                    restart=gmres_restart,
                    maxiter=gmres_maxiter,
                    M=M,
                    dot=gmres_dot,
                    norm=gmres_norm,
                )
            phases["gmres"] += sp.dur_s
            dx = lin.x
            res.linear_iterations.append(lin.iterations)
            metrics.histogram("gmres.iterations_per_solve").observe(lin.iterations)

            # backtracking on ||F||
            alpha = 1.0
            with tr.span("newton.line_search", step=step):
                while True:
                    x_trial = x + alpha * dx
                    with tr.span("newton.evaluate", what="line_search") as sp:
                        f_trial = residual_fn(x_trial)
                    phases["evaluate"] += sp.dur_s
                    res.num_residual_evals += 1
                    fnorm_trial = float(norm_fn(f_trial))
                    if fnorm_trial < (1.0 - 1.0e-4 * alpha) * fnorm or alpha <= damping_min:
                        break
                    alpha *= 0.5
            x, f, fnorm = x_trial, f_trial, fnorm_trial
            res.step_lengths.append(alpha)
            res.residual_norms.append(fnorm)
            res.iterations = step + 1
            metrics.counter("newton.steps").inc()
        if callback is not None:
            callback(step, x, fnorm, lin)
        if fnorm <= tol:
            res.converged = True
            break

    res.x = x
    res.converged = bool(res.converged or fnorm <= tol)
    return res
