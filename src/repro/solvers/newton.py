"""Damped Newton's method with backtracking line search.

MALI's velocity solve runs a fixed number of damped Newton steps (eight
in the paper's Antarctica test); each step assembles residual and
Jacobian via the SFad kernel and solves the linear system with
preconditioned GMRES.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.solvers.gmres import gmres

__all__ = ["NewtonResult", "newton_solve"]


@dataclass
class NewtonResult:
    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list[float] = field(default_factory=list)
    step_lengths: list[float] = field(default_factory=list)
    linear_iterations: list[int] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1]


def newton_solve(
    residual_fn,
    jacobian_fn,
    x0: np.ndarray,
    max_steps: int = 8,
    tol: float = 1.0e-8,
    linear_tol: float = 1.0e-6,
    gmres_restart: int = 50,
    gmres_maxiter: int = 400,
    preconditioner_fn=None,
    damping_min: float = 1.0 / 64.0,
    callback=None,
) -> NewtonResult:
    """Solve ``F(x) = 0`` by damped Newton.

    Parameters
    ----------
    residual_fn:
        ``x -> F(x)``.
    jacobian_fn:
        ``x -> J`` (object with ``matvec``).
    preconditioner_fn:
        Optional ``J -> M`` building a preconditioner per Newton step.
    max_steps:
        Maximum (and, when ``tol`` is not reached, exact) Newton steps --
        the paper's test uses eight.
    damping_min:
        Smallest backtracking step before accepting a non-decreasing
        update (keeps the fixed-step-count workflow robust).
    """
    x = np.array(x0, dtype=np.float64)
    f = residual_fn(x)
    if not np.all(np.isfinite(f)):
        raise FloatingPointError(
            "non-finite residual at the initial guess; check inputs "
            "(thickness/viscosity fields) before starting Newton"
        )
    fnorm = float(np.linalg.norm(f))
    res = NewtonResult(x, fnorm <= tol, 0, [fnorm])
    if res.converged:
        return res

    for step in range(max_steps):
        J = jacobian_fn(x)
        M = preconditioner_fn(J) if preconditioner_fn is not None else None
        lin = gmres(
            J,
            -f,
            tol=linear_tol,
            restart=gmres_restart,
            maxiter=gmres_maxiter,
            M=M,
        )
        dx = lin.x
        res.linear_iterations.append(lin.iterations)

        # backtracking on ||F||
        alpha = 1.0
        while True:
            x_trial = x + alpha * dx
            f_trial = residual_fn(x_trial)
            fnorm_trial = float(np.linalg.norm(f_trial))
            if fnorm_trial < (1.0 - 1.0e-4 * alpha) * fnorm or alpha <= damping_min:
                break
            alpha *= 0.5
        x, f, fnorm = x_trial, f_trial, fnorm_trial
        res.step_lengths.append(alpha)
        res.residual_norms.append(fnorm)
        res.iterations = step + 1
        if callback is not None:
            callback(step, x, fnorm, lin)
        if fnorm <= tol:
            res.converged = True
            break

    res.x = x
    res.converged = bool(res.converged or fnorm <= tol)
    return res
