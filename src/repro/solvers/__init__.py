"""Nonlinear/linear solver substrate (the Trilinos analogue).

MALI solves the discretized velocity equations with damped Newton; each
Newton step solves the linear system with GMRES preconditioned by a
matrix-dependent semicoarsening algebraic multigrid built for extruded
meshes (Tuminaro et al. 2016).  This package implements that stack:

* :mod:`~repro.solvers.gmres` -- restarted, right-preconditioned GMRES.
* :mod:`~repro.solvers.smoothers` -- damped Jacobi, vertical-line (block)
  Jacobi for extruded columns, ILU(0).
* :mod:`~repro.solvers.multigrid` -- vertical semicoarsening followed by
  horizontal aggregation AMG, applied as a V-cycle preconditioner.
* :mod:`~repro.solvers.newton` -- damped Newton with backtracking.
"""

from repro.solvers.gmres import GmresResult, gmres
from repro.solvers.reductions import BlockReducer, column_block_reducer
from repro.solvers.smoothers import (
    IdentityPreconditioner,
    JacobiSmoother,
    VerticalLineSmoother,
    Ilu0Preconditioner,
)
from repro.solvers.multigrid import MgLevel, SemicoarseningMultigrid, ColumnCollapseMdsc, build_mdsc_amg
from repro.solvers.newton import NewtonResult, newton_solve

__all__ = [
    "GmresResult",
    "gmres",
    "BlockReducer",
    "column_block_reducer",
    "IdentityPreconditioner",
    "JacobiSmoother",
    "VerticalLineSmoother",
    "Ilu0Preconditioner",
    "MgLevel",
    "SemicoarseningMultigrid",
    "ColumnCollapseMdsc",
    "build_mdsc_amg",
    "NewtonResult",
    "newton_solve",
]
