"""Smoothers and one-level preconditioners.

The key ingredient for extruded ice-sheet meshes is the vertical-line
smoother: the strong vertical coupling (thin, anisotropic elements)
makes point smoothers nearly useless, while solving each vertical column
exactly -- a batched dense solve thanks to the column-major numbering --
damps the troublesome error components (Tuminaro et al. 2016).
"""

from __future__ import annotations

import numpy as np

from repro.fem.sparse import CsrMatrix

__all__ = [
    "IdentityPreconditioner",
    "JacobiSmoother",
    "VerticalLineSmoother",
    "MatrixFreeVerticalLineSmoother",
    "Ilu0Preconditioner",
]


def _invert_column_blocks(blocks: np.ndarray) -> np.ndarray:
    """Batched inverse of the column diagonal blocks (singular guard).

    Invert once: the smoother is applied hundreds of times per Newton
    step inside GMRES, and re-factorizing the same blocks per
    application (batched ``np.linalg.solve``) dominated the solve.  The
    blocks are small, diagonally dominant vertical couplings, so
    applying the explicit inverse is numerically safe here.
    """
    diag = np.einsum("bii->bi", blocks)
    bad = np.abs(diag) < 1.0e-300
    diag[bad] = 1.0
    return np.linalg.inv(blocks)


class IdentityPreconditioner:
    """No-op preconditioner (useful as a baseline in tests/benchmarks)."""

    def apply(self, r: np.ndarray) -> np.ndarray:
        return np.array(r)

    def smooth(self, A, b, x, iters: int = 1) -> np.ndarray:
        return np.array(x)


class JacobiSmoother:
    """Damped point Jacobi: ``x += omega D^-1 (b - A x)``."""

    def __init__(self, A: CsrMatrix, omega: float = 0.7, iters: int = 2):
        if not 0.0 < omega <= 1.0:
            raise ValueError("Jacobi damping must be in (0, 1]")
        self.A = A
        self.omega = omega
        self.iters = iters
        d = A.diagonal()
        if np.any(d == 0.0):
            raise ValueError("zero diagonal entry; Jacobi smoother undefined")
        self.dinv = 1.0 / d

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Preconditioner action: ``iters`` sweeps starting from zero."""
        return self.smooth(self.A, r, np.zeros_like(r), self.iters)

    def smooth(self, A, b, x, iters: int | None = None) -> np.ndarray:
        x = np.array(x, dtype=np.float64)
        for _ in range(self.iters if iters is None else iters):
            x += self.omega * self.dinv * (b - A.matvec(x))
        return x


class VerticalLineSmoother:
    """Block Jacobi over vertical columns of an extruded mesh.

    With column-major dof numbering, the dofs of footprint node ``p``
    occupy the contiguous range ``[p*blk, (p+1)*blk)`` with ``blk =
    levels * ndof_per_node``; each diagonal block is a narrow banded
    matrix (the vertical tridiagonal coupling) that we factor once and
    solve batched.
    """

    def __init__(self, A: CsrMatrix, block_size: int, omega: float = 0.9, iters: int = 1):
        n = A.shape[0]
        if n % block_size != 0:
            raise ValueError(f"matrix size {n} not divisible by column block {block_size}")
        self.A = A
        self.blk = block_size
        self.nblocks = n // block_size
        self.omega = omega
        self.iters = iters
        self._factorize()

    def _factorize(self) -> None:
        blk, nb = self.blk, self.nblocks
        blocks = np.zeros((nb, blk, blk))
        rows = np.repeat(np.arange(self.A.shape[0]), np.diff(self.A.indptr))
        cols = self.A.indices
        rb, cb = rows // blk, cols // blk
        onblock = rb == cb
        blocks[rb[onblock], rows[onblock] % blk, cols[onblock] % blk] = self.A.data[onblock]
        self.lu_blocks = blocks
        self.inv_blocks = _invert_column_blocks(blocks)

    def apply(self, r: np.ndarray) -> np.ndarray:
        return self.smooth(self.A, r, np.zeros_like(r), self.iters)

    def smooth(self, A, b, x, iters: int | None = None) -> np.ndarray:
        x = np.array(x, dtype=np.float64)
        for _ in range(self.iters if iters is None else iters):
            r = b - A.matvec(x)
            rb = r.reshape(self.nblocks, self.blk)
            dx = np.matmul(self.inv_blocks, rb[..., None])[..., 0]
            x += self.omega * dx.ravel()
        return x


class MatrixFreeVerticalLineSmoother:
    """Vertical-line relaxation without an assembled matrix.

    The same block-Jacobi column solve as :class:`VerticalLineSmoother`,
    but the per-column diagonal blocks are extracted straight from the
    operator's element Jacobian blocks (``MatrixFreeJacobian.
    column_blocks``) and the residual uses the element-by-element
    matvec -- no CSR structure anywhere.

    The batched solve is *3D-blocked* in the sense of the geodynamics
    matrix-free smoother literature: columns are processed in contiguous
    footprint tiles (``tile`` columns at a time), so the working set of
    one tile -- its inverse blocks plus residual slice -- fits cache
    while streaming over the full domain.  ``tile=None`` processes all
    columns in one batched GEMV, which is optimal at the problem sizes
    the pure-Python tests run; the tiled path exists to model (and
    test) the blocked execution shape.
    """

    def __init__(self, op, block_size: int, omega: float = 0.9, iters: int = 1, tile: int | None = None):
        column_blocks = getattr(op, "column_blocks", None)
        if column_blocks is None:
            from repro.fem.matfree import OperatorModeError

            raise OperatorModeError(
                "MatrixFreeVerticalLineSmoother needs an operator exposing "
                f"column_blocks() (e.g. MatrixFreeJacobian); got {type(op).__name__}"
            )
        n = op.shape[0]
        if n % block_size != 0:
            raise ValueError(f"operator size {n} not divisible by column block {block_size}")
        if tile is not None and tile <= 0:
            raise ValueError("tile must be positive (or None for one batch)")
        self.A = op
        self.blk = int(block_size)
        self.nblocks = n // self.blk
        self.omega = omega
        self.iters = iters
        self.tile = tile
        self.inv_blocks = _invert_column_blocks(column_blocks(self.blk))

    def apply(self, r: np.ndarray) -> np.ndarray:
        return self.smooth(self.A, r, np.zeros_like(r), self.iters)

    def _block_solve(self, rb: np.ndarray) -> np.ndarray:
        if self.tile is None:
            return np.matmul(self.inv_blocks, rb[..., None])[..., 0]
        dx = np.empty_like(rb)
        for a in range(0, self.nblocks, self.tile):
            b = min(a + self.tile, self.nblocks)
            dx[a:b] = np.matmul(self.inv_blocks[a:b], rb[a:b, :, None])[..., 0]
        return dx

    def smooth(self, A, b, x, iters: int | None = None) -> np.ndarray:
        x = np.array(x, dtype=np.float64)
        for _ in range(self.iters if iters is None else iters):
            r = b - A.matvec(x)
            rb = r.reshape(self.nblocks, self.blk)
            x += self.omega * self._block_solve(rb).ravel()
        return x


class Ilu0Preconditioner:
    """Incomplete LU with zero fill (same sparsity as A).

    Reference implementation (row-by-row IKJ variant); intended for
    modest problem sizes and as the AMG alternative in experiments.
    """

    def __init__(self, A: CsrMatrix):
        self.A = A
        n = A.shape[0]
        if A.shape[0] != A.shape[1]:
            raise ValueError("ILU(0) requires a square matrix")
        indptr, indices = A.indptr, A.indices
        data = A.data.copy()
        diag_ptr = np.full(n, -1, dtype=np.int64)
        for i in range(n):
            for p in range(indptr[i], indptr[i + 1]):
                if indices[p] == i:
                    diag_ptr[i] = p
        if np.any(diag_ptr < 0):
            raise ValueError("ILU(0) requires a full diagonal")

        for i in range(n):
            row_cols = indices[indptr[i] : indptr[i + 1]]
            row_pos = {int(c): int(indptr[i] + k) for k, c in enumerate(row_cols)}
            for p in range(indptr[i], indptr[i + 1]):
                k = indices[p]
                if k >= i:
                    break
                dk = data[diag_ptr[k]]
                if dk == 0.0:
                    raise ZeroDivisionError(f"zero pivot in ILU(0) at row {k}")
                lik = data[p] / dk
                data[p] = lik
                for q in range(diag_ptr[k] + 1, indptr[k + 1]):
                    j = indices[q]
                    pj = row_pos.get(int(j))
                    if pj is not None:
                        data[pj] -= lik * data[q]
        self.indptr, self.indices, self.data, self.diag_ptr = indptr, indices, data, diag_ptr
        self.n = n

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Solve ``L U z = r`` (unit-diagonal L)."""
        indptr, indices, data, diag_ptr = self.indptr, self.indices, self.data, self.diag_ptr
        z = np.array(r, dtype=np.float64)
        # forward: L z = r
        for i in range(self.n):
            s = z[i]
            for p in range(indptr[i], diag_ptr[i]):
                s -= data[p] * z[indices[p]]
            z[i] = s
        # backward: U x = z
        for i in range(self.n - 1, -1, -1):
            s = z[i]
            for p in range(diag_ptr[i] + 1, indptr[i + 1]):
                s -= data[p] * z[indices[p]]
            z[i] = s / data[diag_ptr[i]]
        return z
