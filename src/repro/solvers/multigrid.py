"""Matrix-dependent semicoarsening AMG for extruded meshes (MDSC-AMG).

Follows the structure of Tuminaro, Perego, Tezaur, Salinger & Price
(SISC 2016), the preconditioner MALI uses: because ice sheets are thin,
the extruded mesh is extremely anisotropic, so the hierarchy first
coarsens only in the *vertical* direction (semicoarsening) with
vertical-line smoothing, and once columns are collapsed to a single
layer it switches to standard horizontal aggregation AMG.

* Vertical levels: piecewise-constant aggregation of adjacent layers
  within each column; Galerkin coarse operators; vertical-line smoother.
* Horizontal levels: greedy strength-based aggregation on the collapsed
  2-D operator; damped-Jacobi smoothing; direct coarse solve.

Applied as one V-cycle per preconditioner application inside GMRES.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.sparse import CsrMatrix
from repro.observability import get_tracer
from repro.solvers.smoothers import (
    JacobiSmoother,
    MatrixFreeVerticalLineSmoother,
    VerticalLineSmoother,
)

__all__ = [
    "MgLevel",
    "SemicoarseningMultigrid",
    "ColumnCollapseMdsc",
    "MatrixFreeColumnCollapseMdsc",
    "build_mdsc_amg",
]


def _galerkin(A: CsrMatrix, P: CsrMatrix) -> CsrMatrix:
    """Coarse operator ``P^T A P`` (scipy sparse kernels as the backend)."""
    As, Ps = A.to_scipy(), P.to_scipy()
    return CsrMatrix.from_scipy((Ps.T @ As @ Ps).tocsr())


def _smooth_prolongator(A: CsrMatrix, P: CsrMatrix, omega: float = 0.66) -> CsrMatrix:
    """Damped-Jacobi prolongator smoothing: ``P <- (I - w D^-1 A) P``.

    Plain piecewise-constant aggregation yields an indefinite
    preconditioned operator on the nonsymmetric Stokes Jacobian (coarse
    corrections overshoot); one Jacobi smoothing pass on the tentative
    prolongator -- the smoothed-aggregation construction of ML/MueLu --
    restores a contraction.
    """
    import scipy.sparse as sp

    d = A.diagonal()
    d[d == 0.0] = 1.0
    Dinv = sp.diags(omega / d)
    Ps = P.to_scipy()
    return CsrMatrix.from_scipy((Ps - Dinv @ (A.to_scipy() @ Ps)).tocsr())


def _aggregation_prolongator(n_fine: int, agg: np.ndarray, n_coarse: int) -> CsrMatrix:
    """Piecewise-constant prolongator from an aggregate map."""
    if agg.shape != (n_fine,):
        raise ValueError("aggregate map must cover every fine dof")
    return CsrMatrix.from_coo(np.arange(n_fine), agg, np.ones(n_fine), (n_fine, n_coarse))


def vertical_aggregates(num_columns: int, levels: int, ndof: int) -> tuple[np.ndarray, int, int]:
    """Pair adjacent layers within each column.

    Dof numbering is column-major: dof = (col * levels + level) * ndof +
    comp.  Returns (aggregate map, coarse levels, coarse size).
    """
    coarse_levels = (levels + 1) // 2
    lev = np.arange(levels) // 2  # 0,0,1,1,2,...
    col = np.arange(num_columns)
    comp = np.arange(ndof)
    agg = (
        (col[:, None, None] * coarse_levels + lev[None, :, None]) * ndof + comp[None, None, :]
    ).ravel()
    return agg, coarse_levels, num_columns * coarse_levels * ndof


def horizontal_aggregates(A: CsrMatrix, ndof: int, theta: float = 0.02) -> tuple[np.ndarray, int]:
    """Greedy strength-based aggregation of the node graph of ``A``.

    Nodes (groups of ``ndof`` dofs) are aggregated with their strongly
    connected unaggregated neighbors; leftovers join a neighboring
    aggregate.  Returns a dof-level aggregate map and the coarse size.
    """
    n = A.shape[0]
    if n % ndof != 0:
        raise ValueError("matrix size not divisible by ndof")
    nn = n // ndof
    # node-level connection strength: max |a_ij| over the dof block
    rows = np.repeat(np.arange(n), np.diff(A.indptr))
    rb, cb = rows // ndof, A.indices // ndof
    absval = np.abs(A.data)
    diag = np.zeros(nn)
    np.maximum.at(diag, rb[rb == cb], absval[rb == cb])
    diag[diag == 0.0] = 1.0

    off = rb != cb
    strong = absval[off] >= theta * np.sqrt(diag[rb[off]] * diag[cb[off]])
    er, ec = rb[off][strong], cb[off][strong]
    # adjacency in CSR form
    order = np.argsort(er, kind="stable")
    er, ec = er[order], ec[order]
    nbr_ptr = np.zeros(nn + 1, dtype=np.int64)
    np.add.at(nbr_ptr, er + 1, 1)
    np.cumsum(nbr_ptr, out=nbr_ptr)

    agg_of = np.full(nn, -1, dtype=np.int64)
    next_agg = 0
    for v in range(nn):
        if agg_of[v] >= 0:
            continue
        nbrs = ec[nbr_ptr[v] : nbr_ptr[v + 1]]
        free = nbrs[agg_of[nbrs] < 0]
        if len(nbrs) and len(free) == 0:
            # every strong neighbor is already taken: a true straggler.
            # Seeding a new aggregate here would make it a singleton that
            # inflates the coarse operator; defer it to the attach pass.
            continue
        agg_of[v] = next_agg
        agg_of[free] = next_agg
        next_agg += 1
    # attach stragglers to a neighboring aggregate (only isolated nodes
    # -- no strong connections at all -- seed singletons above)
    for v in range(nn):
        if agg_of[v] < 0:
            agg_of[v] = agg_of[ec[nbr_ptr[v]]]

    dof_agg = (agg_of[:, None] * ndof + np.arange(ndof)[None, :]).ravel()
    return dof_agg, next_agg * ndof


class ColumnCollapseMdsc:
    """Two-level MDSC preconditioner: line smoothing + full vertical collapse.

    The production preconditioner for the ice Jacobian.  Semicoarsening
    is taken to its limit in one step -- the coarse space has one dof per
    (column, velocity component), i.e. the vertically-collapsed membrane
    problem -- with exact vertical-line relaxation as pre/post smoother.
    This mirrors the structure MDSC-AMG reaches after its vertical
    phase, and is robust on the strongly anisotropic, variable-viscosity
    operators where intermediate pairwise vertical aggregation produces
    indefinite corrections.
    """

    def __init__(
        self,
        A: CsrMatrix,
        num_columns: int,
        levels: int,
        ndof: int = 2,
        smoother_iters: int = 2,
        coarse_damping: float = 1.0,
        vertical_omega: float = 0.9,
    ):
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        n = A.shape[0]
        if n != num_columns * levels * ndof:
            raise ValueError("matrix size inconsistent with columns x levels x ndof")
        self.A = A
        self.smoother = VerticalLineSmoother(A, levels * ndof, omega=vertical_omega, iters=smoother_iters)
        col = np.arange(n) // (levels * ndof)
        comp = np.arange(n) % ndof
        agg = col * ndof + comp
        nc = num_columns * ndof
        self.P = CsrMatrix.from_coo(np.arange(n), agg, np.ones(n), (n, nc))
        Ps = self.P.to_scipy()
        Ac = (Ps.T @ A.to_scipy() @ Ps).tocsc()
        # tiny shift guards numerically singular collapsed blocks
        Ac = Ac + sp.identity(nc, format="csc") * (1.0e-12 * abs(Ac).max())
        self._coarse = spla.splu(Ac)
        self.coarse_damping = coarse_damping

    @property
    def bytes_per_apply(self) -> float:
        """Modeled HBM traffic of one V-cycle (roofline attribution).

        Each smoother sweep streams the fine operator once (its
        residual matvec) plus three vector passes for the block solve
        and update; the coarse correction adds one fine residual matvec
        and the restriction/prolongation vector streams (the tiny
        collapsed factor solve is counted as coarse-vector traffic).
        """
        from repro.gpusim.solver_bytes import spmv_bytes, vector_stream_bytes

        n, nnz = self.A.shape[0], self.A.nnz
        sweeps = 2 * self.smoother.iters  # pre + post relaxation
        smoother_b = sweeps * (spmv_bytes(n, nnz) + 3 * vector_stream_bytes(n))
        coarse_b = (
            spmv_bytes(n, nnz)
            + 4 * vector_stream_bytes(n)
            + 4 * vector_stream_bytes(self.P.shape[1])
        )
        return smoother_b + coarse_b

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Pre-smooth, coarse-correct on the collapsed membrane, post-smooth."""
        tr = get_tracer()
        with tr.span("mdsc.vcycle", kind="column-collapse") as sp:
            if tr.recording:
                sp.args["bytes"] = self.bytes_per_apply
            x = self.smoother.smooth(self.A, r, np.zeros_like(r))
            rr = r - self.A.matvec(x)
            xc = self._coarse.solve(self.P.rmatvec(rr))
            x = x + self.coarse_damping * self.P.matvec(xc)
            return self.smoother.smooth(self.A, r, x)

    def describe(self) -> list[tuple[str, int, int]]:
        return [("vertical-line", self.A.shape[0], self.A.nnz), ("collapsed", self.P.shape[1], -1)]


class MatrixFreeColumnCollapseMdsc:
    """Column-collapse MDSC without an assembled fine-level matrix.

    The same two-level structure as :class:`ColumnCollapseMdsc` --
    vertical-line pre/post relaxation plus a collapsed-membrane coarse
    correction -- driven entirely by a matrix-free operator:

    * the line smoother takes its column blocks from the operator's
      element blocks (:class:`~repro.solvers.smoothers.
      MatrixFreeVerticalLineSmoother`);
    * restriction/prolongation are the piecewise-constant column
      collapse applied as a ``bincount`` / gather (the explicit
      prolongator matrix is never formed);
    * only the *coarse* membrane operator (one dof per column and
      component -- a tiny 2-D problem) is assembled, directly from the
      element blocks via ``MatrixFreeJacobian.collapse``, and factored
      once per Newton step.

    Iteration counts match the assembled preconditioner to rounding:
    the coarse operators agree up to floating-point association of the
    Galerkin triple product.
    """

    def __init__(
        self,
        op,
        num_columns: int,
        levels: int,
        ndof: int = 2,
        smoother_iters: int = 2,
        coarse_damping: float = 1.0,
        vertical_omega: float = 0.9,
    ):
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        n = op.shape[0]
        if n != num_columns * levels * ndof:
            raise ValueError("operator size inconsistent with columns x levels x ndof")
        collapse = getattr(op, "collapse", None)
        if collapse is None:
            from repro.fem.matfree import OperatorModeError

            raise OperatorModeError(
                "MatrixFreeColumnCollapseMdsc needs an operator exposing "
                f"collapse() (e.g. MatrixFreeJacobian); got {type(op).__name__}"
            )
        self.A = op
        self.smoother = MatrixFreeVerticalLineSmoother(
            op, levels * ndof, omega=vertical_omega, iters=smoother_iters
        )
        col = np.arange(n) // (levels * ndof)
        comp = np.arange(n) % ndof
        self.agg = col * ndof + comp
        self.ncoarse = num_columns * ndof
        Ac = collapse(self.agg, self.ncoarse).to_scipy().tocsc()
        # tiny shift guards numerically singular collapsed blocks (same
        # regularization as the assembled ColumnCollapseMdsc)
        Ac = Ac + sp.identity(self.ncoarse, format="csc") * (1.0e-12 * abs(Ac).max())
        self._coarse = spla.splu(Ac)
        self.coarse_damping = coarse_damping

    @property
    def bytes_per_apply(self) -> float:
        """Modeled HBM traffic of one V-cycle (roofline attribution).

        Same accounting as the assembled :class:`ColumnCollapseMdsc`
        with the operator streams priced at the element-block apply
        cost (``bytes_per_matvec``); restriction/prolongation are the
        ``bincount``/gather vector passes.
        """
        from repro.gpusim.solver_bytes import vector_stream_bytes

        n = self.A.shape[0]
        op_b = float(self.A.bytes_per_matvec)
        sweeps = 2 * self.smoother.iters  # pre + post relaxation
        smoother_b = sweeps * (op_b + 3 * vector_stream_bytes(n))
        coarse_b = op_b + 4 * vector_stream_bytes(n) + 4 * vector_stream_bytes(self.ncoarse)
        return smoother_b + coarse_b

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Pre-smooth, coarse-correct on the collapsed membrane, post-smooth."""
        tr = get_tracer()
        with tr.span("mdsc.vcycle", kind="column-collapse-matrix-free") as sp:
            if tr.recording:
                sp.args["bytes"] = self.bytes_per_apply
            x = self.smoother.smooth(self.A, r, np.zeros_like(r))
            rr = r - self.A.matvec(x)
            rc = np.bincount(self.agg, weights=rr, minlength=self.ncoarse)
            xc = self._coarse.solve(rc)
            x = x + self.coarse_damping * xc[self.agg]
            return self.smoother.smooth(self.A, r, x)

    def describe(self) -> list[tuple[str, int, int]]:
        return [("vertical-line/matrix-free", self.A.shape[0], -1), ("collapsed", self.ncoarse, -1)]


@dataclass
class MgLevel:
    """One level of the hierarchy."""

    A: CsrMatrix
    P: CsrMatrix | None  # prolongator to this level from the next-coarser
    smoother: object
    kind: str  # "vertical" | "horizontal" | "coarse"


class SemicoarseningMultigrid:
    """V-cycle preconditioner over a prebuilt MDSC-AMG hierarchy.

    ``coarse_damping`` under-relaxes every coarse-grid correction;
    piecewise-constant aggregation on the nonsymmetric, strongly
    anisotropic Stokes Jacobian overshoots in a few modes (the
    preconditioned operator turns indefinite at damping 1.0), and a
    damped correction restores a definite, contractive preconditioner.
    """

    def __init__(
        self,
        levels: list[MgLevel],
        pre_sweeps: int = 1,
        post_sweeps: int = 1,
        coarse_damping: float = 0.7,
    ):
        if not levels:
            raise ValueError("empty multigrid hierarchy")
        if not 0.0 < coarse_damping <= 1.0:
            raise ValueError("coarse damping must be in (0, 1]")
        self.levels = levels
        self.pre = pre_sweeps
        self.post = post_sweeps
        self.coarse_damping = coarse_damping
        import scipy.linalg as sla

        coarse = levels[-1].A.toarray()
        # regularize in case of a semi-definite coarse block
        coarse += 1.0e-12 * np.eye(coarse.shape[0]) * max(1.0, np.abs(coarse).max())
        self._coarse_lu = sla.lu_factor(coarse)

    def _coarse_solve(self, b: np.ndarray) -> np.ndarray:
        import scipy.linalg as sla

        return sla.lu_solve(self._coarse_lu, b)

    def _cycle(self, k: int, b: np.ndarray) -> np.ndarray:
        level = self.levels[k]
        if k == len(self.levels) - 1:
            return self._coarse_solve(b)
        x = level.smoother.smooth(level.A, b, np.zeros_like(b), self.pre)
        r = b - level.A.matvec(x)
        P = self.levels[k + 1].P
        rc = P.rmatvec(r)
        xc = self._cycle(k + 1, rc)
        x = x + self.coarse_damping * P.matvec(xc)
        x = level.smoother.smooth(level.A, b, x, self.post)
        return x

    @property
    def bytes_per_apply(self) -> float:
        """Modeled HBM traffic of one V-cycle across the hierarchy.

        Per level (except the direct-solved coarsest): pre+post smoother
        sweeps stream that level's operator plus three vector passes
        each, and the residual/transfer work adds one more operator
        stream and four vector passes.
        """
        from repro.gpusim.solver_bytes import spmv_bytes, vector_stream_bytes

        total = 0.0
        for lv in self.levels[:-1]:
            n, nnz = lv.A.shape[0], lv.A.nnz
            sweeps = self.pre + self.post
            total += sweeps * (spmv_bytes(n, nnz) + 3 * vector_stream_bytes(n))
            total += spmv_bytes(n, nnz) + 4 * vector_stream_bytes(n)
        total += 4 * vector_stream_bytes(self.levels[-1].A.shape[0])
        return total

    def apply(self, r: np.ndarray) -> np.ndarray:
        """One V-cycle approximating ``A^-1 r``."""
        tr = get_tracer()
        with tr.span("mdsc.vcycle", kind="amg", num_levels=len(self.levels)) as sp:
            if tr.recording:
                sp.args["bytes"] = self.bytes_per_apply
            return self._cycle(0, r)

    def describe(self) -> list[tuple[str, int, int]]:
        """(kind, n, nnz) per level -- for reports and tests."""
        return [(lv.kind, lv.A.shape[0], lv.A.nnz) for lv in self.levels]


def build_mdsc_amg(
    A: CsrMatrix,
    num_columns: int,
    levels: int,
    ndof: int = 2,
    coarse_size: int = 400,
    theta: float = 0.02,
    vertical_omega: float = 0.95,
    jacobi_omega: float = 0.7,
) -> SemicoarseningMultigrid:
    """Build the MDSC-AMG hierarchy for an extruded-mesh operator.

    ``num_columns``/``levels`` describe the extrusion (column-major dof
    numbering assumed); vertical semicoarsening halves the layer count
    until single-layer, then horizontal aggregation coarsens to
    ``coarse_size``.
    """
    with get_tracer().span("mdsc.build_hierarchy", n=A.shape[0], levels=levels):
        mg_levels: list[MgLevel] = [
            MgLevel(A, None, VerticalLineSmoother(A, levels * ndof, omega=vertical_omega), "vertical")
        ]
        cur_A, cur_levels = A, levels
        # vertical semicoarsening phase
        while cur_levels > 1:
            agg, cl, ncoarse = vertical_aggregates(num_columns, cur_levels, ndof)
            P = _aggregation_prolongator(cur_A.shape[0], agg, ncoarse)
            P = _smooth_prolongator(cur_A, P)
            Ac = _galerkin(cur_A, P)
            cur_A, cur_levels = Ac, cl
            smoother = (
                VerticalLineSmoother(Ac, cl * ndof, omega=vertical_omega)
                if cl > 1
                else JacobiSmoother(Ac, omega=jacobi_omega, iters=2)
            )
            mg_levels.append(MgLevel(Ac, P, smoother, "vertical"))

        # horizontal aggregation phase
        while cur_A.shape[0] > coarse_size:
            agg, ncoarse = horizontal_aggregates(cur_A, ndof, theta)
            if ncoarse >= cur_A.shape[0]:  # no coarsening progress; stop
                break
            P = _aggregation_prolongator(cur_A.shape[0], agg, ncoarse)
            P = _smooth_prolongator(cur_A, P)
            Ac = _galerkin(cur_A, P)
            mg_levels.append(
                MgLevel(Ac, P, JacobiSmoother(Ac, omega=jacobi_omega, iters=2), "horizontal")
            )
            cur_A = Ac

        mg_levels[-1] = MgLevel(mg_levels[-1].A, mg_levels[-1].P, mg_levels[-1].smoother, "coarse")
        return SemicoarseningMultigrid(mg_levels)
