"""Deterministic partitioned reductions (BFB across decompositions).

Climate codes built on MALI's stack (E3SM) require bit-for-bit (BFB)
reproducibility across processor layouts: the same problem solved on 1
rank or 64 must produce identical bits.  A naive partitioned dot product
breaks that -- ``sum_p dot(x_p, y_p)`` regroups the floating-point sum
by rank -- so Krylov trajectories, line-search branches and therefore
entire nonlinear solves diverge between decompositions.

:class:`BlockReducer` restores the property by fixing the summation
tree independently of the decomposition: vectors are split into
contiguous *blocks* (for the extruded-mesh solve, one block per vertical
column -- dof ownership is per column, so every block has exactly one
owner), each owner computes its blocks' partial sums, and the final
reduction sums the block partials in block order.  Serial and
distributed evaluations then perform bitwise-identical arithmetic; an
MPI implementation would realize the combine step as a fixed-order
(reproducible) allreduce of the partials.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BlockReducer", "column_block_reducer"]


class BlockReducer:
    """Dot products and norms with a fixed, block-partitioned sum order.

    Parameters
    ----------
    block_ptr:
        Monotone ``(nblocks + 1,)`` offsets splitting ``[0, n)`` into
        contiguous blocks; a distributed run assigns whole blocks to
        ranks.  Each block partial is an independent ``np.add.reduce``
        over its slice, so it is bitwise identical whether computed from
        the global array or from a rank's local copy.
    meter:
        Optional :class:`repro.mesh.partition.TrafficMeter`; every dot
        or norm records one ``allreduce`` event (the scalar combine a
        distributed run would perform).
    """

    def __init__(self, block_ptr: np.ndarray, meter=None):
        block_ptr = np.asarray(block_ptr, dtype=np.int64)
        if block_ptr.ndim != 1 or len(block_ptr) < 2:
            raise ValueError("block_ptr must list at least one block")
        if block_ptr[0] != 0 or np.any(np.diff(block_ptr) <= 0):
            raise ValueError("block_ptr must be strictly increasing from 0")
        self.block_ptr = block_ptr
        self.n = int(block_ptr[-1])
        self.meter = meter

    @property
    def num_blocks(self) -> int:
        return len(self.block_ptr) - 1

    def _record_allreduce(self) -> None:
        if self.meter is not None:
            # one 8-byte scalar contributed per rank into the combine tree
            self.meter.record("allreduce", None, None, 8 * self.meter.nparts)
            self.meter.count_event("allreduce")

    def block_partials(self, z: np.ndarray) -> np.ndarray:
        """Per-block sums of ``z`` (the quantity each owner contributes)."""
        z = np.asarray(z)
        if z.shape != (self.n,):
            raise ValueError(f"expected a vector of length {self.n}")
        return np.add.reduceat(z, self.block_ptr[:-1])

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        """Decomposition-independent ``x . y``."""
        partials = self.block_partials(np.asarray(x) * np.asarray(y))
        self._record_allreduce()
        return float(np.sum(partials))

    def dot_many(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Batched decomposition-independent dots ``[x_i . y for x_i in X]``.

        One fused pass over ``y`` and the rows of ``X`` -- the single
        kernel the fused-orthogonalization GMRES issues instead of
        ``len(X)`` separate :meth:`dot` calls -- with the same fixed
        block summation tree per row, so ``dot_many(X, y)[i]`` is
        bitwise equal to ``dot(X[i], y)``.  A distributed run combines
        all ``len(X)`` partial rows in one allreduce instead of one per
        column (recorded once on the meter accordingly).
        """
        X = np.asarray(X)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[1] != self.n:
            raise ValueError(f"expected rows of length {self.n}")
        partials = np.add.reduceat(X * y[None, :], self.block_ptr[:-1], axis=1)
        if self.meter is not None:
            # one combine of the stacked partial rows (8 bytes per row
            # per rank), not one allreduce per Krylov column
            self.meter.record("allreduce", None, None, 8 * X.shape[0] * self.meter.nparts)
            self.meter.count_event("allreduce")
        return np.sum(partials, axis=1)

    def norm(self, x: np.ndarray) -> float:
        """Decomposition-independent 2-norm (via :meth:`dot`)."""
        x = np.asarray(x)
        partials = self.block_partials(x * x)
        self._record_allreduce()
        return float(np.sqrt(np.sum(partials)))


def column_block_reducer(num_columns: int, levels: int, ndof: int = 2, meter=None) -> BlockReducer:
    """Reducer blocked by vertical column for the extruded-mesh dof layout.

    Column-major numbering makes each footprint column's ``levels x
    ndof`` dofs contiguous and gives every column a single owning rank,
    so column blocks are the natural BFB reduction unit.
    """
    block = levels * ndof
    return BlockReducer(np.arange(num_columns + 1, dtype=np.int64) * block, meter=meter)
