"""Physical constants and unit conventions for the land-ice model.

Unit system (follows Albany/FELIX conventions, Tezaur et al. 2015):

* lengths in meters,
* velocities in meters per year (m/yr),
* time in years,
* stresses in kilopascals (kPa) -- scaling the stress keeps residual and
  Jacobian entries O(1)-O(1e3) which keeps GMRES well conditioned,
* Glen's flow-rate factor ``A`` in kPa^-n yr^-1.

With these choices the effective viscosity from Glen's law comes out in
kPa*yr and the gravitational driving stress ``rho * g * H * grad(s)`` in
kPa, matching the magnitudes Albany assembles.
"""

from __future__ import annotations

#: Ice density [kg m^-3].
RHO_ICE = 910.0

#: Seawater density [kg m^-3] (used for floatation / shelf geometry).
RHO_SEAWATER = 1028.0

#: Gravitational acceleration [m s^-2].
GRAVITY = 9.8

#: Seconds per year (365.25 days).
SECONDS_PER_YEAR = 3.1536e7

#: rho * g expressed in kPa / m: 910 * 9.8 Pa/m = 8918 Pa/m = 8.918 kPa/m.
RHO_G_KPA = RHO_ICE * GRAVITY * 1.0e-3

#: Glen's flow-law exponent.
GLEN_N = 3.0

#: Default Glen's law flow-rate factor ``A`` [kPa^-3 yr^-1].
#: 3.1689e-24 Pa^-3 s^-1 * 3.1536e7 s/yr * (1e3 Pa/kPa)^3 ~= 1e-7.
GLEN_A_DEFAULT = 1.0e-7

#: Regularization added to the effective strain rate squared [yr^-2] so the
#: viscosity stays finite when the ice is motionless.
STRAIN_RATE_REG = 1.0e-10

#: Default basal friction coefficient for a linear sliding law [kPa yr m^-1].
BETA_DEFAULT = 1.0e1
