"""Supervised thread worker pool with checkpoint-resume on death.

The solve is pure-Python/numpy compute, so workers are plain threads
pulling :class:`Job` objects from a shared queue.  What makes the pool
a *service* component is the failure model:

* every accepted Newton step heartbeats through the solver's
  ``checkpoint_cb`` (:meth:`Job.beat`), leaving the latest
  :class:`~repro.resilience.NewtonCheckpoint` on the job;
* a worker can die mid-job -- abruptly (the chaos harness's
  :class:`KillSwitch` raises :class:`WorkerKilled` inside the
  heartbeat, the thread analogue of the fault plane's RankKill) or by
  hanging (heartbeat goes stale);
* the supervisor (:meth:`WorkerPool.reap`, polled by the service's
  async supervisor task) detects either, **requeues the in-flight job
  with ``resume_from`` set to its last checkpoint**, and respawns a
  replacement worker so the pool keeps its size.

Resume is exact: the fused Newton path re-evaluates the residual and
Jacobian at the checkpointed iterate exactly as an uninterrupted step
start would, so a killed-and-resumed solve is bitwise identical to an
undisturbed one -- the property the chaos check asserts.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time

from repro.observability import get_metrics

__all__ = ["Job", "KillSwitch", "Worker", "WorkerKilled", "WorkerPool"]


class WorkerKilled(RuntimeError):
    """Raised inside a worker to simulate its abrupt death."""


class KillSwitch:
    """Deterministic worker-kill schedule (the thread-pool RankKill).

    Armed per ``(scenario digest, Newton step)``: the worker solving
    that scenario dies at that step's heartbeat -- but only on the
    job's FIRST life (``resumes == 0``), so the revived job runs to
    completion instead of dying in a loop.  Each kill fires once.
    """

    def __init__(self):
        self._armed: set[tuple[str, int]] = set()
        self.fired: list[tuple[str, int]] = []
        self._lock = threading.Lock()

    def arm(self, digest: str, step: int) -> None:
        with self._lock:
            self._armed.add((digest, int(step)))

    def check(self, digest: str, step: int, resumes: int) -> None:
        """Called from the heartbeat; raises :class:`WorkerKilled` when armed."""
        if resumes > 0:
            return
        key = (digest, int(step))
        with self._lock:
            if key not in self._armed:
                return
            self._armed.remove(key)
            self.fired.append(key)
        raise WorkerKilled(f"kill switch fired for {digest} at step {step}")


class Job:
    """One unit of work: a solve request bound to an executor closure."""

    _ids = itertools.count(1)

    def __init__(self, execute, on_done, clock=time.monotonic):
        self.id = next(self._ids)
        #: ``execute(job) -> outcome`` run on a worker thread; may raise
        #: :class:`WorkerKilled` (death) -- anything else is the
        #: executor's responsibility to catch and encode in its outcome
        self.execute = execute
        #: ``on_done(job, outcome)`` called from the worker thread on
        #: completion (the service trampolines it onto the event loop)
        self.on_done = on_done
        self.clock = clock
        #: latest NewtonCheckpoint heartbeated by the solve (the
        #: ``resume_from`` of this job's next life)
        self.checkpoint = None
        #: times this job was revived after a worker death
        self.resumes = 0
        self.last_beat = clock()
        # exactly-once completion guard: a stalled-then-revived job may
        # eventually finish on BOTH threads; only the first result wins
        self._done = False
        self._done_lock = threading.Lock()

    def beat(self, checkpoint=None) -> None:
        """Heartbeat from the solver's ``checkpoint_cb``."""
        self.last_beat = self.clock()
        if checkpoint is not None:
            self.checkpoint = checkpoint

    def complete(self, outcome) -> bool:
        """Deliver the outcome exactly once; False if already delivered."""
        with self._done_lock:
            if self._done:
                return False
            self._done = True
        self.on_done(self, outcome)
        return True


class Worker:
    """One pool thread; ``current_job`` is its in-flight work (if any)."""

    _ids = itertools.count(1)

    def __init__(self, pool: "WorkerPool"):
        self.pool = pool
        self.id = next(self._ids)
        self.current_job: Job | None = None
        #: set by the supervisor when this worker is presumed hung and
        #: its job has been handed to a replacement
        self.abandoned = False
        self.thread = threading.Thread(
            target=self._run, name=f"solve-worker-{self.id}", daemon=True
        )
        self.thread.start()

    def _run(self) -> None:
        while True:
            job = self.pool._queue.get()
            if job is None:  # shutdown sentinel
                return
            self.current_job = job
            try:
                outcome = job.execute(job)
            except WorkerKilled:
                # abrupt death: leave current_job set for the reaper and
                # exit the thread -- the supervisor revives the job from
                # its checkpoint and respawns the worker
                return
            job.complete(outcome)
            self.current_job = None


class WorkerPool:
    """Fixed-size supervised pool over one shared job queue.

    The queue is unbounded at this layer -- supervisor requeues must
    never block or drop -- and the *service* enforces admission against
    :meth:`depth` before submitting, which is where bounded-queue
    semantics (load shedding) belong.
    """

    def __init__(self, workers: int = 2, heartbeat_timeout_s: float | None = None,
                 clock=time.monotonic):
        if workers < 1:
            raise ValueError("at least one worker required")
        self._queue: queue.Queue = queue.Queue()
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.clock = clock
        #: the size reap() maintains (resize() moves it)
        self.target = workers
        self.workers: list[Worker] = [Worker(self) for _ in range(workers)]
        self.deaths = 0
        self.stalls = 0
        self._closed = False

    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Jobs queued but not yet picked up (the admission signal)."""
        return self._queue.qsize()

    def busy(self) -> int:
        """Workers with a job in flight."""
        return sum(1 for w in self.workers if w.current_job is not None)

    def submit(self, job: Job) -> None:
        if self._closed:
            raise RuntimeError("pool is shut down")
        self._queue.put(job)
        get_metrics().gauge("serve.queue_depth").set(self.depth())

    # ------------------------------------------------------------------
    def _revive(self, worker: Worker, cause: str) -> Job | None:
        job = worker.current_job
        worker.current_job = None
        if job is None or job._done:
            return None
        job.resumes += 1
        job.last_beat = self.clock()
        get_metrics().counter("serve.job.resumes").inc()
        # back of the queue with resume_from = its last checkpoint: any
        # idle worker (including the respawn) picks it up
        self._queue.put(job)
        return job

    def reap(self) -> list[Job]:
        """Detect dead/hung workers; requeue their jobs; respawn.

        Returns the revived jobs (for the supervisor's logging).  A
        dead thread is unambiguous.  A *hung* one (stale heartbeat) is
        presumed dead: its job is handed to a replacement and the old
        thread is marked abandoned -- if it ever finishes anyway, the
        job's exactly-once guard discards the late result.
        """
        revived: list[Job] = []
        metrics = get_metrics()
        for w in list(self.workers):
            if not w.thread.is_alive():
                if w.current_job is None and len(self.workers) > self.target:
                    # retired cleanly by resize(): prune, don't respawn
                    self.workers.remove(w)
                    continue
                self.deaths += 1
                metrics.counter("serve.worker.deaths").inc()
                job = self._revive(w, "death")
                if job is not None:
                    revived.append(job)
                self.workers[self.workers.index(w)] = Worker(self)
                continue
            if (
                self.heartbeat_timeout_s is not None
                and not w.abandoned
                and w.current_job is not None
                and self.clock() - w.current_job.last_beat > self.heartbeat_timeout_s
            ):
                self.stalls += 1
                metrics.counter("serve.worker.stalls").inc()
                w.abandoned = True
                job = self._revive(w, "stall")
                if job is not None:
                    revived.append(job)
                self.workers[self.workers.index(w)] = Worker(self)
        return revived

    def resize(self, workers: int) -> None:
        """Grow or shrink the pool to ``workers`` threads.

        Shrinking enqueues retirement sentinels; whichever idle threads
        take them exit cleanly, and the next :meth:`reap` prunes their
        entries (a busy worker finishes its job first, so in-flight
        work is never lost to a resize).
        """
        if workers < 1:
            raise ValueError("at least one worker required")
        grow = workers - self.target
        self.target = workers
        if grow > 0:
            for _ in range(grow):
                self.workers.append(Worker(self))
        else:
            for _ in range(-grow):
                self._queue.put(None)

    def shutdown(self, join_timeout_s: float = 5.0) -> None:
        self._closed = True
        for _ in self.workers:
            self._queue.put(None)
        for w in self.workers:
            w.thread.join(timeout=join_timeout_s)
