"""The resilient asyncio solve service.

Request lifecycle (all policy decisions on the event-loop thread, all
numerics on worker threads):

1. **dedup** -- an identical scenario already in flight?  Join its
   future; one solve serves every concurrent duplicate.
2. **circuit breaker** -- per-scenario; a scenario that keeps failing
   is shed (``breaker_open``) until its half-open probe succeeds.
3. **degradation ladder** -- admission looks at queue depth:
   normal -> *cheaper preconditioner rung* -> *coarser mesh* ->
   *cached last-good result* -> shed (``queue_full``).  Degraded
   responses are typed (``degraded`` + rung) so callers know what they
   got; they are never bitwise-compared to full-fidelity results.
4. **deadline** -- the wall-clock budget starts at admission (queue
   wait counts), propagates into Newton/GMRES as a cooperative
   :class:`~repro.resilience.Deadline`, and expires as a typed
   ``timeout`` response carrying the last checkpoint as a partial.
5. **execution** -- a worker thread builds/reuses the scenario's
   cached artifacts, solves under heartbeat + kill-switch, retries
   transient failures with the recovery policy's jittered exponential
   backoff, and trampolines the outcome back onto the loop.
6. **supervision** -- an async task polls the pool: dead or hung
   workers are respawned and their jobs resumed from the last
   heartbeated checkpoint (bitwise-exact continuation).

Every decision increments a ``serve.*`` metric through the standard
observability registry, so the OpenMetrics exposition and the chaos
harness read one source of truth.
"""

from __future__ import annotations

import asyncio
import time

from repro.observability import get_metrics, get_series, get_tracer
from repro.resilience.deadline import Deadline, SolveTimeout
from repro.resilience.policies import RecoveryPolicy
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import ArtifactCache
from repro.serve.pool import Job, KillSwitch, WorkerKilled, WorkerPool
from repro.serve.requests import SolveRequest, SolveResponse, SolveScenario

__all__ = ["SolveService"]


class SolveService:
    """Bounded-queue solve service with retries, breaking and degradation."""

    def __init__(
        self,
        workers: int = 2,
        queue_size: int = 8,
        policy: RecoveryPolicy | None = None,
        cache: ArtifactCache | None = None,
        failure_threshold: int = 3,
        probe_after: int = 2,
        degrade_precond_depth: int | None = None,
        degrade_mesh_depth: int | None = None,
        heartbeat_timeout_s: float | None = None,
        supervise_interval_s: float = 0.005,
        kill_switch: KillSwitch | None = None,
        breaker_enabled: bool = True,
        clock=time.monotonic,
    ):
        if queue_size < 1:
            raise ValueError("queue_size must be positive")
        self.queue_size = queue_size
        #: depth thresholds of the degradation ladder; defaults carve the
        #: bounded queue into thirds (pressure rises -> rungs get cheaper)
        self.degrade_precond_depth = (
            degrade_precond_depth if degrade_precond_depth is not None
            else max(1, queue_size // 3)
        )
        self.degrade_mesh_depth = (
            degrade_mesh_depth if degrade_mesh_depth is not None
            else max(2, (2 * queue_size) // 3)
        )
        self.policy = policy if policy is not None else RecoveryPolicy(
            max_retries=1, backoff_s=0.0, backoff_jitter=0.5
        )
        self.cache = cache if cache is not None else ArtifactCache()
        self.failure_threshold = failure_threshold
        self.probe_after = probe_after
        self.breaker_enabled = breaker_enabled
        self.kill_switch = kill_switch if kill_switch is not None else KillSwitch()
        self.clock = clock
        self.supervise_interval_s = supervise_interval_s
        self.pool = WorkerPool(
            workers=workers, heartbeat_timeout_s=heartbeat_timeout_s, clock=clock
        )
        self.breakers: dict[str, CircuitBreaker] = {}
        #: digest -> future of the in-flight solve (the dedup join point)
        self._inflight: dict[str, asyncio.Future] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._supervisor: asyncio.Task | None = None
        self._running = False
        #: every terminal response, in completion order (chaos assertions)
        self.responses: list[SolveResponse] = []

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._running = True
        self._supervisor = self._loop.create_task(self._supervise())

    async def stop(self) -> None:
        self._running = False
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        self.pool.shutdown()

    async def __aenter__(self) -> "SolveService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def _supervise(self) -> None:
        """Reap dead/hung workers and resume their jobs from checkpoints."""
        while self._running:
            revived = self.pool.reap()
            for job in revived:
                get_series().record(
                    "serve.worker_revival", job.resumes, job_id=str(job.id)
                )
            await asyncio.sleep(self.supervise_interval_s)

    # ------------------------------------------------------------------
    def breaker(self, digest: str) -> CircuitBreaker:
        br = self.breakers.get(digest)
        if br is None:
            br = CircuitBreaker(
                digest,
                failure_threshold=self.failure_threshold,
                probe_after=self.probe_after,
            )
            self.breakers[digest] = br
        return br

    def _finish(self, response: SolveResponse, t0: float) -> SolveResponse:
        response.latency_s = self.clock() - t0
        get_metrics().histogram("serve.latency_s").observe(response.latency_s)
        get_metrics().counter(f"serve.response.{response.status}").inc()
        self.responses.append(response)
        return response

    # ------------------------------------------------------------------
    async def submit(self, request: SolveRequest) -> SolveResponse:
        """Admit, (maybe) degrade, solve and respond -- the public API."""
        t0 = self.clock()
        metrics = get_metrics()
        metrics.counter("serve.requests").inc()
        scenario = request.scenario
        digest = scenario.digest

        # 1. dedup: identical problem already solving?  Join it -- the
        # admission work (breaker, ladder) was already done once.
        existing = self._inflight.get(digest)
        if existing is not None:
            metrics.counter("serve.dedup").inc()
            primary = await asyncio.shield(existing)
            joined = SolveResponse(
                request=request,
                status=primary.status,
                reason=primary.reason,
                result=primary.result,
                partial=primary.partial,
                solved=primary.solved,
                deduped=True,
                attempts=primary.attempts,
                resumes=primary.resumes,
            )
            return self._finish(joined, t0)

        # 2. circuit breaker (per scenario digest)
        br = self.breaker(digest)
        if self.breaker_enabled and not br.allow():
            metrics.counter("serve.shed.breaker_open").inc()
            return self._finish(
                SolveResponse(request=request, status="shed", reason="breaker_open"),
                t0,
            )

        # 3. degradation ladder by queue pressure
        solved = scenario
        precond_override: str | None = None
        rung = ""
        depth = self.pool.depth()
        if depth >= self.queue_size:
            cached = self.cache.cached_result(scenario)
            if cached is not None:
                metrics.counter("serve.degraded.cached").inc()
                return self._finish(
                    SolveResponse(
                        request=request, status="degraded", reason="cached",
                        result=cached, solved=scenario,
                    ),
                    t0,
                )
            metrics.counter("serve.shed.queue_full").inc()
            return self._finish(
                SolveResponse(request=request, status="shed", reason="queue_full"), t0
            )
        if depth >= self.degrade_mesh_depth:
            solved = scenario.coarsened()
            rung = "coarse_mesh"
            metrics.counter("serve.degraded.coarse_mesh").inc()
        elif depth >= self.degrade_precond_depth:
            cheaper = scenario.to_config().velocity.cheaper_preconditioner()
            if cheaper is not None:
                precond_override = cheaper
                rung = "cheap_precond"
                metrics.counter("serve.degraded.cheap_precond").inc()

        # 4. deadline clock starts now: queue wait spends the budget
        deadline = (
            Deadline(request.deadline_s, clock=self.clock)
            if request.deadline_s is not None
            else None
        )

        # 5. enqueue; the worker resolves artifacts and solves
        loop = self._loop or asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        resp_fut: asyncio.Future = loop.create_future()
        if rung == "":
            # only full-fidelity in-flight solves are dedup targets: a
            # joiner must get what it asked for, not a degraded stand-in;
            # joiners await resp_fut, which resolves to the FINAL typed
            # response (after breaker accounting), not the raw outcome
            self._inflight[digest] = resp_fut

        def execute(job: Job):
            return self._execute(job, solved, precond_override, deadline)

        def on_done(job: Job, outcome) -> None:
            loop.call_soon_threadsafe(self._resolve, fut, outcome)

        job = Job(execute, on_done, clock=self.clock)
        self.pool.submit(job)
        try:
            outcome = await fut
        except BaseException:
            if not resp_fut.done():
                resp_fut.cancel()
            raise
        finally:
            if self._inflight.get(digest) is resp_fut:
                del self._inflight[digest]

        # 6. typed response + breaker accounting (loop thread, race-free)
        kind, payload, attempts, resumes = outcome
        if kind == "ok":
            self.cache.remember_good(solved, payload)
            br.record_success()
            status = "degraded" if rung else "ok"
            resp = SolveResponse(
                request=request, status=status, reason=rung, result=payload,
                solved=solved, attempts=attempts, resumes=resumes,
            )
        elif kind == "timeout":
            br.record_failure("timeout")
            resp = SolveResponse(
                request=request, status="timeout", reason=str(payload),
                partial=payload.checkpoint, solved=solved,
                attempts=attempts, resumes=resumes,
            )
        else:
            br.record_failure(str(payload))
            resp = SolveResponse(
                request=request, status="failed", reason=str(payload),
                solved=solved, attempts=attempts, resumes=resumes,
            )
        if not resp_fut.done():
            resp_fut.set_result(resp)
        return self._finish(resp, t0)

    @staticmethod
    def _resolve(fut: asyncio.Future, outcome) -> None:
        if not fut.done():
            fut.set_result(outcome)

    # ------------------------------------------------------------------
    def _execute(self, job: Job, scenario: SolveScenario, precond_override, deadline):
        """Worker-thread body: artifacts, heartbeat, retries, typed outcome.

        Returns ``(kind, payload, attempts, resumes)`` -- never raises,
        except :class:`WorkerKilled` which deliberately escapes to kill
        the thread (the supervisor revives the job from its last
        heartbeated checkpoint, so ``job.resumes``/``job.checkpoint``
        carry across lives).
        """
        tr = get_tracer()
        attempts = 0
        while True:
            attempts += 1
            try:
                with tr.span(
                    "serve.execute", scenario=scenario.name, attempt=attempts,
                    resumes=job.resumes,
                ):
                    entry = self.cache.get(scenario)

                    def heartbeat(ckpt) -> None:
                        job.beat(ckpt)
                        self.kill_switch.check(scenario.digest, ckpt.step, job.resumes)

                    with entry.lock:
                        sol = entry.problem.solve(
                            checkpoint_every=1,
                            checkpoint_cb=heartbeat,
                            resume_from=job.checkpoint,
                            deadline=deadline,
                            preconditioner=precond_override,
                        )
                return ("ok", sol, attempts, job.resumes)
            except SolveTimeout as exc:
                # terminal: the budget is spent; retrying cannot help
                return ("timeout", exc, attempts, job.resumes)
            except WorkerKilled:
                # not a solve failure: the WORKER dies (thread exits);
                # the supervisor revives this job from its checkpoint
                raise
            except Exception as exc:  # noqa: BLE001 - typed into the response
                get_metrics().counter("serve.solve_errors").inc()
                if attempts > self.policy.max_retries:
                    return ("failed", exc, attempts, job.resumes)
                get_metrics().counter("serve.retries").inc()
                delay = self.policy.backoff(attempts)
                if delay > 0.0:
                    time.sleep(delay)
