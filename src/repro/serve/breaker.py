"""Per-scenario circuit breaker: stop hammering a failing problem.

A scenario that keeps timing out or diverging wastes a worker per
attempt while healthy requests queue behind it.  The breaker cuts that
off with the classic three-state machine, driven entirely by request
outcomes (no wall-clock cooldown -- a deterministic request-count
schedule, so chaos runs replay identically):

* **closed** -- requests flow; ``failure_threshold`` *consecutive*
  failures trip it open (a single success resets the streak);
* **open** -- requests are shed with ``breaker_open``; after
  ``probe_after`` sheds the next request is admitted as the half-open
  probe;
* **half-open** -- exactly one probe runs (concurrent requests keep
  shedding); success closes the breaker, failure reopens it and the
  shed count starts over.

Every transition is recorded (with the driving request ordinal) so the
chaos harness can assert the exact open -> half-open -> closed script.
"""

from __future__ import annotations

from repro.observability import get_metrics

__all__ = ["CircuitBreaker"]

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"
_STATE_CODE = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitBreaker:
    """Outcome-driven breaker for one scenario digest."""

    def __init__(self, scenario: str, failure_threshold: int = 3, probe_after: int = 2):
        if failure_threshold < 1 or probe_after < 1:
            raise ValueError("failure_threshold and probe_after must be >= 1")
        self.scenario = scenario
        self.failure_threshold = failure_threshold
        self.probe_after = probe_after
        self.state = CLOSED
        self.consecutive_failures = 0
        #: sheds since the breaker last opened (drives the probe schedule)
        self.rejections = 0
        #: True while the single half-open probe is in flight
        self.probe_in_flight = False
        #: chronological (from_state, to_state, detail) record
        self.transitions: list[dict] = []

    # ------------------------------------------------------------------
    def _move(self, to_state: str, **detail) -> None:
        self.transitions.append({"from": self.state, "to": to_state, **detail})
        self.state = to_state
        get_metrics().gauge("serve.breaker.state").set(_STATE_CODE[to_state])
        get_metrics().counter(f"serve.breaker.{to_state}").inc()

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Admission decision for one request (counts a shed when False)."""
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN:
            # one probe at a time; everyone else keeps shedding
            if self.probe_in_flight:
                self.rejections += 1
                return False
            self.probe_in_flight = True
            return True
        # OPEN: shed until the probe schedule arms the half-open state;
        # the arming request is itself still shed -- the NEXT request
        # becomes the probe (K failures, then probe_after sheds, then
        # one probe: the exact script the chaos harness asserts)
        self.rejections += 1
        if self.rejections >= self.probe_after:
            self._move(HALF_OPEN, after_rejections=self.rejections)
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.probe_in_flight = False
            self.rejections = 0
            self._move(CLOSED, probe="success")

    def record_failure(self, reason: str = "") -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # failed probe: back to open, shed count restarts
            self.probe_in_flight = False
            self.rejections = 0
            self._move(OPEN, probe="failure", reason=reason)
            return
        if self.state == CLOSED and self.consecutive_failures >= self.failure_threshold:
            self.rejections = 0
            self._move(OPEN, consecutive_failures=self.consecutive_failures, reason=reason)

    def describe(self) -> dict:
        return {
            "scenario": self.scenario,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "rejections": self.rejections,
            "transitions": list(self.transitions),
        }
