"""The serve chaos check: ``python -m repro serve --check``.

One deterministic scenario exercising every resilience mechanism the
service claims, with a hard acceptance bar:

* **wave A (dedup)** -- three concurrent identical requests: exactly
  one solve runs, two join it;
* **wave B (worker kills)** -- two requests on distinct scenarios,
  each worker killed mid-solve by the :class:`KillSwitch` (steps 1 and
  2); the supervisor revives both jobs from their heartbeated
  checkpoints;
* **wave C (fault injection)** -- an SPMD (2-rank) request solved with
  the fault plane armed: a corrupted halo payload and a NaN-poisoned
  evaluator sweep, both recovered by the PR-4 ladder;
* **wave D (deadline storm + breaker)** -- three zero-budget requests
  time out immediately (typed, no partial garbage), opening the
  scenario's breaker; two more requests are shed ``breaker_open``; the
  next is admitted as the half-open probe, succeeds, and closes the
  breaker.

Acceptance: every admitted request completes or is shed with a typed
reason; every *completed full-fidelity* result is **bitwise identical**
to an independent fault-free solve of the same scenario; the breaker
walks exactly closed -> open -> half-open -> closed.  ``disarm_breaker``
is the CI negative control: with the breaker disabled the storm wave
cannot produce its sheds/transitions and the check must exit nonzero.

Determinism notes: the fault plane is process-global, so wave C runs
with no other request in flight; worker kills are keyed by (scenario
digest, step) and fire only on a job's first life; the deadline storm
uses a zero budget, which expires at the first cooperative check
regardless of machine speed.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import observability as obs
from repro.perf import format_table
from repro.resilience.injectors import BitFlip, FaultSchedule, NaNPoison, fault_injection
from repro.resilience.policies import RecoveryPolicy
from repro.serve.pool import KillSwitch
from repro.serve.requests import SolveRequest, SolveScenario
from repro.serve.service import SolveService

__all__ = ["run_chaos_check"]


def _reference_solutions(scenarios):
    """Independent fault-free golden solves (fresh builds, no service)."""
    from repro.app.antarctica import AntarcticaTest

    refs = {}
    for s in scenarios:
        test = AntarcticaTest.build(s.to_config())
        refs[s.digest] = test.problem.solve()
    return refs


def run_chaos_check(
    seed: int = 2024,
    disarm_breaker: bool = False,
    openmetrics_out: str | None = None,
    workers: int = 2,
    verbose: bool = True,
) -> int:
    """Run the deterministic serve chaos scenario; 0 = all assertions hold."""

    say = print if verbose else (lambda *a, **k: None)

    # tiny-but-real scenarios: distinct digests so kills and breakers
    # key independently; delta is SPMD so halo fault sites exist
    alpha = SolveScenario("alpha", resolution_km=600.0, num_layers=3, newton_steps=6)
    bravo = SolveScenario("bravo", resolution_km=640.0, num_layers=3, newton_steps=6)
    charlie = SolveScenario("charlie", resolution_km=560.0, num_layers=3, newton_steps=6)
    delta = SolveScenario(
        "delta", resolution_km=600.0, num_layers=3, nparts=2, newton_steps=6
    )
    scenarios = [alpha, bravo, charlie, delta]

    obs.get_metrics().reset()
    obs.get_series().reset()

    say("serve chaos: computing fault-free references "
        f"({len(scenarios)} scenarios)...")
    refs = _reference_solutions(scenarios)

    kill = KillSwitch()
    kill.arm(bravo.digest, step=1)
    kill.arm(charlie.digest, step=2)

    service = SolveService(
        workers=workers,
        queue_size=8,
        policy=RecoveryPolicy(
            max_retries=1, backoff_s=0.0, backoff_jitter=0.5, jitter_seed=seed
        ),
        failure_threshold=3,
        probe_after=2,
        kill_switch=kill,
        breaker_enabled=not disarm_breaker,
    )

    sched = FaultSchedule(
        [
            BitFlip("halo.payload", at=(10,)),
            NaNPoison("sweep.output", at=(3,), fraction=0.01),
        ],
        seed=seed,
        name="serve-chaos",
    )

    async def drive():
        out = {}
        async with service:
            say("wave A: 3 concurrent identical requests (dedup)...")
            out["A"] = await asyncio.gather(
                *(service.submit(SolveRequest(alpha)) for _ in range(3))
            )
            say("wave B: 2 requests, workers killed at steps 1 and 2...")
            out["B"] = await asyncio.gather(
                service.submit(SolveRequest(bravo)),
                service.submit(SolveRequest(charlie)),
            )
            say("wave C: SPMD request under armed fault plane...")
            with fault_injection(sched, policy=RecoveryPolicy()) as plane:
                out["C"] = await service.submit(SolveRequest(delta))
                out["undelivered"] = [i.describe() for i in plane.schedule.pending()]
            say("wave D: deadline storm -> breaker open -> probe...")
            storm = []
            for _ in range(3):
                storm.append(await service.submit(SolveRequest(alpha, deadline_s=0.0)))
            for _ in range(2):
                storm.append(await service.submit(SolveRequest(alpha)))
            storm.append(await service.submit(SolveRequest(alpha)))
            out["D"] = storm
        return out

    out = asyncio.run(drive())

    # ------------------------------------------------------------------
    checks: list[tuple[str, bool, str]] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append((name, bool(ok), detail))

    def bitwise(resp, scenario) -> bool:
        return (
            resp.result is not None
            and np.array_equal(resp.result.u, refs[scenario.digest].u)
        )

    a = out["A"]
    check("A: all three requests ok", all(r.status == "ok" for r in a),
          ",".join(r.status for r in a))
    check("A: exactly two deduped", sum(r.deduped for r in a) == 2,
          f"deduped={sum(r.deduped for r in a)}")
    check("A: results bitwise equal to fault-free", all(bitwise(r, alpha) for r in a))

    b = out["B"]
    check("B: killed workers' requests still ok",
          all(r.status == "ok" for r in b), ",".join(r.status for r in b))
    check("B: both kills fired", len(kill.fired) == 2, f"fired={kill.fired}")
    check("B: each job resumed exactly once",
          all(r.resumes == 1 for r in b),
          f"resumes={[r.resumes for r in b]}")
    check("B: two worker deaths reaped", service.pool.deaths == 2,
          f"deaths={service.pool.deaths}")
    check("B: resumed results bitwise equal to fault-free",
          bitwise(b[0], bravo) and bitwise(b[1], charlie))

    c = out["C"]
    rsum = (c.result.diagnostics.get("resilience") if c.result is not None else None)
    check("C: faulted SPMD request ok", c.status == "ok", c.status)
    check("C: every scheduled fault delivered", not out["undelivered"],
          str(out["undelivered"]))
    check("C: faults detected and recovered",
          rsum is not None and rsum["detections"] > 0 and rsum["recoveries"] > 0,
          str(None if rsum is None else (rsum["detections"], rsum["recoveries"])))
    check("C: recovered result bitwise equal to fault-free", bitwise(c, delta))

    d = out["D"]
    timeouts, sheds, probe = d[:3], d[3:5], d[5]
    check("D: zero-budget requests time out (typed)",
          all(r.status == "timeout" for r in timeouts),
          ",".join(r.status for r in timeouts))
    check("D: immediate timeouts carry no partial garbage",
          all(r.partial is None for r in timeouts))
    check("D: breaker sheds exactly two requests",
          all(r.status == "shed" and r.reason == "breaker_open" for r in sheds),
          ",".join(f"{r.status}/{r.reason}" for r in sheds))
    br = service.breakers[alpha.digest]
    walk = [(t["from"], t["to"]) for t in br.transitions]
    check("D: breaker walks closed->open->half_open->closed",
          walk == [("closed", "open"), ("open", "half_open"), ("half_open", "closed")],
          str(walk))
    check("D: half-open probe succeeds and is bitwise equal",
          probe.status == "ok" and bitwise(probe, alpha), probe.status)

    all_resps = [*a, *b, c, *d]
    check("all responses typed",
          all(r.status in ("ok", "degraded", "timeout", "shed") and
              (r.status != "shed" or r.reason) for r in all_resps))

    # ------------------------------------------------------------------
    if openmetrics_out:
        obs.write_openmetrics(
            openmetrics_out, obs.get_metrics().snapshot(), obs.get_series()
        )
        say(f"openmetrics: {openmetrics_out}")

    if verbose:
        rows = [
            [r.request.scenario.name, r.status, r.reason or "-",
             "yes" if r.deduped else "", r.attempts, r.resumes,
             f"{r.latency_s:.3f}"]
            for r in all_resps
        ]
        print(format_table(
            ["scenario", "status", "reason", "dedup", "attempts", "resumes", "lat [s]"],
            rows, title="serve chaos responses",
        ))
        print(format_table(
            ["assertion", "result", "detail"],
            [[n, "PASS" if ok else "FAIL", detail] for n, ok, detail in checks],
            title="serve chaos assertions",
        ))

    failures = [n for n, ok, _ in checks if not ok]
    if failures:
        say(f"serve chaos check: FAIL ({len(failures)} assertion(s))")
        return 1
    say("serve chaos check: PASS")
    return 0
