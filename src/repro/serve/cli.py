"""CLI entry for ``python -m repro serve``.

Two modes:

* ``--check`` -- run the deterministic chaos acceptance scenario
  (:func:`repro.serve.chaos.run_chaos_check`) and exit 0/1: the CI
  gate.  ``--disarm-breaker`` is the planted negative control (the
  check MUST fail), ``--openmetrics PATH`` dumps the run's metrics.
* default -- start the service with an HTTP frontend and serve until
  interrupted; try::

      curl -s localhost:8077/healthz
      curl -s -X POST localhost:8077/solve \\
           -d '{"name": "demo", "resolution_km": 600, "num_layers": 3}'
      curl -s localhost:8077/metrics
"""

from __future__ import annotations

import asyncio

__all__ = ["serve"]


def serve(
    check: bool = False,
    seed: int = 2024,
    disarm_breaker: bool = False,
    openmetrics_out: str | None = None,
    workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 8077,
) -> int:
    from repro.serve.chaos import run_chaos_check

    if check:
        return run_chaos_check(
            seed=seed,
            disarm_breaker=disarm_breaker,
            openmetrics_out=openmetrics_out,
            workers=workers,
        )

    from repro.serve.http import serve_http
    from repro.serve.service import SolveService

    async def main() -> int:
        service = SolveService(workers=workers, breaker_enabled=not disarm_breaker)
        async with service:
            print(f"solve service on http://{host}:{port} "
                  f"({workers} workers; endpoints: /healthz /metrics /solve)")
            await serve_http(service, host=host, port=port)
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        return 0
