"""Request/response types of the solve service.

A :class:`SolveScenario` names a problem the service can build and
solve -- mesh resolution, layer count, decomposition and solver knobs.
Its :attr:`~SolveScenario.digest` is the service's cache/dedup key: two
requests for bitwise-identical problems share one artifact-cache entry,
one in-flight solve, and one golden result.

A :class:`SolveRequest` is a scenario plus per-request service policy
(wall-clock budget); a :class:`SolveResponse` reports the typed outcome
every admitted request ends in -- ``ok``, ``degraded``, ``timeout``,
``failed`` or ``shed`` -- plus the provenance the chaos harness asserts
on (retry/resume counts, dedup, degradation rung).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.app.config import PRECONDITIONERS, AntarcticaConfig, VelocityConfig

__all__ = ["SolveScenario", "SolveRequest", "SolveResponse", "STATUSES"]

#: every terminal state a request can reach.  ``ok`` and ``degraded``
#: carry a result (``degraded`` solved a cheaper stand-in and is never
#: bitwise-compared); ``timeout`` may carry a partial checkpoint;
#: ``failed`` and ``shed`` carry a typed reason.
STATUSES = ("ok", "degraded", "timeout", "failed", "shed")


@dataclass(frozen=True)
class SolveScenario:
    """One solvable problem identity (the cache and dedup key)."""

    name: str
    resolution_km: float = 600.0
    num_layers: int = 3
    preconditioner: str = "mdsc"
    nparts: int = 1
    newton_steps: int = 8
    #: which synthetic ice sheet ("antarctica" | "greenland"); part of
    #: the problem identity -- same numbers on a different sheet is a
    #: different problem and must not share a cache entry
    family: str = "antarctica"

    def __post_init__(self):
        if self.family not in ("antarctica", "greenland"):
            raise ValueError(f"unknown ice-sheet family {self.family!r}")
        if self.preconditioner not in PRECONDITIONERS:
            raise ValueError(
                f"unknown preconditioner {self.preconditioner!r}; have {PRECONDITIONERS}"
            )
        if self.resolution_km <= 0 or self.num_layers <= 0 or self.newton_steps <= 0:
            raise ValueError("resolution, layers and newton_steps must be positive")
        if self.nparts < 1:
            raise ValueError("nparts must be at least 1")

    @property
    def digest(self) -> str:
        """Stable content digest of the problem identity.

        Deliberately excludes ``name``: two differently-named requests
        for the same numbers ARE the same problem and must dedup/cache
        together.
        """
        key = (
            f"res={self.resolution_km!r}|nz={self.num_layers}|"
            f"pc={self.preconditioner}|np={self.nparts}|ns={self.newton_steps}|"
            f"fam={self.family}"
        )
        return hashlib.sha256(key.encode()).hexdigest()[:16]

    def to_config(self) -> AntarcticaConfig:
        """The buildable problem configuration for this scenario."""
        return AntarcticaConfig(
            resolution_km=self.resolution_km,
            num_layers=self.num_layers,
            family=self.family,
            velocity=VelocityConfig(
                preconditioner=self.preconditioner,
                nparts=self.nparts,
                newton_steps=self.newton_steps,
            ),
        )

    def coarsened(self, factor: float = 2.0) -> "SolveScenario":
        """The degraded (coarser-mesh) stand-in scenario."""
        return replace(
            self,
            name=f"{self.name}~coarse",
            resolution_km=self.resolution_km * float(factor),
            num_layers=max(3, self.num_layers // 2),
        )


@dataclass(frozen=True)
class SolveRequest:
    """A scenario plus the per-request service policy."""

    scenario: SolveScenario
    #: wall-clock budget in seconds (None = no deadline).  The clock
    #: starts at ADMISSION, so queue wait counts against the budget --
    #: a request the service cannot schedule in time times out instead
    #: of running long after its caller gave up.
    deadline_s: float | None = None


@dataclass
class SolveResponse:
    """Typed outcome of one admitted (or shed) request."""

    request: SolveRequest
    status: str
    #: machine-readable detail: shed reason ("queue_full", "breaker_open"),
    #: degradation rung ("cheap_precond", "coarse_mesh", "cached"), or
    #: the failure/timeout message
    reason: str = ""
    #: the VelocitySolution for ok/degraded (None otherwise)
    result: object = None
    #: last NewtonCheckpoint of a timed-out solve (None when the budget
    #: expired before the first accepted step -- no partial garbage)
    partial: object = None
    #: scenario actually solved (differs from the request's under
    #: coarse-mesh degradation)
    solved: SolveScenario | None = None
    #: this response was joined to another in-flight identical request
    deduped: bool = False
    #: solve attempts (1 = first try succeeded)
    attempts: int = 0
    #: checkpoint resumes after worker deaths
    resumes: int = 0
    latency_s: float = 0.0
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.status not in STATUSES:
            raise ValueError(f"unknown status {self.status!r}; have {STATUSES}")

    @property
    def completed(self) -> bool:
        """The request produced a usable solution."""
        return self.status in ("ok", "degraded")

    def to_dict(self) -> dict:
        """JSON-able summary (the HTTP frontend's response body)."""
        out = {
            "scenario": self.request.scenario.name,
            "digest": self.request.scenario.digest,
            "status": self.status,
            "reason": self.reason,
            "deduped": self.deduped,
            "attempts": self.attempts,
            "resumes": self.resumes,
            "latency_s": self.latency_s,
        }
        if self.solved is not None:
            out["solved"] = self.solved.name
        if self.result is not None:
            out["mean_velocity"] = float(self.result.mean_velocity)
            out["newton_steps"] = int(self.result.newton.iterations)
        if self.partial is not None:
            out["partial_step"] = int(self.partial.step)
        return out
