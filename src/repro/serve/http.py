"""Minimal stdlib HTTP frontend for the solve service.

Three endpoints, enough to drive the service from ``curl`` (no web
framework -- the container ships only the scientific stack):

* ``GET /healthz`` -- liveness + pool/queue stats as JSON;
* ``GET /metrics`` -- the full ``serve.*``/solver metrics and
  convergence series as an OpenMetrics text exposition;
* ``POST /solve`` -- JSON body with scenario fields and an optional
  ``deadline_s``; responds with the typed :class:`SolveResponse`
  summary.  Shed/timeout/failure map to HTTP 503/504/500 so plain HTTP
  tooling sees the service's admission decisions.

The parser handles exactly what those endpoints need (request line,
headers, Content-Length body); it is a test/demo surface, not a
hardened proxy target.
"""

from __future__ import annotations

import asyncio
import json

from repro.observability import get_metrics, get_series, render
from repro.serve.requests import SolveRequest, SolveScenario
from repro.serve.service import SolveService

__all__ = ["serve_http"]

_STATUS_HTTP = {
    "ok": 200,
    "degraded": 200,
    "timeout": 504,
    "failed": 500,
    "shed": 503,
}
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}


def _response(code: int, body: bytes, content_type: str) -> bytes:
    head = (
        f"HTTP/1.1 {code} {_REASONS.get(code, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode() + body


def _json_response(code: int, doc: dict) -> bytes:
    return _response(code, (json.dumps(doc) + "\n").encode(), "application/json")


async def _read_request(reader: asyncio.StreamReader):
    line = await reader.readline()
    if not line:
        return None, None, b""
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        return None, None, b""
    method, path = parts[0].upper(), parts[1]
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip() or 0)
    body = await reader.readexactly(length) if length else b""
    return method, path, body


async def _handle(service: SolveService, reader, writer) -> None:
    try:
        method, path, body = await _read_request(reader)
        if method is None:
            return
        if method == "GET" and path == "/healthz":
            doc = {
                "status": "ok",
                "workers": len(service.pool.workers),
                "busy": service.pool.busy(),
                "queue_depth": service.pool.depth(),
                "worker_deaths": service.pool.deaths,
            }
            writer.write(_json_response(200, doc))
        elif method == "GET" and path == "/metrics":
            text = render(get_metrics().snapshot(), get_series())
            writer.write(_response(
                200, text.encode(),
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
            ))
        elif method == "POST" and path == "/solve":
            try:
                doc = json.loads(body.decode() or "{}")
                scenario = SolveScenario(
                    name=str(doc.get("name", "http")),
                    resolution_km=float(doc.get("resolution_km", 600.0)),
                    num_layers=int(doc.get("num_layers", 3)),
                    preconditioner=str(doc.get("preconditioner", "mdsc")),
                    nparts=int(doc.get("nparts", 1)),
                    newton_steps=int(doc.get("newton_steps", 8)),
                )
                deadline_s = doc.get("deadline_s")
                request = SolveRequest(
                    scenario,
                    deadline_s=float(deadline_s) if deadline_s is not None else None,
                )
            except (ValueError, TypeError, json.JSONDecodeError) as exc:
                writer.write(_json_response(400, {"error": str(exc)}))
            else:
                resp = await service.submit(request)
                writer.write(_json_response(_STATUS_HTTP[resp.status], resp.to_dict()))
        else:
            writer.write(_json_response(404, {"error": f"no route {method} {path}"}))
        await writer.drain()
    finally:
        writer.close()


async def serve_http(service: SolveService, host: str = "127.0.0.1", port: int = 8077,
                     ready_cb=None):
    """Run the HTTP frontend until cancelled (service must be started)."""
    server = await asyncio.start_server(
        lambda r, w: _handle(service, r, w), host, port
    )
    if ready_cb is not None:
        # actual bound port (port=0 lets the OS choose -- used by tests)
        ready_cb(server.sockets[0].getsockname()[1])
    async with server:
        await server.serve_forever()
