"""Artifact cache: build each scenario's problem once, keep its golden.

Building a scenario (geometry, footprint masking, extrusion, basis
precomputation, the AssemblyPlan symbolic pass) dwarfs the marginal
cost of another solve on the same mesh, so the service keys built
problems by :attr:`SolveScenario.digest` and reuses them across
requests.  Each entry also remembers the last known-good solution --
the bottom rung of the degradation ladder serves it when the queue is
full ("a recent answer now" beats "the right answer never").

Entries carry a per-entry lock: the Stokes problem object holds
per-solve mutable state (phase timers, resilience hooks, the
preconditioner override), so two workers must not solve the SAME
problem object concurrently.  Different entries solve in parallel.
"""

from __future__ import annotations

import threading

from repro.observability import get_metrics
from repro.serve.requests import SolveScenario

__all__ = ["ArtifactCache", "CacheEntry"]


class CacheEntry:
    """One built scenario: problem artifacts + last good result."""

    def __init__(self, scenario: SolveScenario, test):
        self.scenario = scenario
        #: the built AntarcticaTest (mesh + geometry + problem)
        self.test = test
        #: last known-good VelocitySolution (the cached-result rung)
        self.last_good = None
        #: serializes solves on this entry's problem object
        self.lock = threading.Lock()
        self.hits = 0

    @property
    def problem(self):
        return self.test.problem


class ArtifactCache:
    """Digest-keyed cache of built scenarios (thread-safe)."""

    def __init__(self, builder=None, max_entries: int = 32):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        # injectable builder so unit tests swap in a stub problem
        if builder is None:
            from repro.app.antarctica import AntarcticaTest

            builder = lambda scenario: AntarcticaTest.build(scenario.to_config())  # noqa: E731
        self._builder = builder
        self.max_entries = max_entries
        self._entries: dict[str, CacheEntry] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def peek(self, scenario: SolveScenario) -> CacheEntry | None:
        """The entry for ``scenario`` if already built (no build, no miss)."""
        return self._entries.get(scenario.digest)

    def get(self, scenario: SolveScenario) -> CacheEntry:
        """The built entry for ``scenario``, building it on first use."""
        metrics = get_metrics()
        digest = scenario.digest
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                entry.hits += 1
                metrics.counter("serve.cache.hit").inc()
                return entry
            # build outside no lock?  No: building the same scenario
            # twice concurrently wastes minutes of work; a placeholder
            # entry whose lock we hold during the build would serialize
            # readers anyway.  Builds are rare (cold cache), so holding
            # the cache lock through one keeps the invariant simple:
            # an entry in the dict is always fully built.
            metrics.counter("serve.cache.miss").inc()
            if len(self._entries) >= self.max_entries:
                # evict the coldest entry (fewest hits, oldest on ties:
                # dict preserves insertion order)
                coldest = min(self._entries, key=lambda d: self._entries[d].hits)
                del self._entries[coldest]
                metrics.counter("serve.cache.evicted").inc()
            entry = CacheEntry(scenario, self._builder(scenario))
            self._entries[digest] = entry
            metrics.gauge("serve.cache.entries").set(len(self._entries))
            return entry

    def remember_good(self, scenario: SolveScenario, result) -> None:
        """Record a known-good result for the cached-result rung."""
        entry = self._entries.get(scenario.digest)
        if entry is not None:
            entry.last_good = result

    def cached_result(self, scenario: SolveScenario):
        """Last known-good result for ``scenario``, or None."""
        entry = self._entries.get(scenario.digest)
        return None if entry is None else entry.last_good
