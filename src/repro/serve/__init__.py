"""Resilient async solve service over the velocity-solver stack.

Production ice-sheet workflows do not call ``solve()`` once from a
script: they run many scenarios against shared hardware, under time
budgets, with failures.  This package wraps the reproduction's solver
in the service shape that workload implies:

* :mod:`~repro.serve.requests` -- typed scenario / request / response
  contracts (every request ends in ``ok``, ``degraded``, ``timeout``,
  ``failed`` or ``shed`` -- never an untyped hang);
* :mod:`~repro.serve.service` -- the asyncio :class:`SolveService`:
  bounded queue, admission control, per-request deadlines propagating
  into Newton/GMRES, request dedup, retry with the resilience ladder's
  jittered backoff, and a graceful-degradation ladder (cheaper
  preconditioner -> coarser mesh -> cached result -> shed);
* :mod:`~repro.serve.breaker` -- deterministic per-scenario circuit
  breaker (closed/open/half-open, outcome-driven);
* :mod:`~repro.serve.cache` -- digest-keyed artifact cache (build each
  mesh once; remember last-good results);
* :mod:`~repro.serve.pool` -- supervised worker threads with
  checkpoint heartbeats; dead or hung workers are respawned and their
  jobs resumed bitwise-exactly from the last Newton checkpoint;
* :mod:`~repro.serve.chaos` -- the deterministic chaos acceptance run
  behind ``python -m repro serve --check``;
* :mod:`~repro.serve.http` -- a stdlib-only HTTP frontend
  (``/solve``, ``/healthz``, ``/metrics`` in OpenMetrics text).

Quick start::

    from repro.serve import SolveService, SolveRequest, SolveScenario

    async def main():
        async with SolveService(workers=2) as svc:
            req = SolveRequest(SolveScenario("demo", resolution_km=600.0,
                                             num_layers=3), deadline_s=30.0)
            resp = await svc.submit(req)
            print(resp.status, resp.result.mean_velocity)

or from the command line: ``python -m repro serve --check``.
"""

from __future__ import annotations

from repro.resilience.deadline import Deadline, SolveTimeout
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import ArtifactCache, CacheEntry
from repro.serve.chaos import run_chaos_check
from repro.serve.pool import Job, KillSwitch, Worker, WorkerKilled, WorkerPool
from repro.serve.requests import STATUSES, SolveRequest, SolveResponse, SolveScenario
from repro.serve.service import SolveService

__all__ = [
    "ArtifactCache",
    "CacheEntry",
    "CircuitBreaker",
    "Deadline",
    "Job",
    "KillSwitch",
    "STATUSES",
    "SolveRequest",
    "SolveResponse",
    "SolveScenario",
    "SolveService",
    "SolveTimeout",
    "Worker",
    "WorkerKilled",
    "WorkerPool",
    "run_chaos_check",
]
