"""Seeded fixtures proving the verification machinery detects defects.

A checker that has never caught anything is indistinguishable from one
that cannot.  Two deliberately-broken kernels keep the subsystem honest:

* :class:`RacyNodalScatter` -- the classic FEM assembly race: every cell
  scatters its contributions straight into a *shared* nodal array, so
  neighbouring cells read-modify-write the same slots.  The write-set
  analysis must flag the shared nodes, and the order-permutation check
  must surface bitwise divergence (float addition is not associative,
  and the cell values span enough magnitudes that reassociation is
  visible in the last bits).

* :class:`PerturbedStokesFOResid` -- the optimized Stokes kernel with a
  single stress coefficient nudged from ``2.0`` to ``1.9999``: race-free
  and order-independent, but numerically wrong, so only the
  differential oracle (variant vs reference) can catch it.

``python -m repro verify`` runs both as a detection selftest on every
invocation; ``--fixture racy|perturbed`` instead treats them as
production kernels so CI can assert the nonzero exit path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fields import StokesFields, make_stokes_fields
from repro.core.kernels import StokesFOResidOptimized
from repro.kokkos.view import DOUBLE, View

__all__ = [
    "RacyFields",
    "RacyNodalScatter",
    "make_racy_fields",
    "PerturbedStokesFOResid",
    "fill_stokes_fields",
    "stokes_fields_factory",
]


# ----------------------------------------------------------------------
# the racy fixture: shared-nodal-array scatter
# ----------------------------------------------------------------------


@dataclass
class RacyFields:
    """Views for the racy scatter: a 1-D chain of cells sharing nodes."""

    nodal: View  # (num_global_nodes,) -- the shared output
    cellval: View  # (num_cells, nodes_per_cell) -- per-cell contributions
    conn: np.ndarray  # (num_cells, nodes_per_cell) int connectivity

    @property
    def num_cells(self) -> int:
        return self.cellval.shape[0]

    @property
    def nodes_per_cell(self) -> int:
        return self.cellval.shape[1]

    def output_views(self) -> list[View]:
        return [self.nodal]


class RacyNodalScatter:
    """Cell-parallel scatter into shared nodal storage (intentional race).

    ``nodal[conn[cell, j]] += cellval[cell, j]`` is exactly the
    accumulation a correct Kokkos port must route through
    ``atomic_add`` or a coloring/gather pass; done naively over the
    cell index it is a write-write race on every shared node.
    """

    name = "RacyNodalScatter<fixture>"

    def __init__(self, fields):
        self.nodal = fields.nodal
        self.cellval = fields.cellval
        self.conn = fields.conn
        self.nodes_per_cell = int(fields.nodes_per_cell)

    def __call__(self, cell):
        for j in range(self.nodes_per_cell):
            n = int(self.conn[cell, j])
            self.nodal[n] = self.nodal[n] + self.cellval[cell, j]


def make_racy_fields(num_cells: int = 12, nodes_per_cell: int = 4, seed: int = 0) -> RacyFields:
    """A chain mesh: cell ``c`` touches nodes ``c .. c + nodes_per_cell - 1``.

    Adjacent cells overlap on ``nodes_per_cell - 1`` nodes, so almost
    every node has multiple writers.  Cell values are log-uniform over
    several decades so that summation order is visible bitwise.
    """
    rng = np.random.default_rng(seed)
    num_nodes = num_cells + nodes_per_cell - 1
    conn = np.arange(num_cells)[:, None] + np.arange(nodes_per_cell)[None, :]
    sign = rng.choice([-1.0, 1.0], size=(num_cells, nodes_per_cell))
    mag = 10.0 ** rng.uniform(-6.0, 3.0, size=(num_cells, nodes_per_cell))
    return RacyFields(
        nodal=View("nodal", (num_nodes,), DOUBLE),
        cellval=View("cellval", (num_cells, nodes_per_cell), DOUBLE, data=sign * mag),
        conn=conn,
    )


# ----------------------------------------------------------------------
# the perturbed fixture: a wrong-but-deterministic kernel variant
# ----------------------------------------------------------------------


class PerturbedStokesFOResid(StokesFOResidOptimized):
    """Optimized Stokes kernel with one stress coefficient off by 5e-5.

    Models the realistic porting bug a race checker cannot see: the
    rewrite is still fused, local-accumulating and order-independent,
    but ``strs00`` uses ``1.9999 * u_x`` where the physics says ``2 u_x``.
    Only a differential oracle against the reference kernel catches it.
    """

    name = "StokesFOResid<LandIce_3D_Perturbed>"

    def __call__(self, cell):
        fields = self.fields
        Ugrad = self.Ugrad
        wGradBF = self.wGradBF
        wBF = self.wBF
        num_nodes = self.num_nodes

        res0 = [fields.zero(cell) for _ in range(num_nodes)]
        res1 = [fields.zero(cell) for _ in range(num_nodes)]

        for qp in range(self.numQPs):
            mu = self.muLandIce[cell, qp]
            strs00 = 2.0 * mu * (1.9999 * Ugrad[cell, qp, 0, 0] + Ugrad[cell, qp, 1, 1])
            strs11 = 2.0 * mu * (2.0 * Ugrad[cell, qp, 1, 1] + Ugrad[cell, qp, 0, 0])
            strs01 = mu * (Ugrad[cell, qp, 1, 0] + Ugrad[cell, qp, 0, 1])
            strs02 = mu * Ugrad[cell, qp, 0, 2]
            strs12 = mu * Ugrad[cell, qp, 1, 2]
            frc0 = self.force[cell, qp, 0]
            frc1 = self.force[cell, qp, 1]
            for node in range(num_nodes):
                res0[node] = res0[node] + (
                    strs00 * wGradBF[cell, node, qp, 0]
                    + strs01 * wGradBF[cell, node, qp, 1]
                    + strs02 * wGradBF[cell, node, qp, 2]
                    + frc0 * wBF[cell, node, qp]
                )
                res1[node] = res1[node] + (
                    strs01 * wGradBF[cell, node, qp, 0]
                    + strs11 * wGradBF[cell, node, qp, 1]
                    + strs12 * wGradBF[cell, node, qp, 2]
                    + frc1 * wBF[cell, node, qp]
                )

        for node in range(num_nodes):
            self.Residual[cell, node, 0] = res0[node]
            self.Residual[cell, node, 1] = res1[node]


# ----------------------------------------------------------------------
# deterministic field population (shared by oracles and race checks)
# ----------------------------------------------------------------------


def fill_stokes_fields(fields: StokesFields, seed: int = 0) -> StokesFields:
    """Plausible deterministic kernel inputs (the test-suite convention)."""
    rng = np.random.default_rng(seed)
    nc, nq, nn = fields.num_cells, fields.num_qps, fields.num_nodes

    def setv(view, arr):
        if view.scalar.is_fad:
            view.data.val[...] = arr
            view.data.dx[...] = rng.normal(size=arr.shape + (view.scalar.fad_dim,)) * 0.01
        else:
            view.data[...] = arr

    setv(fields.Ugrad, rng.normal(size=(nc, nq, 2, 3)) * 1e-3)
    setv(fields.muLandIce, rng.uniform(1e3, 1e5, size=(nc, nq)))
    setv(fields.force, rng.normal(size=(nc, nq, 2)) * 10.0)
    fields.wBF.data[...] = rng.uniform(0.1, 1.0, size=(nc, nn, nq))
    fields.wGradBF.data[...] = rng.normal(size=(nc, nn, nq, 3)) * 1e-3
    return fields


def stokes_fields_factory(num_cells: int = 6, mode: str = "residual", seed: int = 0):
    """A zero-argument factory for identically-initialized Stokes fields."""

    def factory() -> StokesFields:
        return fill_stokes_fields(make_stokes_fields(num_cells, mode=mode), seed=seed)

    return factory
