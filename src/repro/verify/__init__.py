"""Correctness tooling: race checker, differential oracles, sanitizer.

Three pillars (see DESIGN.md §11):

* :mod:`repro.verify.race` -- write-set and iteration-order analysis of
  ``parallel_for`` bodies (Kokkos order-independence semantics);
* :mod:`repro.verify.oracles` -- the declarative implementation-vs-
  reference table (``python -m repro verify`` runs it);
* :mod:`repro.verify.sanitizer` -- the opt-in NaN/Inf, cancellation and
  denormal trap with op-level provenance.

Exports resolve lazily (PEP 562): :mod:`repro.autodiff.ops` imports the
sanitizer for its disarmed fast-path guard, and an eager package import
of the oracle/fixture modules from here would cycle back through
``repro.core``.
"""

from __future__ import annotations

_EXPORTS = {
    # sanitizer
    "NumericalSanitizer": "repro.verify.sanitizer",
    "SanitizerError": "repro.verify.sanitizer",
    "SanitizerEvent": "repro.verify.sanitizer",
    "sanitizer": "repro.verify.sanitizer",
    "sanitizing": "repro.verify.sanitizer",
    # comparison
    "Divergence": "repro.verify.compare",
    "first_divergence": "repro.verify.compare",
    "max_abs_error": "repro.verify.compare",
    # race checker
    "RaceChecker": "repro.verify.race",
    "RaceFinding": "repro.verify.race",
    "RaceReport": "repro.verify.race",
    "check_order_independence": "repro.verify.race",
    "iteration_orders": "repro.verify.race",
    "record_access_sets": "repro.verify.race",
    # oracles
    "Oracle": "repro.verify.oracles",
    "OracleResult": "repro.verify.oracles",
    "ORACLES": "repro.verify.oracles",
    "run_oracles": "repro.verify.oracles",
    "suite_names": "repro.verify.oracles",
    # cli
    "verify": "repro.verify.cli",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
