"""``python -m repro verify``: run the verification subsystem end to end.

Default invocation runs three layers and prints one table:

1. the differential oracle registry (optionally restricted via
   ``--suite kernels|jacobian|spmd|bytes``),
2. race/determinism checks (part of the ``kernels`` suite), and
3. a **detection selftest**: the seeded racy fixture kernel must be
   flagged by the race checker and the seeded perturbed kernel must be
   caught by the variant oracle.  A verifier that stops catching its
   own planted defects fails the run -- green must mean "checked", not
   "didn't look".

``--fixture racy|perturbed`` flips a planted defect into a pretend
production kernel: the run then *fails*, which is the CI negative
control proving the nonzero exit path stays wired.  ``--check`` makes
the exit code strict (nonzero on any failure); without it the run
prints FAIL rows but exits 0, like ``python -m repro chaos``.
"""

from __future__ import annotations

__all__ = ["verify"]


def _racy_report(seed: int = 0):
    from repro.verify.fixtures import RacyNodalScatter, make_racy_fields
    from repro.verify.race import RaceChecker

    return RaceChecker(
        "racy-nodal-scatter",
        RacyNodalScatter,
        lambda: make_racy_fields(seed=seed),
    ).check()


def verify(suite: str = "all", check: bool = False, fixture: str = "none", seed: int = 0) -> int:
    from repro.perf import format_table
    from repro.verify.oracles import perturbed_divergences, run_oracles, suite_names

    rows = []
    failures = []

    def record(suite_tag, name, passed, detail):
        rows.append([suite_tag, name, "PASS" if passed else "FAIL", detail])
        if not passed:
            failures.append(f"{suite_tag}/{name}")

    # --fixture: a planted defect pretending to be production code; the
    # run must fail (the CI negative control for the exit path)
    if fixture == "racy":
        report = _racy_report(seed)
        print(report.describe())
        record("fixture", "racy-nodal-scatter", report.passed, f"{len(report.findings)} race finding(s)")
    elif fixture == "perturbed":
        divs = perturbed_divergences()
        for d in divs:
            print(d.describe())
        record("fixture", "perturbed-stokes", not divs, f"{len(divs)} divergence(s) vs baseline")
    elif fixture != "none":
        raise SystemExit(f"unknown fixture {fixture!r}; have: none, racy, perturbed")
    else:
        suites = None if suite == "all" else [suite]
        known = suite_names()
        if suites and suites[0] not in known:
            raise SystemExit(f"unknown suite {suite!r}; have: all, {', '.join(known)}")

        def progress(oracle):
            print(f"  running {oracle.suite}/{oracle.name} ...", flush=True)

        for r in run_oracles(suites, progress=progress):
            record(r.suite, r.name, r.passed, r.detail)
            for d in r.divergences[:4]:
                print(f"    divergence: {d.describe()}")

        # detection selftest: the machinery must still catch planted defects
        if suite in ("all", "kernels"):
            report = _racy_report(seed)
            detected = not report.passed
            record(
                "selftest",
                "racy-fixture-detected",
                detected,
                f"{len(report.findings)} race finding(s), "
                f"{len(report.order_divergences)} order divergence(s) -- must be > 0",
            )
            divs = perturbed_divergences()
            record(
                "selftest",
                "perturbed-variant-detected",
                bool(divs),
                f"{len(divs)} divergence(s) vs baseline -- must be > 0"
                + (f"; max |diff| {divs[0].max_abs_err:.3e}" if divs else ""),
            )

    print()
    print(format_table(
        ["suite", "oracle", "status", "detail"],
        rows,
        title=f"verification report: {len(rows) - len(failures)}/{len(rows)} passed",
    ))
    ok = not failures
    if failures:
        print(f"FAILED: {', '.join(failures)}")
    print("verify:", "PASS" if ok else "FAIL")
    return 0 if (ok or not check) else 1
