"""Opt-in numerical sanitizer with op-level provenance.

Floating-point pathologies in an ice-sheet solve rarely announce
themselves where they are created: a negative argument slipping into a
Glen's-law power produces a NaN that only surfaces steps later as a
diverged Newton iteration.  The sanitizer instruments the scalar-type
seam (:mod:`repro.autodiff.ops`, where every templated physics
evaluation funnels through) and the solver stack (GMRES orthogonali-
zation, Newton residual norms) to trap three pathologies *at the op
that created them*:

* **non-finite creation** -- a NaN/Inf appearing in a result whose
  operands were all finite (propagation of an already-poisoned value is
  deliberately not re-reported);
* **catastrophic cancellation** -- a subtraction-like combination whose
  result magnitude collapses relative to its operands (modified
  Gram-Schmidt losing orthogonality is the classic solver case);
* **denormal flush risk** -- subnormal values entering a result: exact
  on the host, but flushed to zero by GPU denormal-flush modes, i.e. a
  latent host/device divergence.

Zero-overhead contract (the same ``active`` fast-path idiom as the
observability hook registry and the resilience fault plane): with the
sanitizer disarmed every instrumented site pays exactly one attribute
read.  Arm it with :func:`sanitizing`::

    with sanitizing() as san:
        problem.solve()
    print(san.summary())

``mode="raise"`` turns the first trapped event into a
:class:`SanitizerError` naming the op and site.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.autodiff.sfad import FadArray

__all__ = [
    "SanitizerError",
    "SanitizerEvent",
    "NumericalSanitizer",
    "sanitizer",
    "sanitizing",
]

#: smallest positive normal double: anything smaller (and nonzero) is
#: subnormal and at risk of a flush-to-zero on device backends
_TINY = float(np.finfo(np.float64).tiny)


class SanitizerError(FloatingPointError):
    """Raised in ``mode="raise"`` when an event is trapped."""

    def __init__(self, event: "SanitizerEvent"):
        super().__init__(event.describe())
        self.event = event


@dataclass(frozen=True)
class SanitizerEvent:
    """One trapped pathology with its provenance."""

    kind: str  # "nonfinite" | "cancellation" | "denormal"
    op: str  # creating operation, e.g. "ops.log", "gmres.mgs"
    site: str  # caller-supplied context, e.g. "step 3"
    count: int  # offending scalar slots in this result
    detail: dict = field(default_factory=dict)

    def describe(self) -> str:
        extra = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        where = f" at {self.site}" if self.site else ""
        return f"[{self.kind}] {self.op}{where}: {self.count} slot(s){' (' + extra + ')' if extra else ''}"


def _parts(x):
    """Value (and derivative) ndarray components of an operand/result."""
    if isinstance(x, FadArray):
        return (x.val, x.dx)
    if isinstance(x, np.ndarray):
        return (x,)
    if isinstance(x, (float, int)):
        return (np.float64(x),)
    return ()


def _all_finite(x) -> bool:
    return all(bool(np.all(np.isfinite(p))) for p in _parts(x))


class NumericalSanitizer:
    """Process-wide sanitizer state; disarmed (``active=False``) by default.

    ``check``/``check_cancellation`` must only be called behind an
    ``if sanitizer().active:`` guard -- the guard *is* the fast path.
    """

    def __init__(self):
        self.active = False
        self.mode = "record"  # "record" | "raise"
        self.trap_denormals = True
        #: |a-b| < cancellation_ratio * max(|a|,|b|) flags cancellation
        self.cancellation_ratio = 1.0e-12
        self.events: list[SanitizerEvent] = []
        self.counts = {"nonfinite": 0, "cancellation": 0, "denormal": 0}

    # -- lifecycle -----------------------------------------------------
    def arm(
        self,
        mode: str = "record",
        trap_denormals: bool = True,
        cancellation_ratio: float = 1.0e-12,
    ) -> "NumericalSanitizer":
        if mode not in ("record", "raise"):
            raise ValueError(f"unknown sanitizer mode {mode!r}")
        self.mode = mode
        self.trap_denormals = trap_denormals
        self.cancellation_ratio = float(cancellation_ratio)
        self.reset()
        self.active = True
        return self

    def disarm(self) -> None:
        self.active = False

    def reset(self) -> None:
        self.events.clear()
        self.counts = {"nonfinite": 0, "cancellation": 0, "denormal": 0}

    # -- event plumbing ------------------------------------------------
    def _emit(self, kind: str, op: str, site: str, count: int, **detail) -> None:
        event = SanitizerEvent(kind, op, site, int(count), dict(detail))
        self.events.append(event)
        self.counts[kind] += 1
        if self.mode == "raise":
            raise SanitizerError(event)

    # -- checks --------------------------------------------------------
    def check(self, op: str, out, *operands, site: str = "") -> None:
        """Trap non-finite creation and denormal content in ``out``.

        Non-finite slots are a *creation* event only when every operand
        was finite; otherwise the poison predates this op and the
        creating site already reported it.
        """
        nonfinite = 0
        denormal = 0
        for part in _parts(out):
            finite = np.isfinite(part)
            nonfinite += int(np.size(part) - np.count_nonzero(finite))
            if self.trap_denormals:
                a = np.abs(part)
                denormal += int(np.count_nonzero((a > 0.0) & (a < _TINY)))
        if nonfinite and all(_all_finite(o) for o in operands):
            self._emit("nonfinite", op, site, nonfinite)
        if denormal:
            self._emit("denormal", op, site, denormal)

    def check_cancellation(self, op: str, a, b, out, site: str = "") -> None:
        """Trap loss of significance in a subtraction-like result.

        ``a`` and ``b`` are the operand magnitudes (arrays or scalars),
        ``out`` the combined result; slots where the result shrinks
        below ``cancellation_ratio`` of the largest operand have lost
        essentially every significant digit.
        """
        av = np.abs(np.asarray(a, dtype=np.float64))
        bv = np.abs(np.asarray(b, dtype=np.float64))
        ov = np.abs(np.asarray(out, dtype=np.float64))
        scale = np.maximum(av, bv)
        bad = (scale > 0.0) & (ov < self.cancellation_ratio * scale)
        n = int(np.count_nonzero(bad))
        if n:
            self._emit(
                "cancellation", op, site, n,
                worst_ratio=float(np.min(np.where(bad, ov / np.where(scale > 0, scale, 1.0), np.inf))),
            )

    # -- reporting -----------------------------------------------------
    def summary(self) -> dict:
        return {
            "events": len(self.events),
            **dict(self.counts),
            "by_op": self._by_op(),
        }

    def _by_op(self) -> dict:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.op] = out.get(e.op, 0) + 1
        return out


_SANITIZER = NumericalSanitizer()


def sanitizer() -> NumericalSanitizer:
    """The process-wide sanitizer instrumented sites consult."""
    return _SANITIZER


@contextmanager
def sanitizing(
    mode: str = "record",
    trap_denormals: bool = True,
    cancellation_ratio: float = 1.0e-12,
):
    """Arm the sanitizer for a block; always disarms on exit."""
    san = _SANITIZER
    if san.active:
        raise RuntimeError("sanitizer is already armed")
    san.arm(mode=mode, trap_denormals=trap_denormals, cancellation_ratio=cancellation_ratio)
    try:
        yield san
    finally:
        san.disarm()
