"""Differential oracle registry: implementations testify against each other.

Every fast path in this repo exists as a rewrite of a slower reference
-- optimized kernels vs the baseline listing, SFad derivatives vs the
definition of a derivative, fused assembly vs separate evaluation, the
SPMD solve vs the serial one, the rocprof byte formula vs the modeled
traffic.  An :class:`Oracle` makes each such pair executable: run both
sides, compare with an explicit tolerance contract, and report
*first-divergence context* (slot, both values, error magnitudes) rather
than a bare boolean.

The table is declarative: oracles register themselves into
:data:`ORACLES` with a suite tag, and ``python -m repro verify --suite
<tag>`` (or the test suite) executes any slice of it.  Tolerance
contracts, from strictest to loosest:

======================  =========================================
bitwise (rtol=atol=0)   SPMD vs serial, fused vs separate, value
                        parts across scalar types, byte formula
1e-12 relative          kernel variants (reassociated fp sums)
1e-12 relative          complex-step derivatives (exact method)
1e-8 relative           central differences (roundoff-limited;
                        truncation is zero -- the body is
                        quadratic along any direction)
======================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.verify.compare import Divergence, first_divergence

__all__ = ["Oracle", "OracleResult", "ORACLES", "run_oracles", "suite_names", "perturbed_divergences"]


@dataclass(frozen=True)
class Oracle:
    """One executable implementation-vs-reference contract."""

    name: str
    suite: str  # "kernels" | "jacobian" | "spmd" | "bytes"
    description: str
    fn: object  # () -> (list[Divergence], detail_str)


@dataclass
class OracleResult:
    """Outcome of one oracle run."""

    name: str
    suite: str
    passed: bool
    detail: str
    divergences: list = field(default_factory=list)

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"[{status}] {self.suite}/{self.name}: {self.detail}"]
        lines += [f"    {d.describe()}" for d in self.divergences[:4]]
        return "\n".join(lines)


ORACLES: list[Oracle] = []


def _register(name: str, suite: str, description: str):
    def deco(fn):
        ORACLES.append(Oracle(name=name, suite=suite, description=description, fn=fn))
        return fn

    return deco


def suite_names() -> list[str]:
    return sorted({o.suite for o in ORACLES})


def run_oracles(suites=None, progress=None) -> list[OracleResult]:
    """Execute the registry (optionally restricted to some suites)."""
    results = []
    for oracle in ORACLES:
        if suites and oracle.suite not in suites:
            continue
        if progress:
            progress(oracle)
        try:
            divergences, detail = oracle.fn()
        except Exception as exc:  # an oracle crashing is a failure, not an abort
            results.append(OracleResult(oracle.name, oracle.suite, False, f"raised {exc!r}"))
            continue
        results.append(
            OracleResult(
                name=oracle.name,
                suite=oracle.suite,
                passed=not divergences,
                detail=detail,
                divergences=list(divergences),
            )
        )
    return results


# ======================================================================
# suite "kernels": every variant vs the reference kernel
# ======================================================================

_KERNEL_RTOL = 1.0e-12


def _stokes_pair(impl: str, mode: str):
    from repro.core.jacobian import run_kernel
    from repro.verify.fixtures import stokes_fields_factory

    factory = stokes_fields_factory(num_cells=6, mode=mode, seed=11)
    ref, alt = factory(), factory()
    run_kernel(f"baseline-{mode}", ref)
    run_kernel(f"{impl}-{mode}", alt)
    return ref, alt


def _compare_stokes(impl: str, mode: str):
    ref, alt = _stokes_pair(impl, mode)
    scale = float(np.max(np.abs(ref.Residual.values())))
    divs = []
    d = first_divergence(
        f"{impl}-{mode}/Residual.values",
        alt.Residual.values(),
        ref.Residual.values(),
        rtol=_KERNEL_RTOL,
        atol=_KERNEL_RTOL * scale,
    )
    if d:
        divs.append(d)
    if mode == "jacobian":
        dscale = float(np.max(np.abs(ref.Residual.data.dx)))
        d = first_divergence(
            f"{impl}-{mode}/Residual.dx",
            alt.Residual.data.dx,
            ref.Residual.data.dx,
            rtol=_KERNEL_RTOL,
            atol=_KERNEL_RTOL * dscale,
        )
        if d:
            divs.append(d)
    return divs, f"{impl}-{mode} vs baseline-{mode} @ rtol {_KERNEL_RTOL:g}"


for _impl in ("optimized", "fused"):
    for _mode in ("residual", "jacobian"):

        @_register(
            f"{_impl}-{_mode}-vs-baseline",
            "kernels",
            f"{_impl} {_mode} kernel agrees with the Fig. 2 baseline listing",
        )
        def _oracle_stokes_variant(impl=_impl, mode=_mode):
            return _compare_stokes(impl, mode)


def _fill_viscosity(fields, seed=21):
    # base inputs come from one stream, derivative seeds from another, so
    # double- and Fad-typed field sets see identical base values
    rng = np.random.default_rng(seed)
    nc, nq = fields.num_cells, fields.num_qps
    ug = rng.normal(size=(nc, nq, 2, 3)) * 1e-3
    ff = rng.uniform(1e-6, 1e-4, size=(nc, nq))
    if fields.scalar.is_fad:
        drng = np.random.default_rng(seed + 1)
        fields.Ugrad.data.val[...] = ug
        fields.Ugrad.data.dx[...] = drng.normal(size=ug.shape + (fields.scalar.fad_dim,)) * 1e-6
    else:
        fields.Ugrad.data[...] = ug
    fields.flowFactor.data[...] = ff
    return fields


@_register(
    "viscosity-value-consistency",
    "kernels",
    "ViscosityFO value part agrees under double and SFad scalar types",
)
def _oracle_viscosity_values():
    from repro.core.viscosity_kernel import ViscosityFOKernel, make_viscosity_fields

    fr = _fill_viscosity(make_viscosity_fields(6, mode="residual"))
    fj = _fill_viscosity(make_viscosity_fields(6, mode="jacobian"))
    for f in (fr, fj):
        functor = ViscosityFOKernel(f)
        for c in range(f.num_cells):
            functor(c)
    # not bitwise: the double path evaluates ``np.float64 ** p`` (scalar
    # pow) while the SFad value path evaluates ``ndarray ** p`` (the
    # npy_pow ufunc), and the two libm routes can disagree in the last
    # ulp.  1e-14 is ~50 ulp of slack -- any algebraic difference between
    # the paths is orders of magnitude larger.
    scale = float(np.max(np.abs(fr.muLandIce.values()))) or 1.0
    d = first_divergence(
        "viscosity/muLandIce.values",
        fj.muLandIce.values(),
        fr.muLandIce.values(),
        rtol=1e-14,
        atol=1e-14 * scale,
    )
    return ([d] if d else []), "SFad value path vs double path @ rtol 1e-14"


def _race_oracle_fn(key: str):
    from repro.core.variants import get_variant
    from repro.verify.race import RaceChecker

    variant = get_variant(key)
    if variant.family == "viscosity":
        from repro.core.viscosity_kernel import make_viscosity_fields

        def factory(mode=variant.mode):
            return _fill_viscosity(make_viscosity_fields(6, mode=mode))

        checker = RaceChecker(key, variant.make_functor, factory, outputs=["muLandIce"])
    else:
        from repro.verify.fixtures import stokes_fields_factory

        checker = RaceChecker(
            key, variant.make_functor, stokes_fields_factory(num_cells=6, mode=variant.mode, seed=11)
        )
    report = checker.check()
    divs = [d for _, d in report.order_divergences]
    if report.findings:
        # surface write-set findings even without a bitwise divergence
        return (
            divs
            or [
                Divergence(
                    name=f"{key}/write-sets",
                    index=(0,),
                    lhs=float("nan"),
                    rhs=float("nan"),
                    abs_err=float("nan"),
                    max_abs_err=float("nan"),
                    num_bad=len(report.findings),
                )
            ],
            report.describe(),
        )
    return divs, report.describe()


for _key in (
    "baseline-residual",
    "baseline-jacobian",
    "optimized-residual",
    "optimized-jacobian",
    "fused-residual",
    "fused-jacobian",
    "viscosity-residual",
    "viscosity-jacobian",
):

    @_register(
        f"race-{_key}",
        "kernels",
        f"{_key} body is race-free and bitwise order-independent",
    )
    def _oracle_race(key=_key):
        return _race_oracle_fn(key)


# ======================================================================
# suite "jacobian": SFad vs the definition of the derivative
# ======================================================================


class _DuckStokesFields:
    """Minimal fields bundle over raw ndarrays (real *or* complex).

    The kernel bodies are single-source polynomials over ``+``/``*``, so
    they run unchanged on complex arrays -- which is what makes the
    complex-step derivative applicable at all.
    """

    def __init__(self, Ugrad, muLandIce, force, wBF, wGradBF, dtype):
        self.Ugrad = Ugrad.astype(dtype)
        self.muLandIce = muLandIce.astype(dtype)
        self.force = force.astype(dtype)
        self.wBF = wBF
        self.wGradBF = wGradBF
        nc, nn = wBF.shape[0], wBF.shape[1]
        self.Residual = np.zeros((nc, nn, 2), dtype=dtype)
        self.num_nodes = nn
        self.num_qps = wBF.shape[2]
        self._zero = dtype(0)

    def zero(self, cell):
        return self._zero


def _duck_residual(base: dict, dU, dmu, dfrc, t, dtype=np.float64) -> np.ndarray:
    """Evaluate the optimized body at ``base + t * direction``."""
    from repro.core.kernels import StokesFOResidOptimized

    fields = _DuckStokesFields(
        base["Ugrad"] + t * dU,
        base["muLandIce"] + t * dmu,
        base["force"] + t * dfrc,
        base["wBF"],
        base["wGradBF"],
        dtype,
    )
    functor = StokesFOResidOptimized(fields)
    for c in range(fields.wBF.shape[0]):
        functor(c)
    return fields.Residual


def _seeded_jacobian_setup(num_cells=4, seed=31):
    """Base point, per-component directions, and the SFad-computed dirs.

    Returns ``(base, dirs, sfad_dirderiv)`` where ``sfad_dirderiv[k]``
    is the kernel-propagated directional derivative along direction
    ``k`` (shape ``(nc, nn, 2)``).
    """
    from repro.core.fields import JACOBIAN_FAD_SIZE, make_stokes_fields
    from repro.core.jacobian import run_kernel

    rng = np.random.default_rng(seed)
    nc, nn, nq = num_cells, 8, 8
    base = {
        "Ugrad": rng.normal(size=(nc, nq, 2, 3)) * 1e-3,
        "muLandIce": rng.uniform(1e3, 1e5, size=(nc, nq)),
        "force": rng.normal(size=(nc, nq, 2)) * 10.0,
        "wBF": rng.uniform(0.1, 1.0, size=(nc, nn, nq)),
        "wGradBF": rng.normal(size=(nc, nn, nq, 3)) * 1e-3,
    }
    k = JACOBIAN_FAD_SIZE
    # direction magnitudes follow each view's scale so finite differences
    # perturb every input comparably in relative terms
    dirs = {
        "Ugrad": rng.normal(size=base["Ugrad"].shape + (k,)) * 1e-3,
        "muLandIce": rng.normal(size=base["muLandIce"].shape + (k,)) * 1e3,
        "force": rng.normal(size=base["force"].shape + (k,)) * 1.0,
    }

    fields = make_stokes_fields(nc, mode="jacobian")
    for name in ("Ugrad", "muLandIce", "force"):
        view = getattr(fields, name)
        view.data.val[...] = base[name]
        view.data.dx[...] = dirs[name]
    fields.wBF.data[...] = base["wBF"]
    fields.wGradBF.data[...] = base["wGradBF"]
    run_kernel("optimized-jacobian", fields)
    sfad = np.moveaxis(fields.Residual.data.dx, -1, 0)  # (k, nc, nn, 2)
    return base, dirs, sfad


@_register(
    "sfad-vs-central-fd",
    "jacobian",
    "SFad directional derivatives match central finite differences",
)
def _oracle_sfad_fd():
    base, dirs, sfad = _seeded_jacobian_setup()
    eps = 1.0e-3  # truncation is exactly zero (body quadratic along t)
    divs = []
    for k in range(sfad.shape[0]):
        dU, dmu, dfrc = dirs["Ugrad"][..., k], dirs["muLandIce"][..., k], dirs["force"][..., k]
        fp = _duck_residual(base, dU, dmu, dfrc, +eps)
        fm = _duck_residual(base, dU, dmu, dfrc, -eps)
        fd = (fp - fm) / (2.0 * eps)
        scale = max(1.0e-30, float(np.max(np.abs(fd))))
        d = first_divergence(f"dResidual[dir {k}] (fd)", sfad[k], fd, rtol=1e-8, atol=1e-8 * scale)
        if d:
            divs.append(d)
    return divs, f"16 directions, eps={eps:g}, rtol 1e-8"


@_register(
    "sfad-vs-complex-step",
    "jacobian",
    "SFad directional derivatives match the complex-step derivative",
)
def _oracle_sfad_complex():
    base, dirs, sfad = _seeded_jacobian_setup()
    h = 1.0e-20  # no subtractive cancellation: h can sit below roundoff
    divs = []
    for k in range(sfad.shape[0]):
        dU, dmu, dfrc = dirs["Ugrad"][..., k], dirs["muLandIce"][..., k], dirs["force"][..., k]
        fc = _duck_residual(base, dU, dmu, dfrc, 1j * h, dtype=np.complex128)
        cs = fc.imag / h
        scale = max(1.0e-30, float(np.max(np.abs(cs))))
        d = first_divergence(
            f"dResidual[dir {k}] (complex)", sfad[k], cs, rtol=1e-12, atol=1e-12 * scale
        )
        if d:
            divs.append(d)
    return divs, f"16 directions, h={h:g}, rtol 1e-12"


def _small_problem(nparts: int = 1):
    from repro.app import AntarcticaConfig, AntarcticaTest, VelocityConfig

    cfg = AntarcticaConfig(
        resolution_km=400.0,
        num_layers=3,
        velocity=VelocityConfig(nparts=nparts),
    )
    return AntarcticaTest.build(cfg).problem


@_register(
    "fused-assembly-vs-separate",
    "jacobian",
    "fused residual_and_jacobian equals separate residual/jacobian, bitwise",
)
def _oracle_fused_assembly():
    problem = _small_problem()
    rng = np.random.default_rng(42)
    u = rng.normal(size=problem.dofmap.num_dofs) * 10.0
    u[problem.bc_dofs] = 0.0
    f_fused, A_fused = problem.residual_and_jacobian(u)
    f_sep = problem.residual(u)
    A_sep = problem.jacobian(u)
    divs = []
    d = first_divergence("residual (fused vs separate)", f_fused, f_sep)
    if d:
        divs.append(d)
    d = first_divergence("jacobian.data (fused vs separate)", A_fused.data, A_sep.data)
    if d:
        divs.append(d)
    return divs, f"{problem.dofmap.num_dofs} dofs, bitwise"


@_register(
    "sanitizer-clean-solve",
    "jacobian",
    "a full velocity solve creates no NaN/Inf under the armed sanitizer",
)
def _oracle_sanitizer_clean():
    from repro.verify.sanitizer import sanitizing

    problem = _small_problem()
    with sanitizing(mode="record") as san:
        sol = problem.solve()
    divs = []
    if san.counts["nonfinite"]:
        divs.append(
            Divergence(
                name="sanitizer.nonfinite",
                index=(0,),
                lhs=float(san.counts["nonfinite"]),
                rhs=0.0,
                abs_err=float(san.counts["nonfinite"]),
                max_abs_err=float(san.counts["nonfinite"]),
                num_bad=san.counts["nonfinite"],
            )
        )
    detail = (
        f"solve converged to |F|={sol.newton.residual_norms[-1]:.3e}; "
        f"sanitizer events: {san.summary()['events']} "
        f"(nonfinite={san.counts['nonfinite']}, cancellation={san.counts['cancellation']}, "
        f"denormal={san.counts['denormal']})"
    )
    return divs, detail


# ======================================================================
# suite "spmd": partitioned solves vs the serial solve
# ======================================================================


@_register(
    "spmd-vs-serial",
    "spmd",
    "SPMD solves at nparts in {1,2,4,7} are bitwise identical to serial",
)
def _oracle_spmd():
    serial = _small_problem(1).solve()
    divs = []
    checked = []
    for nparts in (1, 2, 4, 7):
        sol = _small_problem(nparts).solve()
        d = first_divergence(f"u (nparts={nparts})", sol.u, serial.u)
        if d:
            divs.append(d)
        if sol.newton.residual_norms != serial.newton.residual_norms:
            divs.append(
                Divergence(
                    name=f"newton.residual_norms (nparts={nparts})",
                    index=(0,),
                    lhs=sol.newton.residual_norms[-1],
                    rhs=serial.newton.residual_norms[-1],
                    abs_err=abs(sol.newton.residual_norms[-1] - serial.newton.residual_norms[-1]),
                    max_abs_err=0.0,
                    num_bad=1,
                )
            )
        checked.append(nparts)
    return divs, f"nparts {checked} vs serial, {len(serial.u)} dofs, bitwise"


# ======================================================================
# suite "bytes": the appendix TCC_EA formula vs the modeled traffic
# ======================================================================


@_register(
    "rocprof-formula-vs-model",
    "bytes",
    "64B-request rocprof formula reconciles exactly with modeled HBM bytes",
)
def _oracle_bytes():
    from repro.core.variants import variant_names
    from repro.gpusim import ANTARCTICA_16KM, GPUSimulator
    from repro.gpusim.specs import ALL_GPUS

    divs = []
    checked = 0
    for gpu, spec in ALL_GPUS.items():
        sim = GPUSimulator(spec)
        for key in variant_names():
            p = sim.run(key, ANTARCTICA_16KM)
            dm = p.data_movement
            formula = dm.rocprof_formula_bytes()
            if formula != dm.total_bytes or dm.total_bytes <= 0.0:
                divs.append(
                    Divergence(
                        name=f"{gpu}/{key}",
                        index=(0,),
                        lhs=formula,
                        rhs=dm.total_bytes,
                        abs_err=abs(formula - dm.total_bytes),
                        max_abs_err=abs(formula - dm.total_bytes),
                        num_bad=1,
                    )
                )
            checked += 1
    return divs, f"{checked} (gpu, variant) pairs, exact equality"


# ======================================================================
# suite "matvec": the matrix-free operator vs the assembled matrix
# ======================================================================

_MATVEC_RTOL = 1.0e-12


def _operator_pair(geometry: str = "antarctica"):
    """Assembled and matrix-free problems sharing one mesh/geometry."""
    from dataclasses import replace

    from repro.app import AntarcticaConfig, AntarcticaTest, VelocityConfig
    from repro.app.velocity_solver import StokesVelocityProblem

    if geometry == "antarctica":
        cfg = AntarcticaConfig(
            resolution_km=400.0,
            num_layers=3,
            velocity=VelocityConfig(operator_mode="assembled"),
        )
        t = AntarcticaTest.build(cfg)
        pa = t.problem
        pm = StokesVelocityProblem(
            t.mesh, t.geometry, replace(cfg.velocity, operator_mode="matrix-free")
        )
        return pa, pm
    from repro.mesh import greenland_geometry
    from repro.mesh.extrude import extrude_footprint
    from repro.mesh.planar import masked_quad_footprint

    geo = greenland_geometry()
    fp = masked_quad_footprint(9, 15, geo.lx, geo.ly, geo.mask)
    mesh = extrude_footprint(fp, geo, 5)
    pa = StokesVelocityProblem(mesh, geo, VelocityConfig(operator_mode="assembled"))
    pm = StokesVelocityProblem(mesh, geo, VelocityConfig(operator_mode="matrix-free"))
    return pa, pm


def _matvec_divergences(pa, pm, num_probes: int = 4, seed: int = 7):
    """Matrix-free vs assembled ``J @ v`` at a seeded state, plus diagonals."""
    rng = np.random.default_rng(seed)
    u = rng.normal(size=pa.dofmap.num_dofs) * 10.0
    u[pa.bc_dofs] = 0.0
    A = pa.jacobian(u)
    B = pm.jacobian(u)
    divs = []
    for p in range(num_probes):
        v = rng.normal(size=len(u))
        ya, ym = A.matvec(v), B.matvec(v)
        scale = max(1.0e-30, float(np.max(np.abs(ya))))
        d = first_divergence(
            f"J@v (probe {p})", ym, ya, rtol=_MATVEC_RTOL, atol=_MATVEC_RTOL * scale
        )
        if d:
            divs.append(d)
    da = A.diagonal()
    dscale = max(1.0e-30, float(np.max(np.abs(da))))
    d = first_divergence(
        "diag(J)", B.diagonal(), da, rtol=_MATVEC_RTOL, atol=_MATVEC_RTOL * dscale
    )
    if d:
        divs.append(d)
    return divs, A, B


for _geom in ("antarctica", "greenland"):

    @_register(
        f"matrix-free-vs-assembled-jv-{_geom}",
        "matvec",
        f"element-block J@v equals assembled CSR J@v on the {_geom} fixture",
    )
    def _oracle_matfree_jv(geom=_geom):
        pa, pm = _operator_pair(geom)
        divs, A, _ = _matvec_divergences(pa, pm)
        return divs, (
            f"{geom}: {A.shape[0]} dofs, 4 probes + diagonal @ rtol {_MATVEC_RTOL:g}"
        )


@_register(
    "matrix-free-smoother-blocks",
    "matvec",
    "matrix-free vertical-line blocks equal the CSR-extracted blocks",
)
def _oracle_matfree_blocks():
    from repro.solvers.smoothers import VerticalLineSmoother

    pa, pm = _operator_pair("antarctica")
    rng = np.random.default_rng(9)
    u = rng.normal(size=pa.dofmap.num_dofs) * 10.0
    u[pa.bc_dofs] = 0.0
    A, B = pa.jacobian(u), pm.jacobian(u)
    blk = pa.mesh.levels * 2
    ref = VerticalLineSmoother(A, blk).lu_blocks
    alt = B.column_blocks(blk)
    scale = max(1.0e-30, float(np.max(np.abs(ref))))
    d = first_divergence(
        "column_blocks", alt, ref, rtol=_MATVEC_RTOL, atol=_MATVEC_RTOL * scale
    )
    return ([d] if d else []), (
        f"{ref.shape[0]} column blocks of {blk}x{blk} @ rtol {_MATVEC_RTOL:g}"
    )


@_register(
    "fused-mgs-vs-reference-mgs",
    "matvec",
    "fused batched-CGS GMRES reaches the reference-MGS solution (bitwise or rtol)",
)
def _oracle_fused_orth():
    from repro.solvers.gmres import gmres
    from repro.solvers.smoothers import VerticalLineSmoother

    pa, _ = _operator_pair("antarctica")
    rng = np.random.default_rng(13)
    u = rng.normal(size=pa.dofmap.num_dofs) * 10.0
    u[pa.bc_dofs] = 0.0
    J = pa.jacobian(u)
    b = -pa.residual(u)
    M = VerticalLineSmoother(J, pa.mesh.levels * 2, iters=2)
    ref = gmres(J, b, tol=1.0e-8, restart=200, maxiter=400, M=M, orth="mgs")
    alt = gmres(J, b, tol=1.0e-8, restart=200, maxiter=400, M=M, orth="fused")
    divs = []
    bitwise = bool(np.array_equal(ref.x, alt.x))
    if not bitwise:
        # the two orthogonalizations reassociate the projection sums, so
        # trajectories differ at rounding level; both must still land on
        # the same solution to the linear tolerance
        scale = max(1.0e-30, float(np.max(np.abs(ref.x))))
        d = first_divergence("gmres.x (fused vs mgs)", alt.x, ref.x, rtol=1e-8, atol=1e-8 * scale)
        if d:
            divs.append(d)
    if ref.converged != alt.converged:
        divs.append(
            Divergence(
                name="gmres.converged",
                index=(0,),
                lhs=float(alt.converged),
                rhs=float(ref.converged),
                abs_err=1.0,
                max_abs_err=1.0,
                num_bad=1,
            )
        )
    return divs, (
        f"{'bitwise equal' if bitwise else 'rtol 1e-8'}; "
        f"mgs {ref.iterations} its / fused {alt.iterations} its, "
        f"{alt.reorthogonalizations} DGKS passes"
    )


@_register(
    "matrix-free-solve-vs-assembled",
    "matvec",
    "end-to-end Newton solves agree across operator modes to the golden tolerance",
)
def _oracle_matfree_solve():
    pa, pm = _operator_pair("antarctica")
    sa, sm = pa.solve(), pm.solve()
    divs = []
    scale = max(1.0e-30, float(np.max(np.abs(sa.u))))
    d = first_divergence("u (matrix-free vs assembled)", sm.u, sa.u, rtol=1e-5, atol=1e-8 * scale)
    if d:
        divs.append(d)
    if sm.newton.iterations != sa.newton.iterations:
        divs.append(
            Divergence(
                name="newton.iterations",
                index=(0,),
                lhs=float(sm.newton.iterations),
                rhs=float(sa.newton.iterations),
                abs_err=abs(float(sm.newton.iterations - sa.newton.iterations)),
                max_abs_err=0.0,
                num_bad=1,
            )
        )
    return divs, (
        f"mean |u| {sa.mean_velocity:.6f} vs {sm.mean_velocity:.6f} m/yr, "
        f"{sa.newton.iterations} Newton steps each"
    )


@_register(
    "matvec-bytes-reconciliation",
    "matvec",
    "GMRES byte accounting reconciles with the operator model; matrix-free moves less",
)
def _oracle_matvec_bytes():
    from repro.gpusim.solver_bytes import spmv_bytes
    from repro.solvers.gmres import gmres
    from repro.solvers.smoothers import JacobiSmoother

    pa, pm = _operator_pair("antarctica")
    rng = np.random.default_rng(17)
    u = rng.normal(size=pa.dofmap.num_dofs) * 10.0
    u[pa.bc_dofs] = 0.0
    A, B = pa.jacobian(u), pm.jacobian(u)
    b = -pa.residual(u)
    # a deliberately weak preconditioner: Krylov depths stay
    # representative of the bandwidth-bound regime the fusion targets
    ra = gmres(A, b, tol=1e-6, restart=200, maxiter=400, M=JacobiSmoother(A, iters=3), orth="mgs")
    rm = gmres(B, b, tol=1e-6, restart=200, maxiter=400, M=JacobiSmoother(B, iters=3), orth="fused")
    divs = []
    # (a) exact reconciliation: accumulated matvec bytes == count * model
    expect_a = ra.matvecs * spmv_bytes(A.shape[0], A.nnz)
    expect_m = rm.matvecs * B.bytes_per_matvec
    for name, got, want in (
        ("assembled.matvec_bytes", ra.matvec_bytes, expect_a),
        ("matrix-free.matvec_bytes", rm.matvec_bytes, expect_m),
    ):
        if got != want:
            divs.append(
                Divergence(
                    name=name, index=(0,), lhs=got, rhs=want,
                    abs_err=abs(got - want), max_abs_err=abs(got - want), num_bad=1,
                )
            )
    # (b) the measured win: modeled bytes per GMRES iteration must be
    # lower on the matrix-free + fused path
    per_a = ra.total_bytes / max(1, ra.iterations)
    per_m = rm.total_bytes / max(1, rm.iterations)
    if not per_m < per_a:
        divs.append(
            Divergence(
                name="bytes_per_iteration", index=(0,), lhs=per_m, rhs=per_a,
                abs_err=per_m - per_a, max_abs_err=per_m - per_a, num_bad=1,
            )
        )
    return divs, (
        f"per-iteration bytes: assembled+mgs {per_a:.3e}, "
        f"matrix-free+fused {per_m:.3e} ({per_m / per_a:.2f}x), "
        f"matvecs {ra.matvecs}/{rm.matvecs} within budget 400"
    )


def matfree_perturbed_divergences(rel: float = 1.0e-4):
    """Divergences of a deliberately perturbed matrix-free operator.

    Scales one element-block entry by ``1 + rel`` -- the planted defect
    proving the matvec oracle *detects* a wrong matrix-free apply (the
    suite's negative control, mirroring :func:`perturbed_divergences`).
    """
    pa, pm = _operator_pair("antarctica")
    rng = np.random.default_rng(23)
    u = rng.normal(size=pa.dofmap.num_dofs) * 10.0
    u[pa.bc_dofs] = 0.0
    A, B = pa.jacobian(u), pm.jacobian(u)
    # poison one interior (non-Dirichlet-row) block entry
    is_bc = np.zeros(B.n, dtype=bool)
    is_bc[B.bc_dofs] = True
    cells, ii = np.nonzero(~is_bc[B.elem_dofs])
    c, i = int(cells[0]), int(ii[0])
    B.local_jac[c, i, i] *= 1.0 + rel
    v = rng.normal(size=len(u))
    ya, ym = A.matvec(v), B.matvec(v)
    scale = max(1.0e-30, float(np.max(np.abs(ya))))
    d = first_divergence(
        "perturbed J@v", ym, ya, rtol=_MATVEC_RTOL, atol=_MATVEC_RTOL * scale
    )
    return [d] if d else []


@_register(
    "matvec-detects-perturbed-operator",
    "matvec",
    "the matvec oracle flags a planted wrong element block (detection selftest)",
)
def _oracle_matfree_detection():
    divs = matfree_perturbed_divergences()
    if not divs:
        return [
            Divergence(
                name="perturbed-operator-not-detected",
                index=(0,),
                lhs=0.0,
                rhs=1.0,
                abs_err=1.0,
                max_abs_err=1.0,
                num_bad=1,
            )
        ], "planted 1e-4 block perturbation was NOT detected"
    return [], (
        f"planted 1e-4 block perturbation detected "
        f"(max |diff| {divs[0].max_abs_err:.3e} over {divs[0].num_bad} entries)"
    )


# ======================================================================
# the perturbed-kernel probe (used by the detection selftest, not
# registered: it is *supposed* to diverge)
# ======================================================================


def perturbed_divergences(mode: str = "residual"):
    """Divergences of the seeded wrong-coefficient kernel vs the baseline.

    Nonempty list == the oracle machinery can catch a realistic porting
    bug; used by ``python -m repro verify`` as a negative control and by
    ``--fixture perturbed`` as a fake production kernel.
    """
    from repro.core.jacobian import run_kernel
    from repro.verify.fixtures import PerturbedStokesFOResid, stokes_fields_factory

    factory = stokes_fields_factory(num_cells=6, mode=mode, seed=11)
    ref, alt = factory(), factory()
    run_kernel(f"baseline-{mode}", ref)
    functor = PerturbedStokesFOResid(alt)
    for c in range(alt.num_cells):
        functor(c)
    scale = float(np.max(np.abs(ref.Residual.values())))
    d = first_divergence(
        f"perturbed-{mode}/Residual.values",
        alt.Residual.values(),
        ref.Residual.values(),
        rtol=_KERNEL_RTOL,
        atol=_KERNEL_RTOL * scale,
    )
    return [d] if d else []
