"""Array comparison with first-divergence context.

Every verification pillar reports disagreements the same way: not just
"arrays differ" but *where they first differ and by how much*, which is
what turns a red CI job into a five-minute diagnosis.  ``tol=0`` means
bitwise comparison (the SPMD/fused-assembly contracts); a positive
``rtol``/``atol`` pair covers reassociated floating-point sums.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Divergence", "first_divergence", "max_abs_error"]


@dataclass(frozen=True)
class Divergence:
    """First point (C order) where two arrays disagree beyond tolerance."""

    name: str  # which compared quantity (e.g. "Residual.values")
    index: tuple  # multi-index of the first offending slot
    lhs: float
    rhs: float
    abs_err: float
    max_abs_err: float  # over the whole array pair
    num_bad: int  # offending slots in total

    def describe(self) -> str:
        return (
            f"{self.name}[{','.join(map(str, self.index))}]: "
            f"{self.lhs!r} vs {self.rhs!r} (|diff|={self.abs_err:.3e}, "
            f"max |diff|={self.max_abs_err:.3e}, {self.num_bad} slot(s) differ)"
        )


def max_abs_error(lhs, rhs) -> float:
    lhs = np.asarray(lhs, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    if lhs.size == 0:
        return 0.0
    return float(np.max(np.abs(lhs - rhs)))


def first_divergence(
    name: str,
    lhs,
    rhs,
    rtol: float = 0.0,
    atol: float = 0.0,
) -> Divergence | None:
    """Return the first out-of-tolerance slot, or ``None`` when equal.

    ``rtol=atol=0`` demands bitwise equality (NaNs at matching slots
    still count as divergent: a NaN is never a verified agreement).
    """
    lhs = np.asarray(lhs, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    if lhs.shape != rhs.shape:
        raise ValueError(f"{name}: shape mismatch {lhs.shape} vs {rhs.shape}")
    if lhs.size == 0:
        return None
    diff = np.abs(lhs - rhs)
    if rtol == 0.0 and atol == 0.0:
        bad = ~((lhs == rhs) & np.isfinite(lhs))
    else:
        bad = ~(diff <= atol + rtol * np.abs(rhs))
    if not np.any(bad):
        return None
    flat = int(np.argmax(bad.ravel()))
    index = np.unravel_index(flat, lhs.shape)
    with np.errstate(invalid="ignore"):
        max_err = float(np.nanmax(np.where(np.isfinite(diff), diff, np.inf)))
    return Divergence(
        name=name,
        index=tuple(int(i) for i in index),
        lhs=float(lhs[index]),
        rhs=float(rhs[index]),
        abs_err=float(diff[index]) if np.isfinite(diff[index]) else float("inf"),
        max_abs_err=max_err,
        num_bad=int(np.count_nonzero(bad)),
    )
