"""Race and determinism checking for ``parallel_for`` kernel bodies.

Kokkos semantics promise nothing about the order in which a
``parallel_for``'s iterations run, and on a GPU they genuinely run
concurrently: a body is only correct if distinct iteration indices
never touch the same memory non-atomically.  The paper's optimizations
(fusion, local accumulation, hoisted branches) all rewrite kernel
bodies, so every rewrite needs a mechanical proof that it stayed
order-independent.  This module provides two complementary proofs:

1. **Write-set analysis** (:func:`record_access_sets`): run the body
   per-index (the ``HostSerial`` reference semantics) with every View
   replaced by a recording shim, collect the set of (view, slot) pairs
   each iteration reads and writes, and flag any slot written by two
   different iterations (write-write race) or written by one and read
   by another (read-write race).  This is the Python analogue of what
   a GPU sanitizer (``compute-sanitizer --tool racecheck``) reports.

2. **Order permutation** (:func:`check_order_independence`): execute
   the body under identity, reversed, strided and seeded-random
   iteration orders and demand *bitwise identical* outputs.  Races the
   write-set analysis can represent (read-modify-write of shared slots)
   show up here as first-divergence reports; it also catches
   order-dependence smuggled in through scalar state the shim cannot
   see.

Both proofs drive the same functor factory the production dispatch
uses, so the body under test is the body that ships.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kokkos.view import View
from repro.verify.compare import Divergence, first_divergence

__all__ = [
    "AccessRecorder",
    "RecordingView",
    "ShadowFields",
    "RaceFinding",
    "RaceReport",
    "record_access_sets",
    "iteration_orders",
    "check_order_independence",
    "RaceChecker",
]


def _normalize_slot(view: View, idx) -> tuple:
    """A hashable slot key for one scalar access.

    Per-index execution gives concrete integer indices; anything else
    (slices, arrays) means the body was not run under reference
    semantics and the write-set would be meaningless.
    """
    if not isinstance(idx, tuple):
        idx = (idx,)
    slot = []
    for i in idx:
        if isinstance(i, (int, np.integer)):
            slot.append(int(i))
        else:
            raise TypeError(
                f"view {view.name!r}: non-integer index {i!r}; the race "
                "checker runs kernel bodies per iteration index "
                "(HostSerial semantics), not vectorized"
            )
    return tuple(slot)


@dataclass
class AccessRecorder:
    """Per-iteration read/write sets over all instrumented views."""

    #: (view, slot) -> sorted unique iteration ids that wrote it
    writes: dict = field(default_factory=dict)
    #: (view, slot) -> set of iteration ids that read it
    reads: dict = field(default_factory=dict)
    iteration: int = -1

    def record_read(self, view: View, idx) -> None:
        key = (view.name, _normalize_slot(view, idx))
        self.reads.setdefault(key, set()).add(self.iteration)

    def record_write(self, view: View, idx) -> None:
        key = (view.name, _normalize_slot(view, idx))
        self.writes.setdefault(key, []).append(self.iteration)


class RecordingView:
    """View shim: forwards storage access, records (slot, iteration)."""

    def __init__(self, recorder: AccessRecorder, view: View):
        self._recorder = recorder
        self._view = view
        self.name = view.name
        self.shape = view.shape
        self.scalar = view.scalar
        self.layout = view.layout

    @property
    def data(self):
        return self._view.data

    def values(self):
        return self._view.values()

    def __getitem__(self, idx):
        self._recorder.record_read(self._view, idx)
        return self._view[idx]

    def __setitem__(self, idx, value):
        self._recorder.record_write(self._view, idx)
        self._view[idx] = value


class ShadowFields:
    """Field-container proxy exposing recording views.

    Kernel functors take a fields bundle and pull named views off it in
    their constructors; this proxy forwards everything and wraps any
    :class:`View` attribute in a :class:`RecordingView`, so the
    unmodified production functor records its own access program.
    """

    def __init__(self, fields, recorder: AccessRecorder):
        self._fields = fields
        self._recorder = recorder
        self._wrapped: dict[str, RecordingView] = {}

    def __getattr__(self, name):
        value = getattr(self._fields, name)
        if isinstance(value, View):
            shim = self._wrapped.get(name)
            if shim is None:
                shim = RecordingView(self._recorder, value)
                self._wrapped[name] = shim
            return shim
        return value


@dataclass(frozen=True)
class RaceFinding:
    """One slot touched conflictingly by distinct iteration indices."""

    view: str
    slot: tuple
    kind: str  # "write-write" | "read-write"
    iterations: tuple  # offending iteration ids (truncated sample)

    def describe(self) -> str:
        its = ", ".join(map(str, self.iterations))
        return f"{self.kind} race on {self.view}[{','.join(map(str, self.slot))}] between iterations {{{its}}}"


@dataclass
class RaceReport:
    """Combined write-set and order-permutation verdict for one kernel."""

    name: str
    extent: int
    findings: list[RaceFinding] = field(default_factory=list)
    order_divergences: list[tuple[str, Divergence]] = field(default_factory=list)
    orders_checked: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return not self.findings and not self.order_divergences

    def describe(self) -> str:
        if self.passed:
            return (
                f"{self.name}: race-free over {self.extent} iterations; "
                f"bitwise order-independent under {', '.join(self.orders_checked)}"
            )
        lines = [f"{self.name}: {len(self.findings)} race finding(s), "
                 f"{len(self.order_divergences)} order divergence(s)"]
        lines += [f"  {f.describe()}" for f in self.findings[:8]]
        if len(self.findings) > 8:
            lines.append(f"  ... {len(self.findings) - 8} more")
        lines += [f"  order {o!r}: {d.describe()}" for o, d in self.order_divergences]
        return "\n".join(lines)


def record_access_sets(make_functor, fields, extent: int) -> AccessRecorder:
    """Run the body per index over recording views; return the recorder."""
    recorder = AccessRecorder()
    functor = make_functor(ShadowFields(fields, recorder))
    for i in range(extent):
        recorder.iteration = i
        functor(i)
    return recorder


def find_races(recorder: AccessRecorder, max_findings: int = 64) -> list[RaceFinding]:
    """Conflicting slots: multi-writer, or written-here-read-elsewhere."""
    findings: list[RaceFinding] = []
    for (view, slot), writers in recorder.writes.items():
        distinct_writers = sorted(set(writers))
        if len(distinct_writers) > 1:
            findings.append(
                RaceFinding(view, slot, "write-write", tuple(distinct_writers[:6]))
            )
        foreign_readers = sorted(
            recorder.reads.get((view, slot), set()) - set(distinct_writers)
        )
        if foreign_readers and distinct_writers:
            findings.append(
                RaceFinding(
                    view, slot, "read-write",
                    tuple(distinct_writers[:3] + foreign_readers[:3]),
                )
            )
        if len(findings) >= max_findings:
            break
    return findings


def iteration_orders(extent: int, seed: int = 0) -> dict[str, np.ndarray]:
    """The permuted/reversed/strided schedules order-independence demands."""
    identity = np.arange(extent)
    strided = np.concatenate([identity[0::2], identity[1::2]])
    permuted = np.random.default_rng(seed).permutation(extent)
    return {
        "identity": identity,
        "reversed": identity[::-1],
        "strided": strided,
        "permuted": permuted,
    }


def _output_arrays(fields, outputs) -> dict[str, np.ndarray]:
    """Snapshot the named output views (values + Fad derivatives)."""
    named = {}
    if outputs is None:
        views = fields.output_views()
    else:
        views = [getattr(fields, name) for name in outputs]
    for v in views:
        named[f"{v.name}.values"] = np.array(v.values(), copy=True)
        data = v.data
        if hasattr(data, "dx"):
            named[f"{v.name}.dx"] = np.array(data.dx, copy=True)
    return named


def check_order_independence(
    make_functor,
    fields_factory,
    extent: int | None = None,
    outputs=None,
    seed: int = 0,
) -> tuple[list[tuple[str, Divergence]], tuple[str, ...]]:
    """Run the body under each iteration order; demand bitwise equality.

    Returns ``(divergences, order_names)`` where each divergence pairs
    the offending order name with its first-divergence context against
    the identity-order reference.
    """
    reference: dict[str, np.ndarray] | None = None
    divergences: list[tuple[str, Divergence]] = []
    ref_fields = fields_factory()
    n = extent if extent is not None else ref_fields.num_cells
    orders = iteration_orders(n, seed=seed)
    functor = make_functor(ref_fields)
    for i in orders["identity"]:
        functor(int(i))
    reference = _output_arrays(ref_fields, outputs)

    for order_name, order in orders.items():
        if order_name == "identity":
            continue
        fields = fields_factory()
        functor = make_functor(fields)
        for i in order:
            functor(int(i))
        for name, arr in _output_arrays(fields, outputs).items():
            div = first_divergence(name, arr, reference[name])
            if div is not None:
                divergences.append((order_name, div))
                break  # first divergence per order is enough context
    return divergences, tuple(orders)


class RaceChecker:
    """Both proofs for one kernel body.

    Parameters
    ----------
    name:
        Display name for the report (kernel label).
    make_functor:
        ``fields -> functor`` -- the production factory
        (e.g. ``variant.make_functor``).
    fields_factory:
        Zero-argument callable building identically-initialized fields;
        called once per execution so every order starts from the same
        bits.
    extent:
        Iteration count (default: ``fields.num_cells``).
    outputs:
        Names of output views to compare (default: the container's
        ``output_views()``).
    """

    def __init__(self, name, make_functor, fields_factory, extent=None, outputs=None, seed=0):
        self.name = name
        self.make_functor = make_functor
        self.fields_factory = fields_factory
        self.extent = extent
        self.outputs = outputs
        self.seed = seed

    def check(self) -> RaceReport:
        fields = self.fields_factory()
        extent = self.extent if self.extent is not None else fields.num_cells
        recorder = record_access_sets(self.make_functor, fields, extent)
        findings = find_races(recorder)
        divergences, order_names = check_order_independence(
            self.make_functor,
            self.fields_factory,
            extent=extent,
            outputs=self.outputs,
            seed=self.seed,
        )
        return RaceReport(
            name=self.name,
            extent=extent,
            findings=findings,
            order_divergences=divergences,
            orders_checked=order_names,
        )
