"""OpenMetrics text exposition for the metrics + series registries.

Renders one self-describing text document (`OpenMetrics 1.0
<https://prometheus.io/docs/specs/om/open_metrics_spec/>`_) from a
:meth:`~repro.observability.metrics.MetricsRegistry.snapshot` and a
:class:`~repro.observability.timeseries.SeriesRegistry`:

* counters  -> ``# TYPE x counter`` + one ``x_total`` sample;
* gauges    -> ``# TYPE x gauge`` + one sample;
* histograms-> ``# TYPE x summary``: ``x{quantile="0.5"}``,
  ``x{quantile="0.95"}``, ``x_sum``, ``x_count`` (quantiles come from
  the deterministic reservoir, see metrics.py);
* series    -> ``# TYPE x gauge`` with the series labels plus an ``i``
  sample-index label and a Unix timestamp per point.  An exposition is
  nominally a point-in-time scrape; the index label is what lets one
  document carry a whole convergence history without the duplicate
  metric+labelset pairs the spec forbids.

Dots in registry names (``gmres.iterations``) become underscores --
OpenMetrics names match ``[a-zA-Z_][a-zA-Z0-9_]*``.

:func:`parse_exposition` is the matching stdlib-only validator (line
grammar, name charset, TYPE consistency, counter ``_total`` suffix,
duplicate labelsets, ``# EOF`` terminator).  Tests and CI run every
rendered document back through it, so the exposition path is
self-checking end to end.
"""

from __future__ import annotations

import re
from pathlib import Path

__all__ = ["render", "write_openmetrics", "parse_exposition", "sanitize_name"]

CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# sample line: name{labels} value [timestamp]
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<ts>\S+))?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_name(name: str) -> str:
    """Registry name -> OpenMetrics metric name (dots/dashes -> ``_``)."""
    out = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not out or not re.match(r"[a-zA-Z_]", out[0]):
        out = "_" + out
    return out


def _escape_label_value(v) -> str:
    return str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_name(str(k))}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt_value(v: float) -> str:
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def render(metrics_snapshot: dict | None = None, series_registry=None) -> str:
    """Build the exposition text (terminated by ``# EOF``)."""
    lines: list[str] = []
    snap = metrics_snapshot or {}

    for name in sorted(snap.get("counters", {})):
        m = sanitize_name(name)
        lines.append(f"# TYPE {m} counter")
        lines.append(f"{m}_total {_fmt_value(snap['counters'][name])}")

    for name in sorted(snap.get("gauges", {})):
        m = sanitize_name(name)
        lines.append(f"# TYPE {m} gauge")
        lines.append(f"{m} {_fmt_value(snap['gauges'][name])}")

    for name in sorted(snap.get("histograms", {})):
        s = snap["histograms"][name]
        m = sanitize_name(name)
        lines.append(f"# TYPE {m} summary")
        for q_key, q_label in (("p50", "0.5"), ("p95", "0.95")):
            if q_key in s:
                lines.append(f'{m}{{quantile="{q_label}"}} {_fmt_value(s[q_key])}')
        lines.append(f"{m}_sum {_fmt_value(s.get('sum', 0.0))}")
        lines.append(f"{m}_count {_fmt_value(s.get('count', 0))}")

    if series_registry is not None:
        # one family per sanitized NAME, not per (name, labelset): the
        # registry keeps a distinct TimeSeries per labelset (e.g.
        # gmres.residual mode=assembled vs mode=distributed), and the
        # spec allows at most one TYPE line per family.  Families the
        # metrics snapshot already typed as gauge are merged into it
        # (series samples always carry the i label, so no collision);
        # a clash with a counter/summary family gets a _series suffix.
        typed_gauges = {sanitize_name(n) for n in snap.get("gauges", {})}
        typed_other = {sanitize_name(n) for n in snap.get("counters", {})}
        typed_other |= {sanitize_name(n) for n in snap.get("histograms", {})}
        by_family: dict[str, list] = {}
        for ts in series_registry.all():
            m = sanitize_name(ts.name)
            if m in typed_other:
                m += "_series"
            by_family.setdefault(m, []).append(ts)
        for m in sorted(by_family):
            if m not in typed_gauges:
                lines.append(f"# TYPE {m} gauge")
            for ts in by_family[m]:
                for i, (_ts_us, t_unix, value) in enumerate(ts.points):
                    labels = dict(ts.labels)
                    labels["i"] = i
                    lines.append(
                        f"{m}{_fmt_labels(labels)} {_fmt_value(value)} {t_unix:.6f}"
                    )

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path, metrics_snapshot: dict | None = None, series_registry=None) -> Path:
    """Render and write the exposition; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render(metrics_snapshot, series_registry))
    return path


def parse_exposition(text: str) -> dict:
    """Validate an OpenMetrics text document; return parsed families.

    Stdlib-only structural validator (no client library in the image):

    * every line is a ``# TYPE``/``# HELP``/``# UNIT`` metadata line, a
      sample matching the grammar, or the final ``# EOF``;
    * metric and label names match the OpenMetrics charset;
    * at most one ``# TYPE`` per family, and it precedes its samples;
    * counter samples end in ``_total``; summary samples are
      ``name{quantile=...}`` / ``name_sum`` / ``name_count``;
    * no duplicate (sample name, labelset) pairs;
    * the document ends with ``# EOF`` and nothing follows it.

    Returns ``{family: {"type": t, "samples": [(name, labels, value,
    timestamp_or_None), ...]}}``; raises :class:`ValueError` with a
    line-numbered message on the first violation.
    """
    families: dict[str, dict] = {}
    seen_samples: set = set()
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")

    def err(i: int, msg: str):
        raise ValueError(f"line {i + 1}: {msg}: {lines[i]!r}")

    for i, line in enumerate(lines):
        if line == "# EOF":
            if i != len(lines) - 1:
                err(i, "content after '# EOF'")
            break
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in ("TYPE", "HELP", "UNIT"):
                err(i, "malformed metadata line")
            fam = parts[2]
            if not _NAME_RE.match(fam):
                err(i, f"invalid metric family name {fam!r}")
            entry = families.setdefault(fam, {"type": None, "samples": []})
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "summary", "histogram", "unknown", "info", "stateset",
                ):
                    err(i, "invalid TYPE")
                if entry["type"] is not None:
                    err(i, f"duplicate TYPE for family {fam!r}")
                if entry["samples"]:
                    err(i, f"TYPE after samples for family {fam!r}")
                entry["type"] = parts[3]
            continue

        m = _SAMPLE_RE.match(line)
        if not m:
            err(i, "malformed sample line")
        name = m.group("name")
        raw_labels = m.group("labels")
        labels: dict[str, str] = {}
        if raw_labels:
            consumed = _LABEL_PAIR_RE.sub("", raw_labels).replace(",", "").strip()
            if consumed:
                err(i, "malformed label set")
            for lk, lv in _LABEL_PAIR_RE.findall(raw_labels):
                if not _LABEL_RE.match(lk):
                    err(i, f"invalid label name {lk!r}")
                if lk in labels:
                    err(i, f"duplicate label {lk!r}")
                labels[lk] = lv
        try:
            value = float(m.group("value"))
        except ValueError:
            err(i, f"non-numeric value {m.group('value')!r}")
        ts = None
        if m.group("ts") is not None:
            try:
                ts = float(m.group("ts"))
            except ValueError:
                err(i, f"non-numeric timestamp {m.group('ts')!r}")

        # resolve the family this sample belongs to (suffix-aware)
        fam = name
        for suffix in ("_total", "_sum", "_count", "_bucket", "_created"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and base in families:
                fam = base
                break
        entry = families.setdefault(fam, {"type": None, "samples": []})
        ftype = entry["type"]
        if ftype == "counter" and not name.endswith(("_total", "_created")):
            err(i, f"counter sample {name!r} must end in '_total'")
        if ftype == "summary" and name == fam and "quantile" not in labels:
            err(i, f"summary sample {name!r} needs a quantile label")
        key = (name, tuple(sorted(labels.items())))
        if key in seen_samples:
            err(i, f"duplicate sample for {name!r} with identical labels")
        seen_samples.add(key)
        entry["samples"].append((name, labels, value, ts))

    return families
