"""First-class observability: hooks, spans, metrics, trace export.

The measurement layer the paper's methodology presumes (per-kernel time
per invocation, bytes moved, phase breakdowns), built the way real
Kokkos exposes it:

* :mod:`~repro.observability.hooks` -- a Kokkos-Tools-style callback
  registry every ``parallel_for`` / ``parallel_reduce`` / ``deep_copy``
  / ``fence`` dispatch emits to, with zero overhead when no tool is
  attached;
* :mod:`~repro.observability.tracer` -- nested wall-time spans with
  rank/thread labels and key=value attributes, covering the non-Kokkos
  phases too (assembly scatter, preconditioner setup, GMRES iterations,
  halo exchange, gpusim runs);
* :mod:`~repro.observability.metrics` -- counters / gauges / histograms
  with a single JSON-able ``snapshot()`` embedded in
  ``VelocitySolution.diagnostics["observability"]``;
* :mod:`~repro.observability.export` -- Chrome trace-event JSON (open
  in Perfetto), JSON-lines, and ASCII flame/summary tables.

Quick start::

    from repro import observability as obs

    with obs.tracing() as tracer:
        solution = problem.solve()
    obs.write_chrome_trace("trace.json", tracer.spans,
                           metrics=obs.get_metrics().snapshot())

or from the command line: ``python -m repro profile --out trace.json``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.observability import hooks
from repro.observability.export import (
    ascii_flame,
    metrics_table,
    summary_table,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.hooks import HookRegistry, ToolSubscriber, region, registry
from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry, get_metrics
from repro.observability.tracer import Span, SpanTracer, TracerSubscriber, get_tracer

__all__ = [
    "hooks",
    "HookRegistry",
    "ToolSubscriber",
    "registry",
    "region",
    "Span",
    "SpanTracer",
    "TracerSubscriber",
    "get_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "tracing",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "summary_table",
    "ascii_flame",
    "metrics_table",
]


@contextmanager
def tracing(tracer: SpanTracer | None = None, attach_hooks: bool = True, clear: bool = True):
    """Profiling session: record spans (and kernel hook events) for a block.

    Clears the tracer, turns recording on, and -- unless ``attach_hooks``
    is False -- subscribes a :class:`TracerSubscriber` to the hook
    registry so kernel dispatches land on the same timeline.  Yields the
    tracer; after the block, ``tracer.spans`` holds the trace and
    recording is off again.
    """
    t = tracer if tracer is not None else get_tracer()
    if clear:
        t.clear()
    t.start()
    sub = TracerSubscriber(t) if attach_hooks else None
    if sub is not None:
        registry().subscribe(sub)
    try:
        yield t
    finally:
        t.stop()
        if sub is not None:
            registry().unsubscribe(sub)
