"""First-class observability: hooks, spans, metrics, trace export.

The measurement layer the paper's methodology presumes (per-kernel time
per invocation, bytes moved, phase breakdowns), built the way real
Kokkos exposes it:

* :mod:`~repro.observability.hooks` -- a Kokkos-Tools-style callback
  registry every ``parallel_for`` / ``parallel_reduce`` / ``deep_copy``
  / ``fence`` dispatch emits to, with zero overhead when no tool is
  attached;
* :mod:`~repro.observability.tracer` -- nested wall-time spans with
  rank/thread labels and key=value attributes, covering the non-Kokkos
  phases too (assembly scatter, preconditioner setup, GMRES iterations,
  halo exchange, gpusim runs);
* :mod:`~repro.observability.metrics` -- counters / gauges / histograms
  with a single JSON-able ``snapshot()`` embedded in
  ``VelocitySolution.diagnostics["observability"]``;
* :mod:`~repro.observability.export` -- Chrome trace-event JSON (open
  in Perfetto), JSON-lines, and ASCII flame/summary tables;
* :mod:`~repro.observability.timeseries` -- timestamped convergence
  series (residual histories, recovery events, tuner trials) aligned
  with the span clock;
* :mod:`~repro.observability.attribution` -- roofline annotation of
  priced spans (AI, %-of-roof vs a GPU spec) plus rocprof-formula byte
  reconciliation;
* :mod:`~repro.observability.stitch` -- SPMD per-rank stream stitching
  (rank -> Chrome pid, clock alignment) and the halo-wait vs compute
  critical-path split;
* :mod:`~repro.observability.openmetrics` -- OpenMetrics text
  exposition of metrics + series, with a stdlib validating parser;
* :mod:`~repro.observability.perfdiff` -- snapshot differ behind
  ``python -m repro perfdiff`` (stdlib-only: usable even when the
  package under diagnosis is broken).

Quick start::

    from repro import observability as obs

    with obs.tracing() as tracer:
        solution = problem.solve()
    obs.write_chrome_trace("trace.json", tracer.spans,
                           metrics=obs.get_metrics().snapshot())

or from the command line: ``python -m repro profile --out trace.json``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.observability import hooks
from repro.observability.export import (
    ascii_flame,
    metrics_table,
    summary_table,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.attribution import (
    annotate_roofline,
    reconcile_rocprof_bytes,
    roofline_table,
    span_bytes,
)
from repro.observability.hooks import HookRegistry, ToolSubscriber, region, registry
from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry, get_metrics
from repro.observability.openmetrics import parse_exposition, render, write_openmetrics
from repro.observability.perfdiff import diff_documents, format_diff, load_perf_document
from repro.observability.stitch import (
    DRIVER_PID,
    RankStream,
    align_clocks,
    critical_path_table,
    halo_compute_split,
    split_rank_streams,
    stitch_process_labels,
    stitch_spans,
)
from repro.observability.timeseries import (
    SeriesRegistry,
    TimeSeries,
    get_series,
    write_series_jsonl,
)
from repro.observability.tracer import Span, SpanTracer, TracerSubscriber, get_tracer

__all__ = [
    "hooks",
    "HookRegistry",
    "ToolSubscriber",
    "registry",
    "region",
    "Span",
    "SpanTracer",
    "TracerSubscriber",
    "get_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "tracing",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "summary_table",
    "ascii_flame",
    "metrics_table",
    "TimeSeries",
    "SeriesRegistry",
    "get_series",
    "write_series_jsonl",
    "annotate_roofline",
    "roofline_table",
    "reconcile_rocprof_bytes",
    "span_bytes",
    "DRIVER_PID",
    "RankStream",
    "align_clocks",
    "split_rank_streams",
    "stitch_spans",
    "stitch_process_labels",
    "halo_compute_split",
    "critical_path_table",
    "render",
    "write_openmetrics",
    "parse_exposition",
    "load_perf_document",
    "diff_documents",
    "format_diff",
]


@contextmanager
def tracing(tracer: SpanTracer | None = None, attach_hooks: bool = True, clear: bool = True):
    """Profiling session: record spans (and kernel hook events) for a block.

    Clears the tracer, turns recording on, and -- unless ``attach_hooks``
    is False -- subscribes a :class:`TracerSubscriber` to the hook
    registry so kernel dispatches land on the same timeline.  Yields the
    tracer; after the block, ``tracer.spans`` holds the trace and
    recording is off again.
    """
    t = tracer if tracer is not None else get_tracer()
    if clear:
        t.clear()
    t.start()
    sub = TracerSubscriber(t) if attach_hooks else None
    if sub is not None:
        registry().subscribe(sub)
    try:
        yield t
    finally:
        t.stop()
        if sub is not None:
            registry().unsubscribe(sub)
