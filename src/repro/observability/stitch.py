"""SPMD trace stitching: per-rank streams -> one clock-aligned trace.

A real distributed run produces one span stream per rank, each on its
own monotonic clock with its own epoch.  Perfetto renders such streams
meaningfully only after two transforms this module provides:

* **clock alignment** (:func:`align_clocks`) -- estimate one offset per
  stream from a synchronization span every rank records (the last
  collective everyone leaves together, by default ``velocity.solve``)
  and shift the stream so the sync point coincides, the standard
  postmortem trick MPI trace stitchers (Vampir/Score-P) use when no
  globally-synchronized clock exists;
* **rank -> pid mapping** (:func:`stitch_spans`) -- every span carrying
  a ``rank`` arg moves to ``pid = rank`` (its own Perfetto track);
  rank-agnostic driver spans (Newton steps, GMRES cycles) stay on a
  dedicated driver pid so per-rank lanes show only that rank's work.

The in-process SPMD simulation shares one clock, so its offsets are
zero -- but the same solve emits rank-tagged halo (``cat="halo"``) and
compute (``cat="compute"``) spans, which is what the **critical-path
pass** (:func:`halo_compute_split`) consumes: per Newton step and per
rank it splits time into halo-exchange wait vs rank-local compute, and
names the critical (slowest) rank -- the number that tells you whether
a slow step is communication- or compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.observability.tracer import Span

__all__ = [
    "RankStream",
    "align_clocks",
    "stitch_spans",
    "split_rank_streams",
    "halo_compute_split",
    "critical_path_table",
    "DRIVER_PID",
]


def DRIVER_PID(nparts: int) -> int:
    """pid of the rank-agnostic driver timeline in a stitched trace."""
    return int(nparts)


@dataclass
class RankStream:
    """One rank's span stream with its (estimated or known) clock skew.

    ``offset_us`` is *added* to every span timestamp when stitching;
    :func:`align_clocks` estimates it so all streams share the
    reference stream's clock.
    """

    rank: int
    spans: list = field(default_factory=list)
    offset_us: float = 0.0


def _sync_end(stream: RankStream, sync_name: str) -> float | None:
    """End timestamp of the stream's last sync-named span (local clock)."""
    ends = [s.end_us for s in stream.spans if s.name == sync_name]
    return max(ends) if ends else None


def align_clocks(streams: list[RankStream], sync_name: str = "velocity.solve") -> list[RankStream]:
    """Estimate per-stream offsets so sync spans end simultaneously.

    The rank-0 (first) stream is the reference.  A stream without the
    sync span keeps its current offset (nothing to align against).
    Returns the same stream objects with ``offset_us`` updated.
    """
    if not streams:
        return streams
    ref = _sync_end(streams[0], sync_name)
    if ref is None:
        return streams
    for st in streams:
        end = _sync_end(st, sync_name)
        if end is not None:
            st.offset_us = ref - end
    return streams


def split_rank_streams(spans, nparts: int) -> tuple[list[RankStream], list]:
    """Partition one in-process SPMD trace into per-rank streams.

    Spans carrying a ``rank`` arg in ``[0, nparts)`` go to that rank's
    stream; everything else (the driver timeline: Newton steps, GMRES
    cycles, assembly orchestration) is returned separately.  Offsets
    are zero -- one process, one clock.
    """
    streams = [RankStream(rank=p) for p in range(nparts)]
    driver = []
    for s in spans:
        r = s.args.get("rank")
        if isinstance(r, (int, float)) and 0 <= int(r) < nparts:
            streams[int(r)].spans.append(s)
        else:
            driver.append(s)
    return streams, driver


def stitch_spans(
    streams: list[RankStream],
    driver_spans=None,
    nparts: int | None = None,
) -> list[Span]:
    """Merge aligned per-rank streams into one trace span list.

    Every rank span is re-labeled ``pid = rank`` and shifted by its
    stream's ``offset_us``; driver spans keep their timestamps and land
    on ``pid = DRIVER_PID(nparts)``.  Negative post-shift timestamps
    are clamped to zero (a stream that started before the reference
    epoch has no meaningful earlier timeline), and the result is sorted
    by start time so timestamps are monotone.
    """
    if nparts is None:
        nparts = len(streams)
    out: list[Span] = []
    for st in streams:
        for s in st.spans:
            ts = max(0.0, s.ts_us + st.offset_us)
            out.append(replace(s, pid=int(st.rank), ts_us=ts, args=dict(s.args, rank=int(st.rank))))
    dpid = DRIVER_PID(nparts)
    for s in driver_spans or []:
        out.append(replace(s, pid=dpid, ts_us=max(0.0, s.ts_us)))
    out.sort(key=lambda s: (s.ts_us, s.pid, s.id))
    return out


def stitch_process_labels(nparts: int) -> dict[int, str]:
    """Chrome trace process names for a stitched SPMD trace."""
    labels = {p: f"rank {p}" for p in range(nparts)}
    labels[DRIVER_PID(nparts)] = "driver"
    return labels


# ----------------------------------------------------------------------
# critical path: halo wait vs compute per Newton step


def _children_index(spans) -> dict[int, list]:
    kids: dict[int, list] = {}
    for s in spans:
        kids.setdefault(s.parent, []).append(s)
    return kids


def halo_compute_split(spans) -> list[dict]:
    """Per-Newton-step, per-rank split of halo-wait vs compute time.

    Walks each ``newton.step`` span's subtree.  Leaf spans tagged with
    a ``rank`` arg contribute to that rank: ``cat="halo"``
    (``halo.send`` / ``halo.recv`` payload transfers) counts as
    halo-wait, ``cat="compute"`` (``rank.spmv`` / ``rank.assemble``
    rank-local work) as compute.  Container halo spans
    (``spmd.spmv``, ``halo.ghost_refresh``, ...) carry no rank and are
    skipped -- only leaves are summed, so nothing double-counts.

    Returns one record per step::

        {"step": k, "dur_s": step_wall, "per_rank": {r: {"halo_s", "compute_s"}},
         "halo_s": total_halo, "compute_s": total_compute,
         "critical_rank": slowest_rank, "halo_fraction": halo/(halo+compute)}
    """
    kids = _children_index(spans)
    records = []
    for step_span in spans:
        if step_span.name != "newton.step":
            continue
        per_rank: dict[int, dict] = {}
        stack = list(kids.get(step_span.id, []))
        while stack:
            s = stack.pop()
            stack.extend(kids.get(s.id, []))
            r = s.args.get("rank")
            if r is None:
                continue
            bucket = per_rank.setdefault(int(r), {"halo_s": 0.0, "compute_s": 0.0})
            if s.cat == "halo":
                bucket["halo_s"] += s.dur_s
            elif s.cat == "compute":
                bucket["compute_s"] += s.dur_s
        halo = sum(b["halo_s"] for b in per_rank.values())
        comp = sum(b["compute_s"] for b in per_rank.values())
        critical = max(
            per_rank,
            key=lambda r: per_rank[r]["halo_s"] + per_rank[r]["compute_s"],
            default=-1,
        )
        records.append(
            {
                "step": step_span.args.get("step", len(records)),
                "dur_s": step_span.dur_s,
                "per_rank": per_rank,
                "halo_s": halo,
                "compute_s": comp,
                "critical_rank": critical,
                "halo_fraction": halo / (halo + comp) if (halo + comp) > 0 else 0.0,
            }
        )
    records.sort(key=lambda r: r["step"])
    return records


def critical_path_table(records: list[dict], title: str | None = None) -> str:
    """ASCII rendering of :func:`halo_compute_split` output."""
    from repro.perf.report import format_table  # deferred (import cycle, see export.py)

    if not records:
        return "(no newton.step spans with rank-tagged children)"
    rows = [
        [
            r["step"],
            f"{r['dur_s']:.4f}",
            f"{r['halo_s']:.4f}",
            f"{r['compute_s']:.4f}",
            f"{r['halo_fraction']:.1%}",
            r["critical_rank"],
        ]
        for r in records
    ]
    return format_table(
        ["step", "wall [s]", "halo [s]", "compute [s]", "halo share", "critical rank"],
        rows,
        title=title or "Critical path: halo wait vs compute per Newton step",
    )
