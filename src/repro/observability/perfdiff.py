"""Regression diagnosis: diff two perf snapshots, rank span deltas.

``tools/check_bench.py`` answers *pass/fail*; this module answers
*which span and by how much*.  ``python -m repro perfdiff
baseline.json current.json`` loads two performance documents, computes
per-span **self-time** deltas (exclusive of child spans, so a slowdown
is attributed to the span that actually contains it rather than its
whole ancestor chain), ranks them by contribution to the total
regression (slowdowns first), and prints an attribution table.  The CI
perf-gate invokes it automatically when the gate trips so a red check
names the culprit phase instead of just a threshold.

Accepted document formats (auto-detected):

* **perf snapshots** -- ``{"kind": "perf_snapshot", "spans": {name:
  {"count", "total_s", ...}}, "counters": {...}}``, written by
  ``python -m repro profile --snapshot``;
* **Chrome traces** -- ``{"traceEvents": [...]}`` from the profile CLI;
  ``"ph": "X"`` events aggregate by name, ``otherData.metrics``
  supplies counters;
* **BENCH_solver.json** perf-trajectory docs (``{"bench": ...}``) --
  the ``spans`` section carries per-span totals and the
  ``deterministic`` leaves flatten into counters, so the gate's own
  baseline artifact diffs directly against a fresh run.

Deliberately **stdlib-only** (no repro imports): CI can run it even
when the regression under diagnosis broke the package import, the same
contract ``tools/check_trace.py`` and ``tools/check_bench.py`` follow.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = [
    "load_perf_document",
    "diff_documents",
    "format_diff",
    "main",
    "SNAPSHOT_KIND",
    "SNAPSHOT_SCHEMA",
]

SNAPSHOT_KIND = "perf_snapshot"
SNAPSHOT_SCHEMA = 1

#: below this absolute per-span delta (seconds) a row is noise, not signal
DEFAULT_MIN_DELTA_S = 1e-4


def _flatten(prefix: str, obj, out: dict) -> None:
    if isinstance(obj, dict):
        for k, v in obj.items():
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, out)
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = float(obj)


def _span_rec(rec: dict) -> dict:
    total = float(rec.get("total_s", 0.0))
    return {
        "count": int(rec.get("count", 0)),
        "total_s": total,
        # documents written before self-time attribution fall back to
        # inclusive time, which keeps the diff well-defined (if noisier)
        "self_s": float(rec.get("self_s", total)),
    }


def _trace_self_times(events: list) -> dict[str, dict]:
    """Aggregate ``"ph": "X"`` events into per-name totals + self times.

    Self time is reconstructed from interval containment per (pid, tid)
    timeline: events are replayed in start order and each event's
    duration is subtracted from the innermost enclosing span.
    """
    spans: dict[str, dict] = {}
    lanes: dict[tuple, list] = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        lanes.setdefault((ev.get("pid", 0), ev.get("tid", 0)), []).append(ev)
    for lane in lanes.values():
        # longest-first at equal ts so parents precede their children
        lane.sort(key=lambda e: (float(e.get("ts", 0.0)), -float(e.get("dur", 0.0))))
        stack: list[tuple] = []  # (end_ts, name, self_us accumulator index)
        self_us = [0.0] * len(lane)
        for i, ev in enumerate(lane):
            ts = float(ev.get("ts", 0.0))
            dur = float(ev.get("dur", 0.0))
            while stack and ts >= stack[-1][0]:
                stack.pop()
            if stack:
                self_us[stack[-1][1]] -= dur
            self_us[i] += dur
            stack.append((ts + dur, i))
        for i, ev in enumerate(lane):
            rec = spans.setdefault(ev["name"], {"count": 0, "total_s": 0.0, "self_s": 0.0})
            rec["count"] += 1
            rec["total_s"] += float(ev.get("dur", 0.0)) * 1e-6
            rec["self_s"] += max(0.0, self_us[i]) * 1e-6
    return spans


def load_perf_document(path: str) -> dict:
    """Load + normalize one document to ``{"label", "spans", "counters"}``.

    ``spans`` maps name -> ``{"count": int, "total_s": float,
    "self_s": float}`` (inclusive and exclusive-of-children seconds);
    ``counters`` maps name -> float.  Raises :class:`ValueError` for
    unrecognized documents.
    """
    with open(path) as f:
        doc = json.load(f)
    spans: dict[str, dict] = {}
    counters: dict[str, float] = {}

    if isinstance(doc, dict) and doc.get("kind") == SNAPSHOT_KIND:
        for name, rec in doc.get("spans", {}).items():
            spans[name] = _span_rec(rec)
        _flatten("", doc.get("counters", {}), counters)
    elif isinstance(doc, dict) and "traceEvents" in doc:
        spans = _trace_self_times(doc["traceEvents"])
        metrics = doc.get("otherData", {}).get("metrics", {})
        _flatten("", metrics.get("counters", {}), counters)
    elif isinstance(doc, dict) and "bench" in doc:
        for name, rec in doc.get("spans", {}).items():
            spans[name] = _span_rec(rec)
        _flatten("deterministic", doc.get("deterministic", {}), counters)
    else:
        raise ValueError(
            f"{path}: not a perf snapshot, Chrome trace, or bench document"
        )
    return {"label": path, "spans": spans, "counters": counters}


def diff_documents(base: dict, cur: dict, min_delta_s: float = DEFAULT_MIN_DELTA_S) -> dict:
    """Span + counter deltas, ranked with regressions first.

    Span rows diff **self time** (exclusive of children): a slowdown
    planted inside one span moves only that span's row, not its whole
    ancestor chain, so rank 1 names the actual culprit.  Each row:
    ``{"name", "base_s", "cur_s", "delta_s", "incl_delta_s", "ratio",
    "base_count", "cur_count", "share"}`` where the ``_s`` columns are
    self seconds, ``incl_delta_s`` is the inclusive-time delta for
    context, and ``share`` is the row's signed fraction of the net
    self-time delta.  Rows are sorted by ``delta_s`` descending, so the
    heaviest slowdown is ranked first (improvements trail at the
    bottom).  Counter rows diff every numeric leaf with nonzero change.
    """
    names = set(base["spans"]) | set(cur["spans"])
    empty = {"count": 0, "total_s": 0.0, "self_s": 0.0}
    rows = []
    for name in names:
        b = base["spans"].get(name, empty)
        c = cur["spans"].get(name, empty)
        delta = c["self_s"] - b["self_s"]
        if abs(delta) < min_delta_s:
            continue
        rows.append(
            {
                "name": name,
                "base_s": b["self_s"],
                "cur_s": c["self_s"],
                "delta_s": delta,
                "incl_delta_s": c["total_s"] - b["total_s"],
                "ratio": c["self_s"] / b["self_s"] if b["self_s"] > 0 else float("inf"),
                "base_count": b["count"],
                "cur_count": c["count"],
            }
        )
    total_delta = sum(r["delta_s"] for r in rows)
    for r in rows:
        r["share"] = r["delta_s"] / total_delta if total_delta != 0.0 else 0.0
    rows.sort(key=lambda r: -r["delta_s"])

    counter_rows = []
    for name in sorted(set(base["counters"]) | set(cur["counters"])):
        b = base["counters"].get(name, 0.0)
        c = cur["counters"].get(name, 0.0)
        if b == c:
            continue
        counter_rows.append(
            {
                "name": name,
                "base": b,
                "cur": c,
                "delta": c - b,
                "ratio": c / b if b != 0.0 else float("inf"),
            }
        )
    counter_rows.sort(key=lambda r: -abs(r["delta"] / r["base"] if r["base"] else r["delta"]))

    # sum of self times = wall time covered by spans, with no
    # parent/child double counting -- the honest "total" to report
    base_total = sum(s["self_s"] for s in base["spans"].values())
    cur_total = sum(s["self_s"] for s in cur["spans"].values())
    return {
        "baseline": base["label"],
        "current": cur["label"],
        "base_total_s": base_total,
        "cur_total_s": cur_total,
        "total_delta_s": total_delta,
        "spans": rows,
        "counters": counter_rows,
        "top_regression": rows[0]["name"] if rows and rows[0]["delta_s"] > 0 else None,
    }


def _table(headers: list, rows: list, title: str) -> str:
    # local minimal formatter: this module must not import repro.perf
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, sep]
    for j, row in enumerate(cells):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append(sep)
    return "\n".join(lines)


def format_diff(report: dict, top: int = 15) -> str:
    """ASCII attribution tables for a :func:`diff_documents` report."""
    parts = [
        f"perfdiff: {report['baseline']} -> {report['current']}",
        f"total self time: {report['base_total_s']:.4f}s -> {report['cur_total_s']:.4f}s "
        f"({report['total_delta_s']:+.4f}s)",
    ]
    if report["top_regression"]:
        parts.append(f"top regression: {report['top_regression']}")
    if report["spans"]:
        rows = [
            [
                r["name"],
                f"{r['base_s']:.4f}",
                f"{r['cur_s']:.4f}",
                f"{r['delta_s']:+.4f}",
                f"{r['incl_delta_s']:+.4f}",
                f"{r['ratio']:.2f}x" if r["ratio"] != float("inf") else "new",
                f"{r['share']:+.1%}",
                f"{r['base_count']}->{r['cur_count']}",
            ]
            for r in report["spans"][:top]
        ]
        parts.append(
            _table(
                ["span", "self base [s]", "self cur [s]", "self delta [s]",
                 "incl delta [s]", "ratio", "share of delta", "count"],
                rows,
                "Span attribution by self time (regressions first)",
            )
        )
    else:
        parts.append("(no span deltas above threshold)")
    if report["counters"]:
        rows = [
            [
                r["name"],
                f"{r['base']:g}",
                f"{r['cur']:g}",
                f"{r['delta']:+g}",
                f"{r['ratio']:.3f}x" if r["ratio"] != float("inf") else "new",
            ]
            for r in report["counters"][:top]
        ]
        parts.append(_table(["counter", "base", "current", "delta", "ratio"], rows, "Counter deltas"))
    return "\n\n".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro perfdiff",
        description="Diff two perf documents and rank spans by regression contribution.",
    )
    parser.add_argument("baseline", help="baseline snapshot/trace/bench JSON")
    parser.add_argument("current", help="current snapshot/trace/bench JSON")
    parser.add_argument("--top", type=int, default=15, help="rows per table (default 15)")
    parser.add_argument(
        "--min-delta", type=float, default=DEFAULT_MIN_DELTA_S,
        help="ignore span deltas below this many seconds",
    )
    parser.add_argument("--json", dest="json_out", default=None, help="also write the report as JSON")
    args = parser.parse_args(argv)

    try:
        base = load_perf_document(args.baseline)
        cur = load_perf_document(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"perfdiff: {exc}", file=sys.stderr)
        return 2
    report = diff_documents(base, cur, min_delta_s=args.min_delta)
    print(format_diff(report, top=args.top))
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(report, f, indent=2)
        print(f"\nwrote {args.json_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
