"""Trace exporters: Chrome trace-event JSON, JSON lines, ASCII summaries.

Chrome trace-event files load directly in Perfetto (https://ui.perfetto.
dev) or ``chrome://tracing``: each span becomes a ``"ph": "X"``
*complete* event with microsecond ``ts``/``dur``, the SPMD rank as the
``pid`` and the recording thread as the ``tid`` -- the same layout the
kokkos-tools "chrome connector" and NVTX exporters produce, so the
Newton timeline, per-kernel ``parallel_for`` spans and per-neighbor
halo exchanges render as a nested flame graph.

The ASCII renderings reuse :func:`repro.perf.report.format_table` so
profile output reads like the rest of the benchmark harness.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "summary_table",
    "ascii_flame",
    "metrics_table",
]


def to_chrome_trace(
    spans,
    metrics: dict | None = None,
    process_labels: dict | None = None,
    series=None,
    counter_pid: int = 0,
) -> dict:
    """Build the Chrome trace-event document for a span list.

    ``metrics`` (a :meth:`MetricsRegistry.snapshot` dict) rides along in
    ``otherData`` where Perfetto surfaces it as trace metadata.
    ``process_labels`` maps pid -> display name (default ``rank <pid>``).
    ``series`` (a :class:`~repro.observability.timeseries.SeriesRegistry`)
    exports each convergence series as ``"ph": "C"`` counter events on
    ``counter_pid`` -- Perfetto plots them as value tracks under the
    span timeline, so residual histories line up with the Newton/GMRES
    spans that produced them.  Points stamped before the trace clock's
    zero (recorded outside the session) are dropped: counter events
    must share the spans' non-negative time basis.
    """
    events = []
    seen: set[tuple[int, int]] = set()
    pids: set[int] = set()
    for s in spans:
        pids.add(s.pid)
        if (s.pid, s.tid) not in seen:
            seen.add((s.pid, s.tid))
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": s.pid,
                    "tid": s.tid,
                    "args": {"name": f"thread {s.tid}"},
                }
            )
        events.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": s.ts_us,
                "dur": s.dur_us,
                "pid": s.pid,
                "tid": s.tid,
                "args": dict(s.args, span_id=s.id, parent_id=s.parent, depth=s.depth),
            }
        )
    if series is not None:
        for ts in series.all():
            label = ",".join(f"{k}={v}" for k, v in sorted(ts.labels.items()))
            track = f"{ts.name}{{{label}}}" if label else ts.name
            for ts_us, _t_unix, value in ts.points:
                if ts_us < 0.0:
                    continue
                pids.add(counter_pid)
                events.append(
                    {
                        "name": track,
                        "ph": "C",
                        "ts": ts_us,
                        "pid": counter_pid,
                        "tid": 0,
                        "args": {"value": value},
                    }
                )
    labels = process_labels or {}
    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": labels.get(pid, f"rank {pid}")},
            }
        )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        doc["otherData"] = {"metrics": metrics}
    return doc


def write_chrome_trace(
    path,
    spans,
    metrics: dict | None = None,
    process_labels: dict | None = None,
    series=None,
    counter_pid: int = 0,
) -> Path:
    """Write the Chrome trace JSON (creates parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = to_chrome_trace(
        spans, metrics=metrics, process_labels=process_labels, series=series, counter_pid=counter_pid
    )
    path.write_text(json.dumps(doc) + "\n")
    return path


def write_jsonl(path, spans) -> Path:
    """One JSON object per span, in completion order (a streamable log)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        for s in spans:
            f.write(
                json.dumps(
                    {
                        "id": s.id,
                        "name": s.name,
                        "cat": s.cat,
                        "ts_us": s.ts_us,
                        "dur_us": s.dur_us,
                        "pid": s.pid,
                        "tid": s.tid,
                        "parent": s.parent,
                        "depth": s.depth,
                        "args": s.args,
                    }
                )
                + "\n"
            )
    return path


def summary_table(spans, wall_s: float | None = None, top: int = 30, title: str | None = None) -> str:
    """Per-name rollup table: count, total, mean, share of wall time."""
    # deferred: repro.perf pulls in gpusim/core, which dispatch through
    # repro.kokkos.parallel -- an import-time cycle with the hook registry
    from repro.perf.report import format_table

    agg: dict[str, list] = {}
    for s in spans:
        a = agg.setdefault(s.name, [s.cat, 0, 0.0])
        a[1] += 1
        a[2] += s.dur_s
    if wall_s is None:
        roots = [s.dur_s for s in spans if s.parent == -1]
        wall_s = sum(roots) if roots else sum(a[2] for a in agg.values())
    rows = []
    for name, (cat, count, total) in sorted(agg.items(), key=lambda kv: -kv[1][2])[:top]:
        share = total / wall_s if wall_s > 0 else 0.0
        rows.append([name, cat, count, total, total / count, f"{share:.1%}"])
    return format_table(
        ["span", "cat", "count", "total [s]", "mean [s]", "share"],
        rows,
        title=title or "Span summary (by total time)",
    )


def ascii_flame(spans, wall_s: float | None = None, min_share: float = 0.002, width: int = 40) -> str:
    """Aggregated call-path flame rendering of a span list.

    Spans are merged by (path of names from the root), each line showing
    an indentation-coded path segment, its inclusive total, and a bar
    proportional to its share of the trace -- a text stand-in for the
    Perfetto flame graph.  Paths below ``min_share`` of the wall time
    are pruned.
    """
    by_id = {s.id: s for s in spans}

    def path_of(s) -> tuple[str, ...]:
        names = [s.name]
        seen = {s.id}
        while s.parent != -1:
            s = by_id.get(s.parent)
            if s is None or s.id in seen:
                break
            seen.add(s.id)
            names.append(s.name)
        return tuple(reversed(names))

    totals: dict[tuple[str, ...], list] = {}
    for s in spans:
        a = totals.setdefault(path_of(s), [0, 0.0])
        a[0] += 1
        a[1] += s.dur_s
    if wall_s is None:
        wall_s = sum(t for p, (c, t) in totals.items() if len(p) == 1) or 1.0

    lines = ["flame (inclusive totals; bar = share of trace)"]
    for path in sorted(totals, key=lambda p: (p[:-1], -totals[p][1])):
        count, total = totals[path]
        share = total / wall_s if wall_s > 0 else 0.0
        if share < min_share:
            continue
        bar = "#" * max(1, int(round(share * width)))
        indent = "  " * (len(path) - 1)
        lines.append(f"{total:10.4f}s {share:6.1%} x{count:<5d} {indent}{path[-1]} {bar}")
    return "\n".join(lines)


def metrics_table(snapshot: dict, title: str | None = None) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as text tables."""
    from repro.perf.report import format_table  # deferred, see summary_table

    parts = []
    counters = snapshot.get("counters", {})
    if counters:
        parts.append(
            format_table(
                ["counter", "value"],
                [[k, v] for k, v in counters.items()],
                title=title or "Metrics: counters",
            )
        )
    gauges = snapshot.get("gauges", {})
    if gauges:
        parts.append(format_table(["gauge", "value"], [[k, v] for k, v in gauges.items()], title="Metrics: gauges"))
    hists = snapshot.get("histograms", {})
    if hists:
        parts.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p95", "min", "max", "sum"],
                [
                    [k, h["count"], h["mean"], h.get("p50", 0.0), h.get("p95", 0.0), h["min"], h["max"], h["sum"]]
                    for k, h in hists.items()
                ],
                title="Metrics: histograms",
            )
        )
    return "\n\n".join(parts) if parts else "(no metrics recorded)"
