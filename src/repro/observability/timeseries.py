"""Convergence time-series: first-class timestamped value streams.

Counters and histograms (``observability/metrics.py``) answer "how many
in total"; the series registry answers "how did it evolve": Newton and
GMRES residual histories, recovery-ladder events, autotuner trial
outcomes -- each a named, labeled stream of ``(timestamp, value)``
points.  These are the signals a perf-attribution pass plots against
the span timeline: a GMRES residual plateau *inside* a slow
``gmres.solve`` span is the difference between "the preconditioner got
worse" and "the machine got slower".

Each point carries two clocks:

* ``ts_us`` -- microseconds on the span tracer's monotonic clock (zero
  at the last ``tracer.clear()``), so points align exactly with spans
  and export as Chrome trace counter events (``"ph": "C"``);
* ``t_unix`` -- Unix seconds, the timestamp OpenMetrics expositions and
  JSONL sinks carry.

Cost model mirrors the metrics registry: appends are always-on (a dict
lookup, a clock read, a list append) and memory is bounded -- each
series keeps at most :data:`TimeSeries.CAP` points by deterministic
stride decimation (keep every 2nd point and double the keep-stride when
full), so quantile-free history survives arbitrarily hot call sites.
``SeriesRegistry.disabled()`` turns every append into one attribute
read for overhead-sensitive A/B measurements.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = ["TimeSeries", "SeriesRegistry", "get_series", "write_series_jsonl"]


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class TimeSeries:
    """One bounded stream of ``(ts_us, t_unix, value)`` points."""

    #: decimation threshold: at CAP kept points, every 2nd point is
    #: dropped and the keep-stride doubles (deterministic, no RNG)
    CAP = 4096

    __slots__ = ("name", "labels", "points", "count", "_stride", "_pending", "_lock")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self.points: list[tuple[float, float, float]] = []
        self.count = 0  # observations offered, kept or not
        self._stride = 1
        self._pending = 0
        self._lock = threading.Lock()

    def append(self, value: float, ts_us: float | None = None, t_unix: float | None = None) -> None:
        """Record one observation (thread-safe, bounded memory)."""
        if ts_us is None:
            # deferred import: tracer -> hooks only, no cycle back here
            from repro.observability.tracer import get_tracer

            ts_us = get_tracer().now_us()
        if t_unix is None:
            t_unix = time.time()
        with self._lock:
            self.count += 1
            self._pending += 1
            if self._pending >= self._stride:
                self._pending = 0
                self.points.append((float(ts_us), float(t_unix), float(value)))
                if len(self.points) >= self.CAP:
                    self.points = self.points[::2]
                    self._stride *= 2

    @property
    def last(self) -> float | None:
        return self.points[-1][2] if self.points else None

    def values(self) -> list[float]:
        return [p[2] for p in self.points]

    def to_dict(self) -> dict:
        """JSON-able dump: labels, total count, kept points."""
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "stride": self._stride,
            "points": [[p[0], p[1], p[2]] for p in self.points],
        }


class SeriesRegistry:
    """Named, labeled time-series created on first use.

    Naming follows the metrics convention (dot-separated subsystem
    paths); dynamic dimensions go in labels rather than the name, e.g.
    ``series("newton.residual", solve="velocity")`` or
    ``series("resilience.event", category="recovery", kind="step_rejection")``.
    """

    def __init__(self):
        self.active = True
        self._lock = threading.Lock()
        self._series: dict[tuple, TimeSeries] = {}

    def series(self, name: str, **labels) -> TimeSeries:
        key = (name, _label_key(labels))
        s = self._series.get(key)
        if s is None:
            with self._lock:
                s = self._series.setdefault(key, TimeSeries(name, labels))
        return s

    def record(self, name: str, value: float, **labels) -> None:
        """One-shot append honoring the ``active`` fast path."""
        if self.active:
            self.series(name, **labels).append(value)

    def all(self) -> list[TimeSeries]:
        return [self._series[k] for k in sorted(self._series)]

    def get(self, name: str, **labels) -> TimeSeries | None:
        """Read a series without creating it (assertion-friendly)."""
        return self._series.get((name, _label_key(labels)))

    @contextmanager
    def disabled(self):
        """Suppress appends for a block (overhead A/B measurements)."""
        prev = self.active
        self.active = False
        try:
            yield self
        finally:
            self.active = prev

    def snapshot(self) -> dict:
        """Full JSON-able dump: every series with its kept points."""
        return {"series": [s.to_dict() for s in self.all()]}

    def summary(self) -> dict:
        """Compact JSON-able rollup for ``diagnostics["observability"]``.

        One entry per (name, labels): observation count, first/last
        value -- enough to assert convergence shape without embedding
        whole histories in every solve's diagnostics.
        """
        out = {}
        for s in self.all():
            label = ",".join(f"{k}={v}" for k, v in sorted(s.labels.items()))
            key = f"{s.name}{{{label}}}" if label else s.name
            vals = s.values()
            out[key] = {
                "count": s.count,
                "first": vals[0] if vals else 0.0,
                "last": vals[-1] if vals else 0.0,
            }
        return out

    def reset(self) -> None:
        """Drop all series (call sites re-create them on next use)."""
        with self._lock:
            self._series = {}


def write_series_jsonl(path, registry: "SeriesRegistry | None" = None) -> Path:
    """One JSON object per series: the streamable convergence log."""
    reg = registry if registry is not None else get_series()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        for s in reg.all():
            f.write(json.dumps(s.to_dict()) + "\n")
    return path


_SERIES = SeriesRegistry()


def get_series() -> SeriesRegistry:
    """The process-wide default series registry."""
    return _SERIES
