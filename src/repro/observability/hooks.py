"""Profiling hook registry modeled on the Kokkos Tools callback ABI.

Real Kokkos exposes a C profiling interface (``kokkosp_*``) that tools
dlopen into: paired begin/end callbacks around every ``parallel_for`` /
``parallel_reduce`` dispatch, ``deep_copy`` and ``fence``, plus
user-named ``push_region`` / ``pop_region`` markers.  Nsight, rocprof
and the kokkos-tools connectors all attach through that single seam;
this module is the same seam for the Python reproduction.

Mapping to the real ABI:

================================  =====================================
kokkos-tools callback             :class:`ToolSubscriber` method
================================  =====================================
``kokkosp_begin_parallel_for``    ``begin_parallel_for(name, extent,
                                  space) -> kernel id``
``kokkosp_end_parallel_for``      ``end_parallel_for(kid)``
``kokkosp_begin_parallel_reduce``  ``begin_parallel_reduce(...)``
``kokkosp_end_parallel_reduce``   ``end_parallel_reduce(kid)``
``kokkosp_begin_deep_copy``       ``begin_deep_copy(dst_name, src_name,
                                  nbytes)``
``kokkosp_end_deep_copy``         ``end_deep_copy()``
``kokkosp_begin_fence``           ``begin_fence(name) -> kernel id``
``kokkosp_end_fence``             ``end_fence(kid)``
``kokkosp_push_profile_region``   ``push_region(name)``
``kokkosp_pop_profile_region``    ``pop_region()``
================================  =====================================

Zero-overhead contract: dispatch sites guard every emission with the
registry's ``active`` flag (a plain attribute, refreshed on subscribe /
unsubscribe / enable / disable), so with no tool attached a kernel
launch pays exactly one attribute read.  The back-compat ``KERNEL_LOG``
shim in :mod:`repro.kokkos.parallel` is itself a subscriber and can be
detached to reach the truly-silent state.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["ToolSubscriber", "HookRegistry", "registry", "region"]


class ToolSubscriber:
    """No-op base class for profiling tools (override what you need).

    ``begin_*`` callbacks receive the kernel id the registry assigned to
    the dispatch; the matching ``end_*`` receives the same id, so tools
    can pair events even when dispatches nest (e.g. a kernel launched
    from inside a traced region).
    """

    def begin_parallel_for(self, name: str, extent: int, space: str, kid: int) -> None:
        pass

    def end_parallel_for(self, kid: int) -> None:
        pass

    def begin_parallel_reduce(self, name: str, extent: int, space: str, kid: int) -> None:
        pass

    def end_parallel_reduce(self, kid: int) -> None:
        pass

    def begin_deep_copy(self, dst_name: str, src_name: str, nbytes: int, kid: int) -> None:
        pass

    def end_deep_copy(self, kid: int) -> None:
        pass

    def begin_fence(self, name: str, kid: int) -> None:
        pass

    def end_fence(self, kid: int) -> None:
        pass

    def push_region(self, name: str) -> None:
        pass

    def pop_region(self) -> None:
        pass


class HookRegistry:
    """Fan-out of profiling events to the attached subscribers.

    ``active`` is the dispatch-site fast path: ``False`` whenever the
    registry is disabled or no subscriber is attached, in which case
    call sites skip event construction entirely.
    """

    def __init__(self):
        self._subscribers: list[ToolSubscriber] = []
        self._enabled = True
        self._next_id = 0
        self.active = False

    # -- subscription ---------------------------------------------------
    def _refresh(self) -> None:
        self.active = self._enabled and bool(self._subscribers)

    def subscribe(self, sub: ToolSubscriber) -> ToolSubscriber:
        if sub not in self._subscribers:
            self._subscribers.append(sub)
        self._refresh()
        return sub

    def unsubscribe(self, sub: ToolSubscriber) -> None:
        if sub in self._subscribers:
            self._subscribers.remove(sub)
        self._refresh()

    @property
    def subscribers(self) -> tuple[ToolSubscriber, ...]:
        return tuple(self._subscribers)

    def enable(self) -> None:
        self._enabled = True
        self._refresh()

    def disable(self) -> None:
        self._enabled = False
        self._refresh()

    @contextmanager
    def disabled(self):
        """Silence all hooks (subscribers stay attached) for a block."""
        was = self._enabled
        self.disable()
        try:
            yield self
        finally:
            self._enabled = was
            self._refresh()

    # -- event fan-out --------------------------------------------------
    def _new_id(self) -> int:
        kid = self._next_id
        self._next_id += 1
        return kid

    def begin_parallel_for(self, name: str, extent: int, space: str) -> int:
        kid = self._new_id()
        for s in self._subscribers:
            s.begin_parallel_for(name, extent, space, kid)
        return kid

    def end_parallel_for(self, kid: int) -> None:
        for s in self._subscribers:
            s.end_parallel_for(kid)

    def begin_parallel_reduce(self, name: str, extent: int, space: str) -> int:
        kid = self._new_id()
        for s in self._subscribers:
            s.begin_parallel_reduce(name, extent, space, kid)
        return kid

    def end_parallel_reduce(self, kid: int) -> None:
        for s in self._subscribers:
            s.end_parallel_reduce(kid)

    def begin_deep_copy(self, dst_name: str, src_name: str, nbytes: int) -> int:
        kid = self._new_id()
        for s in self._subscribers:
            s.begin_deep_copy(dst_name, src_name, nbytes, kid)
        return kid

    def end_deep_copy(self, kid: int) -> None:
        for s in self._subscribers:
            s.end_deep_copy(kid)

    def begin_fence(self, name: str) -> int:
        kid = self._new_id()
        for s in self._subscribers:
            s.begin_fence(name, kid)
        return kid

    def end_fence(self, kid: int) -> None:
        for s in self._subscribers:
            s.end_fence(kid)

    def push_region(self, name: str) -> None:
        for s in self._subscribers:
            s.push_region(name)

    def pop_region(self) -> None:
        for s in self._subscribers:
            s.pop_region()


_REGISTRY = HookRegistry()


def registry() -> HookRegistry:
    """The process-wide hook registry every dispatch site emits to."""
    return _REGISTRY


@contextmanager
def region(name: str):
    """User-named profiling region (``Kokkos::Profiling::pushRegion``)."""
    reg = _REGISTRY
    if reg.active:
        reg.push_region(name)
        try:
            yield
        finally:
            reg.pop_region()
    else:
        yield
