"""Span tracer: nested wall-time intervals with attributes.

The tracer is the timeline half of the observability layer.  Code wraps
phases in ``tracer.span(name, **attrs)`` context managers (or the
``@tracer.instrument`` decorator); kernel dispatches arrive through a
:class:`TracerSubscriber` attached to the hook registry, so one trace
interleaves solver phases (Newton steps, GMRES cycles, halo exchanges)
with per-kernel ``parallel_for`` intervals exactly the way a Kokkos
Tools connector interleaves regions with kernel callbacks.

Cost model: a span handle *always* measures its duration (two
``perf_counter_ns`` reads) so phase accounting stays correct, but spans
are stored -- with ids, parent links and depth for the exporters --
only while ``recording`` is on.  Outside a profiling session the solver
pays a handle allocation and two clock reads per phase and nothing
grows without bound.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field

from repro.observability.hooks import ToolSubscriber

__all__ = ["Span", "SpanTracer", "TracerSubscriber", "get_tracer"]


@dataclass
class Span:
    """One closed interval on the trace timeline.

    ``ts_us`` / ``dur_us`` are microseconds on the tracer's monotonic
    clock (zero at the last :meth:`SpanTracer.clear`), the unit Chrome
    trace events use.  ``pid`` is the rank label and ``tid`` a small
    per-thread integer; ``parent`` is the id of the enclosing span on
    the same thread (-1 for roots) and ``depth`` its nesting level.
    """

    id: int
    name: str
    cat: str
    ts_us: float
    dur_us: float
    pid: int
    tid: int
    depth: int
    parent: int
    args: dict = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.ts_us + self.dur_us

    @property
    def dur_s(self) -> float:
        return self.dur_us * 1.0e-6


class _SpanHandle:
    """Context manager for one span; reusable timing even when not recording."""

    __slots__ = ("tracer", "name", "cat", "args", "id", "parent", "depth", "_t0_ns", "dur_ns")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.id = -1
        self.dur_ns = 0

    def __enter__(self) -> "_SpanHandle":
        tr = self.tracer
        if tr.recording:
            stack = tr._stack()
            self.id = tr._next_span_id()
            if stack:
                self.parent = stack[-1].id
                self.depth = stack[-1].depth + 1
            else:
                self.parent = -1
                self.depth = 0
            stack.append(self)
        self._t0_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        planted = self.tracer._planted
        if planted:
            delay = planted.get(self.name)
            if delay:
                time.sleep(delay)
        t1 = time.perf_counter_ns()
        self.dur_ns = t1 - self._t0_ns
        tr = self.tracer
        if self.id >= 0:
            stack = tr._stack()
            if stack and stack[-1] is self:
                stack.pop()
            if tr.recording:
                tr._emit(self, t1)

    @property
    def dur_s(self) -> float:
        """Elapsed seconds; valid after the ``with`` block exits."""
        return self.dur_ns * 1.0e-9


class SpanTracer:
    """Collects :class:`Span` intervals on a shared monotonic clock."""

    def __init__(self, rank: int = 0):
        self.rank = rank
        self.recording = False
        self.spans: list[Span] = []
        self._epoch_ns = time.perf_counter_ns()
        self._id_lock = threading.Lock()
        self._next_id = 0
        self._tls = threading.local()
        self._tid_map: dict[int, int] = {}
        self._planted: dict[str, float] = {}

    # -- internals ------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _next_span_id(self) -> int:
        with self._id_lock:
            sid = self._next_id
            self._next_id += 1
            return sid

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tid_map.get(ident)
        if tid is None:
            tid = self._tid_map[ident] = len(self._tid_map)
        return tid

    def _emit(self, handle: _SpanHandle, t1_ns: int) -> None:
        ts_us = (t1_ns - handle.dur_ns - self._epoch_ns) * 1.0e-3
        self.spans.append(
            Span(
                id=handle.id,
                name=handle.name,
                cat=handle.cat,
                ts_us=ts_us,
                dur_us=handle.dur_ns * 1.0e-3,
                pid=self.rank,
                tid=self._tid(),
                depth=handle.depth,
                parent=handle.parent,
                args=handle.args,
            )
        )

    # -- public API -----------------------------------------------------
    def span(self, name: str, cat: str = "phase", **args) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("newton.step", step=k):``."""
        return _SpanHandle(self, name, cat, args)

    def instrument(self, fn=None, *, name: str | None = None, cat: str = "function"):
        """Decorator wrapping every call of ``fn`` in a span."""
        def deco(f):
            label = name or f"{f.__module__.rsplit('.', 1)[-1]}.{f.__qualname__}"

            @functools.wraps(f)
            def wrapper(*a, **kw):
                with self.span(label, cat=cat):
                    return f(*a, **kw)

            return wrapper

        return deco(fn) if fn is not None else deco

    def set_rank(self, rank: int) -> None:
        """Label subsequent spans with an SPMD rank (Chrome trace pid)."""
        self.rank = int(rank)

    def now_us(self) -> float:
        """Current time in microseconds on the trace clock.

        Zero at the last :meth:`clear`, the same basis as ``Span.ts_us``
        -- time-series points stamped with this align exactly with the
        span timeline and export directly as Chrome counter events.
        """
        return (time.perf_counter_ns() - self._epoch_ns) * 1.0e-3

    def plant_slowdown(self, name: str, seconds: float) -> None:
        """Testing hook: sleep ``seconds`` whenever a span ``name`` closes.

        This is how the perfdiff planted-regression controls (CI and
        integration tests) manufacture a known culprit: the sleep lands
        inside the span's measured duration, so attribution must rank
        exactly that span first.  Survives :meth:`clear` (sessions clear
        the trace after planting); remove with :meth:`clear_slowdowns`.
        Zero/negative seconds remove the single entry.
        """
        if seconds and seconds > 0:
            self._planted[name] = float(seconds)
        else:
            self._planted.pop(name, None)

    def clear_slowdowns(self) -> None:
        """Remove every planted slowdown."""
        self._planted = {}

    def start(self) -> None:
        self.recording = True

    def stop(self) -> None:
        self.recording = False

    def clear(self) -> None:
        """Drop recorded spans and restart the trace clock at zero."""
        self.spans = []
        self._next_id = 0
        self._tid_map = {}
        self._tls = threading.local()
        self._epoch_ns = time.perf_counter_ns()

    def aggregate(self) -> dict[str, dict]:
        """Per-name rollup of the recorded spans.

        Returns ``{name: {count, total_s, self_s, mean_s, min_s, max_s,
        cat}}`` sorted by descending total time -- the numbers the ASCII
        summary table and the hot-path bench report.  ``total_s`` is
        inclusive; ``self_s`` excludes time spent in child spans, so a
        regression planted on one span name moves that name's ``self_s``
        and not its ancestors' (what perfdiff ranks by).
        """
        child_s: dict[int, float] = {}
        for s in self.spans:
            if s.parent >= 0:
                child_s[s.parent] = child_s.get(s.parent, 0.0) + s.dur_s
        agg: dict[str, dict] = {}
        for s in self.spans:
            own = max(0.0, s.dur_s - child_s.get(s.id, 0.0))
            a = agg.get(s.name)
            if a is None:
                agg[s.name] = {
                    "count": 1,
                    "total_s": s.dur_s,
                    "self_s": own,
                    "min_s": s.dur_s,
                    "max_s": s.dur_s,
                    "cat": s.cat,
                }
            else:
                a["count"] += 1
                a["total_s"] += s.dur_s
                a["self_s"] += own
                a["min_s"] = min(a["min_s"], s.dur_s)
                a["max_s"] = max(a["max_s"], s.dur_s)
        for a in agg.values():
            a["mean_s"] = a["total_s"] / a["count"]
        return dict(sorted(agg.items(), key=lambda kv: -kv[1]["total_s"]))


class TracerSubscriber(ToolSubscriber):
    """Bridges hook-registry events into tracer spans.

    Kernel dispatches become ``cat="kernel"`` spans named after the
    kernel label (so profiles read exactly like Nsight/rocprof output on
    real Kokkos), fences ``cat="fence"``, deep copies ``cat="copy"`` and
    user regions ``cat="region"``.  Begin/end pairing uses the registry's
    kernel ids.
    """

    def __init__(self, tracer: SpanTracer):
        self.tracer = tracer
        self._open: dict[int, _SpanHandle] = {}
        self._regions = threading.local()

    def _begin(self, kid: int, name: str, cat: str, **args) -> None:
        h = self.tracer.span(name, cat=cat, **args)
        h.__enter__()
        self._open[kid] = h

    def _end(self, kid: int) -> None:
        h = self._open.pop(kid, None)
        if h is not None:
            h.__exit__(None, None, None)

    def begin_parallel_for(self, name, extent, space, kid):
        self._begin(kid, name, "kernel", extent=extent, space=space, dispatch="parallel_for")

    end_parallel_for = _end

    def begin_parallel_reduce(self, name, extent, space, kid):
        self._begin(kid, name, "kernel", extent=extent, space=space, dispatch="parallel_reduce")

    end_parallel_reduce = _end

    def begin_deep_copy(self, dst_name, src_name, nbytes, kid):
        self._begin(kid, f"deep_copy {src_name}->{dst_name}", "copy", bytes=nbytes)

    end_deep_copy = _end

    def begin_fence(self, name, kid):
        self._begin(kid, name, "fence")

    end_fence = _end

    def push_region(self, name):
        stack = getattr(self._regions, "stack", None)
        if stack is None:
            stack = self._regions.stack = []
        h = self.tracer.span(name, cat="region")
        h.__enter__()
        stack.append(h)

    def pop_region(self):
        stack = getattr(self._regions, "stack", None)
        if stack:
            stack.pop().__exit__(None, None, None)


_TRACER = SpanTracer()


def get_tracer() -> SpanTracer:
    """The process-wide default tracer the solver stack emits to."""
    return _TRACER
