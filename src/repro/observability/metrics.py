"""Metrics registry: counters, gauges and histograms with one snapshot.

The scalar half of the observability layer.  Where the span tracer
answers "when did it run and for how long", the metrics registry
answers "how many and how much": Newton steps, GMRES iterations per
linear solve, halo bytes per channel and per neighbor pair, evaluator
sweeps, gpusim cache hit rates.

Instruments are created on demand (``registry.counter("gmres.
iterations")``) and accumulate process-wide until :meth:`MetricsRegistry.
reset`; ``snapshot()`` returns one JSON-able dict that the velocity
solver embeds in ``VelocitySolution.diagnostics["observability"]`` and
the exporters attach to the Chrome trace.  All updates are cheap enough
to stay always-on (an int add / float compare) -- there is no disabled
state to keep consistent.

Thread-safety contract (the SPMD worker-pool audit): ``Counter.inc``
and ``Histogram.observe`` are read-modify-write sequences, so each
instrument carries its own lock -- an uncontended CPython lock is a few
tens of nanoseconds, noise next to the numpy work between updates, and
it makes concurrent increments lossless (regression-tested in
``tests/unit/test_observability.py``).  ``Gauge.set`` is a single
attribute store -- atomic under the GIL by itself -- and stays lockless;
last-write-wins among racing writers is the gauge semantic anyway.
Instrument *creation* is guarded by the registry lock as before.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "get_metrics"]


class Counter:
    """Monotonically increasing count (events, bytes, iterations)."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """Last-write-wins scalar (occupancy fraction, imbalance, rates)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, v: float) -> None:
        # single store: atomic under the GIL, last-write-wins by design
        self.value = float(v)


class Histogram:
    """Streaming summary of an observed distribution.

    Tracks count / sum / min / max / last plus the sum of squares for
    mean and standard deviation, and a bounded sample reservoir for
    p50/p95 quantiles.  The reservoir is *deterministically* decimated
    (keep every Nth observation, doubling N when :data:`RESERVOIR_CAP`
    fills) rather than randomly sampled -- same inputs, same snapshot,
    the property every bitwise-reproducibility test in this repo leans
    on.  Memory stays bounded no matter how hot the call site.
    """

    #: reservoir decimation threshold (kept samples, not observations)
    RESERVOIR_CAP = 1024

    __slots__ = ("count", "total", "sq_total", "min", "max", "last",
                 "_samples", "_stride", "_pending", "_lock")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.sq_total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.last = 0.0
        self._samples: list[float] = []
        self._stride = 1
        self._pending = 0
        self._lock = threading.Lock()

    def observe(self, v: float) -> None:
        v = float(v)
        with self._lock:
            self.count += 1
            self.total += v
            self.sq_total += v * v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            self.last = v
            self._pending += 1
            if self._pending >= self._stride:
                self._pending = 0
                self._samples.append(v)
                if len(self._samples) >= self.RESERVOIR_CAP:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    def quantile(self, q: float) -> float:
        """Quantile estimate from the kept reservoir (0 when empty)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[idx]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        var = self.sq_total / self.count - self.mean**2
        return math.sqrt(max(0.0, var))

    def summary(self) -> dict:
        if self.count == 0:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "stddev": 0.0, "last": 0.0, "p50": 0.0, "p95": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "stddev": self.stddev,
            "last": self.last,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    Naming convention (see DESIGN.md): dot-separated subsystem paths,
    with dynamic labels as trailing dotted components, e.g.
    ``halo.bytes.vector_gather`` or ``halo.sent.r0.to.r1``.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter())
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge())
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram())
        return h

    def value(self, name: str, default: float = 0.0) -> float:
        """Read a counter or gauge without creating it.

        Assertion-friendly accessor (``registry.value("tune.trials")``):
        a plain ``counter(name).value`` would instantiate the instrument
        as a side effect, polluting snapshots with never-incremented
        zeros just by being observed.
        """
        c = self._counters.get(name)
        if c is not None:
            return float(c.value)
        g = self._gauges.get(name)
        if g is not None:
            return float(g.value)
        return default

    def snapshot(self) -> dict:
        """JSON-able dump of every instrument (cumulative since reset)."""
        return {
            "counters": {k: v.value for k, v in sorted(self._counters.items())},
            "gauges": {k: v.value for k, v in sorted(self._gauges.items())},
            "histograms": {k: v.summary() for k, v in sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        """Drop all instruments (call sites re-create them on next use)."""
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}


_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _METRICS
