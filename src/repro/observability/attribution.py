"""Roofline attribution: modeled bytes/flops per span, %-of-roof tables.

The paper justified every kernel change with byte counters (rocprof
TCC_EA requests, Table II launch sweeps) rather than wall time alone.
This module closes the same loop for recorded traces: emission sites
attach their modeled traffic to span ``args`` (``bytes``, ``flops``,
and -- for gpusim kernel spans -- ``rocprof_bytes`` and
``model_time_s``), and :func:`annotate_roofline` turns those raw
numbers into roofline coordinates against a chosen GPU:

* ``ai``        -- arithmetic intensity, flops per HBM byte;
* ``roof_frac`` -- attained fraction of the roofline ceiling at that
  AI (for pure-streaming spans with no flop model this is the
  bandwidth fraction);
* ``bw_frac``   -- implied HBM bandwidth over peak;
* ``basis``     -- ``"modeled"`` when the span carries a simulated GPU
  time (``model_time_s``, gpusim spans), ``"wall"`` when the only
  clock is the Python harness's own duration.  Wall-basis fractions
  are honest but tiny -- they measure the harness, not the modeled
  GPU -- so tables always print the basis next to the fraction.

Byte sources per span family:

=================  ==================================================
``gpusim.run``     memtrace :class:`~repro.gpusim.memtrace.DataMovement`
                   (``bytes`` equals ``rocprof_formula_bytes()`` by the
                   request-counting contract; a reconciliation helper
                   asserts it)
``gmres.cycle``    :mod:`repro.gpusim.solver_bytes` per-cycle matvec +
                   orthogonalization streams at the depths actually run
``mdsc.vcycle``    the preconditioner's ``bytes_per_apply`` (matrices
                   and vectors it streams per V-cycle)
``halo.*``         measured exchange payloads (already in ``args``)
=================  ==================================================
"""

from __future__ import annotations

__all__ = [
    "annotate_roofline",
    "roofline_table",
    "reconcile_rocprof_bytes",
    "span_bytes",
]

#: span arg key the annotation pass writes; check_trace validates it
ROOFLINE_KEY = "roofline"

#: required numeric fields of a roofline annotation
ROOFLINE_FIELDS = ("bytes", "flops", "ai", "roof_frac", "bw_frac")


def span_bytes(span) -> float:
    """Modeled/measured HBM bytes of one span, 0.0 when unpriced.

    Accepts an explicit ``bytes`` arg or the ``matvec_bytes`` +
    ``stream_bytes`` split the GMRES cycle spans carry.
    """
    args = span.args
    b = args.get("bytes")
    if b is None:
        b = args.get("matvec_bytes", 0.0) + args.get("stream_bytes", 0.0)
    try:
        return max(0.0, float(b))
    except (TypeError, ValueError):
        return 0.0


def annotate_roofline(spans, spec) -> int:
    """Attach roofline coordinates to every priced span, in place.

    ``spec`` is a :class:`repro.gpusim.specs.GPUSpec` (the roof the
    spans are measured against).  Returns the number of spans
    annotated.  Spans without a byte model are left untouched; spans
    with zero duration and no modeled time cannot imply a bandwidth and
    are skipped too.
    """
    peak_bw = float(spec.hbm_bytes_per_s)
    peak_flops = float(spec.fp64_flops)
    n = 0
    for s in spans:
        b = span_bytes(s)
        if b <= 0.0:
            continue
        model_t = s.args.get("model_time_s")
        if model_t is not None and model_t > 0.0:
            t, basis = float(model_t), "modeled"
        elif s.dur_s > 0.0:
            t, basis = s.dur_s, "wall"
        else:
            continue
        fl = max(0.0, float(s.args.get("flops", 0.0) or 0.0))
        bw_frac = (b / t) / peak_bw
        if fl > 0.0:
            ai = fl / b
            attainable = min(peak_flops, peak_bw * ai)
            roof_frac = (fl / t) / attainable
        else:
            # pure-streaming span: the roof at AI -> 0 is the bandwidth
            # ceiling, so %-of-roof degenerates to the bandwidth fraction
            ai = 0.0
            roof_frac = bw_frac
        s.args[ROOFLINE_KEY] = {
            "bytes": b,
            "flops": fl,
            "ai": ai,
            "roof_frac": roof_frac,
            "bw_frac": bw_frac,
            "basis": basis,
            "gpu": spec.name,
        }
        n += 1
    return n


def roofline_table(spans, spec, top: int = 20, title: str | None = None) -> str:
    """ASCII per-span-name roofline rollup (the attribution table).

    Aggregates annotated spans by name: total bytes, total flops,
    aggregate AI, time-weighted %-of-roof, and the time basis.  Spans
    must have been through :func:`annotate_roofline` first (unannotated
    spans are ignored).
    """
    from repro.perf.report import format_table  # deferred (import cycle, see export.py)

    agg: dict[str, list] = {}
    for s in spans:
        r = s.args.get(ROOFLINE_KEY)
        if not r:
            continue
        t = s.args.get("model_time_s") if r["basis"] == "modeled" else s.dur_s
        a = agg.setdefault(s.name, [0, 0.0, 0.0, 0.0, r["basis"]])
        a[0] += 1
        a[1] += r["bytes"]
        a[2] += r["flops"]
        a[3] += float(t)
    rows = []
    peak_bw = float(spec.hbm_bytes_per_s)
    peak_flops = float(spec.fp64_flops)
    for name, (count, b, fl, t, basis) in sorted(agg.items(), key=lambda kv: -kv[1][1])[:top]:
        ai = fl / b if b > 0 else 0.0
        if t > 0:
            bw_frac = (b / t) / peak_bw
            if fl > 0:
                roof = (fl / t) / min(peak_flops, peak_bw * ai)
            else:
                roof = bw_frac
        else:
            bw_frac = roof = 0.0
        rows.append(
            [name, count, f"{b / 1e9:.3f}", f"{fl / 1e9:.3f}",
             f"{ai:.3f}", f"{roof:.2%}", f"{bw_frac:.2%}", basis]
        )
    if not rows:
        return "(no roofline-annotated spans)"
    return format_table(
        ["span", "count", "GB moved", "Gflop", "AI [f/B]", "% of roof", "% peak BW", "basis"],
        rows,
        title=title or f"Roofline attribution vs {spec.name}",
    )


def reconcile_rocprof_bytes(spans, rtol: float = 0.0) -> list[str]:
    """Check gpusim span byte args against the rocprof request formula.

    The memtrace contract defines modeled bytes as 64 B per request, so
    a ``gpusim.run`` span's ``bytes`` must equal its ``rocprof_bytes``
    (the TCC_EA ``64 * (RDREQ + WRREQ)`` appendix formula) exactly; any
    drift means an emission site and the byte model disagree.  Returns
    a list of mismatch descriptions (empty = reconciled).
    """
    errors = []
    for s in spans:
        rb = s.args.get("rocprof_bytes")
        if rb is None:
            continue
        b = span_bytes(s)
        tol = rtol * max(abs(b), abs(rb))
        if abs(b - rb) > tol:
            errors.append(
                f"{s.name} (id {s.id}): bytes {b:g} != rocprof formula {rb:g}"
            )
    return errors
