"""Profiler-interface emulation (the paper's appendix methodology).

The paper gathers GPU data movement with NVIDIA Nsight Compute
(``dram__bytes.sum``) and AMD rocprof (``TCC_EA_*`` request counters,
``arch_vgpr``/``accum_vgpr`` columns).  This module renders a simulated
:class:`~repro.gpusim.simulator.KernelProfile` through the same
interfaces: the command lines, the rocprof input file, the counter
values, and the appendix's GPU-bytes-moved formula

``GPU Bytes Moved = 64*TCC_EA_WRREQ_64B
                  + 32*(TCC_EA_WRREQ_sum - TCC_EA_WRREQ_64B)
                  + 32*TCC_EA_RDREQ_32B
                  + 64*(TCC_EA_RDREQ_sum - TCC_EA_RDREQ_32B)``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.simulator import KernelProfile

__all__ = ["NsightComputeReport", "RocprofReport", "profiler_report"]


@dataclass(frozen=True)
class NsightComputeReport:
    """Nsight-Compute-style metrics for one kernel on an NVIDIA GPU."""

    kernel_name: str
    metrics: dict

    @staticmethod
    def from_profile(profile: KernelProfile) -> "NsightComputeReport":
        dram_bytes = profile.hbm_bytes
        elapsed = profile.time_s
        scratch = profile.timing.scratch_bytes  # local-memory spill traffic
        return NsightComputeReport(
            kernel_name=profile.variant_key,
            metrics={
                "dram__bytes.sum": float(dram_bytes),
                "dram__bytes_read.sum": float(profile.data_movement.read_bytes + scratch / 2.0),
                "dram__bytes_write.sum": float(profile.data_movement.write_bytes + scratch / 2.0),
                "dram__throughput.avg.pct_of_peak_sustained_elapsed": 100.0
                * (dram_bytes / elapsed)
                / profile.peak_bandwidth,
                "gpu__time_duration.sum": elapsed,
                "sm__sass_thread_inst_executed_op_dfma_pred_on.sum": float(profile.flops) / 2.0,
                "launch__registers_per_thread": profile.arch_vgprs,
                "sm__warps_active.avg.pct_of_peak_sustained_active": 100.0
                * profile.occupancy_fraction,
            },
        )

    @staticmethod
    def command_line(kernel_name: str = "StokesFOResid") -> str:
        """The appendix's Nsight Compute invocation."""
        return (
            f'nv-nsight-cu-cli -k {kernel_name} --metrics "dram_bytes.sum" <exe> <param>'
        )

    def dram_bytes(self) -> float:
        return self.metrics["dram__bytes.sum"]

    def render(self) -> str:
        lines = [f"== Nsight Compute (simulated): {self.kernel_name} =="]
        for k in sorted(self.metrics):
            v = self.metrics[k]
            lines.append(f"  {k:60s} {v:.6g}")
        return "\n".join(lines)


@dataclass(frozen=True)
class RocprofReport:
    """rocprof-style CSV row for one kernel on an AMD GCD."""

    kernel_name: str
    counters: dict

    #: the request mix of our coalesced accesses: reads are full 64B
    #: requests, writes are full 64B requests
    @staticmethod
    def from_profile(profile: KernelProfile) -> "RocprofReport":
        dm = profile.data_movement
        # scratch (spill) traffic shows up in the TCC counters too; the
        # spill stream is half reads, half writes
        scratch_reqs = int(profile.timing.scratch_bytes / 64.0 / 2.0)
        rd64 = dm.read_requests + scratch_reqs
        wr64 = dm.write_requests + scratch_reqs
        return RocprofReport(
            kernel_name=profile.variant_key,
            counters={
                "TCC_EA_RDREQ_sum": rd64,
                "TCC_EA_RDREQ_32B": 0,
                "TCC_EA_WRREQ_sum": wr64,
                "TCC_EA_WRREQ_64B": wr64,
                "SQ_INSTS_VALU_ADD_F64": int(profile.flops * 0.4),
                "SQ_INSTS_VALU_MUL_F64": int(profile.flops * 0.2),
                "SQ_INSTS_VALU_FMA_F64": int(profile.flops * 0.2),
                "SQ_INSTS_VALU_TRANS_F64": 0,
                "arch_vgpr": profile.arch_vgprs,
                "accum_vgpr": profile.accum_vgprs,
                "DurationNs": int(profile.time_s * 1.0e9),
            },
        )

    @staticmethod
    def input_file(kernel_name: str = "StokesFOResid") -> str:
        """The appendix's rocprof input file."""
        return "\n".join(
            [
                f"kernel: {kernel_name}",
                "pmc : SQ_INSTS_VALU_ADD_F64 SQ_INSTS_VALU_MUL_F64",
                "SQ_INSTS_VALU_FMA_F64 SQ_INSTS_VALU_TRANS_F64",
                "pmc : TCC_EA_RDREQ_32B_sum TCC_EA_RDREQ_sum",
                "TCC_EA_WRREQ_sum TCC_EA_WRREQ_64B_sum",
                "gpu: 0",
            ]
        )

    @staticmethod
    def command_line() -> str:
        return "rocprof -i input_file.txt --timestamp on -o my_output.csv <exe> <params>"

    def gpu_bytes_moved(self) -> float:
        """The appendix formula over the TCC_EA counters."""
        c = self.counters
        return (
            64.0 * c["TCC_EA_WRREQ_64B"]
            + 32.0 * (c["TCC_EA_WRREQ_sum"] - c["TCC_EA_WRREQ_64B"])
            + 32.0 * c["TCC_EA_RDREQ_32B"]
            + 64.0 * (c["TCC_EA_RDREQ_sum"] - c["TCC_EA_RDREQ_32B"])
        )

    def csv_row(self) -> str:
        keys = sorted(self.counters)
        return ",".join(["KernelName"] + keys) + "\n" + ",".join(
            [self.kernel_name] + [str(self.counters[k]) for k in keys]
        )

    def render(self) -> str:
        lines = [f"== rocprof (simulated): {self.kernel_name} =="]
        for k in sorted(self.counters):
            lines.append(f"  {k:28s} {self.counters[k]}")
        lines.append(f"  GPU Bytes Moved (formula)    {self.gpu_bytes_moved():.6g}")
        return "\n".join(lines)


def profiler_report(profile: KernelProfile):
    """The vendor-appropriate profiler report for a kernel profile."""
    from repro.gpusim.specs import ALL_GPUS

    spec = ALL_GPUS.get(profile.gpu)
    vendor = spec.vendor if spec is not None else ("nvidia" if "A100" in profile.gpu else "amd")
    if vendor == "nvidia":
        return NsightComputeReport.from_profile(profile)
    return RocprofReport.from_profile(profile)
