"""GPU architecture descriptions (paper Section IV-A).

Hardware numbers come from the paper and vendor documentation; the
``interleave_*``, ``bw_*`` and latency entries are the model's
calibration constants, chosen once against the paper's published
baseline/optimized measurements and then held fixed for every
experiment (they are properties of the machine model, not of any
kernel).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["GPUSpec", "A100", "MI250X_GCD", "ALL_GPUS", "default_tuning_spec"]


@dataclass(frozen=True)
class GPUSpec:
    """One GPU (or GCD) as seen by the performance model."""

    name: str
    vendor: str  # "nvidia" | "amd"
    #: compute units: SMs on NVIDIA, CUs on AMD
    num_cus: int
    warp_size: int
    max_threads_per_cu: int
    #: 32-bit registers per SM (NVIDIA) / arch+accum VGPRs per SIMD (AMD)
    registers_per_cu: int
    simds_per_cu: int
    l1_bytes: int
    l2_bytes: int
    line_bytes: int
    hbm_bytes_per_s: float
    fp64_flops: float
    hbm_capacity_bytes: int
    #: instruction issue throughput per CU [inst/s] (scalar-equivalent)
    issue_rate_per_cu: float
    #: fixed kernel launch overhead [s]
    launch_latency_s: float
    #: fraction of co-resident warps effectively interleaving between a
    #: warp's consecutive accesses at each cache level (GPU schedulers
    #: burst warps, so this is << 1)
    interleave_l1: float
    interleave_l2: float
    #: peak fraction of HBM bandwidth sustainable by real kernels
    bw_max_fraction: float
    #: occupancy (resident warps / max warps) at which the achieved
    #: bandwidth reaches half of ``bw_max_fraction``
    bw_half_occupancy: float
    #: penalty factor on achieved bandwidth for read-modify-write global
    #: accumulation streams (dependent-access stalls)
    rmw_bandwidth_penalty: float
    #: multiplier converting scratch-spill bytes into HBM traffic
    #: (scratch is cached; only part reaches HBM)
    scratch_hbm_fraction: float

    @property
    def max_warps_per_cu(self) -> int:
        return self.max_threads_per_cu // self.warp_size

    @property
    def l1_lines(self) -> int:
        return self.l1_bytes // self.line_bytes

    @property
    def l2_lines(self) -> int:
        return self.l2_bytes // self.line_bytes

    @property
    def warp_bytes(self) -> int:
        """Bytes one warp touches per coalesced 8-byte access."""
        return self.warp_size * 8

    @property
    def lines_per_access(self) -> int:
        return max(1, self.warp_bytes // self.line_bytes)


#: NVIDIA A100-40GB (Perlmutter): 108 SMs, 40 MB L2, 1.55 TB/s, 9.7 TF64.
A100 = GPUSpec(
    name="A100",
    vendor="nvidia",
    num_cus=108,
    warp_size=32,
    max_threads_per_cu=2048,
    registers_per_cu=65536,
    simds_per_cu=4,
    l1_bytes=192 * 1024,
    l2_bytes=40 * 1024 * 1024,
    line_bytes=128,
    hbm_bytes_per_s=1.55e12,
    fp64_flops=9.7e12,
    hbm_capacity_bytes=40 * 1024**3,
    issue_rate_per_cu=1.41e9 * 2.0,  # ~clock x 2 issue slots
    launch_latency_s=3.0e-6,
    interleave_l1=0.50,
    interleave_l2=0.8,
    bw_max_fraction=0.93,
    bw_half_occupancy=0.02,
    rmw_bandwidth_penalty=0.45,
    scratch_hbm_fraction=0.30,
)

#: One GCD of an AMD MI250X (Frontier): 110 CUs, 8 MB L2, 1.6 TB/s, 24 TF64.
MI250X_GCD = GPUSpec(
    name="MI250X-GCD",
    vendor="amd",
    num_cus=110,
    warp_size=64,
    max_threads_per_cu=2048,
    registers_per_cu=512,  # VGPRs per SIMD (256 arch + 256 accum)
    simds_per_cu=4,
    l1_bytes=16 * 1024,
    l2_bytes=8 * 1024 * 1024,
    line_bytes=64,
    hbm_bytes_per_s=1.6e12,
    fp64_flops=23.9e12,
    hbm_capacity_bytes=64 * 1024**3,
    issue_rate_per_cu=1.7e9 * 1.2,
    launch_latency_s=8.0e-6,
    interleave_l1=0.50,
    interleave_l2=0.012,
    bw_max_fraction=0.90,
    bw_half_occupancy=0.15,
    rmw_bandwidth_penalty=0.30,
    scratch_hbm_fraction=0.55,
)

ALL_GPUS: dict[str, GPUSpec] = {"A100": A100, "MI250X-GCD": MI250X_GCD}


def default_tuning_spec() -> GPUSpec:
    """The architecture the autotuner targets when none is given.

    There is no physical GPU in this environment, so "the machine we are
    tuning for" is a modeling choice: ``REPRO_TUNE_GPU`` selects any
    :data:`ALL_GPUS` entry, defaulting to the MI250X GCD (the paper's
    Table II tuning study targets exactly that part).
    """
    name = os.environ.get("REPRO_TUNE_GPU", "MI250X-GCD")
    try:
        return ALL_GPUS[name]
    except KeyError:
        raise ValueError(
            f"unknown REPRO_TUNE_GPU {name!r}; available: {sorted(ALL_GPUS)}"
        ) from None
