"""HBM data movement from per-thread traces (the ``dram_bytes`` model).

Every slot access of the recorded thread program is classified by its
LRU reuse distance, scaled to *concurrent* distance: between a warp's
consecutive accesses, the other co-resident warps interleave their own
accesses, multiplying the effective distance by an occupancy-dependent
interleave factor.  Classification runs through a two-level filter
(per-CU L1, device L2) with a smooth hit window around each capacity
(modeling finite associativity and scheduling jitter), yielding the HBM
read/write traffic per warp, which scales linearly to the full problem.

Stores are modeled as streaming (fully-coalesced 8 B/lane writes cover
whole lines, so no write-allocate fetch); dirty lines are written back
once per eviction epoch plus once at kernel end -- this is what makes
the baseline kernel's read-modify-write accumulation expensive and the
optimized kernel's single writeback cheap, on both architectures.

The spec-independent parts of the analysis (reuse distances, access
roles) are cached per kernel program; the spec-dependent classification
is fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.cache import stack_distances
from repro.gpusim.occupancy import Occupancy
from repro.gpusim.specs import GPUSpec
from repro.gpusim.trace import ThreadProgram

__all__ = ["DataMovement", "measure_data_movement", "smooth_hit_fraction"]


def smooth_hit_fraction(concurrent_lines, capacity_lines: float):
    """Probability a reuse at this concurrent distance hits the cache.

    Certain hit below half capacity, certain miss beyond twice capacity,
    linear in between -- a smooth stand-in for associativity conflicts
    and scheduler jitter around the capacity cliff.  Vectorized.
    """
    x = np.asarray(concurrent_lines, dtype=np.float64)
    out = (2.0 * capacity_lines - x) / (1.5 * capacity_lines)
    out = np.clip(out, 0.0, 1.0)
    if np.isscalar(concurrent_lines):
        return float(out)
    return out


@dataclass(frozen=True)
class _ProgramAnalysis:
    """Spec-independent per-access arrays for one kernel program."""

    dist: np.ndarray  # reuse distance per access (-1 first touch)
    is_write: np.ndarray  # bool per access
    prev_was_read: np.ndarray  # bool per access: previous same-slot access was a read
    num_written_slots: int
    rmw_fraction: float


_ANALYSIS_CACHE: dict[tuple, _ProgramAnalysis] = {}


def _analyze(program: ThreadProgram) -> _ProgramAnalysis:
    key = (program.variant_key, program.num_nodes, program.num_qps)
    hit = _ANALYSIS_CACHE.get(key)
    if hit is not None:
        return hit

    keys = program.slot_trace
    dist = stack_distances(keys)
    is_write = np.asarray(program.writes, dtype=bool)

    prev_was_read = np.zeros(len(keys), dtype=bool)
    last_kind: dict = {}
    for i, (slot, w) in enumerate(zip(keys, is_write)):
        prev = last_kind.get(slot)
        prev_was_read[i] = prev == "r"
        last_kind[slot] = "w" if w else "r"

    total_writes = int(is_write.sum())
    rmw_writes = int((is_write & prev_was_read).sum())
    analysis = _ProgramAnalysis(
        dist=dist,
        is_write=is_write,
        prev_was_read=prev_was_read,
        num_written_slots=len(program.unique_written_slots()),
        rmw_fraction=rmw_writes / total_writes if total_writes else 0.0,
    )
    _ANALYSIS_CACHE[key] = analysis
    return analysis


@dataclass
class DataMovement:
    """HBM traffic for one kernel invocation over the whole problem."""

    read_bytes: float
    write_bytes: float
    per_warp_read_bytes: float
    per_warp_write_bytes: float
    l1_hit_fraction: float
    l2_hit_fraction: float
    rmw_fraction: float
    num_warps: int
    #: rocprof-style request counts (64B read/write requests).  Each warp
    #: issues a whole number of requests (ceiling of its byte traffic /
    #: 64), and the reported byte totals are defined as 64 bytes per
    #: request -- so :meth:`rocprof_formula_bytes` reconciles exactly
    #: with :attr:`total_bytes`, as the paper's appendix formula does
    #: against the hardware counters.
    read_requests: int
    write_requests: int

    @property
    def total_bytes(self) -> float:
        return self.read_bytes + self.write_bytes

    def rocprof_formula_bytes(self) -> float:
        """GPU Bytes Moved per the paper's appendix TCC_EA formula.

        All our requests are full 64-byte requests, so the formula
        collapses to ``64 * (RDREQ + WRREQ)``.
        """
        return 64.0 * (self.read_requests + self.write_requests)


def measure_data_movement(
    program: ThreadProgram,
    spec: GPUSpec,
    occupancy: Occupancy,
    num_cells: int,
) -> DataMovement:
    """Classify the thread program's accesses and scale to ``num_cells``."""
    if num_cells <= 0:
        raise ValueError("num_cells must be positive")
    a = _analyze(program)

    L = spec.lines_per_access  # lines one warp touches per slot access
    line = spec.line_bytes
    c1 = max(1.0, occupancy.warps_per_cu * spec.interleave_l1)
    c2 = max(1.0, occupancy.total_warps * spec.interleave_l2)

    first = a.dist < 0
    reuse = ~first
    d = a.dist[reuse].astype(np.float64)
    is_write_reuse = a.is_write[reuse]

    p1 = smooth_hit_fraction(d * L * c1, spec.l1_lines)
    p2 = smooth_hit_fraction(d * L * c2, spec.l2_lines)
    p_miss = (1.0 - p1) * (1.0 - p2)

    # compulsory read misses (first-touch reads fetch; writes stream out)
    read_b = float(np.sum(first & ~a.is_write)) * L * line
    # reuse misses: reads fetch the line; a missing re-write means the
    # previously dirty copy was evicted and written back
    read_b += float(np.sum(p_miss[~is_write_reuse])) * L * line
    write_b = float(np.sum(p_miss[is_write_reuse])) * L * line
    # final writeback: every distinct written slot leaves one dirty line set
    write_b += a.num_written_slots * L * line

    n_reuse = int(reuse.sum())
    l1_hits = float(np.sum(p1))
    l2_hits = float(np.sum((1.0 - p1) * p2))

    num_warps = int(np.ceil(num_cells / spec.warp_size))
    # each warp issues whole 64 B requests: ceiling per warp (with a tiny
    # slack so exact multiples of 64 do not round up on float fuzz), then
    # bytes are defined as 64 B per request -- truncating the totals left
    # the appendix TCC_EA formula short of the modeled bytes
    read_requests_per_warp = int(np.ceil(read_b / 64.0 - 1.0e-9)) if read_b > 0.0 else 0
    write_requests_per_warp = int(np.ceil(write_b / 64.0 - 1.0e-9)) if write_b > 0.0 else 0
    read_requests = read_requests_per_warp * num_warps
    write_requests = write_requests_per_warp * num_warps
    return DataMovement(
        read_bytes=64.0 * read_requests,
        write_bytes=64.0 * write_requests,
        per_warp_read_bytes=read_b,
        per_warp_write_bytes=write_b,
        l1_hit_fraction=l1_hits / n_reuse if n_reuse else 0.0,
        l2_hit_fraction=l2_hits / n_reuse if n_reuse else 0.0,
        rmw_fraction=a.rmw_fraction,
        num_warps=num_warps,
        read_requests=read_requests,
        write_requests=write_requests,
    )
