"""Trace-driven GPU performance simulator (the hardware substitute).

No GPU is available in this environment, so the paper's measurements are
reproduced by simulation.  The same kernel bodies that compute the
numerics are executed in trace mode to obtain their exact per-thread
access program; the simulator then models, per architecture:

* **data movement** (:mod:`~repro.gpusim.memtrace`): reuse-distance cache
  filtering at L1/L2 with occupancy-dependent interleaving, line-granular
  HBM traffic, streaming stores, dirty writebacks -- producing the
  ``dram_bytes.sum`` / ``TCC_EA_*`` equivalents of the paper's appendix;
* **register allocation** (:mod:`~repro.gpusim.registers`): the CDNA2
  arch/accum VGPR split driven by LaunchBounds occupancy targets (the
  Table II mechanism) and the CUDA occupancy rules;
* **timing** (:mod:`~repro.gpusim.timing`): memory time under an
  occupancy-dependent achieved-bandwidth curve, instruction-issue time
  (loop overhead, branch divergence), scratch-spill traffic, launch
  latency, and wave quantization.

Everything is deterministic: simulated seconds are model outputs and
reproduce bit-for-bit.
"""

from repro.gpusim.specs import GPUSpec, A100, MI250X_GCD, ALL_GPUS
from repro.gpusim.trace import ThreadProgram, record_kernel_trace
from repro.gpusim.cache import LruCache, stack_distances
from repro.gpusim.memtrace import DataMovement, measure_data_movement
from repro.gpusim.registers import Allocation, allocate_registers
from repro.gpusim.occupancy import Occupancy, compute_occupancy
from repro.gpusim.bandwidth import achieved_bandwidth_fraction
from repro.gpusim.timing import KernelTiming, estimate_time
from repro.gpusim.simulator import GPUSimulator, KernelProfile, ProblemSize, ANTARCTICA_16KM
from repro.gpusim.profiler import NsightComputeReport, RocprofReport, profiler_report

__all__ = [
    "GPUSpec",
    "A100",
    "MI250X_GCD",
    "ALL_GPUS",
    "ThreadProgram",
    "record_kernel_trace",
    "LruCache",
    "stack_distances",
    "DataMovement",
    "measure_data_movement",
    "Allocation",
    "allocate_registers",
    "Occupancy",
    "compute_occupancy",
    "achieved_bandwidth_fraction",
    "KernelTiming",
    "estimate_time",
    "GPUSimulator",
    "KernelProfile",
    "ProblemSize",
    "ANTARCTICA_16KM",
    "NsightComputeReport",
    "RocprofReport",
    "profiler_report",
]
