"""The simulator facade: run a kernel variant on a GPU model.

``GPUSimulator.run`` chains trace -> register allocation -> occupancy ->
data movement -> timing and returns a :class:`KernelProfile` holding
everything the paper reports per kernel: time per invocation, HBM bytes
moved, flops, arithmetic intensity, VGPR allocation, occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.launch import default_launch_bounds
from repro.core.variants import KernelVariant, get_variant
from repro.gpusim.memtrace import DataMovement, measure_data_movement
from repro.gpusim.occupancy import Occupancy, compute_occupancy
from repro.gpusim.registers import Allocation, allocate_registers
from repro.gpusim.specs import GPUSpec
from repro.gpusim.timing import KernelTiming, estimate_time
from repro.gpusim.trace import ThreadProgram, record_kernel_trace
from repro.kokkos.policy import LaunchBounds
from repro.observability import get_metrics, get_tracer
from repro.resilience.injectors import KernelLaunchError, fault_plane

__all__ = ["ProblemSize", "ANTARCTICA_16KM", "KernelProfile", "GPUSimulator"]


@dataclass(frozen=True)
class ProblemSize:
    """Mesh-derived kernel workload description."""

    num_cells: int
    num_nodes: int = 8
    num_qps: int = 8

    def __post_init__(self):
        if self.num_cells <= 0 or self.num_nodes <= 0 or self.num_qps <= 0:
            raise ValueError("problem dimensions must be positive")


#: The paper's single-GPU test: ~256K hexahedra (12.8K quads x 20 layers).
ANTARCTICA_16KM = ProblemSize(num_cells=256_000)


@dataclass(frozen=True)
class KernelProfile:
    """Everything the paper reports about one kernel on one GPU."""

    gpu: str
    variant_key: str
    launch_bounds: str
    problem: ProblemSize
    time_s: float
    hbm_bytes: float
    flops: float
    arch_vgprs: int
    accum_vgprs: int
    scratch_bytes_per_thread: int
    occupancy_fraction: float
    achieved_bw: float
    timing: KernelTiming
    data_movement: DataMovement
    allocation: Allocation
    occupancy: Occupancy
    #: peak HBM bandwidth of the simulated GPU [bytes/s]; required so
    #: that :attr:`bandwidth_fraction_of_peak` is always well defined
    peak_bandwidth: float

    def __post_init__(self):
        if self.peak_bandwidth <= 0.0:
            raise ValueError("peak_bandwidth must be positive (bytes/s of the simulated GPU)")

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per HBM byte (the Roofline x-axis)."""
        return self.flops / self.hbm_bytes

    @property
    def gflops_per_s(self) -> float:
        return self.flops / self.time_s / 1.0e9

    @property
    def time_ms(self) -> float:
        return self.time_s * 1.0e3

    @property
    def gbytes_moved(self) -> float:
        return self.hbm_bytes / 1.0e9

    @property
    def bandwidth_fraction_of_peak(self) -> float:
        """Fraction of peak HBM bandwidth actually sustained."""
        return (self.hbm_bytes / self.time_s) / self.peak_bandwidth


class GPUSimulator:
    """Performance simulator for one GPU architecture."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec

    def run(
        self,
        variant: KernelVariant | str,
        problem: ProblemSize = ANTARCTICA_16KM,
        launch_bounds: LaunchBounds | None = None,
    ) -> KernelProfile:
        """Simulate one kernel invocation and profile it."""
        if isinstance(variant, str):
            variant = get_variant(variant)
        if launch_bounds is None:
            launch_bounds = default_launch_bounds(variant.mode)

        plane = fault_plane()
        if plane.active:
            self._launch_checked(plane, variant.key)

        tr = get_tracer()
        with tr.span(
            "gpusim.run", cat="gpusim", variant=variant.key, gpu=self.spec.name
        ) as sp:
            program: ThreadProgram = record_kernel_trace(
                variant.key, num_nodes=problem.num_nodes, num_qps=problem.num_qps
            )
            alloc = allocate_registers(self.spec, variant, launch_bounds)
            occ = compute_occupancy(self.spec, alloc, problem.num_cells)
            dm = measure_data_movement(program, self.spec, occ, problem.num_cells)
            timing = estimate_time(self.spec, variant, program, alloc, occ, dm, problem.num_cells)
            if tr.recording:
                # raw roofline inputs: modeled traffic, the rocprof
                # request-formula cross-check, and the *simulated* kernel
                # time (the span's own duration measures the simulator)
                sp.args.update(
                    bytes=dm.total_bytes,
                    rocprof_bytes=dm.rocprof_formula_bytes(),
                    flops=float(program.flops) * problem.num_cells,
                    model_time_s=timing.time_s,
                )

        metrics = get_metrics()
        metrics.counter("gpusim.kernel_runs").inc()
        metrics.histogram("gpusim.l1_hit_fraction").observe(dm.l1_hit_fraction)
        metrics.histogram("gpusim.l2_hit_fraction").observe(dm.l2_hit_fraction)

        return KernelProfile(
            gpu=self.spec.name,
            variant_key=variant.key,
            launch_bounds=str(launch_bounds),
            problem=problem,
            time_s=timing.time_s,
            hbm_bytes=timing.hbm_bytes,
            flops=float(program.flops) * problem.num_cells,
            arch_vgprs=alloc.arch_vgprs,
            accum_vgprs=alloc.accum_vgprs,
            scratch_bytes_per_thread=alloc.scratch_bytes,
            occupancy_fraction=occ.fraction,
            achieved_bw=timing.achieved_bw,
            timing=timing,
            data_movement=dm,
            allocation=alloc,
            occupancy=occ,
            peak_bandwidth=self.spec.hbm_bytes_per_s,
        )

    def _launch_checked(self, plane, name: str) -> None:
        """Armed-plane launch: retry injected launch failures.

        A flaky-GPU launch failure (:class:`KernelLaunchError` from the
        ``gpusim.launch`` site) is retried within the policy's budget --
        the simulated analogue of re-launching after a transient driver
        error -- then re-raised.
        """
        policy, log = plane.policy, plane.log
        attempt = 0
        while True:
            try:
                plane.poke("gpusim.launch", name=name, gpu=self.spec.name)
                break
            except KernelLaunchError as exc:
                attempt += 1
                log.record(
                    "detection", "launch_failure", "gpusim.launch",
                    name=name, attempt=attempt, error=str(exc),
                )
                if attempt > policy.max_retries:
                    raise
        if attempt > 0:
            log.record(
                "recovery", "launch_retry", "gpusim.launch",
                name=name, attempts=attempt,
            )
            get_metrics().counter("resilience.launch_retries").inc(attempt)

    def run_all_variants(self, problem: ProblemSize = ANTARCTICA_16KM) -> dict[str, KernelProfile]:
        """Profile all four kernel variants with their default bounds."""
        from repro.core.variants import variant_names

        return {key: self.run(key, problem) for key in variant_names()}
