"""Occupancy: how many warps are resident, and how full the launch is."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.registers import Allocation
from repro.gpusim.specs import GPUSpec

__all__ = ["Occupancy", "compute_occupancy"]


@dataclass(frozen=True)
class Occupancy:
    """Residency of one kernel launch on one GPU."""

    warps_per_cu: float
    total_warps: float
    fraction: float
    num_blocks: int
    threads_per_block: int
    #: efficiency loss from the final partial wave of blocks
    tail_efficiency: float


def compute_occupancy(spec: GPUSpec, alloc: Allocation, num_cells: int) -> Occupancy:
    """Residency from the register allocation and the problem size."""
    if num_cells <= 0:
        raise ValueError("num_cells must be positive")
    tpb = alloc.threads_per_block
    if tpb > spec.max_threads_per_cu:
        # silently clamping would simulate a launch that real hardware
        # rejects outright (CUDA/HIP: invalid configuration argument)
        raise ValueError(
            f"threads_per_block={tpb} exceeds {spec.name} limit of "
            f"{spec.max_threads_per_cu} threads per CU; this launch "
            "configuration cannot run on real hardware"
        )
    warps_per_block = max(1, math.ceil(tpb / spec.warp_size))

    # blocks resident per CU, limited by registers (via max_warps) and size
    blocks_per_cu = max(1, int(alloc.max_warps_per_cu // warps_per_block))
    blocks_per_cu = min(blocks_per_cu, spec.max_threads_per_cu // min(tpb, spec.max_threads_per_cu))
    blocks_per_cu = max(1, blocks_per_cu)
    warps_per_cu = min(alloc.max_warps_per_cu, blocks_per_cu * warps_per_block)

    num_blocks = math.ceil(num_cells / tpb)
    resident_blocks = min(num_blocks, blocks_per_cu * spec.num_cus)
    total_warps = min(
        num_blocks * warps_per_block,
        resident_blocks * warps_per_block,
    )
    fraction = warps_per_cu / spec.max_warps_per_cu

    # wave quantization: the last scheduling wave of blocks is partial
    per_wave = blocks_per_cu * spec.num_cus
    full_waves, rem = divmod(num_blocks, per_wave)
    if rem == 0:
        tail = 1.0
    else:
        tail = (full_waves + rem / per_wave) / (full_waves + 1)

    return Occupancy(
        warps_per_cu=float(warps_per_cu),
        total_warps=float(total_warps),
        fraction=float(fraction),
        num_blocks=num_blocks,
        threads_per_block=tpb,
        tail_efficiency=float(tail),
    )
