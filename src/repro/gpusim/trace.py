"""Per-thread kernel programs extracted by running the real kernel body.

Every thread of the ``StokesFOResid`` kernels executes the same
straight-line program (the configuration branch is data-independent), so
one recorded thread fully characterizes the kernel.  The recording uses
the same single-source kernel body as the numerics -- there is no
separate performance model of the kernel, only of the machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.fields import TraceFields, make_stokes_fields
from repro.core.variants import KernelVariant, get_variant
from repro.core.viscosity_kernel import ViscosityTraceFields, make_viscosity_fields
from repro.kokkos.instrument import Access

__all__ = ["ThreadProgram", "record_kernel_trace"]


@dataclass(frozen=True)
class Slot:
    """One coalesced component stream: (view, inner offset, component)."""

    view: str
    inner: int
    comp: int


@dataclass
class ThreadProgram:
    """The ordered per-thread access program plus op counts.

    ``slot_trace`` lists one entry per *component* access (a Fad access
    of 17 components contributes 17 consecutive entries); ``writes``
    flags each entry.  ``view_inner_extents`` maps each view to (inner
    element count, components, bytes/component-element) for footprint
    computations.
    """

    variant_key: str
    accesses: list[Access]
    slot_trace: list[Slot]
    writes: list[bool]
    flops: int
    mem_insts: int
    view_meta: dict[str, tuple[int, int]]  # view -> (inner extent, components)
    num_nodes: int
    num_qps: int
    #: names of the kernel's output views (for the theoretical minimum)
    output_views: tuple = ("Residual",)

    @property
    def num_slot_accesses(self) -> int:
        return len(self.slot_trace)

    def unique_slots(self) -> set[Slot]:
        return set(self.slot_trace)

    def unique_read_slots(self) -> set[Slot]:
        return {s for s, w in zip(self.slot_trace, self.writes) if not w}

    def unique_written_slots(self) -> set[Slot]:
        return {s for s, w in zip(self.slot_trace, self.writes) if w}

    def instructions(self, compile_time_bounds: bool, branch_in_kernel: bool) -> float:
        """Scalar-instruction estimate for the issue-time model.

        Memory and flop instructions plus loop overhead: runtime trip
        counts cost a compare+branch+index update per iteration and
        inhibit unrolling; a resident branch adds a divergence check.
        """
        loop_iters = self.num_qps * (self.num_nodes + 2) + 2 * self.num_nodes
        loop_cost = (1.0 if compile_time_bounds else 6.0) * loop_iters
        branch_cost = 40.0 if branch_in_kernel else 0.0
        return self.flops * 0.5 + self.mem_insts + loop_cost + branch_cost


@lru_cache(maxsize=32)
def record_kernel_trace(variant_key: str, num_nodes: int = 8, num_qps: int = 8) -> ThreadProgram:
    """Run ``variant_key`` for one representative cell in trace mode."""
    variant: KernelVariant = get_variant(variant_key)
    if variant.family == "viscosity":
        vfields = make_viscosity_fields(1, num_qps=num_qps, mode=variant.mode)
        tf = ViscosityTraceFields(vfields)
        view_names = ("Ugrad", "flowFactor", "muLandIce")
        output_views = ("muLandIce",)
    else:
        fields = make_stokes_fields(1, num_nodes=num_nodes, num_qps=num_qps, mode=variant.mode)
        tf = TraceFields(fields)
        view_names = ("Ugrad", "muLandIce", "force", "wBF", "wGradBF", "Residual")
        output_views = ("Residual",)
    functor = variant.make_functor(tf)
    functor(0)
    ctx = tf.ctx

    slot_trace: list[Slot] = []
    writes: list[bool] = []
    for a in ctx.accesses:
        for comp in range(a.components):
            slot_trace.append(Slot(a.view, a.inner, comp))
            writes.append(a.write)

    # take scalar specs from the trace views (wBF/wGradBF carry the
    # MeshScalarT layout there, not the compressed host storage)
    view_meta = {}
    for name in view_names:
        tv = getattr(tf, name)
        inner = 1
        for s in tv.shape[1:]:
            inner *= s
        view_meta[tv.name] = (inner, tv.scalar.components)
    return ThreadProgram(
        variant_key=variant_key,
        accesses=list(ctx.accesses),
        slot_trace=slot_trace,
        writes=writes,
        flops=ctx.flops,
        mem_insts=ctx.mem_insts,
        view_meta=view_meta,
        num_nodes=num_nodes,
        num_qps=num_qps,
        output_views=output_views,
    )
