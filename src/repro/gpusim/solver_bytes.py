"""Analytic HBM byte model for the GMRES solve hot path.

The paper's central observation is that the velocity solve is
bandwidth-bound: on both A100 and MI250X the Newton--Krylov iteration
moves far more bytes than it computes flops on.  This module prices the
per-iteration data movement of the two operator modes so the solver can
*measure* (accumulate, iteration by iteration, with the Krylov depth it
actually reached) rather than merely assert the data-movement win of
the matrix-free + fused-orthogonalization path.

Counting rules (the same first-touch convention as
:mod:`repro.gpusim.memtrace` applies at cache-line granularity):

* every float64 costs :data:`FLOAT_BYTES`, every index
  :data:`INDEX_BYTES`;
* an ``n``-vector streamed once through HBM is one *vector stream* of
  ``8 n`` bytes -- Krylov basis vectors are far larger than any cache
  level at production sizes, so each pass over the basis is a full
  re-stream (the Chalmers & Warburton "streaming operations" premise);
* gathered/scattered global vectors (``x`` reads, ``y`` accumulates)
  are counted once per vector, not once per reference: repeated
  touches of the same dof within one kernel hit cache.

All functions are dependency-free and deterministic; they are consumed
by :func:`repro.solvers.gmres.gmres` (per-iteration accumulation into
``gmres.*.bytes`` metrics) and by ``benchmarks/bench_solver_hotpath.py``
(the ``BENCH_hotpath.json`` bytes/iteration table).

The ``*_flops`` companions price the float64 operations of the same
kernels, so roofline attribution (``observability/attribution.py``)
can place each span at its arithmetic intensity ``flops/bytes`` --
which is how the byte model's "bandwidth-bound" premise becomes a
checkable number (AI far left of the ridge point) instead of prose.
Counting rule: one flop per scalar add/mul/fma-half (an fma is 2).
"""

from __future__ import annotations

__all__ = [
    "FLOAT_BYTES",
    "INDEX_BYTES",
    "vector_stream_bytes",
    "spmv_bytes",
    "element_apply_bytes",
    "mgs_orth_bytes",
    "fused_orth_bytes",
    "fused_reorth_bytes",
    "cycle_close_bytes",
    "assembled_fill_bytes",
    "operator_traffic",
    "spmv_flops",
    "element_apply_flops",
    "mgs_orth_flops",
    "fused_orth_flops",
    "fused_reorth_flops",
    "cycle_close_flops",
    "operator_flops",
]

FLOAT_BYTES = 8
INDEX_BYTES = 8


def vector_stream_bytes(n: int) -> float:
    """One full HBM pass over an ``n``-vector of float64."""
    return float(FLOAT_BYTES * n)


def spmv_bytes(n: int, nnz: int) -> float:
    """CSR ``y = A x``: values + column indices + row pointer streamed
    once, ``x`` gathered (first touch), ``y`` written."""
    return float(nnz * (FLOAT_BYTES + INDEX_BYTES) + (n + 1) * INDEX_BYTES + 2 * FLOAT_BYTES * n)


def element_apply_bytes(n: int, num_cells: int, k: int) -> float:
    """Element-by-element ``y = A x`` from cached local Jacobian blocks.

    Per cell: the dense ``k x k`` block, the ``k`` connectivity indices,
    and the gathered ``k`` solution values (shared nodes re-hit cache,
    but the gather is indexed, so each cell's reads are counted); global
    side: the ``y`` accumulate (read-modify-write).
    """
    per_cell = k * k * FLOAT_BYTES + k * INDEX_BYTES + k * FLOAT_BYTES
    return float(num_cells * per_cell + 2 * FLOAT_BYTES * n)


def mgs_orth_bytes(n: int, depth: int) -> float:
    """Naive modified Gram-Schmidt at Krylov depth ``depth`` (= k + 1
    basis vectors): each of the ``depth`` coefficients is a separate
    dot pass (w, V[i] read) followed by a separate axpy pass (V[i], w
    read, w written), then the norm pass and the normalized write of
    the new basis vector -- ``5 depth + 4`` vector streams."""
    return (5 * depth + 4) * vector_stream_bytes(n)


def fused_orth_bytes(n: int, depth: int) -> float:
    """Fused (batched classical Gram-Schmidt) orthogonalization: one
    block-dot pass reading V[0..k] and w, one fused update pass reading
    V[0..k] and w and writing w, then the norm and normalized-write
    passes -- ``2 depth + 6`` vector streams, i.e. the basis is
    streamed twice per iteration regardless of depth instead of twice
    *per column*."""
    return (2 * depth + 6) * vector_stream_bytes(n)


def fused_reorth_bytes(n: int, depth: int) -> float:
    """One DGKS re-orthogonalization pass (block dot + fused update)."""
    return (2 * depth + 3) * vector_stream_bytes(n)


def cycle_close_bytes(n: int, k_used: int) -> float:
    """End-of-cycle update ``x += Z[:k]^T y`` plus the true-residual
    vector work (``r = b - A x`` minus the matvec itself, which is
    priced separately)."""
    return (k_used + 4) * vector_stream_bytes(n)


def assembled_fill_bytes(n: int, nnz: int, num_cells: int, k: int) -> float:
    """Per-Newton-step CSR numeric fill (assembled mode only): the
    local blocks and their scatter permutation are streamed, the CSR
    ``data`` array is accumulated.  Matrix-free mode skips this
    entirely -- the local blocks *are* the operator."""
    return float(num_cells * k * k * (FLOAT_BYTES + INDEX_BYTES) + 2 * FLOAT_BYTES * nnz)


def spmv_flops(nnz: int) -> float:
    """CSR ``y = A x``: one multiply-add per stored nonzero."""
    return float(2 * nnz)


def element_apply_flops(num_cells: int, k: int) -> float:
    """Element-by-element ``y = A x``: a dense ``k x k`` GEMV per cell
    (2 k^2 flops) plus the ``k`` scatter-accumulate adds."""
    return float(num_cells * (2 * k * k + k))


def mgs_orth_flops(n: int, depth: int) -> float:
    """MGS at Krylov depth ``depth``: per column one dot (2n) and one
    axpy (2n); then the norm (2n) and the normalizing scale (n)."""
    return float(4 * depth * n + 3 * n)


def fused_orth_flops(n: int, depth: int) -> float:
    """Fused CGS moves the same flops as MGS through fewer streams:
    the block dot and fused update are still 2n per column each."""
    return mgs_orth_flops(n, depth)


def fused_reorth_flops(n: int, depth: int) -> float:
    """One DGKS re-orthogonalization pass: block dot + fused update."""
    return float(4 * depth * n)


def cycle_close_flops(n: int, k_used: int) -> float:
    """``x += Z[:k]^T y`` (2n per column) + residual vector update."""
    return float(2 * k_used * n + 2 * n)


def operator_traffic(A) -> tuple[str, float]:
    """(mode label, modeled bytes per matvec) for a solver operator.

    Recognizes assembled CSR/distributed matrices (``nnz``), matrix-free
    element operators (``bytes_per_matvec``), and falls back to zero for
    opaque callables (no model -- their traffic is unknown).
    """
    bpm = getattr(A, "bytes_per_matvec", None)
    if bpm is not None:
        return getattr(A, "operator_mode", "matrix-free"), float(bpm)
    shape = getattr(A, "shape", None)
    nnz = getattr(A, "nnz", None)
    if shape is not None and nnz is not None:
        return "assembled", spmv_bytes(int(shape[0]), int(nnz))
    return "opaque", 0.0


def operator_flops(A) -> float:
    """Modeled flops per matvec for a solver operator (0 when opaque).

    The flop companion of :func:`operator_traffic`: matrix-free element
    operators expose ``flops_per_matvec``, assembled matrices are priced
    by :func:`spmv_flops`.
    """
    fpm = getattr(A, "flops_per_matvec", None)
    if fpm is not None:
        return float(fpm)
    nnz = getattr(A, "nnz", None)
    if nnz is not None:
        return spmv_flops(int(nnz))
    return 0.0
