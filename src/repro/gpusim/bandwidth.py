"""Achieved-bandwidth model.

Sustained HBM bandwidth depends on how much memory-level parallelism the
launch exposes: a saturating curve in occupancy (Little's law folded
into two constants per architecture), capped by the architecture's
realistic peak fraction, and reduced when the access stream contains
read-modify-write global accumulations whose dependent load-store pairs
stall the memory pipeline (the baseline kernel's pattern).
"""

from __future__ import annotations

from repro.gpusim.specs import GPUSpec

__all__ = ["achieved_bandwidth_fraction", "achieved_bandwidth"]


def achieved_bandwidth_fraction(
    spec: GPUSpec,
    occupancy_fraction: float,
    rmw_fraction: float = 0.0,
) -> float:
    """Fraction of peak HBM bandwidth a launch sustains.

    Parameters
    ----------
    occupancy_fraction:
        Resident warps / max warps per CU, in [0, 1].
    rmw_fraction:
        Fraction of global stores that are read-modify-write re-visits
        (from the data-movement analysis).
    """
    if not 0.0 <= occupancy_fraction <= 1.0:
        raise ValueError("occupancy fraction must be in [0, 1]")
    if not 0.0 <= rmw_fraction <= 1.0:
        raise ValueError("rmw fraction must be in [0, 1]")
    sat = occupancy_fraction / (occupancy_fraction + spec.bw_half_occupancy)
    frac = spec.bw_max_fraction * sat
    frac *= 1.0 - rmw_fraction * (1.0 - spec.rmw_bandwidth_penalty)
    return float(frac)


def achieved_bandwidth(spec: GPUSpec, occupancy_fraction: float, rmw_fraction: float = 0.0) -> float:
    """Achieved HBM bandwidth in bytes/s."""
    return spec.hbm_bytes_per_s * achieved_bandwidth_fraction(spec, occupancy_fraction, rmw_fraction)
