"""Register allocation models (the Table II mechanism).

**CDNA2 (MI250X).**  Each SIMD has 512 VGPRs split into 256
architectural + 256 accumulation registers.  The backend picks an
occupancy target in waves/SIMD from the launch bounds:

* no explicit ``LaunchBounds``: the default target of 4 waves/SIMD;
* explicit ``<MaxThreads, MinBlocks>``: ``max(MinBlocks,
  ceil(waves_per_block / simds_per_cu))`` -- large blocks force waves
  onto every SIMD regardless of ``MinBlocks``.

The per-wave VGPR budget is ``512 / target``.  The compiler only
schedules for the kernel's larger ("relaxed") allocation -- using
accumulation VGPRs as fast spill space -- when the budget is at least
half the register file (256), i.e. a target of <= 2 waves/SIMD;
otherwise it emits the tight allocation, spilling overflow to scratch
memory.  With the profiles measured from the real compiler (stored on
each :class:`~repro.core.variants.KernelVariant`), this rule reproduces
all ten (kernel x LaunchBounds) cells of the paper's Table II.

**CUDA (A100).**  Registers per thread are a kernel property; occupancy
follows from the 64K-register file and the block size (128 threads by
default -- the paper observed no block-size sensitivity on the A100).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.variants import KernelVariant
from repro.gpusim.specs import GPUSpec
from repro.kokkos.policy import LaunchBounds

__all__ = ["Allocation", "allocate_registers", "cdna2_vgpr_budget"]


@dataclass(frozen=True)
class Allocation:
    """Outcome of register allocation for one kernel launch."""

    arch_vgprs: int
    accum_vgprs: int
    scratch_bytes: int
    issue_penalty: float
    profile: str  # "relaxed" | "tight" | "cuda"
    threads_per_block: int
    #: resident limit implied by registers, in warps per CU
    max_warps_per_cu: float

    @property
    def total_vgprs(self) -> int:
        return self.arch_vgprs + self.accum_vgprs


def cdna2_vgpr_budget(spec: GPUSpec, bounds: LaunchBounds) -> tuple[int, int]:
    """(per-wave VGPR budget, target waves/SIMD) for CDNA2."""
    waves_per_block = max(1, math.ceil(bounds.max_threads / spec.warp_size))
    forced = math.ceil(waves_per_block / spec.simds_per_cu)
    if bounds.explicit:
        target = max(bounds.min_blocks, forced)
    else:
        target = max(4, forced)
    target = max(1, min(target, 8))
    return spec.registers_per_cu // target, target


def allocate_registers(spec: GPUSpec, variant: KernelVariant, bounds: LaunchBounds) -> Allocation:
    """Model the compiler's register allocation for ``variant`` under ``bounds``."""
    if spec.vendor == "amd":
        budget, target = cdna2_vgpr_budget(spec, bounds)
        relaxed = variant.profile_relaxed
        if budget >= 256 and budget >= relaxed.total_vgprs:
            prof, name = relaxed, "relaxed"
        else:
            prof, name = variant.profile_tight, "tight"
        # resident waves limited by both the target and the allocation
        per_simd = min(target, spec.registers_per_cu // max(1, prof.total_vgprs))
        max_warps = per_simd * spec.simds_per_cu
        return Allocation(
            arch_vgprs=prof.arch_vgprs,
            accum_vgprs=prof.accum_vgprs,
            scratch_bytes=prof.scratch_bytes,
            issue_penalty=prof.issue_penalty,
            profile=name,
            threads_per_block=bounds.max_threads,
            max_warps_per_cu=float(max_warps),
        )

    if spec.vendor == "nvidia":
        regs = variant.cuda_regs
        threads_per_block = bounds.max_threads if bounds.explicit else 128
        # register-file limit (allocation granularity of 8 regs/thread)
        regs_alloc = math.ceil(regs / 8) * 8
        threads_limit = spec.registers_per_cu // regs_alloc
        threads_limit = min(threads_limit, spec.max_threads_per_cu)
        blocks = max(1, threads_limit // threads_per_block)
        warps = blocks * threads_per_block / spec.warp_size
        return Allocation(
            arch_vgprs=regs,
            accum_vgprs=0,
            scratch_bytes=variant.cuda_scratch_bytes,
            issue_penalty=1.0,
            profile="cuda",
            threads_per_block=threads_per_block,
            max_warps_per_cu=float(min(warps, spec.max_warps_per_cu)),
        )

    raise ValueError(f"unknown vendor {spec.vendor!r}")
