"""Cache models: exact LRU stack distances and a reference LRU cache.

The data-movement model classifies each access by its *reuse distance*
(number of distinct locations touched since the previous access to the
same location), computed with the classic Bennett-Kruskal algorithm
(last-occurrence positions + a Fenwick tree), O(N log N).

:class:`LruCache` is a direct fully-associative LRU simulator used to
cross-check the distance-based classification in tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stack_distances", "LruCache"]


class _Fenwick:
    """Binary indexed tree over positions (prefix sums of 0/1 marks)."""

    def __init__(self, n: int):
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of marks over positions [0, i]."""
        s = 0
        i += 1
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return s


def stack_distances(keys: list) -> np.ndarray:
    """LRU stack distance per access (-1 for the first touch of a key).

    ``distance[i]`` is the number of *distinct* keys accessed strictly
    between the previous access to ``keys[i]`` and position ``i``.  A
    fully-associative LRU cache of capacity ``C`` hits access ``i`` iff
    ``0 <= distance[i] < C``.
    """
    n = len(keys)
    dist = np.full(n, -1, dtype=np.int64)
    last_pos: dict = {}
    fw = _Fenwick(n)
    for i, k in enumerate(keys):
        p = last_pos.get(k)
        if p is not None:
            # distinct keys between p and i = marks in (p, i)
            dist[i] = fw.prefix(i - 1) - fw.prefix(p)
            fw.add(p, -1)
        last_pos[k] = i
        fw.add(i, +1)
    return dist


class LruCache:
    """Reference fully-associative LRU cache at arbitrary key granularity."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        from collections import OrderedDict

        self.capacity = capacity
        self._set = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, key) -> bool:
        """Touch ``key``; returns True on hit."""
        if key in self._set:
            self._set.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._set[key] = True
        if len(self._set) > self.capacity:
            self._set.popitem(last=False)
            self.evictions += 1
        return False

    def run(self, keys) -> tuple[int, int]:
        """Access a whole trace; returns (hits, misses) for it."""
        h0, m0 = self.hits, self.misses
        for k in keys:
            self.access(k)
        return self.hits - h0, self.misses - m0
