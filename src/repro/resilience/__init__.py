"""Fault injection, detection and recovery for the velocity-solve stack.

MALI production runs survive nonlinear-solve failures -- non-finite
viscosities from thin ice, stagnating GMRES, diverging Newton steps,
dying nodes -- via step rejection, retries and restart files.  This
package gives the reproduction the same three capabilities:

* :mod:`~repro.resilience.injectors` -- a deterministic, seeded
  fault-injection harness (:class:`FaultSchedule` armed on the
  process-wide :class:`FaultPlane`): halo-payload bit flips / drops /
  duplicates, NaN-poisoned kernel sweeps, rank and kernel-launch
  failures, all firing at exact scheduled occurrences;
* :mod:`~repro.resilience.detectors` -- payload checksums, per-step
  non-finite guards, GMRES outcome classification;
* :mod:`~repro.resilience.policies` -- the recovery ladder
  (:class:`RecoveryPolicy`): retry with backoff, sweep re-evaluation,
  Newton step rejection with damping backoff, GMRES restart escalation,
  preconditioner fallback, SPMD work redistribution -- all reporting
  into a :class:`ResilienceLog` and ``resilience.*`` metrics;
* :mod:`~repro.resilience.checkpoint` -- Newton checkpoint/restart
  (:class:`NewtonCheckpoint`, ``newton_solve(resume_from=...)``).

Quick start::

    from repro import resilience as res

    policy = res.RecoveryPolicy()
    with res.fault_injection(res.reference_schedule(seed=7), policy=policy):
        solution = problem.solve(resilience=policy)
    print(solution.diagnostics["resilience"])

or from the command line: ``python -m repro chaos``.
"""

from __future__ import annotations

from repro.resilience.checkpoint import NewtonCheckpoint
from repro.resilience.deadline import Deadline, SolveTimeout
from repro.resilience.detectors import (
    GMRES_FLAGS,
    check_finite,
    classify_gmres,
    nonfinite_count,
    payload_checksum,
    verify_payload,
)
from repro.resilience.injectors import (
    SCHEDULES,
    BitFlip,
    DropMessage,
    DuplicateMessage,
    FaultError,
    FaultPlane,
    FaultSchedule,
    HaloCorruptionError,
    Injector,
    KernelLaunchError,
    LaunchFail,
    NaNPoison,
    RankFailure,
    RankKill,
    fault_injection,
    fault_plane,
    reference_schedule,
)
from repro.resilience.policies import (
    PreconditionerLadder,
    RecoveryPolicy,
    ResilienceLog,
    choose_survivor,
    retry_with_backoff,
)

__all__ = [
    "NewtonCheckpoint",
    "Deadline",
    "SolveTimeout",
    "GMRES_FLAGS",
    "check_finite",
    "classify_gmres",
    "nonfinite_count",
    "payload_checksum",
    "verify_payload",
    "SCHEDULES",
    "BitFlip",
    "DropMessage",
    "DuplicateMessage",
    "FaultError",
    "FaultPlane",
    "FaultSchedule",
    "HaloCorruptionError",
    "Injector",
    "KernelLaunchError",
    "LaunchFail",
    "NaNPoison",
    "RankFailure",
    "RankKill",
    "fault_injection",
    "fault_plane",
    "reference_schedule",
    "PreconditionerLadder",
    "RecoveryPolicy",
    "ResilienceLog",
    "choose_survivor",
    "retry_with_backoff",
]
