"""Deterministic, seeded fault injection for the velocity-solve stack.

MALI/E3SM production runs survive the faults this module simulates --
non-finite viscosities poisoning an assembly sweep, corrupted or lost
halo messages, a node (rank) dropping out of the job, a kernel launch
failing on a flaky GPU -- via step rejection, retries and restart
rather than aborting.  The reproduction needs the same faults on demand
to prove its recovery ladder works, so injection is a first-class,
*deterministic* harness: a :class:`FaultSchedule` lists injectors with
exact firing occurrences, every random choice comes from one seeded
generator, and two runs of the same schedule corrupt the same bits.

Execution model
---------------

Instrumented call sites (halo payload refresh, evaluator sweep outputs,
per-rank SPMD sweeps, gpusim/kokkos kernel launches) consult the
process-wide :class:`FaultPlane`:

* ``plane.perturb(site, payload, **ctx)`` passes a payload array through
  every injector attached to ``site`` and returns the (possibly
  corrupted) array;
* ``plane.poke(site, **ctx)`` gives failure-type injectors the chance to
  raise (:class:`RankFailure`, :class:`KernelLaunchError`).

Zero-overhead contract (mirrors the observability hook registry): with
no schedule armed ``plane.active`` is ``False`` and a site pays exactly
one attribute read.  The solver hot path must stay within 5% of the
uninstrumented build -- see ``tests/integration/test_chaos_solve.py``.

Each injector counts the invocations that match its filter and fires at
the occurrence indices listed in ``at`` -- "corrupt the 40th halo
payload", "kill rank 1 at its 3rd sweep" -- which is what makes a chaos
run reproducible enough to assert recovered-solution accuracy in CI.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

__all__ = [
    "FaultError",
    "RankFailure",
    "KernelLaunchError",
    "HaloCorruptionError",
    "Injector",
    "BitFlip",
    "DropMessage",
    "DuplicateMessage",
    "NaNPoison",
    "RankKill",
    "LaunchFail",
    "FaultSchedule",
    "reference_schedule",
    "FaultPlane",
    "fault_plane",
    "fault_injection",
]


class FaultError(RuntimeError):
    """Base class for injected (or detected-but-unrecoverable) faults."""


class RankFailure(FaultError):
    """A simulated SPMD rank died mid-solve."""

    def __init__(self, rank: int, message: str | None = None):
        super().__init__(message or f"rank {rank} failed")
        self.rank = int(rank)


class KernelLaunchError(FaultError):
    """A simulated kernel launch failed (flaky GPU / driver hiccup)."""


class HaloCorruptionError(FaultError):
    """A halo payload failed checksum verification beyond the retry budget."""


# ---------------------------------------------------------------------------
# injectors
# ---------------------------------------------------------------------------


class Injector:
    """One fault source attached to a named site.

    ``at`` lists the 0-based occurrence indices (among invocations that
    pass :meth:`matches`) at which the injector fires; ``fired`` counts
    actual firings so schedules can assert full delivery.
    """

    kind = "base"

    def __init__(self, site: str, at: tuple[int, ...] | int = (0,)):
        self.site = site
        self.at = frozenset((at,) if isinstance(at, int) else at)
        self.seen = 0
        self.fired = 0

    def matches(self, ctx: dict) -> bool:
        """Subclass filter (e.g. only a specific rank's invocations)."""
        return True

    def visit(self, payload, rng: np.random.Generator, ctx: dict, log):
        """Count a matching invocation; corrupt/raise when scheduled."""
        if not self.matches(ctx):
            return payload
        occurrence = self.seen
        self.seen += 1
        if occurrence not in self.at:
            return payload
        self.fired += 1
        if log is not None:
            log.record(
                "injection", self.kind, self.site, occurrence=occurrence,
                **{k: v for k, v in ctx.items() if isinstance(v, (int, float, str, bool))},
            )
        return self.fire(payload, rng, ctx)

    def fire(self, payload, rng: np.random.Generator, ctx: dict):  # pragma: no cover
        raise NotImplementedError

    def describe(self) -> dict:
        return {"kind": self.kind, "site": self.site, "at": sorted(self.at),
                "seen": self.seen, "fired": self.fired}


class BitFlip(Injector):
    """Flip one random bit in one random float64 of the payload.

    The classic silent-data-corruption model (cosmic-ray upset on an
    in-flight message or a DRAM word): flipping a mantissa bit perturbs
    the value slightly, an exponent or sign bit catastrophically.  The
    receiver-side checksum catches either.
    """

    kind = "bitflip"

    def fire(self, payload, rng, ctx):
        out = np.array(payload, dtype=np.float64, copy=True)
        if out.size == 0:
            return out
        flat = out.ravel().view(np.uint64)
        i = int(rng.integers(flat.size))
        bit = int(rng.integers(64))
        flat[i] ^= np.uint64(1) << np.uint64(bit)
        return out


class DropMessage(Injector):
    """Replace the payload with zeros (the neighbor's message never arrived).

    Models a dropped MPI message / timed-out receive: the ghost region
    keeps whatever the transport delivers for a missing packet -- here,
    zeros, which is maximally visible to the checksum and to physics.
    """

    kind = "drop"

    def fire(self, payload, rng, ctx):
        return np.zeros_like(np.asarray(payload, dtype=np.float64))


class DuplicateMessage(Injector):
    """Apply the neighbor's additive message twice (payload doubled).

    Models a duplicated packet folded into an additive ghost exchange
    (Tpetra Export with ADD would sum the message twice).
    """

    kind = "duplicate"

    def fire(self, payload, rng, ctx):
        return np.asarray(payload, dtype=np.float64) * 2.0


class NaNPoison(Injector):
    """Poison a fraction of a kernel-output array with NaN (or Inf).

    Simulates the viscosity blowups MALI hits on thin ice: a handful of
    quadrature points produce non-finite stresses and the whole assembled
    residual goes NaN.  ``fraction`` of the entries (at least one) are
    overwritten.
    """

    kind = "nan_poison"

    def __init__(self, site: str, at=(0,), fraction: float = 0.001, value: float = np.nan):
        super().__init__(site, at)
        self.fraction = float(fraction)
        self.value = float(value)

    def fire(self, payload, rng, ctx):
        out = np.array(payload, dtype=np.float64, copy=True)
        if out.size == 0:
            return out
        n = max(1, int(round(self.fraction * out.size)))
        idx = rng.choice(out.size, size=min(n, out.size), replace=False)
        out.ravel()[idx] = self.value
        return out


class RankKill(Injector):
    """Fail one SPMD rank at its Nth evaluator sweep (raises RankFailure).

    ``at`` counts only the target rank's own sweep attempts, so
    ``RankKill(rank=1, at=2)`` kills rank 1 exactly at its third sweep
    regardless of how many ranks the solve runs.
    """

    kind = "rank_failure"

    def __init__(self, site: str = "spmd.rank", at=(0,), rank: int = 0):
        super().__init__(site, at)
        self.rank = int(rank)

    def matches(self, ctx):
        return ctx.get("rank") == self.rank

    def fire(self, payload, rng, ctx):
        raise RankFailure(self.rank)


class LaunchFail(Injector):
    """Fail a kernel launch (raises KernelLaunchError); retryable."""

    kind = "launch_failure"

    def __init__(self, site: str = "gpusim.launch", at=(0,), name: str | None = None):
        super().__init__(site, at)
        self.name = name

    def matches(self, ctx):
        return self.name is None or ctx.get("name") == self.name

    def fire(self, payload, rng, ctx):
        raise KernelLaunchError(
            f"injected launch failure at site {self.site!r} (ctx {ctx})"
        )


# ---------------------------------------------------------------------------
# schedule + plane
# ---------------------------------------------------------------------------


class FaultSchedule:
    """A named, seeded list of injectors; the unit a chaos run arms.

    The seed feeds one ``np.random.default_rng`` shared by every
    injector, so a schedule's corruptions are a pure function of
    ``(seed, call order)`` -- deterministic across runs of the same
    program.
    """

    def __init__(self, injectors: list[Injector], seed: int = 2024, name: str = "custom"):
        self.injectors = list(injectors)
        self.seed = int(seed)
        self.name = name
        self._by_site: dict[str, list[Injector]] = {}
        for inj in self.injectors:
            self._by_site.setdefault(inj.site, []).append(inj)

    def for_site(self, site: str) -> list[Injector]:
        return self._by_site.get(site, [])

    @property
    def sites(self) -> list[str]:
        return sorted(self._by_site)

    def fired_count(self) -> int:
        return sum(inj.fired for inj in self.injectors)

    def pending(self) -> list[Injector]:
        """Injectors that have not yet fired every scheduled occurrence."""
        return [inj for inj in self.injectors if inj.fired < len(inj.at)]

    def describe(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "injectors": [inj.describe() for inj in self.injectors],
        }


def reference_schedule(seed: int = 2024, nparts: int = 4) -> FaultSchedule:
    """The CI chaos schedule: every fault class the acceptance bar names.

    At least one corrupted halo exchange (a bit flip, a dropped message
    and a duplicated message at distinct GMRES ghost refreshes), one
    NaN-poisoned evaluator sweep, and one failed rank.  Occurrences are
    chosen to land mid-solve on the coarse Antarctica problem (the first
    Newton steps each run hundreds of halo refreshes and one sweep per
    rank).
    """
    victim = 1 if nparts > 1 else 0
    return FaultSchedule(
        [
            BitFlip("halo.payload", at=(40,)),
            DropMessage("halo.payload", at=(90,)),
            DuplicateMessage("halo.payload", at=(140,)),
            NaNPoison("sweep.output", at=(5,), fraction=0.01),
            RankKill("spmd.rank", at=(2,), rank=victim),
        ],
        seed=seed,
        name="reference",
    )


SCHEDULES = {"reference": reference_schedule}


class FaultPlane:
    """Process-wide injection point the instrumented sites consult.

    ``active`` is the dispatch fast path: ``False`` unless a schedule is
    armed, in which case sites route payloads through :meth:`perturb`
    and failure checks through :meth:`poke`.  ``log`` (a
    :class:`repro.resilience.policies.ResilienceLog`) records every
    injection; ``policy`` carries the retry budgets recovery sites use.
    """

    def __init__(self):
        self.schedule: FaultSchedule | None = None
        self.policy = None
        self.log = None
        self.active = False
        self._rng: np.random.Generator | None = None

    def arm(self, schedule: FaultSchedule, policy=None, log=None) -> "FaultPlane":
        """Install a schedule (and optional policy/log) and go active."""
        from repro.resilience.policies import RecoveryPolicy, ResilienceLog

        self.schedule = schedule
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.log = log if log is not None else self.policy.log
        if self.log is None:
            self.log = ResilienceLog()
        self._rng = np.random.default_rng(schedule.seed)
        self.active = True
        return self

    def disarm(self) -> None:
        self.schedule = None
        self.policy = None
        self.log = None
        self._rng = None
        self.active = False

    # -- site API -------------------------------------------------------
    def perturb(self, site: str, payload, **ctx):
        """Route a payload through the site's injectors (may corrupt it)."""
        if not self.active:
            return payload
        for inj in self.schedule.for_site(site):
            payload = inj.visit(payload, self._rng, ctx, self.log)
        return payload

    def poke(self, site: str, **ctx) -> None:
        """Give failure-type injectors at ``site`` a chance to raise."""
        if not self.active:
            return
        for inj in self.schedule.for_site(site):
            inj.visit(None, self._rng, ctx, self.log)


_PLANE = FaultPlane()


def fault_plane() -> FaultPlane:
    """The process-wide fault plane every instrumented site consults."""
    return _PLANE


@contextmanager
def fault_injection(schedule: FaultSchedule, policy=None, log=None):
    """Arm the fault plane for a block::

        with fault_injection(reference_schedule(seed=7)) as plane:
            solution = problem.solve()
        assert not plane.schedule.pending()
    """
    plane = _PLANE
    plane.arm(schedule, policy=policy, log=log)
    try:
        yield plane
    finally:
        plane.disarm()
