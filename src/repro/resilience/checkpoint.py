"""Newton checkpoint/restart: snapshot the iterate, resume the solve.

E3SM-class workflows survive node loss by restarting the timestep from
the last written restart file; the velocity solve gets the same shape
at Newton granularity.  ``newton_solve(checkpoint_every=k)`` snapshots
the accepted iterate (plus the residual/step histories needed for
seamless diagnostics) every ``k`` steps; ``newton_solve(resume_from=
ckpt)`` re-enters the loop at the checkpointed step with bit-identical
state, so a killed solve continues instead of recomputing.

The on-disk format is a single ``.npz``: the iterate as a float64 array
plus the scalar histories -- small (one vector), self-describing, and
loadable with plain numpy.  ``digest`` guards against restarting from a
corrupted file (the same CRC32 the halo checksums use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.resilience.detectors import payload_checksum

__all__ = ["NewtonCheckpoint"]


@dataclass
class NewtonCheckpoint:
    """State of a Newton solve after ``step`` accepted steps."""

    step: int
    x: np.ndarray
    residual_norms: list[float] = field(default_factory=list)
    step_lengths: list[float] = field(default_factory=list)
    linear_iterations: list[int] = field(default_factory=list)
    linear_flags: list[str] = field(default_factory=list)

    @property
    def fnorm(self) -> float:
        """Residual norm at the checkpointed iterate."""
        return self.residual_norms[-1]

    @property
    def digest(self) -> int:
        """CRC32 of the iterate (integrity check on restart)."""
        return payload_checksum(np.ascontiguousarray(self.x, dtype=np.float64))

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the checkpoint as a ``.npz`` (returns the path written)."""
        path = Path(path)
        np.savez(
            path,
            step=np.int64(self.step),
            x=np.ascontiguousarray(self.x, dtype=np.float64),
            residual_norms=np.asarray(self.residual_norms, dtype=np.float64),
            step_lengths=np.asarray(self.step_lengths, dtype=np.float64),
            linear_iterations=np.asarray(self.linear_iterations, dtype=np.int64),
            linear_flags=np.asarray(self.linear_flags, dtype="U16"),
            digest=np.uint64(self.digest),
        )
        # np.savez appends .npz when missing; report the real file
        return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")

    @classmethod
    def load(cls, path: str | Path) -> "NewtonCheckpoint":
        """Load and integrity-check a saved checkpoint."""
        with np.load(Path(path), allow_pickle=False) as z:
            ckpt = cls(
                step=int(z["step"]),
                x=np.array(z["x"], dtype=np.float64),
                residual_norms=[float(v) for v in z["residual_norms"]],
                step_lengths=[float(v) for v in z["step_lengths"]],
                linear_iterations=[int(v) for v in z["linear_iterations"]],
                linear_flags=[str(v) for v in z["linear_flags"]],
            )
            stored = int(z["digest"])
        if ckpt.digest != stored:
            raise ValueError(
                f"checkpoint {path} failed its integrity check "
                f"(stored digest {stored}, recomputed {ckpt.digest})"
            )
        return ckpt
