"""Recovery policy ladder + the event log every rung reports into.

The ladder, from cheapest to most disruptive -- each rung mirrors what
an E3SM-class workflow does instead of aborting:

1. **retry with backoff** -- corrupted halo exchange payloads are
   re-fetched (the transport analogue of an MPI re-post); transient
   kernel-launch failures are re-launched;
2. **re-evaluation** -- a non-finite residual/Jacobian sweep is rerun
   (transient corruption clears; a persistent NaN means real physics
   trouble and escalates);
3. **Newton step rejection** -- a step whose line search cannot find a
   finite decreasing trial is rejected: the solver resumes from the
   last good iterate with the damping cap halved (the "cut the
   timestep" of a nonlinear solve);
4. **GMRES restart escalation** -- a stagnating linear solve retries
   with a grown Krylov space and iteration budget;
5. **preconditioner fallback** -- if the MDSC hierarchy setup fails,
   drop to the next factory on the ladder (Jacobi last), never to an
   unpreconditioned abort;
6. **SPMD degradation** -- a failed rank's owned cells are reassigned
   to a survivor (serial fallback when none remain); the
   decomposition-independent ``BlockReducer`` keeps the trajectory
   identical to the healthy run.

Every detection and recovery lands in a :class:`ResilienceLog`, which
mirrors each event into ``resilience.*`` metrics so chaos-run
statistics ride the normal observability snapshot.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, field

from repro.observability import get_metrics, get_series, get_tracer

__all__ = [
    "ResilienceLog",
    "RecoveryPolicy",
    "retry_with_backoff",
    "PreconditionerLadder",
    "choose_survivor",
]


class ResilienceLog:
    """Chronological record of injections, detections and recoveries.

    ``record`` appends one event dict and mirrors it into the metrics
    registry (``resilience.<category>`` and ``resilience.<category>.
    <kind>`` counters), so ``diagnostics["observability"]`` and
    ``diagnostics["resilience"]`` stay consistent with each other.

    ``max_events`` bounds the retained event list as a ring buffer: a
    long-running solve *service* records events indefinitely, and an
    unbounded list is a slow memory leak.  When bounded, the oldest
    events are evicted; the per-(category, kind) counts -- and the
    mirrored metrics counters -- stay exact regardless, and
    :meth:`summary` carries an ``events_dropped`` truncation marker so
    a reader can tell a complete history from a windowed one.
    """

    CATEGORIES = ("injection", "detection", "recovery")

    def __init__(self, max_events: int | None = None):
        if max_events is not None and max_events <= 0:
            raise ValueError("max_events must be positive (or None for unbounded)")
        self.max_events = max_events
        self.events: deque[dict] = deque(maxlen=max_events)
        #: events evicted from the ring buffer (0 when unbounded)
        self.dropped = 0
        #: exact counts, immune to ring-buffer eviction
        self._counts: dict[tuple[str, str], int] = {}
        self._total = 0

    def record(self, category: str, kind: str, site: str, **detail) -> dict:
        if category not in self.CATEGORIES:
            raise ValueError(f"unknown event category {category!r}")
        event = {"category": category, "kind": kind, "site": site, **detail}
        if self.max_events is not None and len(self.events) == self.max_events:
            self.dropped += 1
        self.events.append(event)
        self._total += 1
        key = (category, kind)
        self._counts[key] = self._counts.get(key, 0) + 1
        metrics = get_metrics()
        metrics.counter(f"resilience.{category}").inc()
        metrics.counter(f"resilience.{category}.{kind}").inc()
        # recovery-ladder timeline: one timestamped point per event so
        # the convergence plots show *when* the ladder fired, not just
        # how often (the value is the running event count)
        get_series().record(
            "resilience.event", self._total, category=category, kind=kind
        )
        return event

    def extend(self, events) -> None:
        """Merge already-recorded events from another log.

        Keeps the exact counts consistent with the event window but does
        NOT re-mirror into the metrics registry -- the source log already
        did that when each event was first recorded (re-counting would
        double every ``resilience.*`` counter).
        """
        for event in events:
            if self.max_events is not None and len(self.events) == self.max_events:
                self.dropped += 1
            self.events.append(event)
            self._total += 1
            key = (event["category"], event["kind"])
            self._counts[key] = self._counts.get(key, 0) + 1

    def count(self, category: str, kind: str | None = None) -> int:
        """Exact event count (unaffected by ring-buffer truncation)."""
        return sum(
            n
            for (c, k), n in self._counts.items()
            if c == category and (kind is None or k == kind)
        )

    def summary(self) -> dict:
        """JSON-able chaos-run statistics: totals, per-kind counts, events.

        Counts are exact; ``events`` is the retained window (the full
        history when unbounded).  ``events_dropped > 0`` marks a
        truncated window.
        """
        by_kind: dict[str, dict[str, int]] = {c: {} for c in self.CATEGORIES}
        for (c, k), n in sorted(self._counts.items()):
            by_kind[c][k] = n
        return {
            "injections": self.count("injection"),
            "detections": self.count("detection"),
            "recoveries": self.count("recovery"),
            "by_kind": by_kind,
            "events": list(self.events),
            "events_dropped": self.dropped,
        }


@dataclass
class RecoveryPolicy:
    """Budgets and knobs of the recovery ladder (see module docstring).

    Attach one to ``newton_solve(resilience=...)`` /
    ``StokesVelocityProblem.solve(resilience=...)`` to recover from
    detected faults instead of raising.  All budgets are per event, not
    per solve, except ``max_step_rejections`` (per Newton step).
    """

    #: re-fetch/re-launch attempts for a corrupted exchange or failed launch
    max_retries: int = 3
    #: base sleep between retries; doubled per attempt (0 keeps tests fast
    #: while still exercising and logging the backoff arithmetic)
    backoff_s: float = 0.0
    #: jitter fraction in [0, 1): each backoff delay is scaled by a
    #: deterministic factor in ``[1 - j, 1 + j)`` seeded by
    #: ``(jitter_seed, attempt)``.  Pure exponential backoff (the 0.0
    #: default) synchronizes N workers that failed together -- they all
    #: sleep the same delay and retry in one thundering herd against the
    #: same rung; distinct per-worker ``jitter_seed`` values de-phase
    #: the herd while each worker's sequence stays reproducible.
    backoff_jitter: float = 0.0
    #: seed of the deterministic jitter stream (a service assigns each
    #: worker/request its own so retry storms decorrelate)
    jitter_seed: int = 0
    #: full re-evaluations of a non-finite residual/Jacobian sweep
    max_reevaluations: int = 2
    #: rejected attempts per Newton step before giving up
    max_step_rejections: int = 3
    #: damping-cap multiplier applied on each step rejection
    step_damping_backoff: float = 0.5
    #: restart/maxiter growth factor per GMRES escalation
    gmres_restart_growth: int = 2
    #: stagnating linear-solve retries with a grown Krylov space
    max_gmres_escalations: int = 2
    #: snapshot Newton state every N accepted steps (0 disables)
    checkpoint_every: int = 1
    log: ResilienceLog = field(default_factory=ResilienceLog)

    def backoff(self, attempt: int) -> float:
        """Exponential backoff delay before retry ``attempt`` (1-based).

        With ``backoff_jitter > 0`` the delay is scaled by a factor in
        ``[1 - jitter, 1 + jitter)`` drawn from a *stateless* seeded
        stream: the factor is a pure function of ``(jitter_seed,
        attempt)``, so repeated calls for the same attempt return the
        same delay (``retry_with_backoff`` logs the delay it waited by
        re-evaluating it) and the whole sequence is reproducible per
        seed.
        """
        delay = self.backoff_s * (2.0 ** max(0, attempt - 1))
        if self.backoff_jitter > 0.0 and delay > 0.0:
            # stateless per-attempt draw: no shared RNG object to race
            # on or to advance differently between runs
            u = random.Random(int(self.jitter_seed) * 1_000_003 + int(attempt)).random()
            delay *= 1.0 + self.backoff_jitter * (2.0 * u - 1.0)
        return delay


def retry_with_backoff(
    fn,
    policy: RecoveryPolicy,
    site: str,
    kind: str,
    exceptions: tuple[type[BaseException], ...] = (Exception,),
    **detail,
):
    """Run ``fn`` with the policy's retry/backoff budget.

    Each failure is logged as a detection; each successful retry as a
    recovery (with the attempt number and the backoff waited).  The last
    exception propagates once the budget is spent.
    """
    tr = get_tracer()
    attempt = 0
    while True:
        try:
            result = fn()
        except exceptions as exc:
            attempt += 1
            policy.log.record(
                "detection", kind, site, attempt=attempt, error=str(exc), **detail
            )
            if attempt > policy.max_retries:
                raise
            delay = policy.backoff(attempt)
            if delay > 0.0:
                time.sleep(delay)
            continue
        if attempt > 0:
            with tr.span("resilience.recover", site=site, kind=kind, attempts=attempt):
                policy.log.record(
                    "recovery", f"{kind}_retry", site,
                    attempts=attempt, backoff_s=policy.backoff(attempt), **detail,
                )
        return result


class PreconditionerLadder:
    """Factory chain: try each ``J -> M`` builder, fall through on failure.

    The production rung order is MDSC -> Jacobi -> None: when the MDSC
    hierarchy setup fails (singular collapsed block, injected fault),
    the solve continues with point-Jacobi -- degraded convergence beats
    a dead run.  Every fallback is logged as detection + recovery.
    """

    def __init__(self, factories: list[tuple[str, object]], log: ResilienceLog | None = None):
        if not factories:
            raise ValueError("at least one preconditioner factory required")
        self.factories = list(factories)
        self.log = log
        #: name of the factory the last build actually used
        self.last_used: str | None = None

    def __call__(self, J):
        tr = get_tracer()
        last_exc: Exception | None = None
        for i, (name, factory) in enumerate(self.factories):
            try:
                if factory is None:
                    self.last_used = name
                    return None
                M = factory(J)
                self.last_used = name
                if i > 0 and self.log is not None:
                    self.log.record(
                        "recovery", "preconditioner_fallback", "precond.setup",
                        fell_back_to=name, error=str(last_exc),
                    )
                return M
            except Exception as exc:  # noqa: BLE001 - every rung may fail
                last_exc = exc
                if self.log is not None:
                    self.log.record(
                        "detection", "preconditioner_failure", "precond.setup",
                        factory=name, error=str(exc),
                    )
                with tr.span("resilience.precond_fallback", failed=name):
                    continue
        raise RuntimeError(
            f"every preconditioner factory failed (last: {last_exc})"
        ) from last_exc


def choose_survivor(dead: set[int], nparts: int) -> int | None:
    """Lowest-numbered live rank to absorb a failed rank's work.

    Returns ``None`` when no rank survives -- the caller falls back to a
    serial sweep (the degradation endpoint: one survivor doing all the
    work is operationally identical to a serial solve).
    """
    for p in range(nparts):
        if p not in dead:
            return p
    return None
