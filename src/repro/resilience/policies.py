"""Recovery policy ladder + the event log every rung reports into.

The ladder, from cheapest to most disruptive -- each rung mirrors what
an E3SM-class workflow does instead of aborting:

1. **retry with backoff** -- corrupted halo exchange payloads are
   re-fetched (the transport analogue of an MPI re-post); transient
   kernel-launch failures are re-launched;
2. **re-evaluation** -- a non-finite residual/Jacobian sweep is rerun
   (transient corruption clears; a persistent NaN means real physics
   trouble and escalates);
3. **Newton step rejection** -- a step whose line search cannot find a
   finite decreasing trial is rejected: the solver resumes from the
   last good iterate with the damping cap halved (the "cut the
   timestep" of a nonlinear solve);
4. **GMRES restart escalation** -- a stagnating linear solve retries
   with a grown Krylov space and iteration budget;
5. **preconditioner fallback** -- if the MDSC hierarchy setup fails,
   drop to the next factory on the ladder (Jacobi last), never to an
   unpreconditioned abort;
6. **SPMD degradation** -- a failed rank's owned cells are reassigned
   to a survivor (serial fallback when none remain); the
   decomposition-independent ``BlockReducer`` keeps the trajectory
   identical to the healthy run.

Every detection and recovery lands in a :class:`ResilienceLog`, which
mirrors each event into ``resilience.*`` metrics so chaos-run
statistics ride the normal observability snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.observability import get_metrics, get_series, get_tracer

__all__ = [
    "ResilienceLog",
    "RecoveryPolicy",
    "retry_with_backoff",
    "PreconditionerLadder",
    "choose_survivor",
]


class ResilienceLog:
    """Chronological record of injections, detections and recoveries.

    ``record`` appends one event dict and mirrors it into the metrics
    registry (``resilience.<category>`` and ``resilience.<category>.
    <kind>`` counters), so ``diagnostics["observability"]`` and
    ``diagnostics["resilience"]`` stay consistent with each other.
    """

    CATEGORIES = ("injection", "detection", "recovery")

    def __init__(self):
        self.events: list[dict] = []

    def record(self, category: str, kind: str, site: str, **detail) -> dict:
        if category not in self.CATEGORIES:
            raise ValueError(f"unknown event category {category!r}")
        event = {"category": category, "kind": kind, "site": site, **detail}
        self.events.append(event)
        metrics = get_metrics()
        metrics.counter(f"resilience.{category}").inc()
        metrics.counter(f"resilience.{category}.{kind}").inc()
        # recovery-ladder timeline: one timestamped point per event so
        # the convergence plots show *when* the ladder fired, not just
        # how often (the value is the running event count)
        get_series().record(
            "resilience.event", len(self.events), category=category, kind=kind
        )
        return event

    def count(self, category: str, kind: str | None = None) -> int:
        return sum(
            1
            for e in self.events
            if e["category"] == category and (kind is None or e["kind"] == kind)
        )

    def summary(self) -> dict:
        """JSON-able chaos-run statistics: totals, per-kind counts, events."""
        by_kind: dict[str, dict[str, int]] = {c: {} for c in self.CATEGORIES}
        for e in self.events:
            d = by_kind[e["category"]]
            d[e["kind"]] = d.get(e["kind"], 0) + 1
        return {
            "injections": self.count("injection"),
            "detections": self.count("detection"),
            "recoveries": self.count("recovery"),
            "by_kind": by_kind,
            "events": list(self.events),
        }


@dataclass
class RecoveryPolicy:
    """Budgets and knobs of the recovery ladder (see module docstring).

    Attach one to ``newton_solve(resilience=...)`` /
    ``StokesVelocityProblem.solve(resilience=...)`` to recover from
    detected faults instead of raising.  All budgets are per event, not
    per solve, except ``max_step_rejections`` (per Newton step).
    """

    #: re-fetch/re-launch attempts for a corrupted exchange or failed launch
    max_retries: int = 3
    #: base sleep between retries; doubled per attempt (0 keeps tests fast
    #: while still exercising and logging the backoff arithmetic)
    backoff_s: float = 0.0
    #: full re-evaluations of a non-finite residual/Jacobian sweep
    max_reevaluations: int = 2
    #: rejected attempts per Newton step before giving up
    max_step_rejections: int = 3
    #: damping-cap multiplier applied on each step rejection
    step_damping_backoff: float = 0.5
    #: restart/maxiter growth factor per GMRES escalation
    gmres_restart_growth: int = 2
    #: stagnating linear-solve retries with a grown Krylov space
    max_gmres_escalations: int = 2
    #: snapshot Newton state every N accepted steps (0 disables)
    checkpoint_every: int = 1
    log: ResilienceLog = field(default_factory=ResilienceLog)

    def backoff(self, attempt: int) -> float:
        """Exponential backoff delay before retry ``attempt`` (1-based)."""
        return self.backoff_s * (2.0 ** max(0, attempt - 1))


def retry_with_backoff(
    fn,
    policy: RecoveryPolicy,
    site: str,
    kind: str,
    exceptions: tuple[type[BaseException], ...] = (Exception,),
    **detail,
):
    """Run ``fn`` with the policy's retry/backoff budget.

    Each failure is logged as a detection; each successful retry as a
    recovery (with the attempt number and the backoff waited).  The last
    exception propagates once the budget is spent.
    """
    tr = get_tracer()
    attempt = 0
    while True:
        try:
            result = fn()
        except exceptions as exc:
            attempt += 1
            policy.log.record(
                "detection", kind, site, attempt=attempt, error=str(exc), **detail
            )
            if attempt > policy.max_retries:
                raise
            delay = policy.backoff(attempt)
            if delay > 0.0:
                time.sleep(delay)
            continue
        if attempt > 0:
            with tr.span("resilience.recover", site=site, kind=kind, attempts=attempt):
                policy.log.record(
                    "recovery", f"{kind}_retry", site,
                    attempts=attempt, backoff_s=policy.backoff(attempt), **detail,
                )
        return result


class PreconditionerLadder:
    """Factory chain: try each ``J -> M`` builder, fall through on failure.

    The production rung order is MDSC -> Jacobi -> None: when the MDSC
    hierarchy setup fails (singular collapsed block, injected fault),
    the solve continues with point-Jacobi -- degraded convergence beats
    a dead run.  Every fallback is logged as detection + recovery.
    """

    def __init__(self, factories: list[tuple[str, object]], log: ResilienceLog | None = None):
        if not factories:
            raise ValueError("at least one preconditioner factory required")
        self.factories = list(factories)
        self.log = log
        #: name of the factory the last build actually used
        self.last_used: str | None = None

    def __call__(self, J):
        tr = get_tracer()
        last_exc: Exception | None = None
        for i, (name, factory) in enumerate(self.factories):
            try:
                if factory is None:
                    self.last_used = name
                    return None
                M = factory(J)
                self.last_used = name
                if i > 0 and self.log is not None:
                    self.log.record(
                        "recovery", "preconditioner_fallback", "precond.setup",
                        fell_back_to=name, error=str(last_exc),
                    )
                return M
            except Exception as exc:  # noqa: BLE001 - every rung may fail
                last_exc = exc
                if self.log is not None:
                    self.log.record(
                        "detection", "preconditioner_failure", "precond.setup",
                        factory=name, error=str(exc),
                    )
                with tr.span("resilience.precond_fallback", failed=name):
                    continue
        raise RuntimeError(
            f"every preconditioner factory failed (last: {last_exc})"
        ) from last_exc


def choose_survivor(dead: set[int], nparts: int) -> int | None:
    """Lowest-numbered live rank to absorb a failed rank's work.

    Returns ``None`` when no rank survives -- the caller falls back to a
    serial sweep (the degradation endpoint: one survivor doing all the
    work is operationally identical to a serial solve).
    """
    for p in range(nparts):
        if p not in dead:
            return p
    return None
