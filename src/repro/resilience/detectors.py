"""Detection guards: the boundaries where faults become observable.

Injection (or a real production fault) only matters once something
*notices*.  The solve stack detects at three boundaries, mirroring
where MALI/E3SM runs catch their failures:

* **payload checksums** on every halo message (:func:`payload_checksum`
  / :func:`verify_payload`) -- the receiver recomputes the sender's
  CRC32 over the raw bytes, so bit flips, drops and duplicates are all
  caught before corrupted ghosts reach the SpMV;
* **non-finite guards** at the assembly/Newton boundary
  (:func:`check_finite`) -- a NaN residual from a poisoned sweep (or a
  genuine viscosity blowup on thin ice) is reported with the step and
  phase it appeared in instead of propagating silently into norms;
* **linear-solve classification** (:func:`classify_gmres`) -- GMRES
  outcomes become an explicit flag (``converged`` / ``maxiter`` /
  ``stagnated`` / ``breakdown``) so callers stop inferring health from
  residual-history lengths.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "payload_checksum",
    "verify_payload",
    "check_finite",
    "nonfinite_count",
    "classify_gmres",
    "GMRES_FLAGS",
]


def payload_checksum(payload: np.ndarray) -> int:
    """CRC32 over the raw bytes of a halo payload (sender side)."""
    return zlib.crc32(np.ascontiguousarray(payload).tobytes())


def verify_payload(payload: np.ndarray, checksum: int) -> bool:
    """Receiver-side checksum verification of a (possibly corrupted) payload."""
    return payload_checksum(payload) == int(checksum)


def nonfinite_count(arr: np.ndarray) -> int:
    """Number of NaN/Inf entries in an array (0 = healthy)."""
    return int(arr.size - np.count_nonzero(np.isfinite(arr)))


def check_finite(arr: np.ndarray, *, step: int | None = None, phase: str = "") -> None:
    """Raise ``FloatingPointError`` naming the step and phase if ``arr``
    holds any NaN/Inf.

    This is the no-recovery-policy behavior: a mid-iteration NaN (e.g.
    from a line-search trial) must fail loudly with its location, never
    propagate silently into norms and GMRES.
    """
    if np.all(np.isfinite(arr)):
        return
    where = f"Newton step {step}" if step is not None else "solve"
    raise FloatingPointError(
        f"non-finite residual at {where} (phase {phase or 'unknown'!r}): "
        f"{nonfinite_count(np.asarray(arr))} bad entries; attach a "
        "repro.resilience.RecoveryPolicy to recover instead of aborting"
    )


GMRES_FLAGS = ("converged", "maxiter", "stagnated", "breakdown")

#: a restart cycle that shrinks the residual by less than this factor is
#: treated as stagnant (the Krylov space is no longer making progress)
STAGNATION_RTOL = 0.99


def classify_gmres(
    converged: bool,
    breakdown: bool,
    cycle_reductions: list[float],
    stagnation_rtol: float = STAGNATION_RTOL,
) -> str:
    """Classify a finished GMRES run into one of :data:`GMRES_FLAGS`.

    ``cycle_reductions`` holds, per restart cycle, the ratio of the true
    residual at cycle end to the residual at cycle start.  A run that
    exhausted its iteration budget while the last cycle barely moved is
    ``stagnated`` (restart escalation may still rescue it); one that was
    still reducing is plain ``maxiter``; an Arnoldi breakdown that did
    not reach tolerance is ``breakdown`` (the subspace is exhausted --
    retrying at the same size cannot help).
    """
    if converged:
        return "converged"
    if breakdown:
        return "breakdown"
    if cycle_reductions and cycle_reductions[-1] >= stagnation_rtol:
        return "stagnated"
    return "maxiter"
