"""Cooperative wall-clock deadlines for the solver stack.

A long-lived solve service cannot let one request monopolize a worker:
every request carries a wall-clock budget, and the budget must reach
the places that actually spend the time -- the Newton step loop, the
GMRES inner iterations, the line-search trials.  Python threads cannot
be preempted safely mid-``numpy`` call, so the budget is *cooperative*:
:class:`Deadline` is threaded down as an optional argument and checked
at loop boundaries (Newton step attempts, GMRES cycles and iterations,
line-search trials), where raising is cheap and the solver state is
consistent.

Expiry raises a typed :class:`SolveTimeout` rather than returning a
corrupted half-iterate.  ``newton_solve`` attaches the last *completed*
:class:`~repro.resilience.checkpoint.NewtonCheckpoint` to the
exception, so the caller gets a usable partial result: serve it
degraded, or resume the solve later via ``newton_solve(resume_from=
exc.checkpoint)`` -- the resumed trajectory is bitwise-identical to an
uninterrupted run (checkpoint/restart re-enters the loop at the same
iterate and re-evaluates the same sweep).

A deadline that expires before the first Newton step completes carries
``checkpoint=None``: an immediate typed timeout, never partial garbage.

Determinism: checks only read the clock and branch -- they never touch
the numerics -- so a solve that does *not* time out is bitwise equal to
one run without any deadline.  Tests inject a fake ``clock`` to expire
at exact loop positions.
"""

from __future__ import annotations

import time

__all__ = ["Deadline", "SolveTimeout"]


class SolveTimeout(RuntimeError):
    """A solve exceeded its wall-clock budget (typed, checkpoint-bearing).

    Attributes
    ----------
    budget_s:
        The wall-clock budget the deadline was created with.
    elapsed_s:
        Time elapsed on the deadline's clock when the check fired.
    phase:
        The cooperative checkpoint that detected expiry (e.g.
        ``"newton.step 3"``, ``"gmres cycle 1 it 42"``).
    checkpoint:
        Last completed :class:`NewtonCheckpoint`, or ``None`` when the
        budget expired before the first checkpointed step (immediate
        timeout: no partial state exists).  Resume with
        ``newton_solve(resume_from=exc.checkpoint)`` for a
        bitwise-identical continuation.
    """

    def __init__(
        self,
        message: str | None = None,
        *,
        budget_s: float = 0.0,
        elapsed_s: float = 0.0,
        phase: str = "",
        checkpoint=None,
    ):
        if message is None:
            at = f" at {phase}" if phase else ""
            have = (
                f"last checkpoint: step {checkpoint.step}"
                if checkpoint is not None
                else "no completed checkpoint"
            )
            message = (
                f"solve exceeded its {budget_s:.3g}s deadline{at} "
                f"(elapsed {elapsed_s:.3g}s; {have})"
            )
        super().__init__(message)
        self.budget_s = float(budget_s)
        self.elapsed_s = float(elapsed_s)
        self.phase = phase
        self.checkpoint = checkpoint


class Deadline:
    """A wall-clock budget started at construction time.

    ``clock`` defaults to :func:`time.monotonic`; tests inject a fake
    clock to make expiry fire at exact loop positions.  The deadline
    starts ticking immediately -- a service creates it at *admission*,
    so queue wait counts against the request's budget (a request that
    waited its whole budget in the queue times out before wasting a
    worker on it).
    """

    __slots__ = ("budget_s", "_clock", "_t0")

    def __init__(self, budget_s: float, clock=time.monotonic):
        self.budget_s = float(budget_s)
        self._clock = clock
        self._t0 = clock()

    @classmethod
    def after(cls, budget_s: float, clock=time.monotonic) -> "Deadline":
        return cls(budget_s, clock=clock)

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining(self) -> float:
        """Seconds left in the budget (negative once expired)."""
        return self.budget_s - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, phase: str, checkpoint=None) -> None:
        """Raise :class:`SolveTimeout` if the budget is spent.

        Called at cooperative boundaries only; reads the clock and
        branches, so it never perturbs the numerics of a solve that
        stays within budget.
        """
        elapsed = self.elapsed()
        if elapsed >= self.budget_s:
            raise SolveTimeout(
                budget_s=self.budget_s,
                elapsed_s=elapsed,
                phase=phase,
                checkpoint=checkpoint,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget_s={self.budget_s}, remaining={self.remaining():.3g})"
