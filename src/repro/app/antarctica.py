"""The Antarctica standalone test (paper Section III-B).

Builds the synthetic Antarctica at a chosen resolution, extrudes the
footprint by 20 layers, runs the velocity solve (eight damped Newton
steps, linear tolerance 1e-6), and compares the mean of the final
solution against a stored reference at relative tolerance 1e-5 --
exactly the structure of the paper's acceptance test, on the synthetic
geometry that substitutes for the real 16-km Antarctica dataset.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.app.config import AntarcticaConfig
from repro.app.velocity_solver import StokesVelocityProblem, VelocitySolution
from repro.mesh.extrude import ExtrudedMesh, extrude_footprint
from repro.mesh.geometry import IceGeometry, antarctica_geometry, greenland_geometry
from repro.mesh.planar import masked_quad_footprint

__all__ = ["AntarcticaTest", "run_antarctica_test", "REFERENCE_FILE"]

REFERENCE_FILE = Path(__file__).parent / "reference_values.json"


@dataclass
class AntarcticaTest:
    """A configured Antarctica run: mesh + problem + regression check."""

    config: AntarcticaConfig
    geometry: IceGeometry
    mesh: ExtrudedMesh
    problem: StokesVelocityProblem

    @classmethod
    def build(cls, config: AntarcticaConfig | None = None) -> "AntarcticaTest":
        config = config or AntarcticaConfig()
        if config.family == "greenland":
            geometry = greenland_geometry()
        else:
            geometry = antarctica_geometry(config.resolution_km)
        res_m = config.resolution_km * 1.0e3
        if config.footprint == "voronoi":
            # MALI's meshing path: MPAS Voronoi mesh -> dual triangulation
            # -> prismatic (wedge) extrusion
            from repro.mesh.voronoi import mpas_voronoi_mesh, triangle_footprint_from_voronoi

            vm = mpas_voronoi_mesh(geometry.mask, geometry.lx, geometry.ly, spacing=res_m)
            footprint = triangle_footprint_from_voronoi(vm)
        else:
            nx = max(4, int(round(geometry.lx / res_m)))
            ny = max(4, int(round(geometry.ly / res_m)))
            footprint = masked_quad_footprint(nx, ny, geometry.lx, geometry.ly, geometry.mask)
        mesh = extrude_footprint(footprint, geometry, config.num_layers)
        vcfg = config.velocity
        if vcfg.tuned == "auto":
            # transparent autotuning: reuse the persisted winner for this
            # (mesh key, GPU) pair, or run a bounded online search on the
            # mesh we just built (the winner is cached for the next run)
            from repro.tune import tuned_velocity_config

            vcfg = tuned_velocity_config(
                mesh_key=config.key,
                config=vcfg,
                problem_factory=lambda c: StokesVelocityProblem(mesh, geometry, c),
            )
        problem = StokesVelocityProblem(mesh, geometry, vcfg)
        return cls(config=config, geometry=geometry, mesh=mesh, problem=problem)

    # ------------------------------------------------------------------
    def run(self, callback=None) -> VelocitySolution:
        return self.problem.solve(callback=callback)

    def reference_value(self) -> float | None:
        """Stored mean-velocity reference for this configuration."""
        if not REFERENCE_FILE.exists():
            return None
        table = json.loads(REFERENCE_FILE.read_text())
        return table.get(self.config.key)

    def store_reference(self, mean_velocity: float) -> None:
        table = {}
        if REFERENCE_FILE.exists():
            table = json.loads(REFERENCE_FILE.read_text())
        table[self.config.key] = mean_velocity
        REFERENCE_FILE.write_text(json.dumps(table, indent=2, sort_keys=True) + "\n")

    def check(self, solution: VelocitySolution) -> tuple[bool, float | None]:
        """Mean-solution regression check at the configured tolerance.

        Returns (passed, reference); a missing reference returns (True,
        None) so first runs can bootstrap the table.
        """
        ref = self.reference_value()
        if ref is None:
            return True, None
        rel = abs(solution.mean_velocity - ref) / abs(ref)
        return rel <= self.config.check_rtol, ref


def run_antarctica_test(config: AntarcticaConfig | None = None, verbose: bool = False) -> VelocitySolution:
    """Convenience entry: build, solve, and regression-check."""
    test = AntarcticaTest.build(config)

    def cb(step, x, fnorm, lin):
        if verbose:
            print(f"  newton {step + 1}: |F| = {fnorm:.4e}  (gmres its = {lin.iterations})")

    sol = test.run(callback=cb if verbose else None)
    passed, ref = test.check(sol)
    sol.diagnostics["reference_mean_velocity"] = ref
    sol.diagnostics["regression_passed"] = passed
    if not passed:
        raise AssertionError(
            f"Antarctica regression failed: mean velocity {sol.mean_velocity!r} "
            f"vs reference {ref!r} (rtol {test.config.check_rtol})"
        )
    return sol
