"""Application layer: the MALI-style velocity solve and the Antarctica test.

Ties every substrate together: mesh generation, FE discretization, the
evaluator DAG with the paper's kernels, Newton/GMRES/MDSC-AMG, and the
Section III-B regression check (eight nonlinear steps, linear tolerance
1e-6, mean-solution comparison at relative tolerance 1e-5).
"""

from repro.app.config import VelocityConfig, AntarcticaConfig
from repro.app.velocity_solver import StokesVelocityProblem, VelocitySolution
from repro.app.antarctica import AntarcticaTest, run_antarctica_test

__all__ = [
    "VelocityConfig",
    "AntarcticaConfig",
    "StokesVelocityProblem",
    "VelocitySolution",
    "AntarcticaTest",
    "run_antarctica_test",
]
