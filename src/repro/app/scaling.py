"""Multi-GPU scaling model (the paper's future-work direction).

Combines the single-GPU kernel times from :mod:`repro.gpusim` with a
communication model of the machines' interconnects to project weak and
strong scaling of the velocity solver's GPU phase:

* per-rank kernel work from the simulator (Jacobian + Residual per
  Newton step, times the calibrated solver-phase multiplier);
* halo exchange per Newton step: ghost-column counts *measured* from a
  real RCB partition (:func:`repro.mesh.partition.halo_statistics`) via
  :meth:`ScalingModel.partitioned_strong_scaling`, or the ``4 sqrt(A)``
  compact-patch estimate as the analytic fallback; bytes = ghost
  columns x levels x dofs x 8 B, at the node-interconnect bandwidth
  (Slingshot-11: 25 GB/s/NIC per direction on both machines, 4
  NICs/node, paper Section IV-A);
* an allreduce latency term (log2 P) for the Newton/Krylov dot products.

This is a model, not a simulation of MPI -- it exists to let the
scaling examples and benches explore the paper's "scalability studies"
outlook with the same calibrated kernel costs.  The in-process SPMD
solve (:mod:`repro.fem.distributed`) is the companion *measurement*
path: its traffic meter records the actual bytes each exchange moves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.simulator import GPUSimulator, ProblemSize
from repro.gpusim.specs import GPUSpec
from repro.kokkos.policy import LaunchBounds
from repro.mesh.partition import halo_statistics, partition_footprint

__all__ = ["InterconnectSpec", "SLINGSHOT11", "ScalingModel", "ScalingPoint"]


@dataclass(frozen=True)
class InterconnectSpec:
    """Node interconnect description (paper Section IV-A)."""

    name: str
    bandwidth_per_nic: float  # bytes/s per direction
    nics_per_node: int
    gpus_per_node: int
    latency_s: float  # per message


#: Slingshot 11 as deployed on Perlmutter and Frontier: 4 NICs/node at
#: 25 GB/s/direction, 4 GPUs (GCDs: 8, but one NIC serves two) per node.
SLINGSHOT11 = InterconnectSpec(
    name="Slingshot-11",
    bandwidth_per_nic=25.0e9,
    nics_per_node=4,
    gpus_per_node=4,
    latency_s=2.0e-6,
)


@dataclass(frozen=True)
class ScalingPoint:
    """Projected per-Newton-step time at one GPU count."""

    num_gpus: int
    cells_per_gpu: int
    t_kernels: float
    t_halo: float
    t_allreduce: float
    #: ghost columns the halo term used (None when no halo, P = 1)
    ghost_columns: float | None = None
    #: "analytic" (4 sqrt(A) patch estimate) or "measured" (real partition)
    halo_source: str = "analytic"

    @property
    def t_step(self) -> float:
        return self.t_kernels + self.t_halo + self.t_allreduce

    @property
    def communication_fraction(self) -> float:
        return (self.t_halo + self.t_allreduce) / self.t_step


class ScalingModel:
    """Weak/strong scaling of the velocity solver's GPU phase."""

    def __init__(
        self,
        spec: GPUSpec,
        interconnect: InterconnectSpec = SLINGSHOT11,
        kernel_impl: str = "optimized",
        launch_bounds: LaunchBounds | None = None,
        levels: int = 21,
        linear_iters_per_newton: float = 40.0,
    ):
        self.spec = spec
        self.interconnect = interconnect
        self.kernel_impl = kernel_impl
        self.launch_bounds = launch_bounds
        self.levels = levels
        self.linear_iters = linear_iters_per_newton
        self._sim = GPUSimulator(spec)

    # -- pieces -----------------------------------------------------------
    def kernel_time_per_step(self, cells_per_gpu: int) -> float:
        """One Jacobian + one Residual evaluation per Newton step."""
        prob = ProblemSize(cells_per_gpu)
        tj = self._sim.run(f"{self.kernel_impl}-jacobian", prob, launch_bounds=self.launch_bounds).time_s
        tr = self._sim.run(f"{self.kernel_impl}-residual", prob, launch_bounds=self.launch_bounds).time_s
        return tj + tr

    def ghost_columns(self, cells_per_gpu: int) -> float:
        """Halo width estimate: the partition boundary of a compact 2-D patch.

        ``cells_per_gpu`` hexahedra over ``levels - 1`` layers gives a
        footprint patch of ``A = cells / nz`` columns; a compact patch
        has a boundary of about ``4 sqrt(A)`` columns.
        """
        nz = self.levels - 1
        area = max(1.0, cells_per_gpu / nz)
        return 4.0 * math.sqrt(area)

    def halo_time_per_step(
        self, cells_per_gpu: int, num_gpus: int, ghost_columns: float | None = None
    ) -> float:
        """Halo-exchange time per Newton step.

        ``ghost_columns`` overrides the analytic ``4 sqrt(A)`` estimate
        with a measured per-rank ghost-column count (from
        :func:`repro.mesh.partition.halo_statistics`).
        """
        if num_gpus <= 1:
            return 0.0
        cols = self.ghost_columns(cells_per_gpu) if ghost_columns is None else ghost_columns
        bytes_per_exchange = cols * self.levels * 2 * 8.0  # 2 dofs, fp64
        bw = self.interconnect.bandwidth_per_nic * self.interconnect.nics_per_node
        bw_per_gpu = bw / self.interconnect.gpus_per_node
        # one halo refresh per linear iteration (SpMV) plus one per step
        exchanges = self.linear_iters + 1.0
        return exchanges * (bytes_per_exchange / bw_per_gpu + self.interconnect.latency_s)

    def allreduce_time_per_step(self, num_gpus: int) -> float:
        if num_gpus <= 1:
            return 0.0
        # 2 dots per Krylov iteration, log-tree latency
        hops = math.ceil(math.log2(num_gpus))
        return 2.0 * self.linear_iters * hops * self.interconnect.latency_s

    # -- projections ------------------------------------------------------
    def weak_scaling(self, cells_per_gpu: int, gpu_counts: list[int]) -> list[ScalingPoint]:
        """Fixed work per GPU; ideal behavior is flat time per step."""
        out = []
        tk = self.kernel_time_per_step(cells_per_gpu)
        for p in gpu_counts:
            out.append(
                ScalingPoint(
                    num_gpus=p,
                    cells_per_gpu=cells_per_gpu,
                    t_kernels=tk,
                    t_halo=self.halo_time_per_step(cells_per_gpu, p),
                    t_allreduce=self.allreduce_time_per_step(p),
                    ghost_columns=self.ghost_columns(cells_per_gpu) if p > 1 else None,
                )
            )
        return out

    def strong_scaling(self, total_cells: int, gpu_counts: list[int]) -> list[ScalingPoint]:
        """Fixed total work; ideal behavior is 1/P time per step.

        The critical rank carries ``ceil(total / P)`` cells when ``P``
        does not divide the cell count -- the slowest rank sets the step
        time, so flooring here would under-count the load of every rank
        that matters.
        """
        out = []
        for p in gpu_counts:
            local = max(1, -(-total_cells // p))  # ceiling division
            out.append(
                ScalingPoint(
                    num_gpus=p,
                    cells_per_gpu=local,
                    t_kernels=self.kernel_time_per_step(local),
                    t_halo=self.halo_time_per_step(local, p),
                    t_allreduce=self.allreduce_time_per_step(p),
                    ghost_columns=self.ghost_columns(local) if p > 1 else None,
                )
            )
        return out

    def partitioned_strong_scaling(self, footprint, gpu_counts: list[int]) -> list[ScalingPoint]:
        """Strong scaling from *measured* decompositions of a real footprint.

        Partitions ``footprint`` with the repo's RCB partitioner at every
        GPU count and reads the critical rank's cell load and ghost-column
        count from :func:`repro.mesh.partition.halo_statistics` -- the
        measured replacement for the ``4 sqrt(A)`` estimate and the
        uniform ``total / P`` split.  Points carry
        ``halo_source="measured"``.
        """
        nz = self.levels - 1
        out = []
        for p in gpu_counts:
            stats = halo_statistics(partition_footprint(footprint, p))
            local = max(1, max(stats.owned_elems) * nz)
            ghost = float(stats.max_ghost_nodes) if p > 1 else None
            out.append(
                ScalingPoint(
                    num_gpus=p,
                    cells_per_gpu=local,
                    t_kernels=self.kernel_time_per_step(local),
                    t_halo=self.halo_time_per_step(local, p, ghost_columns=ghost),
                    t_allreduce=self.allreduce_time_per_step(p),
                    ghost_columns=ghost,
                    halo_source="measured",
                )
            )
        return out

    @staticmethod
    def efficiency(points: list[ScalingPoint], mode: str) -> list[float]:
        """Parallel efficiency per point (1.0 = ideal)."""
        if not points:
            return []
        t0, p0 = points[0].t_step, points[0].num_gpus
        if mode == "weak":
            return [t0 / pt.t_step for pt in points]
        if mode == "strong":
            return [(t0 * p0) / (pt.t_step * pt.num_gpus) for pt in points]
        raise ValueError(f"unknown scaling mode {mode!r}")
