"""Problem configurations for the velocity solver and the Antarctica test."""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

__all__ = ["VelocityConfig", "AntarcticaConfig", "PRECONDITIONERS", "PRECOND_COST_ORDER"]

#: every preconditioner factory the velocity solver can build
PRECONDITIONERS = ("mdsc", "vline", "mdsc-amg", "jacobi", "none")

#: setup+apply cost order, most expensive first -- the serve degradation
#: ladder steps right through it ("cheaper rung") when the service is
#: under pressure; "none" is deliberately excluded (an unpreconditioned
#: solve can cost *more* wall clock in extra GMRES iterations than it
#: saves in setup, which defeats load shedding)
PRECOND_COST_ORDER = ("mdsc-amg", "mdsc", "vline", "jacobi")


def _default_operator_mode() -> str:
    """Config default for ``operator_mode``, overridable by environment.

    ``REPRO_OPERATOR_MODE=matrix-free`` flips every default-constructed
    config (the CI lever that runs the whole tier-1 suite through the
    matrix-free hot path without editing tests); explicit constructor
    arguments always win.
    """
    return os.environ.get("REPRO_OPERATOR_MODE", "assembled")


@dataclass(frozen=True)
class VelocityConfig:
    """Numerical settings of the FO Stokes velocity solve."""

    kernel_impl: str = "optimized"  # "baseline" | "optimized"
    quadrature_order: int = 2  # 2 -> the paper's 8-point hex rule
    workset_size: int = 2048  # cells per workset (Albany-style chunking)
    newton_steps: int = 8  # the paper's test runs 8 nonlinear steps
    newton_tol: float = 1.0e-8
    linear_tol: float = 1.0e-6  # the paper's linear tolerance
    gmres_restart: int = 300
    gmres_maxiter: int = 900
    #: "mdsc" (two-level column-collapse MDSC: vertical-line relaxation +
    #: collapsed membrane coarse solve -- the robust default), "vline"
    #: (line relaxation only), "mdsc-amg" (multilevel pairwise
    #: semicoarsening hierarchy), "jacobi", or "none"
    preconditioner: str = "mdsc"
    mg_coarse_size: int = 400
    #: fuse residual+Jacobian extraction into one SFad sweep per Newton
    #: step (the paper's loop-fusion theme applied host-side); False
    #: falls back to separate residual/jacobian evaluations
    fused_assembly: bool = True
    #: inner linear operator of the Newton--Krylov solve: "assembled"
    #: (CSR fill per step, SpMV matvecs) or "matrix-free" (GMRES applies
    #: the cached SFad element blocks directly -- no CSR fill, no
    #: value/index streams, MDSC built from element blocks).  Defaults
    #: from ``REPRO_OPERATOR_MODE`` when set.  SPMD solves (``nparts >
    #: 1``) always assemble: the row-partitioned distributed operator is
    #: the communication unit, so the axis applies to serial solves.
    operator_mode: str = field(default_factory=_default_operator_mode)
    #: GMRES orthogonalization: "mgs" (modified Gram-Schmidt -- the
    #: bitwise-pinned reference), "fused" (batched single-pass CGS with
    #: DGKS safeguard -- streams each Krylov vector once per iteration
    #: instead of k times), or "auto" (fused in matrix-free mode, mgs
    #: otherwise, preserving assembled-mode golden trajectories)
    gmres_orth: str = "auto"
    #: number of SPMD ranks (MALI: one MPI rank per GPU).  With
    #: ``nparts > 1`` the solve runs over a real RCB footprint partition:
    #: rank-restricted assembly, row-partitioned SpMV with ghost refresh,
    #: partitioned dot products, and measured halo traffic in the
    #: diagnostics -- bit-for-bit identical to the serial solve.
    nparts: int = 1
    #: "off" (use this config verbatim) or "auto" (consult the persisted
    #: autotuner cache for this mesh + GPU and, on a miss, run a bounded
    #: online search seeded by the gpusim byte model -- see
    #: :mod:`repro.tune`).  The tuned axes are ``kernel_impl``,
    #: ``preconditioner``, ``operator_mode``, ``gmres_orth`` and
    #: ``gmres_restart``; everything else (tolerances, Newton budget,
    #: ``nparts``) is preserved from this config.
    tuned: str = "off"

    def cheaper_preconditioner(self) -> str | None:
        """Next cheaper rung on :data:`PRECOND_COST_ORDER`, or ``None``.

        The serve degradation ladder calls this under queue pressure: a
        request admitted with a cheaper preconditioner rung still
        completes (degraded convergence beats shedding), and the cached
        problem artifacts are reused -- only the per-step factory
        changes.  At the bottom of the ladder (``jacobi``/``none``)
        there is nothing cheaper, so the caller moves to the next
        degradation rung (coarser mesh, cached result) instead.
        """
        try:
            i = PRECOND_COST_ORDER.index(self.preconditioner)
        except ValueError:  # "none": already cheapest possible
            return None
        if i + 1 >= len(PRECOND_COST_ORDER):
            return None
        return PRECOND_COST_ORDER[i + 1]

    def __post_init__(self):
        if self.kernel_impl not in ("baseline", "optimized"):
            raise ValueError(f"unknown kernel impl {self.kernel_impl!r}")
        if self.preconditioner not in PRECONDITIONERS:
            raise ValueError(f"unknown preconditioner {self.preconditioner!r}")
        if self.workset_size <= 0 or self.newton_steps <= 0:
            raise ValueError("workset size and Newton steps must be positive")
        if self.nparts < 1:
            raise ValueError("nparts must be at least 1")
        if self.operator_mode not in ("assembled", "matrix-free"):
            raise ValueError(
                f"unknown operator_mode {self.operator_mode!r}; have: assembled, matrix-free"
            )
        if self.gmres_orth not in ("auto", "mgs", "fused"):
            raise ValueError(
                f"unknown gmres_orth {self.gmres_orth!r}; have: auto, mgs, fused"
            )
        if self.tuned not in ("off", "auto"):
            raise ValueError(f"unknown tuned mode {self.tuned!r}; have: off, auto")


@dataclass(frozen=True)
class AntarcticaConfig:
    """The Section III-B Antarctica standalone test.

    ``resolution_km`` controls the footprint spacing of the synthetic
    Antarctica; the paper's single-GPU setting is 16 km with 20 layers
    (~256K hexahedra).  Full-resolution numerics are expensive in pure
    Python, so tests and examples default to coarser settings -- the
    GPU-performance benchmarks always use the 256K-cell problem size
    regardless (kernel cost is simulated per-cell and scaled).
    """

    resolution_km: float = 64.0
    num_layers: int = 20
    #: which synthetic ice sheet to build: "antarctica" (the paper's
    #: Section III-B test, the default everywhere) or "greenland"
    #: (elongated single dome -- MALI's other flagship configuration,
    #: used by the transient forcing-ramp scenario)
    family: str = "antarctica"
    #: default_factory, not a shared instance: ``VelocityConfig()`` as a
    #: class-level default would be evaluated once at import time, which
    #: freezes environment-derived defaults (``REPRO_OPERATOR_MODE``) as
    #: read when this module loaded -- ``monkeypatch.setenv`` and any
    #: in-process environment change would be silently ignored
    velocity: VelocityConfig = field(default_factory=VelocityConfig)
    #: "quad" (structured footprint -> hexahedra, the paper's test) or
    #: "voronoi" (MPAS-style Voronoi dual triangulation -> prisms,
    #: MALI's production meshing path)
    footprint: str = "quad"
    #: mean-solution regression tolerance (paper: 1e-5)
    check_rtol: float = 1.0e-5

    def __post_init__(self):
        if self.resolution_km <= 0 or self.num_layers <= 0:
            raise ValueError("resolution and layer count must be positive")
        if self.footprint not in ("quad", "voronoi"):
            raise ValueError(f"unknown footprint type {self.footprint!r}")
        if self.family not in ("antarctica", "greenland"):
            raise ValueError(f"unknown ice-sheet family {self.family!r}")

    def coarsened(self, factor: float = 2.0) -> "AntarcticaConfig":
        """A cheaper variant of this problem for serve degradation.

        Doubles the footprint spacing (quartering the cell count) and
        halves the extruded layer count (floor 3 so the vertical
        structure the FO Stokes physics needs survives).  A degraded
        request solves this mesh instead of the requested one -- an
        approximate answer under overload beats a shed request, and the
        coarse problem's artifacts are cached like any other scenario's.
        """
        return dataclasses.replace(
            self,
            resolution_km=self.resolution_km * float(factor),
            num_layers=max(3, self.num_layers // 2),
        )

    @property
    def key(self) -> str:
        """Reference-table key for the regression check."""
        fp = "" if self.footprint == "quad" else f"_{self.footprint}"
        return (
            f"{self.family}_res{self.resolution_km:g}km_nz{self.num_layers}"
            f"_{self.velocity.kernel_impl}{fp}"
        )
