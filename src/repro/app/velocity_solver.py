"""The FO Stokes velocity solve (MALI's velocity solver analogue).

Pipeline per nonlinear iteration, mirroring Albany:

1. gather the nodal solution per element workset;
2. run the evaluator DAG (Gather -> Ugrad -> ViscosityFO -> BodyForce ->
   **StokesFOResid kernel** -> BasalFriction -> Scatter) in residual or
   Jacobian (SFad-16) mode;
3. scatter-add element blocks into the global vector / CSR matrix;
4. impose lateral Dirichlet conditions;
5. solve the Newton step with GMRES + MDSC-AMG (vertical semicoarsening
   first, as the extruded column-major dof numbering demands).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.app.config import PRECONDITIONERS, VelocityConfig
from repro.fem.assembly import AssemblyPlan
from repro.fem.discretization import compute_basis_data, compute_face_basis_data
from repro.fem.distributed import DistributedMatrix, DistributedStokesAssembly
from repro.fem.dofmap import DofMap
from repro.fem.matfree import MatrixFreeJacobian, OperatorModeError
from repro.fem.sparse import CsrMatrix
from repro.mesh.extrude import ExtrudedMesh
from repro.mesh.geometry import IceGeometry
from repro.mesh.partition import TrafficMeter, halo_statistics, partition_footprint
from repro.observability import get_metrics, get_series, get_tracer
from repro.physics.evaluators import Workset, build_stokes_field_manager
from repro.physics.viscosity import flow_factor_arrhenius
from repro.resilience.injectors import RankFailure, fault_plane
from repro.resilience.policies import (
    PreconditionerLadder,
    ResilienceLog,
    choose_survivor,
)
from repro.solvers.multigrid import (
    ColumnCollapseMdsc,
    MatrixFreeColumnCollapseMdsc,
    build_mdsc_amg,
)
from repro.solvers.newton import NewtonResult, newton_solve
from repro.solvers.reductions import column_block_reducer
from repro.solvers.smoothers import (
    JacobiSmoother,
    MatrixFreeVerticalLineSmoother,
    VerticalLineSmoother,
)

__all__ = ["StokesVelocityProblem", "VelocitySolution"]


@dataclass
class VelocitySolution:
    """Result of a velocity solve plus the paper's diagnostics."""

    u: np.ndarray  # (num_dofs,) velocities [m/yr], interleaved (ux, uy)
    newton: NewtonResult
    mean_velocity: float  # mean |u| over all nodes [m/yr]
    max_velocity: float
    surface_mean_velocity: float
    diagnostics: dict = field(default_factory=dict)


class StokesVelocityProblem:
    """Assembles and solves the FO Stokes equations on an extruded mesh."""

    def __init__(self, mesh: ExtrudedMesh, geometry: IceGeometry, config: VelocityConfig | None = None):
        self.mesh = mesh
        self.geometry = geometry
        self.config = config or VelocityConfig()
        self._precompute()

    # ------------------------------------------------------------------
    def _precompute(self) -> None:
        cfg = self.config
        mesh = self.mesh
        fp = mesh.footprint
        order = cfg.quadrature_order

        self.dofmap = DofMap(mesh.num_nodes, 2, mesh.elems)

        # footprint basis + column maps are pure topology/xy data: the
        # transient geometry refresh moves only column endpoints (z), so
        # these are computed once and reused across every refresh
        self._fp_basis = compute_basis_data(fp.coords, fp.elems, fp.elem_type, order)
        self._elem_col = mesh.elem_column(np.arange(mesh.num_elems))
        self._basal_face_nodes = mesh.basal_face_nodes()
        self._face_type = "quad4" if fp.elem_type == "quad4" else "tri3"

        # coords-dependent numeric setup (3-D basis, surface gradients,
        # basal face geometry) -- recomputed by refresh_geometry()
        self._geometry_numeric_setup()

        # Glen flow factor from the temperature field at layer midheights.
        # Temperature is a function of (x, y, zeta) only, and a vertical
        # re-extrusion changes neither qp xy positions nor sigma levels,
        # so this survives geometry refreshes untouched.
        zeta_mid = 0.5 * (mesh.sigma[:-1] + mesh.sigma[1:])  # (nz,)
        lay = mesh.elem_layer(np.arange(mesh.num_elems))
        qp_xy = self.basis.qp_coords[:, :, :2]
        temp = self.geometry.temperature(
            qp_xy[..., 0], qp_xy[..., 1], zeta_mid[lay][:, None]
        )
        self.flow_factor_qp = flow_factor_arrhenius(temp)  # (ne3, nq3)

        # basal friction is sampled at face-qp xy positions -- also
        # invariant under vertical-only coordinate updates
        basal_elems = mesh.basal_elems()
        fq = self.face_basis.qp_coords
        self.basal_beta_qp = np.asarray(
            self.geometry.basal_friction(fq[..., 0], fq[..., 1]), dtype=np.float64
        )  # (nbasal, nqf)
        self._basal_of_elem = {int(e): i for i, e in enumerate(basal_elems)}

        # Dirichlet: zero velocity on the lateral (margin) boundary
        lat = mesh.lateral_nodes()
        self.bc_dofs = np.sort(np.concatenate([self.dofmap.dof(lat, 0), self.dofmap.dof(lat, 1)]))

        self.field_manager = build_stokes_field_manager(cfg.kernel_impl)

        # symbolic assembly, done once: sorted/deduped CSR structure,
        # COO->CSR scatter permutation, Dirichlet masks.  Every Newton
        # step is then a pure numeric fill (no re-sort).
        self.plan = AssemblyPlan(self.dofmap, self.bc_dofs)

        # operator-mode axis: matrix-free wraps the SFad element blocks
        # as the GMRES operator instead of filling CSR.  SPMD solves
        # always assemble -- the row-partitioned DistributedMatrix is
        # the halo-exchange unit -- so the axis binds to serial solves.
        self.matrix_free = cfg.operator_mode == "matrix-free" and cfg.nparts == 1

        # SPMD path: real RCB partition of the footprint, rank-restricted
        # assembly and row-partitioned operators with metered halo
        # traffic.  The solve stays bit-for-bit identical to serial
        # because both share the column-blocked reducer below and the
        # distributed assembly preserves the serial summation orders.
        self.partition = None
        self.meter = None
        self.spmd = None
        if cfg.nparts > 1:
            self.partition = partition_footprint(fp, cfg.nparts)
            self.meter = TrafficMeter(cfg.nparts)
            self.spmd = DistributedStokesAssembly(
                self.plan, self.partition, mesh.levels, mesh.nlayers, meter=self.meter
            )
        # deterministic reductions, one block per footprint column: used
        # by serial AND distributed solves (E3SM-style BFB reproducibility
        # across decompositions)
        self.reducer = column_block_reducer(
            fp.num_nodes, mesh.levels, ndof=2, meter=self.meter
        )

        # characteristic magnitude of the physics diagonal, probed from
        # one workset at zero velocity: Dirichlet rows are scaled to it
        # so algebraic coarsening stays well conditioned
        self.bc_diag_scale = self._probe_diag_scale()

        #: full evaluator-DAG sweeps over the mesh, by mode.  Like
        #: :attr:`phase_seconds`, reset at the start of every
        #: :meth:`solve` so both report per-solve numbers (calls made
        #: outside a solve accumulate until the next one).
        self.eval_counts = {"residual": 0, "jacobian": 0}
        #: wall time of the evaluate and scatter phases, per solve
        self.phase_seconds = {"evaluate": 0.0, "scatter": 0.0}

        #: SPMD ranks that failed mid-solve (graceful degradation state);
        #: reset at the start of every :meth:`solve`
        self._dead_ranks: set[int] = set()
        #: active recovery policy / preconditioner fallback ladder, set
        #: per solve by :meth:`solve` (None = fail-fast behavior)
        self._resilience = None
        self._precond_ladder = None
        #: per-solve preconditioner override (serve degradation rung)
        self._precond_override = None

    def _geometry_numeric_setup(self) -> None:
        """The coords-dependent slice of :meth:`_precompute`.

        3-D basis data (jacobians, weighted gradients, qp positions),
        the surface gradient replicated to the 3-D quadrature rule, and
        the basal face geometry.  Everything here is a pure function of
        ``mesh.coords``/``mesh.surface2d``; :meth:`refresh_geometry`
        re-runs exactly this block after a vertical re-extrusion.
        """
        mesh = self.mesh
        fp = mesh.footprint
        order = self.config.quadrature_order

        self.basis = compute_basis_data(mesh.coords, mesh.elems, mesh.elem_type, order)

        # surface gradient at footprint quadrature points, replicated to
        # the 3-D rule: hex qp q maps to footprint qp q // order (tensor
        # ordering has the vertical coordinate fastest)
        s_elem = mesh.surface2d[fp.elems]  # (ne2, k)
        grad_s_2d = np.einsum("cn,cnqd->cqd", s_elem, self._fp_basis.grad_bf)
        nq3 = self.basis.num_qps
        q2_of_q3 = np.arange(nq3) // order
        # per 3-D cell: its column's surface gradient at the matching qp
        self.grad_s_qp = grad_s_2d[self._elem_col][:, q2_of_q3, :]  # (ne3, nq3, 2)

        # basal faces: bottom quad/tri of each layer-0 element
        self.face_basis = compute_face_basis_data(
            mesh.coords, self._basal_face_nodes, self._face_type, order
        )

    def refresh_geometry(self, thickness2d: np.ndarray, surface2d: np.ndarray) -> None:
        """Re-extrude the mesh for an evolved geometry, keeping symbolic state.

        The transient engine calls this at the top of every coupled step:
        the mesh's vertical coordinate is rebuilt from the new nodal
        thickness/surface (:meth:`ExtrudedMesh.update_columns`) and only
        the numeric precomputations that depend on it are redone.  The
        expensive symbolic artifacts -- DofMap, the AssemblyPlan's
        sorted/deduped CSR structure and scatter permutation, RCB
        partitions, halo maps, the column-blocked reducer -- are all
        topology-derived and survive untouched, which is what makes a
        warm transient step much cheaper than a cold problem build.
        """
        with get_tracer().span("stokes.refresh_geometry", num_cells=self.mesh.num_elems):
            self.mesh.update_columns(thickness2d, surface2d)
            self._geometry_numeric_setup()
            # Dirichlet row scaling tracks the physics diagonal, which
            # changed with the geometry
            self.bc_diag_scale = self._probe_diag_scale()
        get_metrics().counter("transient.geometry_refresh").inc()

    def depth_averaged_cell_velocity(self, u: np.ndarray) -> np.ndarray:
        """Depth-averaged velocity per footprint element, ``(ne2, 2)``.

        Column-average the nodal solution over levels (uniform sigma
        spacing makes the plain mean the depth average), then average
        the footprint element's nodes -- the cell-centered field the
        thickness equation advects with (Eq. 2's ``H u_bar``).
        """
        mesh = self.mesh
        nodal = self.dofmap.nodal_view(u)  # (nn3, 2)
        col_avg = nodal.reshape(mesh.footprint.num_nodes, mesh.levels, 2).mean(axis=1)
        return col_avg[mesh.footprint.elems].mean(axis=1)

    def _probe_diag_scale(self) -> float:
        u0 = np.zeros(self.dofmap.num_dofs)
        for _, _, ws in self._worksets(u0, "jacobian"):
            diag = np.abs(np.einsum("cii->ci", ws.out_jacobian))
            val = float(np.mean(diag[diag > 0.0])) if np.any(diag > 0.0) else 1.0
            return val
        return 1.0

    # ------------------------------------------------------------------
    def _worksets(self, u: np.ndarray, mode: str, cells: np.ndarray | None = None):
        """Yield evaluated worksets covering ``cells`` (default: all).

        Yields ``(a, b, ws)`` where ``a:b`` are positions into the
        ``cells`` array (equal to global cell ids for the default full
        sweep).  The SPMD path passes each rank's owned-cell list; the
        evaluator DAG is strictly per-element, so restricted sweeps
        reproduce the corresponding serial blocks bitwise.
        """
        mesh = self.mesh
        cfg = self.config
        u_local = self.dofmap.gather(u).reshape(mesh.num_elems, mesh.nodes_per_elem, 2)
        nz = mesh.nlayers
        if cells is not None:
            cells = np.asarray(cells, dtype=np.int64)
        total = mesh.num_elems if cells is None else len(cells)
        for a in range(0, total, cfg.workset_size):
            b = min(a + cfg.workset_size, total)
            # contiguous slices for the full sweep (views, no copies)
            idx = slice(a, b) if cells is None else cells[a:b]
            chunk = np.arange(a, b) if cells is None else cells[a:b]
            basal_mask = chunk % nz == 0
            basal_cells_local = np.flatnonzero(basal_mask)
            basal_rows = np.array(
                [self._basal_of_elem[int(c)] for c in chunk[basal_mask]], dtype=np.int64
            )
            ws = Workset(
                mode=mode,
                solution_local=u_local[idx],
                w_bf=self.basis.w_bf[idx],
                w_grad_bf=self.basis.w_grad_bf[idx],
                grad_bf=self.basis.grad_bf[idx],
                flow_factor_qp=self.flow_factor_qp[idx],
                grad_s_qp=self.grad_s_qp[idx],
                basal_cells=basal_cells_local,
                basal_w_bf=self.face_basis.w_bf[basal_rows] if len(basal_rows) else None,
                basal_beta_qp=self.basal_beta_qp[basal_rows] if len(basal_rows) else None,
                basal_bf=self.face_basis.bf if len(basal_rows) else None,
            )
            yield a, b, self.field_manager.evaluate(ws)

    def _sweep_owned(self, u: np.ndarray, mode: str, owned: np.ndarray):
        """Evaluator sweep over one rank's owned cells.

        The evaluator DAG is strictly per-element, so the result depends
        only on ``owned`` -- whichever rank executes the sweep (the owner
        or, after a rank failure, a survivor) produces bitwise-identical
        blocks, which is what keeps degraded trajectories equal to
        healthy ones.
        """
        k = self.dofmap.dofs_per_elem
        if mode == "jacobian_fused":
            loc_r = np.empty((len(owned), k))
            loc_j = np.empty((len(owned), k, k))
            for a, b, ws in self._worksets(u, "jacobian", cells=owned):
                loc_r[a:b] = ws.out_residual
                loc_j[a:b] = ws.out_jacobian
            return loc_r, loc_j
        if mode == "jacobian":
            loc = np.empty((len(owned), k, k))
            for a, b, ws in self._worksets(u, mode, cells=owned):
                loc[a:b] = ws.out_jacobian
            return loc
        loc = np.empty((len(owned), k))
        for a, b, ws in self._worksets(u, mode, cells=owned):
            loc[a:b] = ws.out_residual
        return loc

    def _perturb_block(self, block, plane, rank: int, mode: str):
        """Route a sweep's output through the ``sweep.output`` fault site."""
        if not plane.active:
            return block
        if isinstance(block, tuple):
            loc_r, loc_j = block
            return plane.perturb("sweep.output", loc_r, rank=rank, mode=mode), loc_j
        return plane.perturb("sweep.output", block, rank=rank, mode=mode)

    def _mark_dead(self, p: int, plane) -> None:
        """Record a rank failure and its redistribution decision."""
        self._dead_ranks.add(p)
        survivor = choose_survivor(self._dead_ranks, self.config.nparts)
        log = plane.log
        if log is not None:
            log.record("detection", "rank_failure", "spmd.rank", rank=p)
            if survivor is not None:
                log.record(
                    "recovery", "rank_redistribution", "spmd.rank",
                    rank=p, survivor=survivor,
                )
            else:
                log.record("recovery", "serial_fallback", "spmd.rank", rank=p)
        get_metrics().counter("resilience.dead_ranks").inc()

    def _rank_blocks(self, u: np.ndarray, mode: str) -> list:
        """Per-rank evaluator sweeps over owned cells (the SPMD scatter
        sources).  Returns residual blocks, Jacobian blocks, or both.

        Graceful degradation: a rank killed by the fault plane is marked
        dead for the rest of the solve and its owned cells are swept by
        the lowest-numbered survivor (serial fallback when none remain).
        Because sweeps are per-element and the scatter order is fixed by
        the assembly routes, the degraded result is bitwise equal to the
        healthy one.
        """
        self.spmd.record_ghost_refresh()
        plane = fault_plane()
        if not plane.active and not self._dead_ranks:
            # disarmed fast path: one attribute read, no per-rank pokes
            return [
                self._sweep_owned(u, mode, self.spmd.owned_elems(p))
                for p in range(self.config.nparts)
            ]
        blocks = []
        for p in range(self.config.nparts):
            owned = self.spmd.owned_elems(p)
            if plane.active and p not in self._dead_ranks:
                try:
                    plane.poke("spmd.rank", rank=p, mode=mode)
                except RankFailure:
                    self._mark_dead(p, plane)
            executor = p
            if p in self._dead_ranks:
                survivor = choose_survivor(self._dead_ranks, self.config.nparts)
                executor = survivor if survivor is not None else p
            block = self._sweep_owned(u, mode, owned)
            blocks.append(self._perturb_block(block, plane, executor, mode))
        return blocks

    def residual(self, u: np.ndarray) -> np.ndarray:
        """Global residual F(u) with Dirichlet rows replaced by u - 0."""
        tr = get_tracer()
        if self.spmd is not None:
            with tr.span("stokes.evaluate", mode="residual", spmd=True) as sp:
                blocks = self._rank_blocks(u, "residual")
            self.phase_seconds["evaluate"] += sp.dur_s
            self.eval_counts["residual"] += 1
            with tr.span("stokes.scatter", mode="residual", spmd=True) as sp:
                f = self.spmd.assemble_residual(blocks)
                f[self.bc_dofs] = self.bc_diag_scale * u[self.bc_dofs]
            self.phase_seconds["scatter"] += sp.dur_s
            return f
        local = np.empty((self.mesh.num_elems, self.dofmap.dofs_per_elem))
        with tr.span("stokes.evaluate", mode="residual") as sp:
            for start, stop, ws in self._worksets(u, "residual"):
                local[start:stop] = ws.out_residual
        plane = fault_plane()
        if plane.active:
            local = plane.perturb("sweep.output", local, rank=0, mode="residual")
        self.phase_seconds["evaluate"] += sp.dur_s
        self.eval_counts["residual"] += 1
        with tr.span("stokes.scatter", mode="residual") as sp:
            f = self._finish_residual(local, u)
        self.phase_seconds["scatter"] += sp.dur_s
        return f

    def jacobian(self, u: np.ndarray):
        """Global Jacobian dF/du with scaled Dirichlet rows.

        Serial: a :class:`CsrMatrix`.  SPMD: a row-partitioned
        :class:`DistributedMatrix` whose SpMV and gathered operator are
        bitwise equal to the serial matrix.
        """
        tr = get_tracer()
        if self.spmd is not None:
            with tr.span("stokes.evaluate", mode="jacobian", spmd=True) as sp:
                blocks = self._rank_blocks(u, "jacobian")
            self.phase_seconds["evaluate"] += sp.dur_s
            self.eval_counts["jacobian"] += 1
            with tr.span("stokes.scatter", mode="jacobian", spmd=True) as sp:
                A = self.spmd.assemble_jacobian(blocks, diag_scale=self.bc_diag_scale)
            self.phase_seconds["scatter"] += sp.dur_s
            return A
        k = self.dofmap.dofs_per_elem
        local = np.empty((self.mesh.num_elems, k, k))
        with tr.span("stokes.evaluate", mode="jacobian") as sp:
            for start, stop, ws in self._worksets(u, "jacobian"):
                local[start:stop] = ws.out_jacobian
        plane = fault_plane()
        if plane.active:
            local = plane.perturb("sweep.output", local, rank=0, mode="jacobian")
        self.phase_seconds["evaluate"] += sp.dur_s
        self.eval_counts["jacobian"] += 1
        with tr.span("stokes.scatter", mode="jacobian", operator=self.config.operator_mode) as sp:
            A = self._wrap_jacobian(local)
        self.phase_seconds["scatter"] += sp.dur_s
        return A

    def residual_and_jacobian(self, u: np.ndarray):
        """Fused evaluation: F(u) and dF/du from one jacobian-mode sweep.

        The SFad evaluation computes the residual as the value component
        of the Fad residual, so a single workset sweep in ``jacobian``
        mode yields both outputs -- the paper's loop-fusion theme applied
        to the host-side solve, which previously paid a second full
        residual-mode sweep per Newton step.
        """
        tr = get_tracer()
        if self.spmd is not None:
            with tr.span("stokes.evaluate", mode="jacobian_fused", spmd=True) as sp:
                blocks = self._rank_blocks(u, "jacobian_fused")
            self.phase_seconds["evaluate"] += sp.dur_s
            self.eval_counts["jacobian"] += 1
            with tr.span("stokes.scatter", mode="jacobian_fused", spmd=True) as sp:
                f = self.spmd.assemble_residual([r for r, _ in blocks])
                f[self.bc_dofs] = self.bc_diag_scale * u[self.bc_dofs]
                A = self.spmd.assemble_jacobian(
                    [j for _, j in blocks], diag_scale=self.bc_diag_scale
                )
            self.phase_seconds["scatter"] += sp.dur_s
            return f, A
        k = self.dofmap.dofs_per_elem
        local_r = np.empty((self.mesh.num_elems, k))
        local_j = np.empty((self.mesh.num_elems, k, k))
        with tr.span("stokes.evaluate", mode="jacobian_fused") as sp:
            for start, stop, ws in self._worksets(u, "jacobian"):
                local_r[start:stop] = ws.out_residual
                local_j[start:stop] = ws.out_jacobian
        plane = fault_plane()
        if plane.active:
            local_r = plane.perturb(
                "sweep.output", local_r, rank=0, mode="jacobian_fused"
            )
        self.phase_seconds["evaluate"] += sp.dur_s
        self.eval_counts["jacobian"] += 1
        with tr.span(
            "stokes.scatter", mode="jacobian_fused", operator=self.config.operator_mode
        ) as sp:
            f = self._finish_residual(local_r, u)
            A = self._wrap_jacobian(local_j)
        self.phase_seconds["scatter"] += sp.dur_s
        return f, A

    def _wrap_jacobian(self, local_j: np.ndarray):
        """Serial Jacobian blocks -> solver operator, per ``operator_mode``."""
        if self.matrix_free:
            return self.plan.matrix_free_operator(local_j, diag_scale=self.bc_diag_scale)
        return self.plan.assemble_matrix(local_j, diag_scale=self.bc_diag_scale)

    def _finish_residual(self, local: np.ndarray, u: np.ndarray) -> np.ndarray:
        f = self.plan.assemble_vector(local)
        f[self.bc_dofs] = self.bc_diag_scale * u[self.bc_dofs]
        return f

    # ------------------------------------------------------------------
    def _preconditioner(self, A):
        # per-solve degradation override (serve load shedding): a cheaper
        # rung replaces the configured factory without rebuilding the
        # problem (the cached AssemblyPlan/mesh artifacts are the
        # expensive part; the preconditioner is rebuilt per step anyway)
        kind = self._precond_override or self.config.preconditioner
        if kind == "none":
            return None
        with get_tracer().span("precond.setup", kind=kind):
            if self._resilience is None:
                return self._build_preconditioner(A, kind=kind)
            # recovery ladder: configured factory -> Jacobi -> none.  A
            # failing MDSC setup degrades convergence instead of killing
            # the solve; every fallback is logged by the ladder.
            if self._precond_ladder is None:
                rungs: list[tuple[str, object]] = [
                    (kind, lambda M, k=kind: self._build_preconditioner(M, kind=k))
                ]
                if kind != "jacobi":
                    rungs.append(
                        ("jacobi", lambda M: self._build_preconditioner(M, kind="jacobi"))
                    )
                rungs.append(("none", None))
                self._precond_ladder = PreconditionerLadder(
                    rungs, log=self._resilience.log
                )
            return self._precond_ladder(A)

    def _build_preconditioner(self, A, kind: str | None = None):
        cfg = self.config
        kind = kind if kind is not None else cfg.preconditioner
        if isinstance(A, DistributedMatrix):
            # replicated preconditioner setup from the gathered operator
            # (bitwise equal to the serial matrix); the gather is metered
            # on the matrix_gather channel
            A = A.gather_global()
        if isinstance(A, MatrixFreeJacobian):
            # matrix-free routing: point Jacobi, the line smoother and
            # the two-level MDSC all have element-block constructions;
            # the multilevel AMG hierarchy needs Galerkin CSR products
            # and is assembled-only by design
            if kind == "jacobi":
                return JacobiSmoother(A, iters=3)
            if kind == "vline":
                return MatrixFreeVerticalLineSmoother(A, self.mesh.levels * 2, iters=2)
            if kind == "mdsc":
                return MatrixFreeColumnCollapseMdsc(
                    A,
                    num_columns=self.mesh.footprint.num_nodes,
                    levels=self.mesh.levels,
                    ndof=2,
                )
            raise OperatorModeError(
                f"preconditioner {kind!r} requires an assembled CSR Jacobian, but this "
                "solve runs with operator_mode='matrix-free'; choose a preconditioner "
                "with a matrix-free construction ('mdsc', 'vline', 'jacobi', 'none') or "
                "set operator_mode='assembled'"
            )
        if not isinstance(A, CsrMatrix):
            raise OperatorModeError(
                f"cannot build preconditioner {kind!r} from operator type "
                f"{type(A).__name__}: expected an assembled CsrMatrix (or a "
                "MatrixFreeJacobian for the matrix-free routings); check the solve's "
                "operator_mode"
            )
        if kind == "jacobi":
            return JacobiSmoother(A, iters=3)
        if kind == "vline":
            # the MDSC vertical-line relaxation: with ice-sheet aspect
            # ratios the exact column solve is a near-ideal preconditioner
            return VerticalLineSmoother(A, self.mesh.levels * 2, iters=2)
        if kind == "mdsc":
            return ColumnCollapseMdsc(
                A,
                num_columns=self.mesh.footprint.num_nodes,
                levels=self.mesh.levels,
                ndof=2,
            )
        return build_mdsc_amg(
            A,
            num_columns=self.mesh.footprint.num_nodes,
            levels=self.mesh.levels,
            ndof=2,
            coarse_size=cfg.mg_coarse_size,
        )

    def solve(
        self,
        u0: np.ndarray | None = None,
        callback=None,
        resilience=None,
        checkpoint_every: int | None = None,
        checkpoint_cb=None,
        resume_from=None,
        deadline=None,
        preconditioner: str | None = None,
        newton_tol: float | None = None,
    ) -> VelocitySolution:
        """Run the damped Newton solve and report diagnostics.

        With ``config.fused_assembly`` (the default) each Newton step
        evaluates residual and Jacobian in a single SFad sweep; the
        per-phase wall-time breakdown (evaluate / scatter /
        preconditioner / gmres) lands in ``diagnostics["phase_seconds"]``.
        All phase times come from observability spans, so running inside
        ``repro.observability.tracing()`` additionally records the full
        nested timeline; a metrics snapshot is always embedded in
        ``diagnostics["observability"]``.

        Resilience: pass a :class:`repro.resilience.RecoveryPolicy` to
        recover from detected faults (non-finite sweeps, stagnating
        GMRES, failed preconditioner setup, corrupted halos, dead SPMD
        ranks) instead of raising; when the process fault plane is armed
        (``repro.resilience.fault_injection``) and no policy is given,
        the plane's policy is used automatically so chaos runs recover
        by default.  The event record lands in
        ``diagnostics["resilience"]``.  ``checkpoint_every`` /
        ``checkpoint_cb`` / ``resume_from`` pass through to
        :func:`newton_solve` for checkpoint/restart of the Newton state
        (``checkpoint_cb`` is how a serve worker pool heartbeats and
        snapshots in-flight jobs).

        Service knobs: ``deadline`` (a :class:`repro.resilience.
        Deadline`) makes the solve cooperatively abandon work past its
        wall-clock budget with a typed ``SolveTimeout`` carrying the
        last checkpoint; ``preconditioner`` overrides the configured
        factory for this solve only (the serve degradation ladder drops
        to a cheaper rung under load without rebuilding the problem).

        Warm starting: ``u0`` seeds Newton with a prior velocity (the
        transient engine passes the previous step's solution), and
        ``newton_tol`` overrides ``config.newton_tol`` for this solve
        only -- the engine derives one absolute tolerance from the cold
        start's initial residual so warm-started steps terminate as soon
        as they re-enter the converged basin instead of burning the full
        Newton budget.
        """
        cfg = self.config
        if u0 is None:
            u0 = np.zeros(self.dofmap.num_dofs)
        if preconditioner is not None and preconditioner not in PRECONDITIONERS:
            raise ValueError(
                f"unknown preconditioner override {preconditioner!r}; "
                f"have {PRECONDITIONERS}"
            )

        plane = fault_plane()
        if resilience is None and plane.active:
            resilience = plane.policy
        self._resilience = resilience
        self._precond_ladder = None
        self._precond_override = preconditioner
        self._dead_ranks = set()

        # per-solve lifecycle for BOTH phase times and sweep counts: two
        # successive solves each report their own numbers, never
        # cumulative ones (regression-tested)
        self.phase_seconds = {"evaluate": 0.0, "scatter": 0.0}
        self.eval_counts = {"residual": 0, "jacobian": 0}
        # "auto" keeps assembled-mode trajectories on the bitwise-pinned
        # MGS reference and gives the matrix-free hot path the fused
        # single-pass orthogonalization it exists for
        gmres_orth = cfg.gmres_orth
        if gmres_orth == "auto":
            gmres_orth = "fused" if self.matrix_free else "mgs"

        tr = get_tracer()
        with tr.span(
            "velocity.solve",
            num_dofs=self.dofmap.num_dofs,
            num_cells=self.mesh.num_elems,
            nparts=cfg.nparts,
            fused=cfg.fused_assembly,
            operator_mode=cfg.operator_mode,
        ) as solve_span:
            newton = newton_solve(
                self.residual,
                self.jacobian,
                u0,
                max_steps=cfg.newton_steps,
                tol=cfg.newton_tol if newton_tol is None else float(newton_tol),
                linear_tol=cfg.linear_tol,
                gmres_restart=cfg.gmres_restart,
                gmres_maxiter=cfg.gmres_maxiter,
                gmres_orth=gmres_orth,
                preconditioner_fn=self._preconditioner,
                callback=callback,
                residual_jacobian_fn=self.residual_and_jacobian if cfg.fused_assembly else None,
                reducer=self.reducer,
                resilience=resilience,
                checkpoint_every=checkpoint_every,
                checkpoint_cb=checkpoint_cb,
                resume_from=resume_from,
                deadline=deadline,
            )
        solve_seconds = solve_span.dur_s
        u = newton.x
        speeds = np.hypot(*self.dofmap.nodal_view(u).T)
        surf = self.mesh.surface_nodes()
        phase_seconds = {
            "evaluate": self.phase_seconds["evaluate"],
            "scatter": self.phase_seconds["scatter"],
            "preconditioner": newton.phase_seconds.get("preconditioner", 0.0),
            "gmres": newton.phase_seconds.get("gmres", 0.0),
        }
        diagnostics = {
            "newton_residuals": newton.residual_norms,
            "linear_iterations": newton.linear_iterations,
            "linear_flags": newton.linear_flags,
            "num_dofs": self.dofmap.num_dofs,
            "num_cells": self.mesh.num_elems,
            "fused_assembly": cfg.fused_assembly,
            "operator_mode": "matrix-free" if self.matrix_free else "assembled",
            "gmres_orth": gmres_orth,
            # autotuner provenance: "off" is a hand-picked config; "auto"
            # means the axes above came from the tune cache / online search
            "tuned": cfg.tuned,
            # the preconditioner actually used this solve (a serve
            # degradation override wins over the configured factory)
            "preconditioner": preconditioner or cfg.preconditioner,
            "newton_tol": cfg.newton_tol if newton_tol is None else float(newton_tol),
            "warm_started": newton.warm_started,
            "gmres_restart": cfg.gmres_restart,
            "solve_seconds": solve_seconds,
            "newton_steps_per_s": newton.iterations / solve_seconds if solve_seconds > 0 else 0.0,
            "phase_seconds": phase_seconds,
            "eval_sweeps": dict(self.eval_counts),
            "observability": {
                "tracing_active": tr.recording,
                "spans_recorded": len(tr.spans),
                "metrics": get_metrics().snapshot(),
                "series": get_series().summary(),
            },
        }
        if self.spmd is not None:
            diagnostics["spmd"] = self._spmd_diagnostics()
        if resilience is not None:
            # one merged event record: the policy's log plus (when the
            # plane was armed with a different log) the injection log
            merged = ResilienceLog()
            merged.extend(resilience.log.events)
            if plane.active and plane.log is not resilience.log:
                merged.extend(plane.log.events)
            rsum = merged.summary()
            if plane.active:
                rsum["schedule"] = plane.schedule.describe()
            rsum["dead_ranks"] = sorted(self._dead_ranks)
            diagnostics["resilience"] = rsum
        return VelocitySolution(
            u=u,
            newton=newton,
            mean_velocity=float(speeds.mean()),
            max_velocity=float(speeds.max()),
            surface_mean_velocity=float(speeds[surf].mean()),
            diagnostics=diagnostics,
        )

    def _spmd_diagnostics(self) -> dict:
        """Measured per-rank halo traffic, imbalance and exchange counts.

        ``ghost_columns_analytic`` is the ``4 sqrt(A)`` compact-patch
        estimate the scaling model falls back to; the measured-vs-
        analytic ratio quantifies how far the real RCB decomposition
        sits from that idealization.
        """
        stats = halo_statistics(self.partition)
        cells_per_rank = self.mesh.num_elems / self.config.nparts
        analytic = 4.0 * float(np.sqrt(max(1.0, cells_per_rank / self.mesh.nlayers)))
        return {
            "nparts": self.config.nparts,
            "halo": stats.to_dict(),
            "traffic": self.meter.summary(),
            "elem_imbalance": self.spmd.imbalance(),
            "ghost_columns_measured_max": stats.max_ghost_nodes,
            "ghost_columns_measured_mean": stats.mean_ghost_nodes,
            "ghost_columns_analytic": analytic,
            "measured_vs_analytic_ghost_ratio": stats.max_ghost_nodes / analytic,
        }
