"""PyMALI: a Python reproduction of "Performance Portable Optimizations
of an Ice-sheet Modeling Code on GPU-supercomputers" (SC 2024).

Public entry points:

* :mod:`repro.app` -- the Antarctica velocity-solve test
  (:class:`~repro.app.antarctica.AntarcticaTest`).
* :mod:`repro.core` -- the paper's baseline/optimized kernels and the
  variant registry.
* :mod:`repro.gpusim` -- the A100/MI250X performance simulator
  (:class:`~repro.gpusim.simulator.GPUSimulator`).
* :mod:`repro.perf` -- Roofline, the time-oriented portability model,
  and the Phi metric.

See README.md for a tour and DESIGN.md for the system inventory;
``python -m repro all`` regenerates every reproduced artifact.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
