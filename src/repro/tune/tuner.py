"""The online autotuner: prior-seeded search with measured trials.

The search closes the loop ROADMAP item 5 describes: the repo could
already *measure* every variant/LaunchBounds/smoother/restart tradeoff,
but a human still picked the configuration.  ``AutoTuner.tune()`` picks
it automatically, per (mesh key, GPU architecture):

1. **Enumerate** the discrete space (:class:`repro.tune.space.TuneSpace`)
   and drop candidates unlaunchable on the target spec.
2. **Prior** (:class:`repro.tune.prior.GpusimPrior`): the gpusim
   byte/occupancy model prices every candidate; the kernel axes
   (``kernel_impl``, ``launch_bounds``) are decided *entirely* by the
   model -- a Python process cannot measure GPU register pressure, and
   both kernel implementations compute bitwise-identical physics -- and
   the solver axes are ranked for measured trials.
3. **Trials**: the top-ranked distinct solver-axis configurations (the
   hand-picked default always included, one seeded exploration pick from
   the remainder) each run one real solve.  The figures of merit are the
   *deterministic* counters -- GMRES iterations, modeled
   ``gmres.{matvec,stream}.bytes`` metered by the solver, evaluator
   sweep counts priced by the kernel model -- with wall seconds recorded
   as advisory only, so the winner is reproducible across machines.
4. **Persist** the winner to the versioned JSON cache
   (:class:`repro.tune.cache.TuneCache`); the next solve with
   ``tuned="auto"`` reuses it with zero trials.

Every phase emits observability events: ``tune.search`` / ``tune.trial``
spans, the ``tune.trials`` counter and ``tune.best_*`` gauges.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

from repro.app.config import VelocityConfig
from repro.gpusim.specs import GPUSpec, default_tuning_spec
from repro.observability import get_metrics, get_series, get_tracer
from repro.tune.cache import TuneCache, TuneRecord, cache_key
from repro.tune.prior import GpusimPrior, ProblemModel
from repro.tune.space import DEFAULT_SPACE, TuneCandidate, TuneSpace, candidate_from_config

__all__ = ["TrialResult", "TuneReport", "AutoTuner", "tuned_velocity_config"]

#: measured trials per search (including the hand-picked default)
DEFAULT_TRIAL_BUDGET = 5

#: a trial whose mean velocity strays beyond this relative distance from
#: the default trial's is not solving the same physics (diverged or
#: truncated) and is disqualified regardless of its byte bill
VALID_RTOL = 1.0e-4


@dataclass
class TrialResult:
    """Deterministic counters of one measured trial solve."""

    candidate: TuneCandidate
    gmres_iterations: int
    gmres_matvecs: int
    matvec_bytes: float
    stream_bytes: float
    kernel_bytes: float
    eval_sweeps: dict
    newton_converged: bool
    mean_velocity: float
    #: advisory only -- never ranks candidates
    wall_seconds: float
    valid: bool = True

    @property
    def solver_bytes(self) -> float:
        return self.matvec_bytes + self.stream_bytes

    @property
    def cost_bytes(self) -> float:
        """The deterministic figure of merit: total modeled HBM bytes of
        the solve (kernel sweeps + GMRES matvec/stream traffic)."""
        return self.kernel_bytes + self.solver_bytes

    @property
    def bytes_per_iteration(self) -> float:
        return self.solver_bytes / max(1, self.gmres_iterations)


@dataclass
class TuneReport:
    """Everything one search produced (the CLI prints this)."""

    mesh_key: str
    gpu: str
    record: TuneRecord
    trials: list[TrialResult] = field(default_factory=list)
    #: candidate.describe() per trial, in execution order (the
    #: determinism contract: same seed + same mesh => same sequence)
    trial_sequence: list[str] = field(default_factory=list)
    num_candidates: int = 0


class AutoTuner:
    """One search over one mesh on one architecture.

    ``problem_factory(velocity_config)`` must return an object with a
    ``solve()`` method yielding a :class:`repro.app.velocity_solver.
    VelocitySolution` plus ``dofmap``/``mesh``/``plan`` attributes (a
    :class:`StokesVelocityProblem` over a prebuilt mesh is the intended
    factory -- mesh construction is paid once, not per trial).
    """

    def __init__(
        self,
        problem_factory,
        base_config: VelocityConfig,
        mesh_key: str,
        spec: GPUSpec | None = None,
        cache: TuneCache | None = None,
        space: TuneSpace = DEFAULT_SPACE,
        budget: int = DEFAULT_TRIAL_BUDGET,
        seed: int = 0,
    ):
        if budget < 1:
            raise ValueError("trial budget must cover at least the default config")
        self.problem_factory = problem_factory
        self.base_config = base_config
        self.mesh_key = mesh_key
        self.spec = spec if spec is not None else default_tuning_spec()
        self.cache = cache if cache is not None else TuneCache()
        self.space = space
        self.budget = budget
        self.seed = seed

    # ------------------------------------------------------------------
    def _trial_config(self, candidate: TuneCandidate) -> VelocityConfig:
        # tuned="off" on trial configs: a trial must never consult the
        # cache (or re-enter the tuner) itself
        return dataclasses.replace(candidate.apply_to(self.base_config), tuned="off")

    def _counter_delta(self, before: dict, after: dict, name: str) -> float:
        return float(after.get(name, 0.0)) - float(before.get(name, 0.0))

    def _run_trial(self, candidate: TuneCandidate, prior: GpusimPrior) -> TrialResult:
        metrics = get_metrics()
        problem = self.problem_factory(self._trial_config(candidate))
        before = metrics.snapshot()["counters"]
        with get_tracer().span(
            "tune.trial", candidate=candidate.describe(), mesh=self.mesh_key
        ) as sp:
            sol = problem.solve()
        after = metrics.snapshot()["counters"]
        metrics.counter("tune.trials").inc()

        mode = sol.diagnostics["operator_mode"]
        sweeps = sol.diagnostics["eval_sweeps"]
        kernel_bytes = (
            sweeps["jacobian"] * prior.kernel_profile(candidate, "jacobian").hbm_bytes
            + sweeps["residual"] * prior.kernel_profile(candidate, "residual").hbm_bytes
        )
        trial = TrialResult(
            candidate=candidate,
            gmres_iterations=int(sum(sol.newton.linear_iterations)),
            gmres_matvecs=int(self._counter_delta(before, after, "gmres.matvecs")),
            matvec_bytes=self._counter_delta(before, after, f"gmres.matvec.bytes.{mode}"),
            stream_bytes=self._counter_delta(before, after, f"gmres.stream.bytes.{mode}"),
            kernel_bytes=float(kernel_bytes),
            eval_sweeps=dict(sweeps),
            newton_converged=bool(sol.newton.converged),
            mean_velocity=float(sol.mean_velocity),
            wall_seconds=float(sp.dur_s),
        )
        # trial outcome timeline: the search's figure of merit per trial,
        # labeled by candidate so convergence plots show the search path
        get_series().record(
            "tune.trial.cost_bytes", trial.cost_bytes,
            candidate=candidate.describe(), mesh=self.mesh_key,
        )
        return trial

    # ------------------------------------------------------------------
    def _candidates(self) -> list[TuneCandidate]:
        cands = self.space.enumerate(self.spec)
        if self.base_config.nparts > 1:
            # SPMD solves always assemble (the row-partitioned operator
            # is the halo-exchange unit), so the matrix-free half of the
            # space is dead weight on a distributed mesh
            cands = [c for c in cands if c.operator_mode == "assembled"]
        return cands

    def _best_kernel_axes(
        self, candidates: list[TuneCandidate], prior: GpusimPrior
    ) -> tuple[str, object]:
        """Model-decided kernel axes: fewest modeled HBM bytes per sweep
        pair, modeled time as the tiebreak, enumeration order after."""
        seen = []
        keys = set()
        for c in candidates:
            k = (c.kernel_impl, str(c.launch_bounds))
            if k not in keys:
                keys.add(k)
                seen.append(c)
        best = min(
            range(len(seen)),
            key=lambda i: (
                prior.kernel_profile(seen[i], "jacobian").hbm_bytes
                + prior.kernel_profile(seen[i], "residual").hbm_bytes,
                prior.kernel_profile(seen[i], "jacobian").time_s
                + prior.kernel_profile(seen[i], "residual").time_s,
                i,
            ),
        )
        return seen[best].kernel_impl, seen[best].launch_bounds

    def _trial_queue(
        self, candidates: list[TuneCandidate], prior: GpusimPrior, kernel_axes: tuple
    ) -> list[TuneCandidate]:
        """Distinct solver-axis configurations to measure, in order:
        the hand-picked default first, then the prior ranking, with the
        last slot a seeded exploration pick from the unranked tail."""
        impl, lb = kernel_axes
        default = candidate_from_config(self.base_config)
        queue = [default]
        seen = {default.solver_axes}
        ranked = []
        for score in prior.rank(candidates):
            c = score.candidate
            if c.solver_axes in seen:
                continue
            seen.add(c.solver_axes)
            ranked.append(TuneCandidate(impl, lb, *c.solver_axes))
        n_prior = max(0, self.budget - 1)
        explore = 1 if self.budget >= 3 and len(ranked) > n_prior else 0
        queue.extend(ranked[: n_prior - explore])
        if explore:
            rng = random.Random(self.seed)
            queue.append(rng.choice(ranked[n_prior - explore :]))
        return queue

    # ------------------------------------------------------------------
    def tune(self) -> TuneReport:
        """Run the search, persist the winner, and report every trial."""
        metrics = get_metrics()
        with get_tracer().span(
            "tune.search", mesh=self.mesh_key, gpu=self.spec.name, budget=self.budget
        ):
            candidates = self._candidates()
            # probe problem doubles as the default trial's problem model
            probe = self.problem_factory(self._trial_config(candidate_from_config(self.base_config)))
            model = ProblemModel(
                num_dofs=probe.dofmap.num_dofs,
                num_cells=probe.mesh.num_elems,
                nnz=probe.plan.nnz,
                dofs_per_elem=probe.dofmap.dofs_per_elem,
                newton_steps=self.base_config.newton_steps,
            )
            prior = GpusimPrior(self.spec, model)
            kernel_axes = self._best_kernel_axes(candidates, prior)
            queue = self._trial_queue(candidates, prior, kernel_axes)

            trials: list[TrialResult] = []
            for cand in queue:
                trials.append(self._run_trial(cand, prior))
            default_trial = trials[0]
            for t in trials[1:]:
                # a trial that solved different physics cannot win on bytes
                rel = abs(t.mean_velocity - default_trial.mean_velocity) / max(
                    1.0e-30, abs(default_trial.mean_velocity)
                )
                if rel > VALID_RTOL or (
                    default_trial.newton_converged and not t.newton_converged
                ):
                    t.valid = False

            winner = min(
                (t for t in trials if t.valid),
                key=lambda t: (t.cost_bytes, t.candidate.describe()),
            )
            record = TuneRecord(
                candidate=winner.candidate,
                cost_bytes=winner.cost_bytes,
                gmres_iterations=winner.gmres_iterations,
                trials=len(trials),
                default_cost_bytes=default_trial.cost_bytes,
            )
            self.cache.put(cache_key(self.mesh_key, self.spec.name), record)
            self.cache.save()

            metrics.gauge("tune.best_cost_bytes").set(winner.cost_bytes)
            metrics.gauge("tune.best_gmres_iterations").set(winner.gmres_iterations)
            metrics.gauge("tune.default_cost_bytes").set(default_trial.cost_bytes)
            metrics.gauge("tune.cost_ratio").set(
                winner.cost_bytes / max(1.0e-30, default_trial.cost_bytes)
            )
            metrics.counter("tune.cache.stores").inc()

        return TuneReport(
            mesh_key=self.mesh_key,
            gpu=self.spec.name,
            record=record,
            trials=trials,
            trial_sequence=[t.candidate.describe() for t in trials],
            num_candidates=len(candidates),
        )


# ----------------------------------------------------------------------
def tuned_velocity_config(
    mesh_key: str,
    config: VelocityConfig,
    problem_factory,
    spec: GPUSpec | None = None,
    cache: TuneCache | None = None,
    budget: int = DEFAULT_TRIAL_BUDGET,
    seed: int = 0,
) -> VelocityConfig:
    """The transparent ``tuned="auto"`` entry point.

    Cache hit: apply the persisted winner (zero trials).  Miss: run a
    bounded online search on this mesh, persist, apply.  Any other
    ``tuned`` value returns ``config`` unchanged.
    """
    if config.tuned != "auto":
        return config
    spec = spec if spec is not None else default_tuning_spec()
    cache = cache if cache is not None else TuneCache()
    rec = cache.get(cache_key(mesh_key, spec.name))
    if rec is None:
        rec = AutoTuner(
            problem_factory,
            config,
            mesh_key,
            spec=spec,
            cache=cache,
            budget=budget,
            seed=seed,
        ).tune().record
    return rec.candidate.apply_to(config)
