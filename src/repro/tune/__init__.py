"""Online autotuner with persisted per-(mesh, GPU) configurations.

The paper's Table II shows ~1.5x sitting in a LaunchBounds choice; the
smoother/operator-mode/orthogonalization axes added by PRs 1-6 hide
comparable factors.  This package picks all of them automatically:

* :mod:`repro.tune.space` -- the discrete candidate space;
* :mod:`repro.tune.prior` -- the gpusim byte/occupancy model as the
  search prior (kernel axes decided by the model, solver axes ranked
  for measured trials);
* :mod:`repro.tune.tuner` -- the trial loop over real solves, scored by
  deterministic counters (GMRES iterations, metered solver bytes,
  evaluator sweeps), with wall time advisory only;
* :mod:`repro.tune.cache` -- schema-versioned JSON persistence keyed by
  ``(mesh key, GPU spec)``, reused transparently by
  ``VelocityConfig(tuned="auto")`` and warmed by ``python -m repro
  tune``.
"""

from repro.tune.cache import (
    SCHEMA_VERSION,
    TuneCache,
    TuneRecord,
    cache_key,
    default_cache_path,
)
from repro.tune.prior import GpusimPrior, PriorScore, ProblemModel
from repro.tune.space import DEFAULT_SPACE, TuneCandidate, TuneSpace, candidate_from_config
from repro.tune.tuner import (
    DEFAULT_TRIAL_BUDGET,
    AutoTuner,
    TrialResult,
    TuneReport,
    tuned_velocity_config,
)

__all__ = [
    "SCHEMA_VERSION",
    "TuneCache",
    "TuneRecord",
    "cache_key",
    "default_cache_path",
    "GpusimPrior",
    "PriorScore",
    "ProblemModel",
    "DEFAULT_SPACE",
    "TuneCandidate",
    "TuneSpace",
    "candidate_from_config",
    "DEFAULT_TRIAL_BUDGET",
    "AutoTuner",
    "TrialResult",
    "TuneReport",
    "tuned_velocity_config",
]
