"""Versioned JSON persistence of tuned configurations.

One cache file holds the winning configuration per ``(mesh key, GPU
spec)`` pair, so a tuned solve is a dictionary lookup on the next run
(zero trials -- the acceptance contract asserts this via the
``tune.trials`` counter).  The file is *advisory state*, never a
correctness input, so every failure mode degrades to "tune again or use
the hand-picked defaults":

* corrupt JSON / wrong top-level shape -> the whole file is ignored and
  a ``tune.cache.invalid`` counter is incremented (never a crash);
* schema-version mismatch (top-level or per-entry) -> the stale entries
  are ignored (``tune.cache.stale``) and overwritten on the next save;
* unknown axis values from a future repo version -> that entry is
  dropped on load (it no longer describes a constructible config).

Writes are atomic (tmp file + ``os.replace``) so a crashed tuner never
leaves a half-written cache behind.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.observability import get_metrics
from repro.tune.space import TuneCandidate

__all__ = ["SCHEMA_VERSION", "TuneRecord", "TuneCache", "default_cache_path", "cache_key"]

SCHEMA_VERSION = 1

#: environment override for the cache location (tests point this at a
#: tmp dir; CI keeps it out of the workspace)
CACHE_ENV = "REPRO_TUNE_CACHE"


def default_cache_path() -> Path:
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "tuned_configs.json"


def cache_key(mesh_key: str, gpu_name: str) -> str:
    """Cache entries are per (mesh, architecture): ``<mesh>|<gpu>``."""
    return f"{mesh_key}|{gpu_name}"


@dataclass(frozen=True)
class TuneRecord:
    """One persisted winner: the config plus its measured credentials."""

    candidate: TuneCandidate
    #: measured deterministic cost (modeled kernel + solver HBM bytes)
    cost_bytes: float
    #: measured GMRES iterations of the winning solve
    gmres_iterations: int
    #: trials spent finding it
    trials: int
    #: deterministic cost of the hand-picked default it was searched
    #: against (the acceptance ratio ``cost_bytes / default_cost_bytes``
    #: must be <= 1)
    default_cost_bytes: float

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "config": self.candidate.to_dict(),
            "cost_bytes": self.cost_bytes,
            "gmres_iterations": self.gmres_iterations,
            "trials": self.trials,
            "default_cost_bytes": self.default_cost_bytes,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TuneRecord":
        return cls(
            candidate=TuneCandidate.from_dict(d["config"]),
            cost_bytes=float(d["cost_bytes"]),
            gmres_iterations=int(d["gmres_iterations"]),
            trials=int(d["trials"]),
            default_cost_bytes=float(d["default_cost_bytes"]),
        )


class TuneCache:
    """The on-disk ``{key: TuneRecord}`` map, loaded tolerantly."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else default_cache_path()
        self._entries: dict[str, TuneRecord] = {}
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not self.path.exists():
            return
        metrics = get_metrics()
        try:
            doc = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            metrics.counter("tune.cache.invalid").inc()
            return
        if not isinstance(doc, dict) or not isinstance(doc.get("entries"), dict):
            metrics.counter("tune.cache.invalid").inc()
            return
        if doc.get("schema_version") != SCHEMA_VERSION:
            # a whole file written by another schema: every entry is stale
            metrics.counter("tune.cache.stale").inc(len(doc["entries"]))
            return
        for key, entry in doc["entries"].items():
            if not isinstance(entry, dict) or entry.get("schema_version") != SCHEMA_VERSION:
                metrics.counter("tune.cache.stale").inc()
                continue
            try:
                self._entries[str(key)] = TuneRecord.from_dict(entry)
            except (KeyError, TypeError, ValueError):
                metrics.counter("tune.cache.invalid").inc()

    # ------------------------------------------------------------------
    def get(self, key: str) -> TuneRecord | None:
        rec = self._entries.get(key)
        metrics = get_metrics()
        if rec is None:
            metrics.counter("tune.cache.misses").inc()
        else:
            metrics.counter("tune.cache.hits").inc()
        return rec

    def put(self, key: str, record: TuneRecord) -> None:
        self._entries[key] = record

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[str]:
        return sorted(self._entries)

    # ------------------------------------------------------------------
    def save(self) -> Path:
        """Atomic write of the full map (sorted keys: stable diffs)."""
        doc = {
            "schema_version": SCHEMA_VERSION,
            "entries": {k: self._entries[k].to_dict() for k in sorted(self._entries)},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.path)
        return self.path
