"""The autotuner's discrete configuration space.

One :class:`TuneCandidate` is a full solver configuration along the six
tuned axes: kernel implementation, ``Kokkos::LaunchBounds`` (Table II's
knob, consumed by the GPU model), preconditioner, operator mode, GMRES
orthogonalization and GMRES restart length.  The space is the cross
product of :data:`DEFAULT_SPACE`, filtered down to candidates that are
actually *launchable* on the target GPU spec (a LaunchBounds whose
block exceeds ``max_threads_per_cu`` cannot run on real hardware and is
rejected by the occupancy model too) and *constructible* as a
:class:`repro.app.config.VelocityConfig` (e.g. the multilevel
``mdsc-amg`` hierarchy needs Galerkin CSR products, so it never pairs
with ``operator_mode="matrix-free"``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.app.config import VelocityConfig
from repro.core.launch import TABLE2_LAUNCH_CONFIGS, default_launch_bounds
from repro.gpusim.specs import GPUSpec
from repro.kokkos.policy import LaunchBounds

__all__ = ["TuneCandidate", "TuneSpace", "DEFAULT_SPACE", "candidate_from_config"]

#: preconditioners with no matrix-free construction (assembled-only)
_ASSEMBLED_ONLY_PRECONDITIONERS = frozenset({"mdsc-amg"})


@dataclass(frozen=True)
class TuneCandidate:
    """One point of the discrete search space."""

    kernel_impl: str
    launch_bounds: LaunchBounds
    preconditioner: str
    operator_mode: str
    gmres_orth: str
    gmres_restart: int

    @property
    def solver_axes(self) -> tuple:
        """The axes that change the in-Python Newton--Krylov trajectory.

        ``kernel_impl`` and ``launch_bounds`` only change the *modeled*
        kernel cost (both implementations compute identical physics), so
        two candidates sharing these axes share one measured trial.
        """
        return (
            self.preconditioner,
            self.operator_mode,
            self.gmres_orth,
            self.gmres_restart,
        )

    def describe(self) -> str:
        return (
            f"{self.kernel_impl}/lb={self.launch_bounds}/"
            f"{self.preconditioner}/{self.operator_mode}/"
            f"{self.gmres_orth}/restart={self.gmres_restart}"
        )

    def effective_launch_bounds(self, mode: str) -> LaunchBounds:
        """Resolve the backend default for the given kernel mode."""
        if self.launch_bounds.explicit:
            return self.launch_bounds
        return default_launch_bounds(mode)

    def apply_to(self, config: VelocityConfig) -> VelocityConfig:
        """Overlay the tuned axes onto ``config`` (everything else --
        tolerances, Newton budget, ``nparts``, ``tuned`` -- survives)."""
        return dataclasses.replace(
            config,
            kernel_impl=self.kernel_impl,
            preconditioner=self.preconditioner,
            operator_mode=self.operator_mode,
            gmres_orth=self.gmres_orth,
            gmres_restart=self.gmres_restart,
        )

    def to_dict(self) -> dict:
        return {
            "kernel_impl": self.kernel_impl,
            "launch_bounds": {
                "max_threads": self.launch_bounds.max_threads,
                "min_blocks": self.launch_bounds.min_blocks,
                "explicit": self.launch_bounds.explicit,
            },
            "preconditioner": self.preconditioner,
            "operator_mode": self.operator_mode,
            "gmres_orth": self.gmres_orth,
            "gmres_restart": self.gmres_restart,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TuneCandidate":
        lb = d["launch_bounds"]
        return cls(
            kernel_impl=str(d["kernel_impl"]),
            launch_bounds=LaunchBounds(
                max_threads=int(lb["max_threads"]),
                min_blocks=int(lb["min_blocks"]),
                explicit=bool(lb["explicit"]),
            ),
            preconditioner=str(d["preconditioner"]),
            operator_mode=str(d["operator_mode"]),
            gmres_orth=str(d["gmres_orth"]),
            gmres_restart=int(d["gmres_restart"]),
        )


@dataclass(frozen=True)
class TuneSpace:
    """Axis values the search enumerates (the cross product, filtered)."""

    kernel_impls: tuple[str, ...] = ("optimized", "baseline")
    launch_bounds: tuple[LaunchBounds, ...] = tuple(TABLE2_LAUNCH_CONFIGS)
    preconditioners: tuple[str, ...] = ("mdsc", "vline", "jacobi")
    operator_modes: tuple[str, ...] = ("assembled", "matrix-free")
    gmres_orths: tuple[str, ...] = ("mgs", "fused")
    gmres_restarts: tuple[int, ...] = (30, 100, 300)

    def enumerate(self, spec: GPUSpec | None = None) -> list[TuneCandidate]:
        """All launchable, constructible candidates, in a fixed order.

        The order is the deterministic row-major sweep of the axis
        tuples above -- the search's trial sequence is a pure function
        of (space, prior, seed), never of dict/set iteration order.
        """
        out = []
        for impl in self.kernel_impls:
            for lb in self.launch_bounds:
                for pc in self.preconditioners:
                    for op in self.operator_modes:
                        for orth in self.gmres_orths:
                            for restart in self.gmres_restarts:
                                c = TuneCandidate(impl, lb, pc, op, orth, restart)
                                if self._admissible(c, spec):
                                    out.append(c)
        return out

    def _admissible(self, c: TuneCandidate, spec: GPUSpec | None) -> bool:
        if (
            c.operator_mode == "matrix-free"
            and c.preconditioner in _ASSEMBLED_ONLY_PRECONDITIONERS
        ):
            return False
        if spec is not None:
            for mode in ("jacobian", "residual"):
                if c.effective_launch_bounds(mode).max_threads > spec.max_threads_per_cu:
                    return False
        return True


#: the default search space (Table II LaunchBounds x solver axes)
DEFAULT_SPACE = TuneSpace()


def candidate_from_config(
    config: VelocityConfig, launch_bounds: LaunchBounds | None = None
) -> TuneCandidate:
    """The candidate a hand-picked :class:`VelocityConfig` corresponds to.

    ``gmres_orth="auto"`` resolves exactly as the solver resolves it
    (fused in matrix-free mode, MGS otherwise) so the baseline trial
    measures what the untuned solve would actually run.
    """
    orth = config.gmres_orth
    if orth == "auto":
        orth = "fused" if config.operator_mode == "matrix-free" else "mgs"
    return TuneCandidate(
        kernel_impl=config.kernel_impl,
        launch_bounds=launch_bounds if launch_bounds is not None else TABLE2_LAUNCH_CONFIGS[0],
        preconditioner=config.preconditioner,
        operator_mode=config.operator_mode,
        gmres_orth=orth,
        gmres_restart=config.gmres_restart,
    )
