"""The gpusim byte/occupancy model as a search prior.

Measured trials are expensive (each is a full Newton--Krylov solve), so
the tuner only spends them on candidates the *model* already ranks as
promising.  The prior prices every candidate in modeled HBM bytes per
Newton step, the deterministic currency the whole perf stack uses
(Section V: the solve is bandwidth-bound, so bytes order configurations
the way time does on real hardware):

* **kernel side** -- the gpusim pipeline (register allocation ->
  occupancy -> cache/memtrace -> timing) run once per distinct
  ``(kernel_impl, launch_bounds, mode)`` at this mesh's cell count.
  This is where Table II lives: a LaunchBounds that spills SFad
  accumulators to scratch pays real modeled bytes and loses.
* **solver side** -- the :mod:`repro.gpusim.solver_bytes` analytic model
  at an *estimated* Krylov depth: matvec bytes per operator mode, fused
  vs MGS orthogonalization streams, the assembled mode's per-step CSR
  fill, scaled by a per-preconditioner iteration-count heuristic.

The prior never decides the winner -- measured deterministic counters
do -- it only orders the trial queue (and breaks ties deterministically
by the candidate's position in the enumeration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim import solver_bytes as _bytes
from repro.gpusim.simulator import GPUSimulator, KernelProfile, ProblemSize
from repro.gpusim.specs import GPUSpec
from repro.tune.space import TuneCandidate

__all__ = ["ProblemModel", "PriorScore", "GpusimPrior", "ITERATION_FACTOR"]

#: relative GMRES iteration-count factor per preconditioner (the MDSC
#: two-level solve is the reference; line relaxation loses the membrane
#: coupling, Jacobi loses the column coupling too).  Heuristic ordering
#: only -- measured trials overrule it.
ITERATION_FACTOR = {"mdsc": 1.0, "mdsc-amg": 1.1, "vline": 2.0, "jacobi": 6.0, "none": 20.0}

#: baseline GMRES iterations per Newton step under MDSC (coarse meshes)
BASE_ITERS_PER_STEP = 12.0


@dataclass(frozen=True)
class ProblemModel:
    """The mesh-derived quantities the byte model needs."""

    num_dofs: int
    num_cells: int
    nnz: int
    dofs_per_elem: int
    newton_steps: int = 8


@dataclass(frozen=True)
class PriorScore:
    """Modeled per-Newton-step cost decomposition of one candidate."""

    candidate: TuneCandidate
    kernel_bytes_per_step: float
    kernel_time_per_step_s: float
    solver_bytes_per_step: float
    est_iterations_per_step: float

    @property
    def total_bytes_per_step(self) -> float:
        return self.kernel_bytes_per_step + self.solver_bytes_per_step


class GpusimPrior:
    """Score candidates with the GPU model; memoize the kernel runs."""

    def __init__(self, spec: GPUSpec, model: ProblemModel):
        self.spec = spec
        self.model = model
        self._sim = GPUSimulator(spec)
        self._profiles: dict[tuple[str, str, str], KernelProfile] = {}

    # ------------------------------------------------------------------
    def kernel_profile(self, candidate: TuneCandidate, mode: str) -> KernelProfile:
        """The memoized gpusim profile of one kernel of this candidate."""
        lb = candidate.effective_launch_bounds(mode)
        key = (candidate.kernel_impl, mode, str(lb))
        prof = self._profiles.get(key)
        if prof is None:
            prof = self._sim.run(
                f"{candidate.kernel_impl}-{mode}",
                ProblemSize(num_cells=self.model.num_cells),
                launch_bounds=lb,
            )
            self._profiles[key] = prof
        return prof

    # ------------------------------------------------------------------
    def score(self, candidate: TuneCandidate) -> PriorScore:
        m = self.model
        jac = self.kernel_profile(candidate, "jacobian")
        res = self.kernel_profile(candidate, "residual")
        # one fused SFad sweep (jacobian) + one line-search residual
        # sweep per accepted Newton step
        kernel_bytes = jac.hbm_bytes + res.hbm_bytes
        kernel_time = jac.time_s + res.time_s

        est_iters = BASE_ITERS_PER_STEP * ITERATION_FACTOR.get(
            candidate.preconditioner, 4.0
        )
        # short restarts pay extra cycles: each restart discards the
        # Krylov space, costing roughly one cycle-close + restart matvec
        cycles = max(1.0, math.ceil(est_iters / candidate.gmres_restart))
        depth = min(float(candidate.gmres_restart), est_iters / cycles)

        n, k = m.num_dofs, m.dofs_per_elem
        if candidate.operator_mode == "matrix-free":
            matvec = _bytes.element_apply_bytes(n, m.num_cells, k)
            fill = 0.0
        else:
            matvec = _bytes.spmv_bytes(n, m.nnz)
            fill = _bytes.assembled_fill_bytes(n, m.nnz, m.num_cells, k)
        # average orthogonalization stream over a cycle of depth d: the
        # per-iteration depth grows 1..d, so price it at depth d/2
        mid = max(1, int(round(depth / 2.0)))
        if candidate.gmres_orth == "fused":
            orth = _bytes.fused_orth_bytes(n, mid)
        else:
            orth = _bytes.mgs_orth_bytes(n, mid)
        per_iter = matvec + orth
        close = cycles * (_bytes.cycle_close_bytes(n, int(depth)) + matvec)
        solver_bytes = est_iters * per_iter + close + fill

        return PriorScore(
            candidate=candidate,
            kernel_bytes_per_step=float(kernel_bytes),
            kernel_time_per_step_s=float(kernel_time),
            solver_bytes_per_step=float(solver_bytes),
            est_iterations_per_step=float(est_iters),
        )

    def rank(self, candidates: list[TuneCandidate]) -> list[PriorScore]:
        """Candidates ordered by modeled bytes per step (ties: stable
        enumeration order, so the ranking is fully deterministic)."""
        scores = [self.score(c) for c in candidates]
        order = sorted(
            range(len(scores)), key=lambda i: (scores[i].total_bytes_per_step, i)
        )
        return [scores[i] for i in order]
