"""Recording views and scalars: extract per-thread traces from kernels.

The GPU performance simulator runs a kernel body for a *single*
representative cell with every view replaced by a :class:`TraceView` and
every scalar by a :class:`TraceScalar`.  The result is the kernel's exact
per-thread program: an ordered list of global-memory accesses (which view,
which inner offset, read or write, how many fad components) plus a flop
and memory-instruction count.  Because all threads of these kernels
execute the same straight-line program on different cells, one recorded
thread fully characterizes the kernel (Section V of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Access", "TraceContext", "TraceScalar", "TraceView"]


@dataclass(frozen=True)
class Access:
    """One logical scalar access to a view from one thread.

    ``inner`` is the flattened non-cell index; the cell index is the
    thread coordinate and is filled in when the trace is expanded across
    a wave of threads.  A Fad scalar of ``components`` doubles expands to
    that many coalesced component streams.
    """

    view: str
    inner: int
    write: bool
    components: int


@dataclass
class TraceContext:
    """Accumulates the per-thread program while a kernel body runs."""

    accesses: list[Access] = field(default_factory=list)
    flops: int = 0
    mem_insts: int = 0
    local_reads: int = 0
    local_writes: int = 0

    def record(self, access: Access) -> None:
        self.accesses.append(access)
        self.mem_insts += access.components

    def add_flops(self, n: int) -> None:
        self.flops += n

    def scalar(self, fad_dim: int = 0) -> "TraceScalar":
        return TraceScalar(self, fad_dim)

    @property
    def reads(self) -> list[Access]:
        return [a for a in self.accesses if not a.write]

    @property
    def writes(self) -> list[Access]:
        return [a for a in self.accesses if a.write]


class TraceScalar:
    """Symbolic scalar that counts flops as the kernel body computes.

    Flop counts follow the Sacado expansion: an operation on a Fad value
    with ``n`` derivative components performs the value flop plus the
    chain-rule work on all ``n`` components (e.g. a Fad*Fad multiply is
    ``1 + 3n`` flops: the value product plus ``u' v + u v'`` per
    component).
    """

    __slots__ = ("ctx", "fad_dim")

    def __init__(self, ctx: TraceContext, fad_dim: int = 0):
        self.ctx = ctx
        self.fad_dim = fad_dim

    # -- helpers -------------------------------------------------------
    def _dims(self, other) -> tuple[int, bool]:
        """(result fad dim, other-is-fad)."""
        if isinstance(other, TraceScalar):
            return max(self.fad_dim, other.fad_dim), other.fad_dim > 0
        return self.fad_dim, False

    def _result(self, fad_dim: int) -> "TraceScalar":
        return TraceScalar(self.ctx, fad_dim)

    # -- linear ops ----------------------------------------------------
    def _addsub(self, other):
        n, other_fad = self._dims(other)
        both_fad = self.fad_dim > 0 and other_fad
        self.ctx.add_flops(1 + (n if both_fad else 0))
        return self._result(n)

    __add__ = __radd__ = __sub__ = __rsub__ = _addsub

    def __neg__(self):
        self.ctx.add_flops(1 + self.fad_dim)
        return self._result(self.fad_dim)

    def __pos__(self):
        return self

    def __abs__(self):
        self.ctx.add_flops(1 + self.fad_dim)
        return self._result(self.fad_dim)

    # -- multiplicative ops --------------------------------------------
    def __mul__(self, other):
        n, other_fad = self._dims(other)
        both_fad = self.fad_dim > 0 and other_fad
        self.ctx.add_flops(1 + (3 * n if both_fad else n))
        return self._result(n)

    __rmul__ = __mul__

    def __truediv__(self, other):
        n, other_fad = self._dims(other)
        if other_fad:
            self.ctx.add_flops(2 + 4 * n)
        else:
            self.ctx.add_flops(1 + n)
        return self._result(n)

    def __rtruediv__(self, other):
        n = self.fad_dim
        self.ctx.add_flops(2 + 2 * n)
        return self._result(n)

    def __pow__(self, p):
        n = self.fad_dim
        self.ctx.add_flops(8 + 2 * n)
        return self._result(n)

    def sqrt(self):
        self.ctx.add_flops(8 + 2 * self.fad_dim)
        return self._result(self.fad_dim)

    def __repr__(self):
        return f"TraceScalar(fad_dim={self.fad_dim})"


class TraceView:
    """View stand-in that records accesses instead of touching data."""

    __slots__ = ("ctx", "name", "shape", "scalar", "layout")

    def __init__(self, ctx: TraceContext, view):
        self.ctx = ctx
        self.name = view.name
        self.shape = view.shape
        self.scalar = view.scalar
        self.layout = view.layout

    def _inner(self, idx) -> int:
        if not isinstance(idx, tuple):
            idx = (idx,)
        # idx[0] is the cell/thread coordinate (symbolic); flatten the rest.
        inner_idx = tuple(int(i) for i in idx[1:])
        flat = 0
        for i, ext in zip(inner_idx, self.shape[1:]):
            if not 0 <= i < ext:
                raise IndexError(f"trace view {self.name!r}: index {i} out of extent {ext}")
            flat = flat * ext + i
        return flat

    def __getitem__(self, idx) -> TraceScalar:
        self.ctx.record(Access(self.name, self._inner(idx), False, self.scalar.components))
        return TraceScalar(self.ctx, self.scalar.fad_dim)

    def __setitem__(self, idx, value) -> None:
        if not isinstance(value, (TraceScalar, int, float)):
            raise TypeError(f"trace view {self.name!r} assigned a {type(value).__name__}")
        self.ctx.record(Access(self.name, self._inner(idx), True, self.scalar.components))
