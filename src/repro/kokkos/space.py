"""Execution spaces: where a kernel body actually runs.

``HostVector`` exploits that every kernel in this codebase is written so
that the parallel index may be a slice/array -- one functor call executes
all iterations through vectorized numpy (the production path).
``HostSerial`` calls the functor per index, which is slow but exercises
the exact per-thread semantics (used by tests and by the trace recorder).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ExecutionSpace", "HostVector", "HostSerial"]


class ExecutionSpace:
    """Base execution space."""

    name = "abstract"
    concurrency = 1

    def run_range(self, policy, functor):
        raise NotImplementedError

    def run_range_reduce(self, policy, functor, reducer, init):
        raise NotImplementedError

    def fence(self):
        """No asynchronous work in the host spaces."""

    def __repr__(self):
        return f"<ExecutionSpace {self.name}>"


class HostVector(ExecutionSpace):
    """Vectorized host execution: one functor call over the whole range.

    Multidimensional policies fall back to per-index execution (their
    bodies are not written for vectorized indices).
    """

    name = "HostVector"

    def run_range(self, policy, functor):
        if policy.extent == 0:
            return
        if not hasattr(policy, "begin"):  # MDRange/Team: serial fallback
            return HostSerial().run_range(policy, functor)
        idx = slice(policy.begin, policy.end)
        if policy.tag is not None:
            functor(policy.tag, idx)
        else:
            functor(idx)

    def run_range_reduce(self, policy, functor, reducer, init):
        if policy.extent == 0:
            return init
        idx = slice(policy.begin, policy.end)
        acc = np.full(policy.extent, init, dtype=np.float64)
        if policy.tag is not None:
            functor(policy.tag, idx, acc)
        else:
            functor(idx, acc)
        return reducer.reduce(acc)


class HostSerial(ExecutionSpace):
    """Per-index host execution (reference semantics)."""

    name = "HostSerial"

    def run_range(self, policy, functor):
        if policy.tag is not None:
            for i in policy.indices():
                functor(policy.tag, i)
        else:
            for i in policy.indices():
                functor(i)

    def run_range_reduce(self, policy, functor, reducer, init):
        acc = np.full(policy.extent, init, dtype=np.float64)
        if policy.tag is not None:
            for k, i in enumerate(policy.indices()):
                functor(policy.tag, i, acc[k : k + 1])
        else:
            for k, i in enumerate(policy.indices()):
                functor(i, acc[k : k + 1])
        return reducer.reduce(acc)
