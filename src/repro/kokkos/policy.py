"""Execution policies and launch-bounds hints (Kokkos analogues).

``LaunchBounds`` mirrors ``Kokkos::LaunchBounds<MaxThreads, MinBlocks>``:
it does not change numerics but is consumed by the GPU register-allocation
and occupancy models (paper Table II studies exactly this knob on the
MI250X).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "LaunchBounds",
    "DEFAULT_LAUNCH_BOUNDS",
    "RangePolicy",
    "MDRangePolicy",
    "TeamPolicy",
]


@dataclass(frozen=True)
class LaunchBounds:
    """``Kokkos::LaunchBounds<MaxThreads, MinBlocks>`` analogue.

    ``explicit`` distinguishes user-provided bounds from compiler/Kokkos
    defaults; on AMD the backend applies a different occupancy assumption
    when no bounds are given (see :mod:`repro.gpusim.registers`).
    """

    max_threads: int = 256
    min_blocks: int = 1
    explicit: bool = True

    def __post_init__(self):
        if self.max_threads <= 0 or self.min_blocks <= 0:
            raise ValueError("LaunchBounds parameters must be positive")

    def __str__(self):
        if not self.explicit:
            return "default"
        return f"{self.max_threads},{self.min_blocks}"


#: Placeholder meaning "no explicit LaunchBounds": the backend default.
DEFAULT_LAUNCH_BOUNDS = LaunchBounds(max_threads=256, min_blocks=1, explicit=False)


@dataclass(frozen=True)
class RangePolicy:
    """1-D iteration range ``[begin, end)`` with an optional work tag."""

    begin: int
    end: int
    tag: object | None = None
    launch_bounds: LaunchBounds = DEFAULT_LAUNCH_BOUNDS

    def __post_init__(self):
        if self.end < self.begin:
            raise ValueError(f"empty-inverted range [{self.begin}, {self.end})")

    @property
    def extent(self) -> int:
        return self.end - self.begin

    def indices(self):
        return range(self.begin, self.end)


@dataclass(frozen=True)
class MDRangePolicy:
    """Multidimensional iteration range (lower/upper corner per rank)."""

    lower: tuple[int, ...]
    upper: tuple[int, ...]
    tag: object | None = None
    launch_bounds: LaunchBounds = DEFAULT_LAUNCH_BOUNDS

    def __post_init__(self):
        if len(self.lower) != len(self.upper):
            raise ValueError("MDRangePolicy rank mismatch")
        if any(u < l for l, u in zip(self.lower, self.upper)):
            raise ValueError("MDRangePolicy has an inverted extent")

    @property
    def extent(self) -> int:
        n = 1
        for l, u in zip(self.lower, self.upper):
            n *= u - l
        return n

    def indices(self):
        import itertools

        ranges = [range(l, u) for l, u in zip(self.lower, self.upper)]
        return itertools.product(*ranges)


@dataclass(frozen=True)
class TeamPolicy:
    """League of teams (coarse analogue; team loop bodies get a handle)."""

    league_size: int
    team_size: int = 1
    tag: object | None = None
    launch_bounds: LaunchBounds = DEFAULT_LAUNCH_BOUNDS

    def __post_init__(self):
        if self.league_size < 0 or self.team_size <= 0:
            raise ValueError("invalid TeamPolicy sizes")

    @property
    def extent(self) -> int:
        return self.league_size
