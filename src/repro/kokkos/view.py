"""Layout-aware multidimensional arrays (Kokkos ``View`` analogue).

A ``View`` carries a *logical* shape, a scalar specification (plain
``float64`` or a forward-AD ``SFad(n)`` scalar) and a layout tag.  Numeric
storage is a numpy array (or :class:`~repro.autodiff.sfad.FadArray`); the
layout tag does not change numpy storage order -- it is consumed by the
GPU performance model, which computes cache-line addresses exactly as
Kokkos would lay the data out on a GPU:

* ``LayoutLeft`` (Kokkos' GPU default): the first extent is stride-1, so
  the ``cell`` index -- mapped to the GPU thread -- is coalesced.
* Fad scalars follow Kokkos+Sacado's contiguous-fad GPU layout: each of
  the ``n + 1`` scalar components forms its own coalesced stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autodiff.sfad import FadArray, SFad

__all__ = ["ScalarSpec", "DOUBLE", "fad_spec", "View"]

LAYOUT_LEFT = "LayoutLeft"
LAYOUT_RIGHT = "LayoutRight"


@dataclass(frozen=True)
class ScalarSpec:
    """Description of a View's scalar type.

    ``fad_dim`` is the number of derivative components (0 for plain
    doubles); ``components`` counts stored doubles per scalar (value +
    derivatives), which is what the data-movement model multiplies by.
    """

    name: str
    fad_dim: int = 0
    base_bytes: int = 8

    @property
    def components(self) -> int:
        return self.fad_dim + 1

    @property
    def nbytes(self) -> int:
        return self.components * self.base_bytes

    @property
    def is_fad(self) -> bool:
        return self.fad_dim > 0


DOUBLE = ScalarSpec("double")


def fad_spec(n: int) -> ScalarSpec:
    """Scalar spec for ``SFad(n)`` (e.g. ``fad_spec(16)`` stores 17 doubles)."""
    return ScalarSpec(f"SFad<{n}>", fad_dim=n)


class View:
    """Named, layout-tagged array of ``float64`` or ``SFad(n)`` scalars."""

    __slots__ = ("name", "shape", "scalar", "layout", "data")

    def __init__(
        self,
        name: str,
        shape: tuple[int, ...],
        scalar: ScalarSpec = DOUBLE,
        layout: str = LAYOUT_LEFT,
        data=None,
    ):
        shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise ValueError(f"negative extent in view shape {shape}")
        if layout not in (LAYOUT_LEFT, LAYOUT_RIGHT):
            raise ValueError(f"unknown layout {layout!r}")
        self.name = name
        self.shape = shape
        self.scalar = scalar
        self.layout = layout
        if data is None:
            if scalar.is_fad:
                cls = SFad(scalar.fad_dim)
                data = cls(np.zeros(shape), np.zeros(shape + (scalar.fad_dim,)))
            else:
                data = np.zeros(shape)
        else:
            data = self._validate(data)
        self.data = data

    # ------------------------------------------------------------------
    def _validate(self, data):
        if self.scalar.is_fad:
            if not isinstance(data, FadArray):
                data = SFad(self.scalar.fad_dim).constant(np.asarray(data, dtype=np.float64))
            if data.num_derivs != self.scalar.fad_dim:
                raise ValueError(
                    f"view {self.name!r}: fad dim {data.num_derivs} != {self.scalar.fad_dim}"
                )
        else:
            if isinstance(data, FadArray):
                raise ValueError(f"view {self.name!r} holds doubles, got Fad data")
            data = np.asarray(data, dtype=np.float64)
        if data.shape[: len(self.shape)] != self.shape:
            raise ValueError(
                f"view {self.name!r}: data shape {data.shape} != view shape {self.shape}"
            )
        return data

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def extent(self) -> tuple[int, ...]:
        return self.shape

    def span_elements(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def span_bytes(self) -> int:
        return self.span_elements() * self.scalar.nbytes

    def inner_extent(self) -> int:
        """Product of all extents except the leading (cell/thread) one."""
        n = 1
        for s in self.shape[1:]:
            n *= s
        return n

    def inner_flat_index(self, idx: tuple[int, ...]) -> int:
        """Flatten the non-cell indices to a single inner offset.

        Uses row-major flattening of the trailing extents; the performance
        model treats each (inner offset, fad component) pair as one
        coalesced component stream across threads.
        """
        if len(idx) != self.rank - 1:
            raise ValueError(
                f"view {self.name!r}: expected {self.rank - 1} inner indices, got {len(idx)}"
            )
        flat = 0
        for i, (ix, ext) in enumerate(zip(idx, self.shape[1:])):
            if not 0 <= ix < ext:
                raise IndexError(f"view {self.name!r}: index {ix} out of extent {ext} (dim {i + 1})")
            flat = flat * ext + ix
        return flat

    # ------------------------------------------------------------------
    def __getitem__(self, idx):
        return self.data[idx]

    def __setitem__(self, idx, value):
        self.data[idx] = value

    def fill(self, value: float) -> None:
        if isinstance(self.data, FadArray):
            self.data.val[...] = value
            self.data.dx[...] = 0.0
        else:
            self.data[...] = value

    def values(self) -> np.ndarray:
        """The value part of the storage (drops derivatives)."""
        return self.data.val if isinstance(self.data, FadArray) else self.data

    def __repr__(self):
        return f"View({self.name!r}, shape={self.shape}, scalar={self.scalar.name}, layout={self.layout})"


def deep_copy_view(dst: View, src: View) -> None:
    """Kokkos ``deep_copy`` between compatible views."""
    if dst.shape != src.shape or dst.scalar != src.scalar:
        raise ValueError("deep_copy requires matching shape and scalar type")
    if isinstance(dst.data, FadArray):
        dst.data.val[...] = src.data.val
        dst.data.dx[...] = src.data.dx
    else:
        dst.data[...] = src.data
