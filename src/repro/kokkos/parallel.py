"""``parallel_for`` / ``parallel_reduce`` dispatch (Kokkos analogues).

Kernels are launched with a named dispatch onto an execution space; the
name shows up in profiles exactly like Kokkos kernel labels do in Nsight
or rocprof output.

Every dispatch emits paired begin/end events to the profiling hook
registry (:mod:`repro.observability.hooks`), mirroring the Kokkos Tools
``kokkosp_begin/end_parallel_for`` ABI.  With the registry inactive a
launch pays a single attribute read.  The legacy :data:`KERNEL_LOG`
list is kept as a thin shim implemented as a hook subscriber; detach it
with :func:`disable_kernel_log` for a fully silent dispatch path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kokkos.policy import RangePolicy
from repro.kokkos.space import ExecutionSpace, HostVector
from repro.kokkos.view import View, deep_copy_view
from repro.observability import hooks
from repro.resilience.injectors import KernelLaunchError, fault_plane

__all__ = [
    "parallel_for",
    "parallel_reduce",
    "deep_copy",
    "fence",
    "Sum",
    "Max",
    "Min",
    "KERNEL_LOG",
    "disable_kernel_log",
    "enable_kernel_log",
]

_DEFAULT_SPACE = HostVector()
_REGISTRY = hooks.registry()
_FAULT_PLANE = fault_plane()


def _poke_launch(name: str, extent: int) -> None:
    """Armed-plane launch check: retry injected ``kernel.launch`` failures.

    Mirrors a Kokkos backend re-submitting after a transient launch error;
    a failure persisting past the policy's retry budget propagates.
    """
    plane = _FAULT_PLANE
    policy, log = plane.policy, plane.log
    attempt = 0
    while True:
        try:
            plane.poke("kernel.launch", name=name, extent=extent)
            break
        except KernelLaunchError as exc:
            attempt += 1
            log.record(
                "detection", "launch_failure", "kernel.launch",
                name=name, attempt=attempt, error=str(exc),
            )
            if attempt > policy.max_retries:
                raise
    if attempt > 0:
        log.record(
            "recovery", "launch_retry", "kernel.launch",
            name=name, attempts=attempt,
        )


@dataclass
class _KernelLaunch:
    name: str
    extent: int
    space: str


#: Chronological log of kernel launches (profiling aid, cleared by tests).
#: Populated by the :class:`_KernelLogShim` hook subscriber below; the
#: hook registry is the primary channel, this list the back-compat view.
KERNEL_LOG: list[_KernelLaunch] = []


class _KernelLogShim(hooks.ToolSubscriber):
    """Mirrors every kernel dispatch into :data:`KERNEL_LOG` (legacy API)."""

    def begin_parallel_for(self, name, extent, space, kid):
        KERNEL_LOG.append(_KernelLaunch(name, extent, space))

    begin_parallel_reduce = begin_parallel_for


_KERNEL_LOG_SHIM = _REGISTRY.subscribe(_KernelLogShim())


def disable_kernel_log() -> None:
    """Detach the KERNEL_LOG shim (leaves other subscribers untouched)."""
    _REGISTRY.unsubscribe(_KERNEL_LOG_SHIM)


def enable_kernel_log() -> None:
    """Re-attach the KERNEL_LOG shim subscriber."""
    _REGISTRY.subscribe(_KERNEL_LOG_SHIM)


class Sum:
    @staticmethod
    def reduce(acc: np.ndarray) -> float:
        return float(np.sum(acc))

    identity = 0.0


class Max:
    @staticmethod
    def reduce(acc: np.ndarray) -> float:
        return float(np.max(acc)) if acc.size else -np.inf

    identity = -np.inf


class Min:
    @staticmethod
    def reduce(acc: np.ndarray) -> float:
        return float(np.min(acc)) if acc.size else np.inf

    identity = np.inf


def _coerce_policy(policy) -> RangePolicy:
    if isinstance(policy, int):
        return RangePolicy(0, policy)
    return policy


def parallel_for(name: str, policy, functor, space: ExecutionSpace | None = None) -> None:
    """Execute ``functor`` over ``policy`` on ``space`` (default vectorized host)."""
    policy = _coerce_policy(policy)
    space = space or _DEFAULT_SPACE
    if _FAULT_PLANE.active:
        _poke_launch(name, policy.extent)
    reg = _REGISTRY
    if reg.active:
        kid = reg.begin_parallel_for(name, policy.extent, space.name)
        try:
            space.run_range(policy, functor)
        finally:
            reg.end_parallel_for(kid)
    else:
        space.run_range(policy, functor)


def parallel_reduce(
    name: str,
    policy,
    functor,
    reducer=Sum,
    space: ExecutionSpace | None = None,
) -> float:
    """Reduce ``functor`` contributions over ``policy``.

    The functor signature is ``functor(i, acc)`` (plus a leading tag when
    the policy carries one); contributions are written into ``acc``.
    """
    policy = _coerce_policy(policy)
    space = space or _DEFAULT_SPACE
    if _FAULT_PLANE.active:
        _poke_launch(name, policy.extent)
    reg = _REGISTRY
    if reg.active:
        kid = reg.begin_parallel_reduce(name, policy.extent, space.name)
        try:
            return space.run_range_reduce(policy, functor, reducer, reducer.identity)
        finally:
            reg.end_parallel_reduce(kid)
    return space.run_range_reduce(policy, functor, reducer, reducer.identity)


def _view_nbytes(v: View) -> int:
    data = getattr(v, "data", None)
    if data is None:
        return 0
    val = getattr(data, "val", None)
    if val is not None:  # FadArray: value block plus derivative block
        return int(val.nbytes) + int(data.dx.nbytes)
    return int(getattr(data, "nbytes", 0))


def deep_copy(dst: View, src: View) -> None:
    """Copy ``src`` into ``dst`` (Kokkos ``deep_copy``), emitting hook events."""
    reg = _REGISTRY
    if reg.active:
        kid = reg.begin_deep_copy(dst.name, src.name, _view_nbytes(dst))
        try:
            deep_copy_view(dst, src)
        finally:
            reg.end_deep_copy(kid)
    else:
        deep_copy_view(dst, src)


def fence(name: str = "repro.fence") -> None:
    """Global fence, emitted as a paired begin/end hook event.

    Host-synchronous semantics: every execution space in this
    reproduction dispatches synchronously -- ``parallel_for`` returns
    only after the functor has run over the whole range -- so by the
    time ``fence`` is called there is no outstanding work and it
    completes immediately.  It exists so code written against the
    Kokkos API keeps its synchronization points, and so traces show
    where fences would sit (and cost time) on an asynchronous device
    backend.
    """
    reg = _REGISTRY
    if reg.active:
        reg.end_fence(reg.begin_fence(name))
