"""``parallel_for`` / ``parallel_reduce`` dispatch (Kokkos analogues).

Kernels are launched with a named dispatch onto an execution space; the
name shows up in profiles exactly like Kokkos kernel labels do in Nsight
or rocprof output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kokkos.policy import RangePolicy
from repro.kokkos.space import ExecutionSpace, HostVector
from repro.kokkos.view import View, deep_copy_view

__all__ = ["parallel_for", "parallel_reduce", "deep_copy", "fence", "Sum", "Max", "Min", "KERNEL_LOG"]

_DEFAULT_SPACE = HostVector()


@dataclass
class _KernelLaunch:
    name: str
    extent: int
    space: str


#: Chronological log of kernel launches (profiling aid, cleared by tests).
KERNEL_LOG: list[_KernelLaunch] = []


class Sum:
    @staticmethod
    def reduce(acc: np.ndarray) -> float:
        return float(np.sum(acc))

    identity = 0.0


class Max:
    @staticmethod
    def reduce(acc: np.ndarray) -> float:
        return float(np.max(acc)) if acc.size else -np.inf

    identity = -np.inf


class Min:
    @staticmethod
    def reduce(acc: np.ndarray) -> float:
        return float(np.min(acc)) if acc.size else np.inf

    identity = np.inf


def _coerce_policy(policy) -> RangePolicy:
    if isinstance(policy, int):
        return RangePolicy(0, policy)
    return policy


def parallel_for(name: str, policy, functor, space: ExecutionSpace | None = None) -> None:
    """Execute ``functor`` over ``policy`` on ``space`` (default vectorized host)."""
    policy = _coerce_policy(policy)
    space = space or _DEFAULT_SPACE
    KERNEL_LOG.append(_KernelLaunch(name, policy.extent, space.name))
    space.run_range(policy, functor)


def parallel_reduce(
    name: str,
    policy,
    functor,
    reducer=Sum,
    space: ExecutionSpace | None = None,
) -> float:
    """Reduce ``functor`` contributions over ``policy``.

    The functor signature is ``functor(i, acc)`` (plus a leading tag when
    the policy carries one); contributions are written into ``acc``.
    """
    policy = _coerce_policy(policy)
    space = space or _DEFAULT_SPACE
    KERNEL_LOG.append(_KernelLaunch(name, policy.extent, space.name))
    return space.run_range_reduce(policy, functor, reducer, reducer.identity)


def deep_copy(dst: View, src: View) -> None:
    deep_copy_view(dst, src)


def fence() -> None:
    """Global fence; host spaces are synchronous so this is a no-op."""
