"""Mini-Kokkos: a Python analogue of the Kokkos programming model.

Albany achieves performance portability by writing each kernel once
against Kokkos ``View`` / ``parallel_for`` abstractions and letting the
execution space map it to hardware.  This package reproduces that
single-source structure:

* :class:`~repro.kokkos.view.View` -- layout-aware multidimensional array
  over ``float64`` or ``SFad(n)`` scalars.
* :mod:`~repro.kokkos.policy` -- ``RangePolicy``, ``MDRangePolicy``,
  ``TeamPolicy``, ``LaunchBounds`` and work tags.
* :mod:`~repro.kokkos.space` -- execution spaces: ``HostVector`` (numpy
  vectorized), ``HostSerial`` (per-index loop, for correctness tests) and
  ``SimGPU`` (drives the trace-based GPU performance simulator).
* :mod:`~repro.kokkos.parallel` -- ``parallel_for`` / ``parallel_reduce``.
* :mod:`~repro.kokkos.instrument` -- recording views/scalars used to
  extract per-thread access traces and flop counts from kernel bodies.
"""

from repro.kokkos.view import View, ScalarSpec, DOUBLE, fad_spec
from repro.kokkos.policy import (
    RangePolicy,
    MDRangePolicy,
    TeamPolicy,
    LaunchBounds,
    DEFAULT_LAUNCH_BOUNDS,
)
from repro.kokkos.space import HostVector, HostSerial, ExecutionSpace
from repro.kokkos.parallel import parallel_for, parallel_reduce, deep_copy, fence
from repro.kokkos.instrument import TraceContext, TraceView, TraceScalar, Access

__all__ = [
    "View",
    "ScalarSpec",
    "DOUBLE",
    "fad_spec",
    "RangePolicy",
    "MDRangePolicy",
    "TeamPolicy",
    "LaunchBounds",
    "DEFAULT_LAUNCH_BOUNDS",
    "HostVector",
    "HostSerial",
    "ExecutionSpace",
    "parallel_for",
    "parallel_reduce",
    "deep_copy",
    "fence",
    "TraceContext",
    "TraceView",
    "TraceScalar",
    "Access",
]
