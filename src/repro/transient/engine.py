"""The transient engine: CFL-stepped thickness/velocity coupling.

MALI's forward model alternates a diagnostic FO Stokes velocity solve
with a prognostic thickness update (Eq. 2).  The engine runs that loop
with the three amortizations that make it affordable:

* **artifact reuse** -- the mesh, DofMap, AssemblyPlan and
  preconditioner scaffolding are built once per scenario (via the
  serve-layer :class:`~repro.serve.cache.ArtifactCache`) and only the
  vertical coordinate is re-extruded each step
  (:meth:`~repro.app.velocity_solver.StokesVelocityProblem.refresh_geometry`);
* **warm starts** -- each Newton solve starts from the previous step's
  velocity.  The cold start measures ``||F(0)||`` once and fixes the
  absolute tolerance ``tol_abs = newton_rtol * ||F(0)||`` for the whole
  run, so warm-started steps converge in the few iterations it takes to
  re-enter the basin instead of burning the full Newton budget;
* **adaptive CFL stepping** -- the requested ``dt`` is capped at
  ``cfl_safety`` times the evolver's stability bound for the current
  velocity, so the explicit upwind update stays monotone (and the
  ``H >= 0`` clip stays inactive on closed-budget runs, which is what
  lets the conservation gate demand drift at roundoff).

Every step is a pure function of the checkpointed state ``(H, u,
tol_abs, t, particles)``: geometry is refreshed from ``H`` at the top
of *every* step (not carried across steps as hidden mutable state), so
a killed run resumed from a :class:`~repro.transient.checkpoint.
TransientCheckpoint` reproduces the uninterrupted trajectory bit for
bit -- the transient analogue of the Newton-level resume guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.observability import get_metrics, get_series, get_tracer
from repro.physics.thickness import ThicknessEvolver
from repro.transient.checkpoint import TransientCheckpoint
from repro.transient.particles import ParticleSet
from repro.transient.scenarios import TransientScenario, build_scenario_problem

__all__ = ["TransientEngine", "TransientResult", "TransientKilled"]


class TransientKilled(RuntimeError):
    """A scripted kill fired mid-run (chaos/CI resume drills).

    Carries the checkpoint written at the kill point (and its path when
    a checkpoint directory was configured) so the harness that armed
    ``kill_at_step`` can immediately resume from exactly this state.
    """

    def __init__(self, checkpoint: TransientCheckpoint, path: Path | None):
        self.checkpoint = checkpoint
        self.path = path
        super().__init__(
            f"transient run killed after step {checkpoint.step} "
            f"(checkpoint {'at ' + str(path) if path else 'in memory'})"
        )


@dataclass
class TransientResult:
    """Outcome of a transient run plus the coupling diagnostics."""

    scenario: TransientScenario
    thickness: np.ndarray  # final (num_footprint_elems,) cell thickness
    u: np.ndarray  # final velocity dofs
    particles: ParticleSet
    volumes: list[float]  # V_0 .. V_N [m^3]
    times: list[float]  # 0 .. t_N [yr]
    dts: list[float]  # accepted step sizes [yr]
    newton_iterations: list[int]  # per-step Newton iteration counts
    warm_started: list[bool]  # per-step warm-start flags
    tol_abs: float
    diagnostics: dict = field(default_factory=dict)

    @property
    def volume_drift(self) -> float:
        """Max relative departure of total volume from its initial value.

        The conservation gate for closed-budget (zero-forcing) scenarios:
        interior-edge upwind fluxes telescope exactly, so any drift
        beyond roundoff accumulation is a bug (or the planted CI leak).
        """
        v0 = self.volumes[0]
        return float(max(abs(v - v0) for v in self.volumes) / abs(v0))

    @property
    def cold_iterations(self) -> int:
        return self.newton_iterations[0]

    @property
    def warm_mean_iterations(self) -> float:
        """Mean Newton iterations over the warm-started steps."""
        warm = [n for n, w in zip(self.newton_iterations, self.warm_started) if w]
        return float(np.mean(warm)) if warm else float("nan")

    def final_checkpoint(self) -> TransientCheckpoint:
        """The end-of-run state as a checkpoint (extendable runs)."""
        return TransientCheckpoint(
            step=len(self.dts),
            t_years=self.times[-1],
            tol_abs=self.tol_abs,
            thickness=self.thickness,
            u=self.u,
            particles_xy=self.particles.xy,
            particles_zeta=self.particles.zeta,
            particles_active=self.particles.active,
            scenario_digest=self.scenario.digest,
            volumes=list(self.volumes),
            times=list(self.times),
            dts=list(self.dts),
            newton_iterations=list(self.newton_iterations),
        )


class TransientEngine:
    """Runs a :class:`TransientScenario` through the coupled loop."""

    def __init__(self, scenario: TransientScenario, cache=None):
        self.scenario = scenario
        if cache is None:
            from repro.serve.cache import ArtifactCache

            cache = ArtifactCache(builder=build_scenario_problem)
        self.cache = cache
        entry = cache.get(scenario)
        self.test = entry.test
        self.problem = self.test.problem
        self.mesh = self.test.mesh
        self.geometry = self.test.geometry
        self.footprint = self.mesh.footprint
        self.evolver = ThicknessEvolver(self.footprint)
        self._centers = self.footprint.elem_centers()
        self._x2 = self.footprint.coords[:, 0]
        self._y2 = self.footprint.coords[:, 1]

    # ------------------------------------------------------------------
    def initial_thickness(self) -> np.ndarray:
        """Cell-centered initial thickness from the analytic geometry."""
        cx, cy = self._centers[:, 0], self._centers[:, 1]
        return np.asarray(self.geometry.thickness(cx, cy), dtype=np.float64)

    def _mass_balance(self, h_cell: np.ndarray, t_years: float):
        """(smb, bmb) per cell [m/yr] for the scenario's forcing at ``t``."""
        sc = self.scenario
        ne = self.footprint.num_elems
        zero = 0.0
        if sc.forcing == "none" or sc.forcing_amplitude == 0.0:
            return zero, zero
        cx, cy = self._centers[:, 0], self._centers[:, 1]
        if sc.forcing == "retreat":
            gx, gy = self.geometry.center
            r = np.hypot(cx - gx, cy - gy) / self.geometry.radius
            smb = -sc.forcing_amplitude * np.clip((r - 0.6) / 0.4, 0.0, 1.0)
            return smb, zero
        if sc.forcing == "ramp":
            level = min(t_years / sc.forcing_ramp_years, 1.0)
            return np.full(ne, -sc.forcing_amplitude * level), zero
        # "collapse": basal melt under floating ice, judged against the
        # *evolving* thickness's own floatation state
        from repro.constants import RHO_ICE, RHO_SEAWATER

        bed = np.asarray(self.geometry.bed(cx, cy), dtype=np.float64)
        floating = bed + h_cell * (RHO_ICE / RHO_SEAWATER) <= 0.0
        return zero, np.where(floating, -sc.forcing_amplitude, 0.0)

    # ------------------------------------------------------------------
    def run(
        self,
        num_steps: int | None = None,
        resume_from: TransientCheckpoint | str | Path | None = None,
        kill_at_step: int | None = None,
        plant_leak: float = 0.0,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int | None = None,
        callback=None,
    ) -> TransientResult:
        """Run (or resume) the coupled loop for ``num_steps`` steps.

        ``resume_from`` restarts bit-for-bit from a checkpoint (object
        or ``.npz`` path); ``kill_at_step=k`` checkpoints after step
        ``k`` completes and raises :class:`TransientKilled` (the CI
        resume drill); ``plant_leak`` passes a deliberate conservation
        violation through to the evolver (the CI negative control);
        ``callback(step, result_so_far_dict)`` observes each step.
        """
        sc = self.scenario
        total = sc.num_steps if num_steps is None else int(num_steps)
        every = sc.checkpoint_every if checkpoint_every is None else int(checkpoint_every)
        ckpt_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        if ckpt_dir is not None:
            ckpt_dir.mkdir(parents=True, exist_ok=True)

        tracer = get_tracer()
        metrics = get_metrics()
        series = get_series()

        # -- initial or resumed state ----------------------------------
        if resume_from is None:
            h = self.initial_thickness()
            u_prev: np.ndarray | None = None
            tol_abs: float | None = None
            t = 0.0
            start = 0
            particles = ParticleSet.seed(
                self.footprint, h, sc.num_particles, seed=sc.particle_seed
            )
            volumes = [self.evolver.total_volume(h)]
            times = [0.0]
            dts: list[float] = []
            newton_its: list[int] = []
            warm_flags: list[bool] = []
        else:
            ckpt = (
                resume_from
                if isinstance(resume_from, TransientCheckpoint)
                else TransientCheckpoint.load(resume_from)
            )
            if ckpt.scenario_digest and ckpt.scenario_digest != sc.digest:
                raise ValueError(
                    f"checkpoint belongs to scenario digest {ckpt.scenario_digest}, "
                    f"not {sc.digest} ({sc.name}); resuming would fork the trajectory"
                )
            h = np.array(ckpt.thickness, dtype=np.float64)
            u_prev = np.array(ckpt.u, dtype=np.float64)
            tol_abs = ckpt.tol_abs
            t = ckpt.t_years
            start = ckpt.step
            particles = ParticleSet(
                self.footprint, ckpt.particles_xy, ckpt.particles_zeta, ckpt.particles_active
            )
            volumes = list(ckpt.volumes)
            times = list(ckpt.times)
            dts = list(ckpt.dts)
            newton_its = list(ckpt.newton_iterations)
            # reconstruct: only the cold first step of the original run
            # was not warm-started (flags are derived, not checkpointed)
            warm_flags = [sc.warm_start and i > 0 for i in range(len(newton_its))]
            metrics.counter("transient.resumes").inc()

        clipped_total = 0.0
        source_total = 0.0

        def snapshot(step_done: int) -> TransientCheckpoint:
            return TransientCheckpoint(
                step=step_done,
                t_years=t,
                tol_abs=float(tol_abs),
                thickness=h,
                u=u_prev,
                particles_xy=particles.xy,
                particles_zeta=particles.zeta,
                particles_active=particles.active,
                scenario_digest=sc.digest,
                volumes=list(volumes),
                times=list(times),
                dts=list(dts),
                newton_iterations=list(newton_its),
            )

        with tracer.span("transient.run", scenario=sc.name, steps=total):
            for s in range(start, total):
                with tracer.span("transient.step", step=s):
                    # 1. geometry from the current thickness (every step,
                    # including the first after a resume: the mesh is
                    # derived state, never carried hidden across steps)
                    nodal_h = self.evolver.node_thickness(h)
                    nodal_s = self.geometry.surface_for_thickness(
                        self._x2, self._y2, nodal_h
                    )
                    self.problem.refresh_geometry(nodal_h, nodal_s)

                    # 2. velocity: warm-started, fixed absolute tolerance
                    if tol_abs is None:
                        f0 = float(
                            np.linalg.norm(
                                self.problem.residual(
                                    np.zeros(self.problem.dofmap.num_dofs)
                                )
                            )
                        )
                        tol_abs = sc.newton_rtol * f0
                    u0 = u_prev if (sc.warm_start and u_prev is not None) else None
                    with tracer.span("transient.velocity", step=s):
                        sol = self.problem.solve(u0=u0, newton_tol=tol_abs)
                    u_prev = sol.u

                    # 3. thickness: CFL-capped explicit upwind step
                    with tracer.span("transient.thickness", step=s):
                        v_cell = self.problem.depth_averaged_cell_velocity(sol.u)
                        dt = sc.dt_years
                        dt_max = self.evolver.max_stable_dt(v_cell)
                        if np.isfinite(dt_max):
                            dt = min(dt, sc.cfl_safety * dt_max)
                        smb, bmb = self._mass_balance(h, t)
                        h = self.evolver.step(
                            h, v_cell, dt, smb=smb, bmb=bmb, flux_leak=plant_leak
                        )
                    clipped_total += self.evolver.last_step_stats["clipped_volume"]
                    source_total += self.evolver.last_step_stats["source_volume"]

                    # 4. particles ride the same velocity field
                    if len(particles):
                        with tracer.span("transient.particles", step=s):
                            particles.advect(self.problem.dofmap.nodal_view(sol.u), dt)

                    t += dt

                # -- record ------------------------------------------------
                vol = self.evolver.total_volume(h)
                volumes.append(vol)
                times.append(t)
                dts.append(dt)
                newton_its.append(sol.newton.iterations)
                warm_flags.append(bool(sol.diagnostics["warm_started"]))
                metrics.counter("transient.steps").inc()
                series.record("transient.volume", vol, scenario=sc.name)
                series.record("transient.dt", dt, scenario=sc.name)
                series.record(
                    "transient.newton_iterations",
                    sol.newton.iterations,
                    scenario=sc.name,
                )
                if callback is not None:
                    callback(
                        s,
                        {
                            "t_years": t,
                            "dt": dt,
                            "volume": vol,
                            "newton_iterations": sol.newton.iterations,
                            "warm_started": warm_flags[-1],
                            "active_particles": particles.num_active,
                        },
                    )

                done = s + 1
                if ckpt_dir is not None and every and done % every == 0 and done < total:
                    snapshot(done).save(ckpt_dir / f"step{done:04d}.npz")
                    metrics.counter("transient.checkpoints").inc()
                if kill_at_step is not None and s == kill_at_step:
                    ck = snapshot(done)
                    path = None
                    if ckpt_dir is not None:
                        path = ck.save(ckpt_dir / f"killed_step{done:04d}.npz")
                    metrics.counter("transient.kills").inc()
                    raise TransientKilled(ck, path)

        result = TransientResult(
            scenario=sc,
            thickness=h,
            u=u_prev,
            particles=particles,
            volumes=volumes,
            times=times,
            dts=dts,
            newton_iterations=newton_its,
            warm_started=warm_flags,
            tol_abs=float(tol_abs),
            diagnostics={
                "scenario": sc.name,
                "scenario_digest": sc.digest,
                "num_steps": len(dts),
                "t_final_years": t,
                "tol_abs": float(tol_abs),
                "cold_iterations": newton_its[0] if newton_its else 0,
                "active_particles": particles.num_active,
                # conservation audit: V_N - V_0 must equal the credited
                # sources (SMB/BMB) plus the H>=0 clip corrections; the
                # residual is the unexplained (bug) volume
                "volume_budget_residual": float(
                    volumes[-1] - volumes[0] - source_total - clipped_total
                ),
                "clipped_volume": clipped_total,
                "source_volume": source_total,
            },
        )
        if ckpt_dir is not None:
            result.final_checkpoint().save(ckpt_dir / "final.npz")
        return result
