"""Named transient scenarios: the forward-model equivalent of goldens.

A :class:`TransientScenario` is the complete, hashable identity of one
transient experiment -- which synthetic ice sheet, at what resolution,
stepped how, under which forcing, with how many tracked particles.  Its
:attr:`~TransientScenario.digest` keys the serve-layer
:class:`~repro.serve.cache.ArtifactCache` (the cache is generic over
anything with a ``digest``), so repeated runs of the same scenario --
the CLI check's cold / killed / resumed trio above all -- share one
built mesh + Stokes problem instead of paying the symbolic assembly
pass three times.

The library below is small and curated, like the reference-value table:
each entry exercises one coupling regime (closed mass budget, margin
retreat, uniform forcing ramp on the Greenland family, sub-shelf
collapse) and is cheap enough for CI.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

__all__ = [
    "TransientScenario",
    "SCENARIOS",
    "get_scenario",
    "build_scenario_problem",
    "FORCINGS",
]

#: supported mass-balance forcings (applied by the engine each step):
#: "none" -- zero SMB/BMB everywhere (closed budget: total volume is an
#: invariant and the conservation gate can demand drift at roundoff);
#: "retreat" -- negative SMB ramping up toward the margin (Antarctica
#: retreat); "ramp" -- spatially uniform SMB drawdown growing linearly
#: in time to its amplitude (Greenland forcing ramp); "collapse" --
#: negative BMB under floating ice only (ice-shelf collapse).
FORCINGS = ("none", "retreat", "ramp", "collapse")


@dataclass(frozen=True)
class TransientScenario:
    """One named transient experiment (the cache / golden / digest key)."""

    name: str
    description: str = ""
    # -- problem identity ----------------------------------------------
    family: str = "antarctica"  # "antarctica" | "greenland"
    resolution_km: float = 400.0
    num_layers: int = 4
    newton_steps: int = 12  # per-solve Newton budget (headroom over cold)
    # -- stepping ------------------------------------------------------
    num_steps: int = 12
    dt_years: float = 50.0  # requested step; CFL may shorten it
    cfl_safety: float = 0.5  # fraction of the evolver's stable dt
    newton_rtol: float = 1.0e-6  # tol_abs = newton_rtol * ||F(0)|| cold
    warm_start: bool = True
    checkpoint_every: int = 5  # steps between checkpoints (0 = final only)
    # -- forcing -------------------------------------------------------
    forcing: str = "none"
    forcing_amplitude: float = 0.0  # [m/yr] peak mass-balance magnitude
    forcing_ramp_years: float = 200.0  # time to full amplitude ("ramp")
    # -- particles -----------------------------------------------------
    num_particles: int = 64
    particle_seed: int = 7

    def __post_init__(self):
        if self.family not in ("antarctica", "greenland"):
            raise ValueError(f"unknown ice-sheet family {self.family!r}")
        if self.forcing not in FORCINGS:
            raise ValueError(f"unknown forcing {self.forcing!r}; have {FORCINGS}")
        if self.num_steps <= 0 or self.dt_years <= 0.0:
            raise ValueError("num_steps and dt_years must be positive")
        if not 0.0 < self.cfl_safety <= 1.0:
            raise ValueError("cfl_safety must be in (0, 1]")
        if self.newton_rtol <= 0.0:
            raise ValueError("newton_rtol must be positive")
        if self.num_particles < 0 or self.checkpoint_every < 0:
            raise ValueError("num_particles and checkpoint_every must be >= 0")

    @property
    def digest(self) -> str:
        """Stable content digest of the experiment identity.

        Excludes ``name`` and ``description`` (two differently-named
        scenarios with the same numbers are the same experiment, exactly
        like :class:`~repro.serve.requests.SolveScenario`); includes
        every numeric knob because any of them changes the trajectory.
        """
        key = (
            f"fam={self.family}|res={self.resolution_km!r}|nz={self.num_layers}|"
            f"ns={self.newton_steps}|steps={self.num_steps}|dt={self.dt_years!r}|"
            f"cfl={self.cfl_safety!r}|rtol={self.newton_rtol!r}|"
            f"warm={self.warm_start}|ce={self.checkpoint_every}|"
            f"forcing={self.forcing}|amp={self.forcing_amplitude!r}|"
            f"rampyr={self.forcing_ramp_years!r}|"
            f"np={self.num_particles}|pseed={self.particle_seed}"
        )
        return hashlib.sha256(key.encode()).hexdigest()[:16]

    def with_steps(self, num_steps: int) -> "TransientScenario":
        """Same experiment truncated/extended to ``num_steps`` steps."""
        return replace(self, num_steps=int(num_steps))


def build_scenario_problem(scenario: TransientScenario):
    """ArtifactCache builder: the built AntarcticaTest for a scenario.

    Matches the :class:`~repro.serve.cache.ArtifactCache` builder
    protocol (scenario in, built test out) so one cache instance can
    hold solve-service scenarios and transient scenarios side by side --
    both key by ``digest``.
    """
    from repro.app.antarctica import AntarcticaTest
    from repro.app.config import AntarcticaConfig, VelocityConfig

    config = AntarcticaConfig(
        resolution_km=scenario.resolution_km,
        num_layers=scenario.num_layers,
        family=scenario.family,
        velocity=VelocityConfig(newton_steps=scenario.newton_steps),
    )
    return AntarcticaTest.build(config)


#: the curated scenario library, keyed by name
SCENARIOS: dict[str, TransientScenario] = {
    s.name: s
    for s in (
        TransientScenario(
            name="antarctica-closed",
            description=(
                "Closed mass budget on the synthetic Antarctica: zero "
                "SMB/BMB over 20 coupled steps, so total ice volume is "
                "a strict invariant.  The `transient --check` gate runs "
                "this scenario and demands volume drift at roundoff, "
                "warm-start speedup, and bitwise kill/resume."
            ),
            num_steps=20,
            forcing="none",
        ),
        TransientScenario(
            name="antarctica-retreat",
            description=(
                "Margin retreat: surface mass balance goes negative "
                "toward the ice-sheet margin (peak 2 m/yr of thinning), "
                "drawing the margin in while the interior stays fed."
            ),
            num_steps=12,
            forcing="retreat",
            forcing_amplitude=2.0,
        ),
        TransientScenario(
            name="greenland-ramp",
            description=(
                "Greenland forcing ramp: spatially uniform surface "
                "drawdown growing linearly to 1.5 m/yr over 200 years "
                "on the elongated single-dome Greenland family."
            ),
            family="greenland",
            resolution_km=200.0,
            num_layers=3,
            num_steps=10,
            forcing="ramp",
            forcing_amplitude=1.5,
            forcing_ramp_years=200.0,
        ),
        TransientScenario(
            name="shelf-collapse",
            description=(
                "Ice-shelf collapse: strong basal melt (10 m/yr) under "
                "floating ice only, computed against the evolving "
                "thickness's own floatation state each step.  Runs at "
                "250 km: coarser samplings ground the entire margin and "
                "the forcing never fires."
            ),
            resolution_km=250.0,
            num_steps=12,
            forcing="collapse",
            forcing_amplitude=10.0,
        ),
    )
}


def get_scenario(name: str) -> TransientScenario:
    """Library scenario by name (with a helpful error on a miss)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown transient scenario {name!r}; have: {known}") from None
