"""Transient forward model: coupled thickness/velocity time stepping.

The dynamic loop the paper's velocity solve exists to serve: MALI
advances the ice sheet by alternating a diagnostic FO Stokes solve with
a prognostic thickness update, and this package runs that loop with the
amortizations that make it affordable -- per-scenario artifact reuse,
warm-started Newton solves, CFL-capped explicit stepping -- plus
Lagrangian particle tracking, a curated scenario library, and
checkpoint/resume with a bitwise-reproducibility guarantee.

Entry points: ``python -m repro transient <scenario>`` (CLI),
:class:`TransientEngine` (library), :data:`SCENARIOS` (the library of
named experiments).
"""

from repro.transient.checkpoint import TransientCheckpoint
from repro.transient.engine import TransientEngine, TransientKilled, TransientResult
from repro.transient.particles import ParticleSet
from repro.transient.scenarios import (
    FORCINGS,
    SCENARIOS,
    TransientScenario,
    build_scenario_problem,
    get_scenario,
)

__all__ = [
    "TransientCheckpoint",
    "TransientEngine",
    "TransientKilled",
    "TransientResult",
    "ParticleSet",
    "TransientScenario",
    "SCENARIOS",
    "FORCINGS",
    "get_scenario",
    "build_scenario_problem",
]
