"""Lagrangian particle tracking through the extruded velocity field.

IGM-style passive tracers: particles ride the horizontal FO velocity at
a fixed terrain-following height (the FO approximation has no vertical
velocity unknown, so ``zeta`` is a label, not a prognostic).  Velocity
at a particle is interpolated with inverse-distance weights over the
four nearest footprint nodes, each node contributing its column
velocity linearly interpolated in sigma -- cheap, smooth enough for
trajectories, and a pure function of ``(u, xy, zeta)`` so advection is
bitwise-reproducible across checkpoint/resume.

Advection is explicit midpoint RK2 (one velocity re-evaluation at the
half step), which tracks the curved flow around the domes far better
than forward Euler at the same cost class.  Particles that wander off
the footprint deactivate (frozen in place, excluded from further
advection) rather than extrapolating garbage velocities.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ParticleSet"]


class ParticleSet:
    """A set of passive tracers on a footprint (positions + fixed zeta)."""

    def __init__(
        self,
        footprint,
        xy: np.ndarray,
        zeta: np.ndarray,
        active: np.ndarray | None = None,
    ):
        self.footprint = footprint
        self.xy = np.array(xy, dtype=np.float64).reshape(-1, 2)
        self.zeta = np.array(zeta, dtype=np.float64).reshape(-1)
        if self.zeta.shape[0] != self.xy.shape[0]:
            raise ValueError("zeta must have one entry per particle")
        if np.any((self.zeta < 0.0) | (self.zeta > 1.0)):
            raise ValueError("zeta must lie in [0, 1]")
        self.active = (
            np.ones(len(self.xy), dtype=bool)
            if active is None
            else np.array(active, dtype=bool).reshape(-1)
        )
        if self.active.shape[0] != self.xy.shape[0]:
            raise ValueError("active must have one entry per particle")
        # off-footprint deactivation radius: a particle farther than this
        # from every footprint node has left the meshed ice
        areas = footprint.elem_areas()
        self._deactivate_radius = 1.5 * float(np.sqrt(areas.max()))

    def __len__(self) -> int:
        return len(self.xy)

    @property
    def num_active(self) -> int:
        return int(self.active.sum())

    # ------------------------------------------------------------------
    @classmethod
    def seed(
        cls,
        footprint,
        thickness_cell: np.ndarray,
        num_particles: int,
        seed: int = 7,
    ) -> "ParticleSet":
        """Deterministically seed particles, thickness-weighted.

        Cells are sampled with probability proportional to their ice
        volume (``H * area``) so tracers concentrate where the ice is,
        then jittered within the cell.  Everything flows from one
        ``default_rng(seed)``: the same scenario always seeds the same
        particles (a bitwise-resume and golden-baseline requirement).
        """
        if num_particles == 0:
            return cls(footprint, np.empty((0, 2)), np.empty((0,)))
        rng = np.random.default_rng(seed)
        areas = footprint.elem_areas()
        w = np.maximum(np.asarray(thickness_cell, dtype=np.float64), 0.0) * areas
        if w.sum() <= 0.0:
            w = areas  # no ice anywhere: fall back to uniform-by-area
        idx = rng.choice(footprint.num_elems, size=num_particles, p=w / w.sum())
        centers = footprint.elem_centers()
        jitter = rng.uniform(-0.25, 0.25, size=(num_particles, 2))
        xy = centers[idx] + jitter * np.sqrt(areas[idx])[:, None]
        zeta = rng.uniform(0.05, 0.95, size=num_particles)
        return cls(footprint, xy, zeta)

    # ------------------------------------------------------------------
    def _column_velocity(self, nodal3: np.ndarray) -> np.ndarray:
        """(nn2, levels, 2) per-column nodal velocity from a flat view."""
        nn2 = self.footprint.num_nodes
        levels = nodal3.shape[0] // nn2
        return nodal3.reshape(nn2, levels, 2)

    def velocity_at(self, xy: np.ndarray, zeta: np.ndarray, nodal3: np.ndarray) -> np.ndarray:
        """Horizontal velocity [m/yr] at (xy, zeta) from nodal 3D field.

        IDW over the 4 nearest footprint nodes; each node's column is
        first interpolated linearly in sigma at the particle's zeta.
        ``nodal3`` is the (num_3d_nodes, 2) nodal view of a solution.
        """
        xy = np.atleast_2d(np.asarray(xy, dtype=np.float64))
        zeta = np.atleast_1d(np.asarray(zeta, dtype=np.float64))
        cols = self._column_velocity(nodal3)  # (nn2, levels, 2)
        levels = cols.shape[1]
        # linear sigma interpolation per column at each particle's zeta
        pos = np.clip(zeta, 0.0, 1.0) * (levels - 1)
        lo = np.minimum(pos.astype(np.int64), levels - 2)
        frac = pos - lo  # (np,)

        coords = self.footprint.coords  # (nn2, 2)
        d2 = np.sum((coords[None, :, :] - xy[:, None, :]) ** 2, axis=2)  # (np, nn2)
        k = min(4, coords.shape[0])
        near = np.argpartition(d2, k - 1, axis=1)[:, :k]  # (np, k)
        nd2 = np.take_along_axis(d2, near, axis=1)
        w = 1.0 / (nd2 + 1.0e-6)  # eps keeps exact-node hits finite
        w /= w.sum(axis=1, keepdims=True)

        v_lo = cols[near, lo[:, None], :]  # (np, k, 2)
        v_hi = cols[near, lo[:, None] + 1, :]
        v_node = v_lo + frac[:, None, None] * (v_hi - v_lo)
        return np.sum(w[:, :, None] * v_node, axis=1)  # (np, 2)

    def _off_mesh(self, xy: np.ndarray) -> np.ndarray:
        """True where a position is beyond the deactivation radius."""
        coords = self.footprint.coords
        d2 = np.sum((coords[None, :, :] - np.atleast_2d(xy)[:, None, :]) ** 2, axis=2)
        return d2.min(axis=1) > self._deactivate_radius**2

    def advect(self, nodal3: np.ndarray, dt_years: float) -> None:
        """Midpoint-RK2 advection of all active particles by ``dt``.

        Inactive particles stay frozen; particles whose full step lands
        off the footprint take the step and then deactivate (their final
        resting position is part of the golden baseline).
        """
        if self.num_active == 0:
            return
        a = self.active
        x0 = self.xy[a]
        z = self.zeta[a]
        v1 = self.velocity_at(x0, z, nodal3)
        x_mid = x0 + 0.5 * dt_years * v1
        v2 = self.velocity_at(x_mid, z, nodal3)
        x1 = x0 + dt_years * v2
        self.xy[a] = x1
        off = self._off_mesh(x1)
        if np.any(off):
            idx = np.flatnonzero(a)[off]
            self.active[idx] = False
