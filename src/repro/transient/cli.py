"""``python -m repro transient`` -- run, check and resume transient scenarios.

The ``--check`` mode is the transient acceptance gate, structured like
the Antarctica regression check: it runs the closed-budget library
scenario through >= 20 coupled steps and asserts the three properties
the engine exists to provide --

1. **conservation**: relative total-volume drift at most 1e-12 under a
   zero net mass balance (interior upwind fluxes telescope exactly, so
   anything more is a bug);
2. **warm-start payoff**: the warm-started steps average strictly fewer
   Newton iterations than the cold first step;
3. **bitwise resume**: a run killed mid-trajectory and resumed from its
   checkpoint ends in exactly (``np.array_equal``) the state of the
   uninterrupted run -- thickness, velocity and particles.

``--plant-leak`` arms the evolver's deliberate conservation violation;
CI runs it as a negative control to prove gate (1) actually fires.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.transient.engine import TransientEngine, TransientKilled
from repro.transient.scenarios import SCENARIOS, get_scenario

__all__ = ["main", "run_check"]

#: the --check gates (documented here, asserted below)
CHECK_SCENARIO = "antarctica-closed"
CHECK_MIN_STEPS = 20
CHECK_DRIFT_TOL = 1.0e-12
CHECK_KILL_AT = 9  # kill after the 10th step (0-based index 9): mid-run


def _print_step(step: int, info: dict) -> None:
    print(
        f"  step {step + 1:3d}: t = {info['t_years']:8.1f} yr  "
        f"dt = {info['dt']:6.1f}  vol = {info['volume']:.6e} m^3  "
        f"newton = {info['newton_iterations']}"
        f"{' (warm)' if info['warm_started'] else ' (cold)'}  "
        f"particles = {info['active_particles']}"
    )


def run_check(plant_leak: float = 0.0, verbose: bool = True) -> int:
    """Run the acceptance gate; returns a process exit code."""
    scenario = get_scenario(CHECK_SCENARIO)
    if scenario.num_steps < CHECK_MIN_STEPS:
        scenario = scenario.with_steps(CHECK_MIN_STEPS)
    engine = TransientEngine(scenario)
    cb = _print_step if verbose else None

    print(f"transient check: scenario {scenario.name!r}, {scenario.num_steps} steps")
    result = engine.run(plant_leak=plant_leak, callback=cb)

    failures = []

    drift = result.volume_drift
    ok = drift <= CHECK_DRIFT_TOL
    print(f"  [{'ok' if ok else 'FAIL'}] volume drift {drift:.3e} (tol {CHECK_DRIFT_TOL:g})")
    if not ok:
        failures.append("volume conservation")

    cold = result.cold_iterations
    warm = result.warm_mean_iterations
    ok = warm < cold
    print(f"  [{'ok' if ok else 'FAIL'}] warm-start: cold {cold} its, warm mean {warm:.2f}")
    if not ok:
        failures.append("warm-start iteration reduction")

    # kill/resume drill on a fresh engine sharing the same cached
    # problem; plant_leak passes through so the negative control still
    # compares like with like (it fails gate 1, not this one)
    with tempfile.TemporaryDirectory() as td:
        killed_engine = TransientEngine(scenario, cache=engine.cache)
        try:
            killed_engine.run(
                kill_at_step=CHECK_KILL_AT, checkpoint_dir=td, plant_leak=plant_leak
            )
            raise AssertionError("scripted kill did not fire")
        except TransientKilled as kill:
            resumed = killed_engine.run(resume_from=kill.path, plant_leak=plant_leak)
    ok = (
        np.array_equal(resumed.thickness, result.thickness)
        and np.array_equal(resumed.u, result.u)
        and np.array_equal(resumed.particles.xy, result.particles.xy)
        and np.array_equal(resumed.particles.active, result.particles.active)
    )
    print(
        f"  [{'ok' if ok else 'FAIL'}] kill at step {CHECK_KILL_AT + 1}/"
        f"{scenario.num_steps} + resume reproduces the run bitwise"
    )
    if not ok:
        failures.append("bitwise kill/resume")

    if failures:
        print(f"transient check FAILED: {', '.join(failures)}")
        return 1
    print("transient check passed")
    return 0


def _write_volume_csv(path: Path, result) -> None:
    lines = ["time_years,volume_m3"]
    lines += [f"{t!r},{v!r}" for t, v in zip(result.times, result.volumes)]
    path.write_text("\n".join(lines) + "\n")
    print(f"wrote volume time-series to {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro transient",
        description="Run a named transient ice-sheet scenario.",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        default=CHECK_SCENARIO,
        help=f"library scenario name (default: {CHECK_SCENARIO})",
    )
    parser.add_argument("--list", action="store_true", help="list library scenarios")
    parser.add_argument("--check", action="store_true", help="run the acceptance gate")
    parser.add_argument("--steps", type=int, default=None, help="override step count")
    parser.add_argument(
        "--plant-leak",
        type=float,
        default=0.0,
        help="arm the deliberate conservation leak (CI negative control)",
    )
    parser.add_argument("--kill-at", type=int, default=None, help="kill after this step index")
    parser.add_argument("--resume", type=str, default=None, help="resume from a checkpoint .npz")
    parser.add_argument(
        "--checkpoint-dir", type=str, default=None, help="write periodic checkpoints here"
    )
    parser.add_argument(
        "--volume-csv", type=str, default=None, help="write the volume time-series as CSV"
    )
    parser.add_argument("-q", "--quiet", action="store_true", help="suppress per-step output")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(SCENARIOS):
            sc = SCENARIOS[name]
            print(f"{name:20s} {sc.family:10s} {sc.num_steps:3d} steps  forcing={sc.forcing}")
        return 0

    if args.check:
        return run_check(plant_leak=args.plant_leak, verbose=not args.quiet)

    scenario = get_scenario(args.scenario)
    if args.steps is not None:
        scenario = scenario.with_steps(args.steps)
    engine = TransientEngine(scenario)
    print(f"transient scenario {scenario.name!r}: {scenario.num_steps} steps")
    try:
        result = engine.run(
            resume_from=args.resume,
            kill_at_step=args.kill_at,
            plant_leak=args.plant_leak,
            checkpoint_dir=args.checkpoint_dir,
            callback=None if args.quiet else _print_step,
        )
    except TransientKilled as kill:
        print(f"killed after step {kill.checkpoint.step} (checkpoint: {kill.path})")
        return 0
    d = result.diagnostics
    print(
        f"done: t = {d['t_final_years']:.1f} yr, volume {result.volumes[-1]:.6e} m^3 "
        f"(drift {result.volume_drift:.3e}), cold {result.cold_iterations} its, "
        f"warm mean {result.warm_mean_iterations:.2f}, "
        f"{d['active_particles']}/{len(result.particles)} particles active"
    )
    if args.volume_csv:
        _write_volume_csv(Path(args.volume_csv), result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
