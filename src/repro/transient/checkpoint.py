"""Transient checkpoint/restart: snapshot the coupled state, resume the run.

The transient analogue of :class:`~repro.resilience.checkpoint.
NewtonCheckpoint`, one level up the stack: where a Newton checkpoint
freezes the iterate of one velocity solve, a transient checkpoint
freezes everything the coupled loop needs to continue bit-for-bit --
the cell thickness (the prognostic FV state), the last velocity (the
next step's warm start), the derived Newton absolute tolerance (fixed
at the cold start and never recomputed, so a resumed run solves to the
same tolerance), the particle ensemble, and the recorded histories.

Same on-disk contract too: a single self-describing ``.npz`` loadable
with plain numpy, guarded by the CRC32 ``digest`` the halo checksums
use, so a truncated or bit-flipped file refuses to resume instead of
silently forking the trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.resilience.detectors import payload_checksum

__all__ = ["TransientCheckpoint"]


@dataclass
class TransientCheckpoint:
    """Coupled transient state after ``step`` completed steps."""

    step: int  # completed steps (resume starts at this index)
    t_years: float  # model time after those steps
    tol_abs: float  # Newton absolute tolerance derived at the cold start
    thickness: np.ndarray  # (num_footprint_elems,) cell thickness [m]
    u: np.ndarray  # (num_dofs,) last velocity (next warm start)
    particles_xy: np.ndarray  # (np, 2)
    particles_zeta: np.ndarray  # (np,)
    particles_active: np.ndarray  # (np,) bool
    scenario_digest: str = ""
    volumes: list[float] = field(default_factory=list)  # V_0 .. V_step
    times: list[float] = field(default_factory=list)  # t after each step
    dts: list[float] = field(default_factory=list)  # accepted dt per step
    newton_iterations: list[int] = field(default_factory=list)

    @property
    def digest(self) -> int:
        """CRC32 over the full resume-critical payload."""
        payload = np.concatenate(
            [
                np.ascontiguousarray(self.thickness, dtype=np.float64),
                np.ascontiguousarray(self.u, dtype=np.float64),
                np.ascontiguousarray(self.particles_xy, dtype=np.float64).ravel(),
                np.ascontiguousarray(self.particles_zeta, dtype=np.float64),
                np.asarray(self.particles_active, dtype=np.float64),
                np.asarray([float(self.step), self.t_years, self.tol_abs]),
            ]
        )
        return payload_checksum(payload)

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the checkpoint as a ``.npz`` (returns the path written)."""
        path = Path(path)
        np.savez(
            path,
            step=np.int64(self.step),
            t_years=np.float64(self.t_years),
            tol_abs=np.float64(self.tol_abs),
            thickness=np.ascontiguousarray(self.thickness, dtype=np.float64),
            u=np.ascontiguousarray(self.u, dtype=np.float64),
            particles_xy=np.ascontiguousarray(self.particles_xy, dtype=np.float64),
            particles_zeta=np.ascontiguousarray(self.particles_zeta, dtype=np.float64),
            particles_active=np.asarray(self.particles_active, dtype=bool),
            scenario_digest=np.asarray(self.scenario_digest, dtype="U32"),
            volumes=np.asarray(self.volumes, dtype=np.float64),
            times=np.asarray(self.times, dtype=np.float64),
            dts=np.asarray(self.dts, dtype=np.float64),
            newton_iterations=np.asarray(self.newton_iterations, dtype=np.int64),
            digest=np.uint64(self.digest),
        )
        return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")

    @classmethod
    def load(cls, path: str | Path) -> "TransientCheckpoint":
        """Load and integrity-check a saved checkpoint."""
        with np.load(Path(path), allow_pickle=False) as z:
            ckpt = cls(
                step=int(z["step"]),
                t_years=float(z["t_years"]),
                tol_abs=float(z["tol_abs"]),
                thickness=np.array(z["thickness"], dtype=np.float64),
                u=np.array(z["u"], dtype=np.float64),
                particles_xy=np.array(z["particles_xy"], dtype=np.float64),
                particles_zeta=np.array(z["particles_zeta"], dtype=np.float64),
                particles_active=np.array(z["particles_active"], dtype=bool),
                scenario_digest=str(z["scenario_digest"]),
                volumes=[float(v) for v in z["volumes"]],
                times=[float(v) for v in z["times"]],
                dts=[float(v) for v in z["dts"]],
                newton_iterations=[int(v) for v in z["newton_iterations"]],
            )
            stored = int(z["digest"])
        if ckpt.digest != stored:
            raise ValueError(
                f"transient checkpoint {path} failed its integrity check "
                f"(stored digest {stored}, recomputed {ckpt.digest})"
            )
        return ckpt
