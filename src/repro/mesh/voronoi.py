"""MPAS-style quasi-uniform Voronoi meshes and dual triangulations.

MPAS meshes are centroidal Voronoi tessellations; MALI's FE mesh is the
*triangulation dual* to the Voronoi mesh, extruded vertically.  We build
the generator set from a jittered hexagonal lattice restricted to the ice
mask, improve it with a few Lloyd iterations, and expose both the Voronoi
cell adjacency (MPAS-style ``cellsOnCell``) and the dual Delaunay
triangulation as a :class:`~repro.mesh.planar.Footprint2D`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import Delaunay, Voronoi

from repro.mesh.planar import Footprint2D, _boundary_edges_from_elems

__all__ = ["VoronoiMesh", "mpas_voronoi_mesh", "triangle_footprint_from_voronoi"]


@dataclass
class VoronoiMesh:
    """Quasi-uniform Voronoi mesh plus its dual triangulation.

    ``cells_on_cell`` is stored CSR-style (``coc_offsets`` into
    ``coc_data``), mirroring MPAS's variable-degree adjacency.
    """

    points: np.ndarray
    triangles: np.ndarray
    coc_offsets: np.ndarray
    coc_data: np.ndarray
    spacing: float

    @property
    def num_cells(self) -> int:
        return len(self.points)

    @property
    def num_triangles(self) -> int:
        return len(self.triangles)

    def neighbors(self, cell: int) -> np.ndarray:
        """MPAS ``cellsOnCell`` for one cell."""
        return self.coc_data[self.coc_offsets[cell] : self.coc_offsets[cell + 1]]

    def degree(self) -> np.ndarray:
        return np.diff(self.coc_offsets)

    def cell_areas(self) -> np.ndarray:
        """Voronoi region areas; boundary (unbounded) cells get spacing^2."""
        vor = Voronoi(self.points)
        areas = np.full(self.num_cells, self.spacing**2)
        for i, reg_idx in enumerate(vor.point_region):
            region = vor.regions[reg_idx]
            if not region or -1 in region:
                continue
            poly = vor.vertices[region]
            x, y = poly[:, 0], poly[:, 1]
            areas[i] = 0.5 * abs(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))
        return areas


def _hex_lattice(lx: float, ly: float, spacing: float) -> np.ndarray:
    """Hexagonal lattice points covering ``[0, lx] x [0, ly]``."""
    dy = spacing * np.sqrt(3.0) / 2.0
    rows = int(np.ceil(ly / dy)) + 1
    cols = int(np.ceil(lx / spacing)) + 2
    pts = []
    for r in range(rows):
        xoff = 0.5 * spacing if r % 2 else 0.0
        xs = xoff + spacing * np.arange(cols)
        ys = np.full(cols, r * dy)
        pts.append(np.stack([xs, ys], axis=1))
    pts = np.concatenate(pts, axis=0)
    keep = (pts[:, 0] <= lx) & (pts[:, 1] <= ly)
    return pts[keep]


def _lloyd_step(points: np.ndarray, interior: np.ndarray) -> np.ndarray:
    """Move interior generators to their (finite) Voronoi-region centroids."""
    vor = Voronoi(points)
    out = points.copy()
    for i in np.flatnonzero(interior):
        region = vor.regions[vor.point_region[i]]
        if not region or -1 in region:
            continue
        poly = vor.vertices[region]
        x, y = poly[:, 0], poly[:, 1]
        cross = x * np.roll(y, -1) - np.roll(x, -1) * y
        a = 0.5 * np.sum(cross)
        if abs(a) < 1.0e-12:
            continue
        cx = np.sum((x + np.roll(x, -1)) * cross) / (6.0 * a)
        cy = np.sum((y + np.roll(y, -1)) * cross) / (6.0 * a)
        out[i] = (cx, cy)
    return out


def _adjacency_from_triangles(n: int, triangles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CSR cell-to-cell adjacency from shared Delaunay edges."""
    edges = np.concatenate(
        [triangles[:, [0, 1]], triangles[:, [1, 2]], triangles[:, [2, 0]]], axis=0
    )
    edges.sort(axis=1)
    edges = np.unique(edges, axis=0)
    both = np.concatenate([edges, edges[:, ::-1]], axis=0)
    order = np.lexsort((both[:, 1], both[:, 0]))
    both = both[order]
    counts = np.bincount(both[:, 0], minlength=n)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return offsets, both[:, 1].astype(np.int64)


def mpas_voronoi_mesh(
    mask_fn,
    lx: float,
    ly: float,
    spacing: float,
    lloyd_iters: int = 2,
    jitter: float = 0.12,
    seed: int = 7,
) -> VoronoiMesh:
    """Quasi-uniform Voronoi mesh of the masked region.

    Parameters
    ----------
    mask_fn:
        Vectorized predicate ``mask_fn(x, y) -> bool`` selecting iced area.
    spacing:
        Target cell spacing (the "16 km" of the paper's test).
    """
    pts = _hex_lattice(lx, ly, spacing)
    keep = np.asarray(mask_fn(pts[:, 0], pts[:, 1]), dtype=bool)
    pts = pts[keep]
    if len(pts) < 8:
        raise ValueError("mask too small for the requested spacing")
    rng = np.random.default_rng(seed)
    pts = pts + rng.uniform(-jitter, jitter, size=pts.shape) * spacing

    for _ in range(max(0, lloyd_iters)):
        tri = Delaunay(pts)
        on_hull = np.zeros(len(pts), dtype=bool)
        on_hull[np.unique(tri.convex_hull)] = True
        pts = _lloyd_step(pts, ~on_hull)

    tri = Delaunay(pts)
    triangles = tri.simplices.astype(np.int64)
    # drop sliver triangles on the concave parts of the hull
    p = pts[triangles]
    area2 = (p[:, 1, 0] - p[:, 0, 0]) * (p[:, 2, 1] - p[:, 0, 1]) - (
        p[:, 2, 0] - p[:, 0, 0]
    ) * (p[:, 1, 1] - p[:, 0, 1])
    good = np.abs(area2) > 0.05 * spacing**2
    triangles = triangles[good]
    # enforce CCW orientation
    flip = area2[good] < 0.0
    triangles[flip] = triangles[flip][:, ::-1]

    offsets, data = _adjacency_from_triangles(len(pts), triangles)
    return VoronoiMesh(pts, triangles, offsets, data, spacing)


def triangle_footprint_from_voronoi(vm: VoronoiMesh) -> Footprint2D:
    """The dual triangulation as an FE footprint (compacted node ids)."""
    used = np.unique(vm.triangles)
    remap = -np.ones(vm.num_cells, dtype=np.int64)
    remap[used] = np.arange(len(used))
    elems = remap[vm.triangles]
    coords = vm.points[used]
    bedges = _boundary_edges_from_elems(elems, 3)
    return Footprint2D(coords, elems, "tri3", bedges)
