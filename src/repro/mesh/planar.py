"""Planar footprint meshes (quadrilateral, optionally ice-masked).

The paper's Antarctica test uses a planar mesh with quadrilateral
elements; the footprint here is a structured grid restricted to cells
where ice is present.  Node and element numbering is compacted so
downstream code never sees inactive cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Footprint2D", "quad_footprint", "masked_quad_footprint"]


@dataclass
class Footprint2D:
    """A planar FE footprint: nodes, elements and boundary topology.

    Attributes
    ----------
    coords:
        ``(nnodes, 2)`` node coordinates in meters.
    elems:
        ``(nelems, k)`` node ids per element, counterclockwise;
        ``k == 4`` for quads, ``k == 3`` for triangles.
    elem_type:
        ``"quad4"`` or ``"tri3"``.
    boundary_edges:
        ``(nbedges, 2)`` node-id pairs on the domain boundary.
    boundary_nodes:
        Sorted unique node ids on the boundary.
    """

    coords: np.ndarray
    elems: np.ndarray
    elem_type: str
    boundary_edges: np.ndarray
    boundary_nodes: np.ndarray = field(default=None)

    def __post_init__(self):
        self.coords = np.ascontiguousarray(self.coords, dtype=np.float64)
        self.elems = np.ascontiguousarray(self.elems, dtype=np.int64)
        if self.elem_type not in ("quad4", "tri3"):
            raise ValueError(f"unknown footprint element type {self.elem_type!r}")
        k = 4 if self.elem_type == "quad4" else 3
        if self.elems.ndim != 2 or self.elems.shape[1] != k:
            raise ValueError(f"{self.elem_type} footprint requires (n, {k}) connectivity")
        if self.elems.size and self.elems.max() >= len(self.coords):
            raise ValueError("element connectivity references missing nodes")
        if self.boundary_nodes is None:
            self.boundary_nodes = (
                np.unique(self.boundary_edges) if self.boundary_edges.size else np.empty(0, np.int64)
            )

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.coords)

    @property
    def num_elems(self) -> int:
        return len(self.elems)

    @property
    def nodes_per_elem(self) -> int:
        return self.elems.shape[1]

    def elem_centers(self) -> np.ndarray:
        return self.coords[self.elems].mean(axis=1)

    def edges(self) -> np.ndarray:
        """All unique (sorted) edges of the footprint, shape ``(ne, 2)``."""
        k = self.nodes_per_elem
        pairs = np.concatenate(
            [self.elems[:, [i, (i + 1) % k]] for i in range(k)], axis=0
        )
        pairs.sort(axis=1)
        return np.unique(pairs, axis=0)

    def euler_characteristic(self) -> int:
        """V - E + F; equals 1 for a simply-connected planar mesh."""
        return self.num_nodes - len(self.edges()) + self.num_elems

    def elem_areas(self) -> np.ndarray:
        """Signed polygon area per element (shoelace; > 0 when CCW)."""
        p = self.coords[self.elems]  # (ne, k, 2)
        x, y = p[..., 0], p[..., 1]
        xn, yn = np.roll(x, -1, axis=1), np.roll(y, -1, axis=1)
        return 0.5 * np.sum(x * yn - xn * y, axis=1)

    def validate(self) -> None:
        """Raise on inverted/degenerate elements."""
        areas = self.elem_areas()
        if np.any(areas <= 0.0):
            bad = int(np.argmin(areas))
            raise ValueError(
                f"footprint element {bad} is degenerate or clockwise (area={areas[bad]:.3e})"
            )


def _boundary_edges_from_elems(elems: np.ndarray, k: int) -> np.ndarray:
    """Edges that belong to exactly one element (the domain boundary)."""
    pairs = np.concatenate([elems[:, [i, (i + 1) % k]] for i in range(k)], axis=0)
    s = np.sort(pairs, axis=1)
    _, inv, counts = np.unique(s, axis=0, return_inverse=True, return_counts=True)
    return pairs[counts[inv] == 1]


def quad_footprint(nx: int, ny: int, lx: float, ly: float, x0: float = 0.0, y0: float = 0.0) -> Footprint2D:
    """Structured ``nx`` x ``ny`` quad grid over ``[x0, x0+lx] x [y0, y0+ly]``."""
    if nx <= 0 or ny <= 0:
        raise ValueError("grid extents must be positive")
    xs = np.linspace(x0, x0 + lx, nx + 1)
    ys = np.linspace(y0, y0 + ly, ny + 1)
    X, Y = np.meshgrid(xs, ys, indexing="ij")
    coords = np.stack([X.ravel(), Y.ravel()], axis=1)

    i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    n00 = (i * (ny + 1) + j).ravel()
    n10 = ((i + 1) * (ny + 1) + j).ravel()
    n11 = ((i + 1) * (ny + 1) + j + 1).ravel()
    n01 = (i * (ny + 1) + j + 1).ravel()
    elems = np.stack([n00, n10, n11, n01], axis=1)

    bedges = _boundary_edges_from_elems(elems, 4)
    return Footprint2D(coords, elems, "quad4", bedges)


def masked_quad_footprint(
    nx: int,
    ny: int,
    lx: float,
    ly: float,
    mask_fn,
    x0: float = 0.0,
    y0: float = 0.0,
) -> Footprint2D:
    """Structured quad grid keeping only cells whose center satisfies ``mask_fn``.

    ``mask_fn(x, y)`` is evaluated vectorized on cell centers and must
    return a boolean array.  Node numbering is compacted to active nodes.
    """
    full = quad_footprint(nx, ny, lx, ly, x0, y0)
    centers = full.elem_centers()
    keep = np.asarray(mask_fn(centers[:, 0], centers[:, 1]), dtype=bool)
    if not keep.any():
        raise ValueError("ice mask removed every footprint cell")
    elems = full.elems[keep]
    used = np.unique(elems)
    remap = -np.ones(full.num_nodes, dtype=np.int64)
    remap[used] = np.arange(len(used))
    elems = remap[elems]
    coords = full.coords[used]
    bedges = _boundary_edges_from_elems(elems, 4)
    return Footprint2D(coords, elems, "quad4", bedges)
