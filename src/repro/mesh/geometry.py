"""Synthetic Antarctica-like ice-sheet geometry.

The paper's test problem uses a 16-km Antarctica mesh we do not have;
this module builds the closest synthetic equivalent that exercises the
same code path: a continent-scale dome following the Vialov steady-state
profile (the classic analytic ice-sheet shape for Glen's law with n=3),
perturbed by smooth bed topography, a secondary dome (a crude West
Antarctica), and a floating-margin flag.  All fields are deterministic
functions of (x, y) so any mesh resolution samples the same ice sheet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import GLEN_N, RHO_ICE, RHO_SEAWATER

__all__ = ["IceGeometry", "vialov_profile", "antarctica_geometry", "greenland_geometry"]


def vialov_profile(r, radius: float, h_max: float, n: float = GLEN_N):
    """Vialov steady-state thickness profile.

    ``H(r) = h_max * (1 - (r/R)^((n+1)/n))^(n/(2n+2))`` for ``r < R``.
    """
    r = np.asarray(r, dtype=np.float64)
    s = np.clip(r / radius, 0.0, 1.0)
    base = np.maximum(1.0 - s ** ((n + 1.0) / n), 0.0)
    return h_max * base ** (n / (2.0 * n + 2.0))


@dataclass(frozen=True)
class IceGeometry:
    """Callable ice-sheet geometry over a planar domain.

    All lengths in meters.  ``thickness``, ``surface``, ``bed`` are
    vectorized callables of (x, y); ``mask`` returns True where ice is
    thick enough to mesh.  ``aspect`` elongates the main dome along y
    (1.0 = circular Antarctica-like; ~2 = Greenland-like).
    """

    lx: float
    ly: float
    center: tuple[float, float]
    radius: float
    h_max: float
    bed_amplitude: float
    min_thickness: float
    seed: int = 2024
    aspect: float = 1.0
    secondary_dome: bool = True

    def _bed_modes(self):
        """Deterministic smooth bed undulation coefficients."""
        rng = np.random.default_rng(self.seed)
        nmodes = 6
        kx = rng.integers(1, 5, size=nmodes)
        ky = rng.integers(1, 5, size=nmodes)
        amp = rng.uniform(0.3, 1.0, size=nmodes)
        phase = rng.uniform(0.0, 2.0 * np.pi, size=(nmodes, 2))
        return kx, ky, amp, phase

    # -- fields ---------------------------------------------------------
    def bed(self, x, y):
        """Bed elevation [m a.s.l.]: gentle dome + smooth undulations."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        cx, cy = self.center
        r = np.hypot(x - cx, y - cy)
        # broad bed depression toward the margin (marine margins)
        b = 200.0 - 700.0 * (r / self.radius) ** 2
        kxs, kys, amps, phases = self._bed_modes()
        for kx, ky, a, (px, py) in zip(kxs, kys, amps, phases):
            b = b + self.bed_amplitude * a * np.sin(
                2.0 * np.pi * kx * x / self.lx + px
            ) * np.cos(2.0 * np.pi * ky * y / self.ly + py)
        return b

    def thickness(self, x, y):
        """Ice thickness [m]: main (possibly elongated) Vialov dome."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        cx, cy = self.center
        r = np.hypot(x - cx, (y - cy) / self.aspect)
        h = vialov_profile(r, self.radius, self.h_max)
        if not self.secondary_dome:
            return h
        # secondary dome (West-Antarctica-like), offset toward -x
        cx2, cy2 = cx - 0.55 * self.radius, cy - 0.25 * self.radius
        h2 = vialov_profile(np.hypot(x - cx2, y - cy2), 0.45 * self.radius, 0.55 * self.h_max)
        return np.maximum(h, h2)

    def surface(self, x, y):
        """Upper surface [m]: grounded ``bed + H``; floating per floatation."""
        b = self.bed(x, y)
        h = self.thickness(x, y)
        grounded = self.grounded(x, y)
        s_grounded = b + h
        s_floating = h * (1.0 - RHO_ICE / RHO_SEAWATER)
        return np.where(grounded, s_grounded, s_floating)

    def lower_surface(self, x, y):
        """Ice base [m]: bed where grounded, floatation depth where floating."""
        return self.surface(x, y) - self.thickness(x, y)

    def grounded(self, x, y):
        """True where the ice column is grounded (floatation criterion)."""
        b = self.bed(x, y)
        h = self.thickness(x, y)
        return b + h * (RHO_ICE / RHO_SEAWATER) > 0.0

    def mask(self, x, y):
        """True where ice is thick enough to mesh."""
        return self.thickness(x, y) > self.min_thickness

    def temperature(self, x, y, zeta):
        """Column temperature [K]: cold surface, warmer bed.

        ``zeta`` in [0, 1] measures height within the column (0 = bed).
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        cx, cy = self.center
        r = np.hypot(x - cx, y - cy) / self.radius
        t_surf = 223.0 + 30.0 * np.clip(r, 0.0, 1.0)  # colder at the divide
        t_bed = 268.0
        return t_bed + (t_surf - t_bed) * np.asarray(zeta, dtype=np.float64)

    def surface_for_thickness(self, x, y, h):
        """Upper surface [m] for an EVOLVED thickness field ``h``.

        Same floatation rule as :meth:`surface`, but against a
        caller-supplied thickness instead of the analytic profile: the
        transient engine feeds the advected nodal thickness back through
        this to re-extrude the velocity mesh each step.  The bedrock
        stays the analytic :meth:`bed` (the solid earth does not evolve
        on ice-dynamics timescales).
        """
        b = self.bed(x, y)
        h = np.asarray(h, dtype=np.float64)
        grounded = b + h * (RHO_ICE / RHO_SEAWATER) > 0.0
        return np.where(grounded, b + h, h * (1.0 - RHO_ICE / RHO_SEAWATER))

    def basal_friction(self, x, y):
        """Basal friction coefficient beta [kPa yr / m]; ~0 where floating."""
        grounded = self.grounded(x, y)
        h = self.thickness(x, y)
        # stickier under thick grounded ice, slippery streams near margin
        beta = 5.0 + 45.0 * np.clip(h / self.h_max, 0.0, 1.0)
        return np.where(grounded, beta, 1.0e-3)


def greenland_geometry() -> IceGeometry:
    """A synthetic Greenland: elongated single dome on a narrower domain.

    MALI's other flagship configuration (Tezaur et al. 2015 run both
    Greenland and Antarctica); useful for exercising the solver on a
    high-aspect-ratio ice sheet with no secondary dome.
    """
    lx, ly = 1.8e6, 3.0e6
    return IceGeometry(
        lx=lx,
        ly=ly,
        center=(0.5 * lx, 0.5 * ly),
        radius=0.36 * lx,
        h_max=3200.0,
        bed_amplitude=120.0,
        min_thickness=10.0,
        seed=1966,
        aspect=2.1,
        secondary_dome=False,
    )


def antarctica_geometry(resolution_km: float = 16.0) -> IceGeometry:
    """The default synthetic Antarctica used across examples and tests.

    ``resolution_km`` does not change the geometry -- it is recorded by
    callers to size the footprint so that, at 16 km with 20 layers, the
    mesh has roughly the paper's ~256K hexahedral elements.
    """
    size = 4.4e6  # domain edge [m]; continent-scale
    return IceGeometry(
        lx=size,
        ly=size,
        center=(0.52 * size, 0.5 * size),
        radius=0.42 * size,
        h_max=4000.0,
        bed_amplitude=150.0,
        min_thickness=10.0,
    )
