"""Meshing substrate: MPAS-style planar meshes and extruded 3D FE meshes.

MALI builds its 3D mesh by extruding a planar mesh through the ice
thickness (20 layers in the paper's Antarctica test).  This package
provides:

* :mod:`~repro.mesh.planar` -- structured quadrilateral footprints with
  ice masks (the paper's test uses quadrilateral elements).
* :mod:`~repro.mesh.voronoi` -- MPAS-style quasi-uniform Voronoi meshes
  and their dual Delaunay triangulations (triangle footprints).
* :mod:`~repro.mesh.geometry` -- synthetic Antarctica-like ice-sheet
  geometry (Vialov dome + perturbed bed), substituting for the paper's
  16-km Antarctica dataset.
* :mod:`~repro.mesh.extrude` -- extrusion of a footprint into layered
  hexahedral or prismatic elements.
* :mod:`~repro.mesh.partition` -- domain decomposition with halo maps.
"""

from repro.mesh.planar import Footprint2D, quad_footprint, masked_quad_footprint
from repro.mesh.geometry import (
    IceGeometry,
    vialov_profile,
    antarctica_geometry,
    greenland_geometry,
)
from repro.mesh.voronoi import VoronoiMesh, mpas_voronoi_mesh, triangle_footprint_from_voronoi
from repro.mesh.extrude import ExtrudedMesh, extrude_footprint, uniform_sigma_levels
from repro.mesh.partition import (
    Partition,
    partition_footprint,
    HaloExchange,
    TrafficMeter,
    HaloStatistics,
    halo_statistics,
)

__all__ = [
    "Footprint2D",
    "quad_footprint",
    "masked_quad_footprint",
    "IceGeometry",
    "vialov_profile",
    "antarctica_geometry",
    "greenland_geometry",
    "VoronoiMesh",
    "mpas_voronoi_mesh",
    "triangle_footprint_from_voronoi",
    "ExtrudedMesh",
    "extrude_footprint",
    "uniform_sigma_levels",
    "Partition",
    "partition_footprint",
    "HaloExchange",
    "TrafficMeter",
    "HaloStatistics",
    "halo_statistics",
]
