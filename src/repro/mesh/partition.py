"""Domain decomposition with halo maps (MPI-substrate, run in-process).

MALI runs one MPI rank per GPU; the paper's evaluation is single-rank,
but the library keeps the distributed-memory substrate so multi-rank
experiments (and the tests that prove additive-scatter consistency) have
something real to exercise.  Partitioning is recursive coordinate
bisection over footprint elements; halos are the standard one-layer
node-sharing ghosts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.planar import Footprint2D

__all__ = ["Partition", "partition_footprint", "HaloExchange"]


def _rcb(centers: np.ndarray, ids: np.ndarray, nparts: int, out: np.ndarray, first: int) -> None:
    """Recursive coordinate bisection: split the longer axis at the median."""
    if nparts == 1:
        out[ids] = first
        return
    ext = centers[ids].max(axis=0) - centers[ids].min(axis=0)
    axis = int(np.argmax(ext))
    order = ids[np.argsort(centers[ids, axis], kind="stable")]
    left_parts = nparts // 2
    cut = int(round(len(order) * left_parts / nparts))
    _rcb(centers, order[:cut], left_parts, out, first)
    _rcb(centers, order[cut:], nparts - left_parts, out, first + left_parts)


@dataclass
class Partition:
    """Element ownership plus derived node ownership and halo sets."""

    footprint: Footprint2D
    nparts: int
    elem_part: np.ndarray  # (ne,) owning part per element
    node_part: np.ndarray  # (nn,) owning part per node (min adjacent part)

    def owned_elems(self, part: int) -> np.ndarray:
        return np.flatnonzero(self.elem_part == part)

    def owned_nodes(self, part: int) -> np.ndarray:
        return np.flatnonzero(self.node_part == part)

    def local_nodes(self, part: int) -> np.ndarray:
        """Owned + ghost nodes: every node touched by an owned element."""
        return np.unique(self.footprint.elems[self.owned_elems(part)])

    def ghost_nodes(self, part: int) -> np.ndarray:
        local = self.local_nodes(part)
        return local[self.node_part[local] != part]

    def balance(self) -> float:
        """max/avg element count over parts (1.0 = perfect balance)."""
        counts = np.bincount(self.elem_part, minlength=self.nparts)
        return float(counts.max() / max(1.0, counts.mean()))


def partition_footprint(footprint: Footprint2D, nparts: int) -> Partition:
    """Partition footprint elements into ``nparts`` via coordinate bisection."""
    if nparts <= 0:
        raise ValueError("nparts must be positive")
    ne = footprint.num_elems
    if nparts > ne:
        raise ValueError(f"cannot split {ne} elements into {nparts} parts")
    elem_part = np.empty(ne, dtype=np.int64)
    _rcb(footprint.elem_centers(), np.arange(ne), nparts, elem_part, 0)

    # node owner: the smallest part id among elements touching the node
    nn = footprint.num_nodes
    node_part = np.full(nn, np.iinfo(np.int64).max, dtype=np.int64)
    for k in range(footprint.nodes_per_elem):
        np.minimum.at(node_part, footprint.elems[:, k], elem_part)
    return Partition(footprint, nparts, elem_part, node_part)


class HaloExchange:
    """In-process halo exchange over a :class:`Partition`.

    Mirrors the two MPI patterns a FE assembly needs:

    * :meth:`scatter_add` -- additive reduction of per-part contributions
      into a global nodal array (ghost contributions folded into owners),
    * :meth:`gather` -- refresh of each part's local (owned + ghost)
      nodal values from the global array.
    """

    def __init__(self, partition: Partition):
        self.partition = partition
        self._local = [partition.local_nodes(p) for p in range(partition.nparts)]

    def local_nodes(self, part: int) -> np.ndarray:
        return self._local[part]

    def gather(self, part: int, global_field: np.ndarray) -> np.ndarray:
        """Local copy (owned + ghosts) of a global nodal field."""
        return np.array(global_field[self._local[part]])

    def scatter_add(self, contributions: list[np.ndarray]) -> np.ndarray:
        """Sum per-part local contributions into a global nodal array.

        ``contributions[p]`` must align with ``local_nodes(p)``; overlap
        (ghost) entries add, exactly like MPI ``Export`` with ADD mode.
        """
        if len(contributions) != self.partition.nparts:
            raise ValueError("one contribution array per part required")
        nn = self.partition.footprint.num_nodes
        first = np.asarray(contributions[0])
        out = np.zeros((nn,) + first.shape[1:], dtype=np.float64)
        for p, contrib in enumerate(contributions):
            contrib = np.asarray(contrib)
            if len(contrib) != len(self._local[p]):
                raise ValueError(f"part {p}: contribution length mismatch")
            np.add.at(out, self._local[p], contrib)
        return out
