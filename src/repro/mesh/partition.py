"""Domain decomposition with halo maps (MPI-substrate, run in-process).

MALI runs one MPI rank per GPU; the paper's evaluation is single-rank,
but the library keeps the distributed-memory substrate so multi-rank
experiments (and the tests that prove additive-scatter consistency) have
something real to exercise.  Partitioning is recursive coordinate
bisection over footprint elements; halos are the standard one-layer
node-sharing ghosts.

The SPMD velocity solve (:mod:`repro.fem.distributed`) builds on three
pieces added here:

* explicit per-neighbor send/recv index maps (:meth:`HaloExchange.
  send_map` / :meth:`HaloExchange.recv_map`) -- the message lists an MPI
  implementation would post, derived once from the partition;
* a :class:`TrafficMeter` that records every exchanged byte per rank and
  per channel, so scaling projections can use *measured* halo traffic
  instead of analytic surface-area guesses;
* :func:`halo_statistics`, the per-rank ghost/send/neighbor counts that
  feed :class:`repro.app.scaling.ScalingModel`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.mesh.planar import Footprint2D
from repro.observability import get_metrics, get_tracer
from repro.resilience.detectors import payload_checksum, verify_payload
from repro.resilience.injectors import HaloCorruptionError, fault_plane

__all__ = [
    "Partition",
    "partition_footprint",
    "HaloExchange",
    "TrafficMeter",
    "HaloStatistics",
    "halo_statistics",
]


def _rcb(centers: np.ndarray, ids: np.ndarray, nparts: int, out: np.ndarray, first: int) -> None:
    """Recursive coordinate bisection: split the longer axis at the median."""
    if nparts == 1:
        out[ids] = first
        return
    ext = centers[ids].max(axis=0) - centers[ids].min(axis=0)
    axis = int(np.argmax(ext))
    order = ids[np.argsort(centers[ids, axis], kind="stable")]
    left_parts = nparts // 2
    cut = int(round(len(order) * left_parts / nparts))
    _rcb(centers, order[:cut], left_parts, out, first)
    _rcb(centers, order[cut:], nparts - left_parts, out, first + left_parts)


@dataclass
class Partition:
    """Element ownership plus derived node ownership and halo sets."""

    footprint: Footprint2D
    nparts: int
    elem_part: np.ndarray  # (ne,) owning part per element
    node_part: np.ndarray  # (nn,) owning part per node (min adjacent part)

    def owned_elems(self, part: int) -> np.ndarray:
        return np.flatnonzero(self.elem_part == part)

    def owned_nodes(self, part: int) -> np.ndarray:
        return np.flatnonzero(self.node_part == part)

    def local_nodes(self, part: int) -> np.ndarray:
        """Owned + ghost nodes: every node touched by an owned element."""
        return np.unique(self.footprint.elems[self.owned_elems(part)])

    def ghost_nodes(self, part: int) -> np.ndarray:
        local = self.local_nodes(part)
        return local[self.node_part[local] != part]

    def neighbors(self, part: int) -> np.ndarray:
        """Ranks this part exchanges with: ghost owners plus ranks that
        ghost this part's owned nodes (halo symmetry makes both sides
        post matching messages)."""
        recv_from = np.unique(self.node_part[self.ghost_nodes(part)])
        send_to = [
            q
            for q in range(self.nparts)
            if q != part and np.any(self.node_part[self.ghost_nodes(q)] == part)
        ]
        return np.unique(np.concatenate([recv_from, np.asarray(send_to, dtype=np.int64)]))

    def balance(self) -> float:
        """max/avg element count over parts (1.0 = perfect balance)."""
        counts = np.bincount(self.elem_part, minlength=self.nparts)
        return float(counts.max() / max(1.0, counts.mean()))


def partition_footprint(footprint: Footprint2D, nparts: int) -> Partition:
    """Partition footprint elements into ``nparts`` via coordinate bisection."""
    if nparts <= 0:
        raise ValueError("nparts must be positive")
    ne = footprint.num_elems
    if nparts > ne:
        raise ValueError(f"cannot split {ne} elements into {nparts} parts")
    elem_part = np.empty(ne, dtype=np.int64)
    _rcb(footprint.elem_centers(), np.arange(ne), nparts, elem_part, 0)

    # node owner: the smallest part id among elements touching the node
    nn = footprint.num_nodes
    node_part = np.full(nn, np.iinfo(np.int64).max, dtype=np.int64)
    for k in range(footprint.nodes_per_elem):
        np.minimum.at(node_part, footprint.elems[:, k], elem_part)
    return Partition(footprint, nparts, elem_part, node_part)


class TrafficMeter:
    """Per-rank, per-channel byte counters for the in-process exchanges.

    Channels mirror the message classes of a distributed FE solve:
    ``vector_gather`` (ghost refresh of nodal fields), ``vector_scatter``
    (additive export of ghost contributions), ``matrix_export`` (ghost-row
    Jacobian values shipped to owners), ``matrix_gather`` (operator
    gather for the replicated preconditioner) and ``allreduce`` (Krylov
    dot products).  ``sent``/``received`` are bytes attributed to the
    rank doing the sending/receiving; event counts live in ``events``.
    """

    def __init__(self, nparts: int):
        self.nparts = nparts
        self.sent = np.zeros(nparts, dtype=np.int64)
        self.received = np.zeros(nparts, dtype=np.int64)
        self.channel_bytes: dict[str, int] = {}
        self.events: dict[str, int] = {}

    def record(self, channel: str, src: int | None, dst: int | None, nbytes: int) -> None:
        """One message of ``nbytes`` from ``src`` to ``dst`` (None = collective)."""
        nbytes = int(nbytes)
        if src is not None:
            self.sent[src] += nbytes
        if dst is not None:
            self.received[dst] += nbytes
        self.channel_bytes[channel] = self.channel_bytes.get(channel, 0) + nbytes
        metrics = get_metrics()
        metrics.counter(f"halo.bytes.{channel}").inc(nbytes)
        if src is not None and dst is not None:
            metrics.counter(f"halo.sent.r{src}.to.r{dst}").inc(nbytes)

    def count_event(self, name: str, n: int = 1) -> None:
        self.events[name] = self.events.get(name, 0) + n
        get_metrics().counter(f"halo.events.{name}").inc(n)

    @property
    def total_bytes(self) -> int:
        return int(sum(self.channel_bytes.values()))

    def summary(self) -> dict:
        """JSON-able snapshot of everything measured so far."""
        return {
            "nparts": self.nparts,
            "sent_bytes_per_rank": [int(b) for b in self.sent],
            "received_bytes_per_rank": [int(b) for b in self.received],
            "channel_bytes": dict(self.channel_bytes),
            "events": dict(self.events),
            "total_bytes": self.total_bytes,
        }


class HaloExchange:
    """In-process halo exchange over a :class:`Partition`.

    Mirrors the two MPI patterns a FE assembly needs:

    * :meth:`scatter_add` -- additive reduction of per-part contributions
      into a global nodal array (ghost contributions folded into owners),
    * :meth:`gather` -- refresh of each part's local (owned + ghost)
      nodal values from the global array.

    On top of the flat local/ghost sets, the exchange precomputes the
    per-neighbor message lists a real MPI rank would post: ``recv_map(p,
    q)`` are the nodes ``p`` ghosts from owner ``q`` and ``send_map(p,
    q)`` the owned nodes ``p`` must ship to ``q`` -- mirror images by
    construction.  Every :meth:`gather`/:meth:`scatter_add` records its
    traffic on :attr:`meter`.
    """

    def __init__(self, partition: Partition, meter: TrafficMeter | None = None):
        self.partition = partition
        self.meter = meter if meter is not None else TrafficMeter(partition.nparts)
        nparts = partition.nparts
        self._local = [partition.local_nodes(p) for p in range(nparts)]
        self._ghost = [partition.ghost_nodes(p) for p in range(nparts)]
        # per-neighbor receive lists: ghosts of p grouped by owning rank
        self._recv: list[dict[int, np.ndarray]] = []
        for p in range(nparts):
            owners = partition.node_part[self._ghost[p]]
            self._recv.append(
                {int(q): self._ghost[p][owners == q] for q in np.unique(owners)}
            )
        # send lists are the mirror image: p sends to q what q ghosts from p
        self._send: list[dict[int, np.ndarray]] = [dict() for _ in range(nparts)]
        for q in range(nparts):
            for p, nodes in self._recv[q].items():
                self._send[p][q] = nodes

    def local_nodes(self, part: int) -> np.ndarray:
        return self._local[part]

    def ghost_nodes(self, part: int) -> np.ndarray:
        return self._ghost[part]

    def recv_map(self, part: int, neighbor: int) -> np.ndarray:
        """Global node ids ``part`` receives from ``neighbor`` on a ghost refresh."""
        return self._recv[part].get(neighbor, np.empty(0, dtype=np.int64))

    def send_map(self, part: int, neighbor: int) -> np.ndarray:
        """Global node ids ``part`` sends to ``neighbor`` on a ghost refresh."""
        return self._send[part].get(neighbor, np.empty(0, dtype=np.int64))

    def neighbors(self, part: int) -> list[int]:
        """Ranks ``part`` posts messages to/from (union of send and recv)."""
        return sorted(set(self._recv[part]) | set(self._send[part]))

    # ------------------------------------------------------------------
    def gather(self, part: int, global_field: np.ndarray) -> np.ndarray:
        """Local copy (owned + ghosts) of a global nodal field.

        The ghost entries are the refresh a real rank would receive from
        its neighbors; their bytes are metered per sending neighbor.
        """
        global_field = np.asarray(global_field)
        width = int(np.prod(global_field.shape[1:], dtype=np.int64)) or 1
        itemsize = global_field.dtype.itemsize
        tr = get_tracer()
        with tr.span("halo.gather", cat="halo", rank=part):
            for q, nodes in self._recv[part].items():
                nbytes = len(nodes) * width * itemsize
                if tr.recording:
                    with tr.span(
                        "halo.recv", cat="halo", rank=part, src=int(q), bytes=nbytes
                    ):
                        self.meter.record("vector_gather", q, part, nbytes)
                else:
                    self.meter.record("vector_gather", q, part, nbytes)
            self.meter.count_event("gather")
            local = np.array(global_field[self._local[part]])
            plane = fault_plane()
            if plane.active:
                self._refresh_ghosts_checked(part, global_field, local, plane)
            return local

    def _refresh_ghosts_checked(self, part, global_field, local, plane) -> None:
        """Armed-plane ghost refresh with per-message checksum verification.

        Each neighbor payload routes through the fault plane (where the
        schedule may flip bits, drop or duplicate it), then the receiver
        verifies the sender's CRC32 and re-fetches on mismatch -- the
        in-process analogue of re-posting a corrupted MPI receive.  A
        payload that never verifies within the retry budget raises
        :class:`HaloCorruptionError`.
        """
        if not np.issubdtype(np.asarray(global_field).dtype, np.floating):
            return  # index/int gathers are not a corruption target
        policy, log = plane.policy, plane.log
        for q, nodes in self._recv[part].items():
            if len(nodes) == 0:
                continue
            clean = np.ascontiguousarray(global_field[nodes], dtype=np.float64)
            expected = payload_checksum(clean)
            payload = plane.perturb("halo.payload", clean, rank=part, src=int(q))
            attempt = 0
            while not verify_payload(payload, expected):
                attempt += 1
                log.record(
                    "detection", "halo_checksum_mismatch", "halo.payload",
                    rank=part, src=int(q), attempt=attempt,
                )
                if attempt > policy.max_retries:
                    raise HaloCorruptionError(
                        f"halo payload from rank {q} to rank {part} failed "
                        f"checksum verification {attempt} times"
                    )
                delay = policy.backoff(attempt)
                if delay > 0.0:
                    time.sleep(delay)
                # re-fetch: the retransmitted message is metered again
                width = int(np.prod(clean.shape[1:], dtype=np.int64)) or 1
                self.meter.record(
                    "vector_gather", int(q), part, len(nodes) * width * clean.dtype.itemsize
                )
                self.meter.count_event("gather_retry")
                payload = plane.perturb(
                    "halo.payload",
                    np.ascontiguousarray(global_field[nodes], dtype=np.float64),
                    rank=part, src=int(q), retry=attempt,
                )
            if attempt > 0:
                log.record(
                    "recovery", "halo_refetch", "halo.payload",
                    rank=part, src=int(q), attempts=attempt,
                )
            local[np.searchsorted(self._local[part], nodes)] = payload

    def scatter_add(self, contributions: list[np.ndarray]) -> np.ndarray:
        """Sum per-part local contributions into a global nodal array.

        ``contributions[p]`` must align with ``local_nodes(p)``; overlap
        (ghost) entries add, exactly like MPI ``Export`` with ADD mode.
        The output preserves the promoted dtype of the inputs (complex
        and extended-precision contributions are not truncated), and
        per-part ghost rows are metered as the export each rank sends.
        """
        if len(contributions) != self.partition.nparts:
            raise ValueError("one contribution array per part required")
        contributions = [np.asarray(c) for c in contributions]
        first = contributions[0]
        if any(c.shape[1:] != first.shape[1:] for c in contributions[1:]):
            raise ValueError("contribution arrays must share trailing dimensions")
        nn = self.partition.footprint.num_nodes
        dtype = np.result_type(*contributions) if contributions else np.float64
        out = np.zeros((nn,) + first.shape[1:], dtype=dtype)
        width = int(np.prod(first.shape[1:], dtype=np.int64)) or 1
        tr = get_tracer()
        with tr.span("halo.scatter_add", cat="halo", nparts=self.partition.nparts):
            for p, contrib in enumerate(contributions):
                if len(contrib) != len(self._local[p]):
                    raise ValueError(f"part {p}: contribution length mismatch")
                for q, nodes in self._recv[p].items():
                    # p exports its summed ghost rows to their owner q
                    nbytes = len(nodes) * width * dtype.itemsize
                    if tr.recording:
                        with tr.span(
                            "halo.send", cat="halo", rank=p, dst=int(q), bytes=nbytes
                        ):
                            self.meter.record("vector_scatter", p, q, nbytes)
                    else:
                        self.meter.record("vector_scatter", p, q, nbytes)
                np.add.at(out, self._local[p], contrib)
            self.meter.count_event("scatter_add")
        return out


@dataclass(frozen=True)
class HaloStatistics:
    """Measured per-rank decomposition statistics of a :class:`Partition`.

    All node counts are footprint (column) counts; multiply by ``levels x
    ndof x itemsize`` for the bytes of one 3-D nodal-field exchange --
    see :meth:`ghost_bytes_per_exchange`.
    """

    nparts: int
    owned_elems: tuple[int, ...]  # footprint elements per rank
    owned_nodes: tuple[int, ...]
    ghost_nodes: tuple[int, ...]  # columns received on a ghost refresh
    send_nodes: tuple[int, ...]  # columns sent (summed over neighbors)
    neighbor_counts: tuple[int, ...]

    @property
    def max_ghost_nodes(self) -> int:
        return max(self.ghost_nodes)

    @property
    def mean_ghost_nodes(self) -> float:
        return float(np.mean(self.ghost_nodes))

    @property
    def elem_imbalance(self) -> float:
        """max/mean owned elements (the slowest rank sets the step time)."""
        return float(max(self.owned_elems) / max(1.0, np.mean(self.owned_elems)))

    def ghost_bytes_per_exchange(self, levels: int, ndof: int = 2, itemsize: int = 8) -> list[int]:
        """Per-rank bytes received on one 3-D nodal ghost refresh."""
        return [g * levels * ndof * itemsize for g in self.ghost_nodes]

    def to_dict(self) -> dict:
        return {
            "nparts": self.nparts,
            "owned_elems": list(self.owned_elems),
            "owned_nodes": list(self.owned_nodes),
            "ghost_nodes": list(self.ghost_nodes),
            "send_nodes": list(self.send_nodes),
            "neighbor_counts": list(self.neighbor_counts),
            "elem_imbalance": self.elem_imbalance,
        }


def halo_statistics(partition: Partition) -> HaloStatistics:
    """Measure the per-rank ghost/send/neighbor counts of a partition.

    This is the measured replacement for the ``4 sqrt(A)`` analytic
    ghost-column guess in :class:`repro.app.scaling.ScalingModel`.
    """
    halo = HaloExchange(partition)
    nparts = partition.nparts
    owned_e, owned_n, ghosts, sends, nbrs = [], [], [], [], []
    for p in range(nparts):
        owned_e.append(int(len(partition.owned_elems(p))))
        owned_n.append(int(len(partition.owned_nodes(p))))
        ghosts.append(int(len(halo.ghost_nodes(p))))
        sends.append(int(sum(len(halo.send_map(p, q)) for q in halo.neighbors(p))))
        nbrs.append(int(len(halo.neighbors(p))))
    return HaloStatistics(
        nparts=nparts,
        owned_elems=tuple(owned_e),
        owned_nodes=tuple(owned_n),
        ghost_nodes=tuple(ghosts),
        send_nodes=tuple(sends),
        neighbor_counts=tuple(nbrs),
    )
