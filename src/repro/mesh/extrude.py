"""Extrusion of planar footprints into layered 3D finite-element meshes.

MALI extrudes the planar mesh through the ice thickness: every footprint
node becomes a column of ``nlayers + 1`` nodes between the ice base and
the upper surface, and every footprint element becomes a column of
``nlayers`` hexahedra (quad footprint) or prisms (triangle footprint).

Numbering is column-major, which keeps vertical columns contiguous --
exactly the property the matrix-dependent semicoarsening multigrid
exploits:

* 3D node id of footprint node ``n`` at level ``l``: ``n * (nz+1) + l``;
* 3D element id of footprint element ``e`` at layer ``k``: ``e * nz + k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.geometry import IceGeometry
from repro.mesh.planar import Footprint2D

__all__ = ["ExtrudedMesh", "extrude_footprint", "uniform_sigma_levels"]


def uniform_sigma_levels(nlayers: int) -> np.ndarray:
    """Uniform terrain-following levels from base (0) to surface (1)."""
    if nlayers <= 0:
        raise ValueError("extrusion requires at least one layer")
    return np.linspace(0.0, 1.0, nlayers + 1)


@dataclass
class ExtrudedMesh:
    """Layered 3D mesh extruded from a planar footprint."""

    footprint: Footprint2D
    sigma: np.ndarray
    coords: np.ndarray  # (num_nodes, 3)
    elems: np.ndarray  # (num_elems, 8) hex8 or (num_elems, 6) wedge6
    elem_type: str  # "hex8" | "wedge6"
    thickness2d: np.ndarray  # (nn2,)
    surface2d: np.ndarray  # (nn2,)
    bed2d: np.ndarray  # (nn2,)

    @property
    def nlayers(self) -> int:
        return len(self.sigma) - 1

    @property
    def levels(self) -> int:
        return len(self.sigma)

    @property
    def num_nodes(self) -> int:
        return len(self.coords)

    @property
    def num_elems(self) -> int:
        return len(self.elems)

    @property
    def nodes_per_elem(self) -> int:
        return self.elems.shape[1]

    # -- numbering maps -------------------------------------------------
    def node_id(self, n2d, level):
        """3D node id(s) for footprint node(s) at a level."""
        return np.asarray(n2d) * self.levels + level

    def elem_id(self, e2d, layer):
        return np.asarray(e2d) * self.nlayers + layer

    def elem_layer(self, e3d):
        return np.asarray(e3d) % self.nlayers

    def elem_column(self, e3d):
        return np.asarray(e3d) // self.nlayers

    def column_nodes(self, n2d: int) -> np.ndarray:
        """All 3D node ids of one vertical column, base to surface."""
        return np.arange(self.levels) + n2d * self.levels

    # -- distinguished sets ---------------------------------------------
    def basal_elems(self) -> np.ndarray:
        return np.arange(self.footprint.num_elems) * self.nlayers

    def surface_elems(self) -> np.ndarray:
        return np.arange(self.footprint.num_elems) * self.nlayers + (self.nlayers - 1)

    def basal_nodes(self) -> np.ndarray:
        return np.arange(self.footprint.num_nodes) * self.levels

    def surface_nodes(self) -> np.ndarray:
        return np.arange(self.footprint.num_nodes) * self.levels + self.nlayers

    def lateral_nodes(self) -> np.ndarray:
        """3D node ids on the lateral (margin) boundary, all levels."""
        b2 = self.footprint.boundary_nodes
        return (b2[:, None] * self.levels + np.arange(self.levels)[None, :]).ravel()

    def basal_face_nodes(self) -> np.ndarray:
        """Bottom-face node ids per basal element, footprint order."""
        k = self.footprint.nodes_per_elem
        return self.elems[self.basal_elems()][:, :k]

    def validate(self) -> None:
        """Raise on non-positive element volumes (vertical degeneracy)."""
        z = self.coords[:, 2][self.elems]
        k = self.footprint.nodes_per_elem
        dz = z[:, k:] - z[:, :k]
        if np.any(dz <= 0.0):
            raise ValueError("extruded mesh has non-positive layer thickness")

    def update_columns(
        self,
        thickness2d: np.ndarray,
        surface2d: np.ndarray,
        min_thickness: float = 10.0,
    ) -> None:
        """Re-extrude the vertical coordinate for an evolved geometry.

        Transient coupling moves only the column endpoints: footprint
        coordinates, connectivity, numbering and sigma levels are all
        invariant, so everything derived from topology (DofMap,
        AssemblyPlan structure, partitions, reducers) stays valid and
        only ``coords[:, 2]`` plus the cached 2D fields change.  The
        thickness floor mirrors :func:`extrude_footprint` so margin
        columns never degenerate mid-run.
        """
        h2 = np.maximum(np.asarray(thickness2d, dtype=np.float64), min_thickness)
        s2 = np.asarray(surface2d, dtype=np.float64)
        if h2.shape != (self.footprint.num_nodes,) or s2.shape != h2.shape:
            raise ValueError("thickness2d/surface2d must be per footprint node")
        b2 = s2 - h2
        self.coords[:, 2] = (b2[:, None] + self.sigma[None, :] * h2[:, None]).ravel()
        self.thickness2d = h2
        self.surface2d = s2
        self.bed2d = b2
        self.validate()


def extrude_footprint(
    footprint: Footprint2D,
    geometry: IceGeometry,
    nlayers: int,
    sigma: np.ndarray | None = None,
    min_thickness: float = 10.0,
) -> ExtrudedMesh:
    """Extrude ``footprint`` through the geometry's ice thickness.

    Thickness is clamped to ``min_thickness`` so margin columns stay
    non-degenerate (MALI does the same with a minimum-thickness rule).
    """
    if sigma is None:
        sigma = uniform_sigma_levels(nlayers)
    sigma = np.asarray(sigma, dtype=np.float64)
    if len(sigma) != nlayers + 1 or sigma[0] != 0.0 or sigma[-1] != 1.0:
        raise ValueError("sigma must run 0..1 with nlayers+1 entries")
    if np.any(np.diff(sigma) <= 0.0):
        raise ValueError("sigma levels must be strictly increasing")

    x2, y2 = footprint.coords[:, 0], footprint.coords[:, 1]
    h2 = np.maximum(np.asarray(geometry.thickness(x2, y2), dtype=np.float64), min_thickness)
    s2 = np.asarray(geometry.surface(x2, y2), dtype=np.float64)
    b2 = s2 - h2  # ice base (bed where grounded)

    nn2 = footprint.num_nodes
    levels = nlayers + 1
    coords = np.empty((nn2 * levels, 3))
    # column-major numbering: node (n2d, lev) -> n2d*levels + lev
    coords[:, 0] = np.repeat(x2, levels)
    coords[:, 1] = np.repeat(y2, levels)
    coords[:, 2] = (b2[:, None] + sigma[None, :] * h2[:, None]).ravel()

    k = footprint.nodes_per_elem
    ne2 = footprint.num_elems
    lay = np.arange(nlayers)
    bottom = footprint.elems[:, None, :] * levels + lay[None, :, None]  # (ne2, nz, k)
    top = bottom + 1
    elems = np.concatenate([bottom, top], axis=2).reshape(ne2 * nlayers, 2 * k)

    elem_type = "hex8" if footprint.elem_type == "quad4" else "wedge6"
    mesh = ExtrudedMesh(
        footprint=footprint,
        sigma=sigma,
        coords=coords,
        elems=elems.astype(np.int64),
        elem_type=elem_type,
        thickness2d=h2,
        surface2d=s2,
        bed2d=b2,
    )
    mesh.validate()
    return mesh
