"""Command-line reproduction driver: ``python -m repro <artifact>``.

Regenerates the paper's tables/figures without the pytest harness:

.. code-block:: bash

    python -m repro table2      # LaunchBounds sweep on MI250X
    python -m repro table3      # time per call + speedups
    python -m repro table4      # efficiencies + Phi
    python -m repro fig3        # rooflines (CSV-ready series + ASCII)
    python -m repro fig5        # time-oriented portability plane
    python -m repro solve       # the Antarctica velocity solve (coarse)
    python -m repro profile     # traced coarse solve -> Chrome trace JSON
    python -m repro perfdiff A B  # diff two perf snapshots/traces
    python -m repro chaos       # coarse solve under a fault schedule
    python -m repro verify      # race checks + differential oracle table
    python -m repro tune        # warm the autotuner cache for a mesh
    python -m repro serve       # resilient async solve service (HTTP)
    python -m repro serve --check  # the serve chaos acceptance gate
    python -m repro transient <scenario>  # coupled thickness/velocity run
    python -m repro transient --check     # the transient acceptance gate
    python -m repro all

``profile`` runs the coarse Antarctica solve under the observability
span tracer and writes a Chrome trace-event file (open it at
https://ui.perfetto.dev) plus per-span, roofline-attribution and
metrics summaries.  Spans carrying modeled bytes/flops are annotated
with arithmetic intensity and %-of-roof against ``--gpu`` (default:
the autotuner's GPU).  With ``--nparts N > 1`` the per-rank halo and
compute spans are stitched into a clock-aligned multi-process trace
(rank = Chrome pid, driver timeline on pid N) and a per-Newton-step
halo-wait vs compute critical-path table is printed.  ``--snapshot``
writes the perfdiff-ready aggregate, ``--openmetrics`` the OpenMetrics
text exposition, ``--series-jsonl`` the convergence series log, and
``--plant-slow name:seconds`` plants a deliberate regression (the
perfdiff negative control).  See ``python -m repro profile --help``.

``perfdiff baseline current`` diffs two perf documents (profile
``--snapshot`` files, Chrome traces, or BENCH_solver.json) and ranks
spans by their contribution to the regression -- the tool the CI
perf-gate runs when ``tools/check_bench.py`` trips.

``chaos`` runs the coarse Antarctica SPMD solve twice -- fault-free,
then with a named fault schedule armed on the process fault plane
(``--schedule reference``: corrupted halo exchanges, a NaN-poisoned
evaluator sweep, a killed rank) -- and reports every injection /
detection / recovery event plus the recovered-vs-clean solution error.
With ``--check`` it exits nonzero unless every scheduled fault fired
and the recovered solution sits within ``10 x newton_tol`` of the
fault-free one (the CI gate).

``tune`` runs the online autotuner for a coarse Antarctica (or
``--mesh greenland``) mesh and persists the winning configuration --
kernel variant, LaunchBounds, preconditioner, operator mode, GMRES
orthogonalization and restart -- to the versioned JSON cache (location:
``REPRO_TUNE_CACHE`` or ``~/.cache/repro/tuned_configs.json``).  Any
later solve built with ``VelocityConfig(tuned="auto")`` on the same
(mesh, GPU) pair reuses it with zero trials.  ``--gpu`` picks the
modeled architecture, ``--budget`` bounds the measured trials,
``--force`` retunes through an existing cache entry.

``serve`` starts the resilient asyncio solve service with its stdlib
HTTP frontend (``POST /solve``, ``GET /healthz``, ``GET /metrics`` in
OpenMetrics text) -- per-request deadlines, retry with jittered
backoff, per-scenario circuit breaking, request dedup, and a
graceful-degradation ladder under queue pressure.  ``--check`` runs
the deterministic chaos acceptance scenario instead (worker kills with
checkpoint resume, injected halo/NaN faults, a deadline storm driving
the breaker through open -> half-open -> closed) and exits nonzero
unless every completed request is bitwise identical to its fault-free
reference; ``--disarm-breaker`` is the planted negative control CI
asserts fails.

``verify`` runs the correctness-tooling subsystem: the differential
oracle registry (kernel variants vs reference, SFad vs finite
differences and complex step, fused vs separate assembly, SPMD vs
serial, byte-formula reconciliation), race/determinism checks of every
kernel body, and a detection selftest on two planted defects.
``--suite kernels|jacobian|spmd|bytes|matvec`` restricts the table;
``--fixture racy|perturbed`` promotes a planted defect to "production"
so CI can assert the nonzero exit path; ``--check`` makes the exit
code strict.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.launch import TABLE2_LAUNCH_CONFIGS, default_launch_bounds
from repro.gpusim import A100, MI250X_GCD, GPUSimulator, ANTARCTICA_16KM
from repro.gpusim.specs import ALL_GPUS
from repro.kokkos.policy import LaunchBounds
from repro.perf import (
    RooflineModel,
    TimeOrientedModel,
    theoretical_minimum,
    performance_portability,
    format_table,
    ascii_scatter,
)

AMD_TUNED = LaunchBounds(128, 2)


def _profiles():
    out = {}
    for gpu, spec in (("A100", A100), ("MI250X-GCD", MI250X_GCD)):
        sim = GPUSimulator(spec)
        for mode in ("jacobian", "residual"):
            out[("baseline", mode, gpu)] = sim.run(f"baseline-{mode}", ANTARCTICA_16KM)
            lb = AMD_TUNED if gpu == "MI250X-GCD" else None
            out[("optimized", mode, gpu)] = sim.run(
                f"optimized-{mode}", ANTARCTICA_16KM, launch_bounds=lb
            )
    return out


def table2() -> None:
    sim = GPUSimulator(MI250X_GCD)
    rows = []
    for mode in ("jacobian", "residual"):
        base = None
        for lb in TABLE2_LAUNCH_CONFIGS:
            eff = lb if lb.explicit else default_launch_bounds(mode)
            p = sim.run(f"optimized-{mode}", ANTARCTICA_16KM, launch_bounds=eff)
            base = base or p.time_s
            rows.append(
                [mode, str(lb), p.time_s, p.arch_vgprs, p.accum_vgprs, f"{base / p.time_s:.2f}x"]
            )
    print(format_table(
        ["kernel", "LaunchBounds", "time [s]", "Arch VGPR", "Accum VGPR", "speedup"],
        rows,
        title="Table II (reproduced): LaunchBounds on MI250X GCD",
    ))


def table3(profiles=None) -> None:
    profiles = profiles or _profiles()
    rows = []
    for mode in ("jacobian", "residual"):
        row = [mode]
        for gpu in ("A100", "MI250X-GCD"):
            b = profiles[("baseline", mode, gpu)]
            o = profiles[("optimized", mode, gpu)]
            row += [b.time_s, o.time_s, f"{b.time_s / o.time_s:.2f}x"]
        rows.append(row)
    print(format_table(
        ["kernel", "base A100", "opt A100", "speedup", "base MI250X", "opt MI250X", "speedup"],
        rows,
        title="Table III (reproduced): time per call and speedup",
    ))


def table4(profiles=None) -> None:
    profiles = profiles or _profiles()
    th = {m: theoretical_minimum(f"optimized-{m}", ANTARCTICA_16KM.num_cells) for m in ("jacobian", "residual")}
    rows = []
    for impl in ("baseline", "optimized"):
        for metric in ("e_time", "e_DM"):
            for mode in ("jacobian", "residual"):
                effs = []
                for gpu in ("A100", "MI250X-GCD"):
                    p = profiles[(impl, mode, gpu)]
                    peak = ALL_GPUS[gpu].hbm_bytes_per_s
                    if metric == "e_time":
                        effs.append(min(1.0, th[mode].min_time_s(peak) / p.time_s))
                    else:
                        effs.append(min(1.0, th[mode].total_bytes / p.hbm_bytes))
                rows.append(
                    [impl, metric, mode, f"{effs[0]:.0%}", f"{effs[1]:.0%}",
                     f"{performance_portability(effs):.0%}"]
                )
    print(format_table(
        ["impl", "efficiency", "kernel", "A100", "1 GCD MI250X", "Phi"],
        rows,
        title="Table IV (reproduced): efficiencies and portability metric",
    ))


def fig3(profiles=None) -> None:
    profiles = profiles or _profiles()
    for gpu, spec in (("A100", A100), ("MI250X-GCD", MI250X_GCD)):
        model = RooflineModel(spec)
        pts, marks = [], {"baseline-jacobian": "J", "optimized-jacobian": "j",
                          "baseline-residual": "R", "optimized-residual": "r"}
        for (impl, mode, g), p in profiles.items():
            if g == gpu:
                pts.append((p.arithmetic_intensity, p.gflops_per_s, marks[f"{impl}-{mode}"]))
        ai, gf = model.ceiling_series()
        print(f"\nFigure 3 (reproduced) -- roofline, {gpu} "
              "(J/j = Jacobian base/opt, R/r = Residual)")
        print(ascii_scatter(
            pts,
            lines=[(ai[0], float(gf[0]), model.ridge_point, spec.fp64_flops / 1e9, "/"),
                   (model.ridge_point, spec.fp64_flops / 1e9, ai[-1], spec.fp64_flops / 1e9, "-")],
            xlabel="AI [flop/byte]",
            ylabel="GFLOP/s",
        ))


def fig5(profiles=None) -> None:
    profiles = profiles or _profiles()
    for mode in ("jacobian", "residual"):
        th = theoretical_minimum(f"optimized-{mode}", ANTARCTICA_16KM.num_cells)
        m = TimeOrientedModel(kernel=mode, theoretical=th, peak_bandwidth=A100.hbm_bytes_per_s)
        marks = {("baseline", "A100"): "B", ("optimized", "A100"): "O",
                 ("baseline", "MI250X-GCD"): "b", ("optimized", "MI250X-GCD"): "o"}
        pts = []
        for (impl, md, gpu), p in profiles.items():
            if md == mode:
                tp = m.add_profile(p)
                pts.append((tp.bytes_moved, tp.time_s, marks[(impl, gpu)]))
        wall_b, wall_t = m.achievable_point
        xs, ts, wall = m.series()
        print(f"\nFigure 5 (reproduced) -- time-oriented model, {mode} "
              "(B/O = A100 base/opt, b/o = MI250X, * = achievable)")
        print(ascii_scatter(
            pts + [(wall_b, wall_t, "*")],
            lines=[(xs[0], float(ts[0]), xs[-1], float(ts[-1]), "/"),
                   (wall, float(ts[0]) * 0.5, wall, float(ts[-1]) * 2.0, "|")],
            xlabel="HBM bytes moved",
            ylabel="time/invocation [s]",
        ))


def solve() -> None:
    from repro.app import AntarcticaConfig, AntarcticaTest

    test = AntarcticaTest.build(AntarcticaConfig(resolution_km=300.0, num_layers=5))
    sol = test.run(callback=lambda k, x, f, lin: print(f"  newton {k + 1}: |F| = {f:.3e}"))
    passed, ref = test.check(sol)
    print(f"mean |u| = {sol.mean_velocity:.6f} m/yr  regression: {'PASS' if passed else 'FAIL'}")


def profile(
    out: str = "trace.json",
    jsonl: str | None = None,
    resolution_km: float = 300.0,
    layers: int = 5,
    nparts: int = 1,
    gpu: str | None = None,
    snapshot_out: str | None = None,
    openmetrics_out: str | None = None,
    series_jsonl: str | None = None,
    plant_slow: str | None = None,
) -> None:
    """Traced coarse Antarctica solve -> Chrome trace + text summaries."""
    import dataclasses
    import json

    from repro import observability as obs
    from repro.app import AntarcticaConfig, AntarcticaTest
    from repro.app.config import VelocityConfig
    from repro.gpusim.specs import ALL_GPUS, default_tuning_spec

    spec = ALL_GPUS[gpu] if gpu else default_tuning_spec()
    cfg = AntarcticaConfig(
        resolution_km=resolution_km,
        num_layers=layers,
        velocity=dataclasses.replace(VelocityConfig(), nparts=nparts),
    )
    obs.get_metrics().reset()
    obs.get_series().reset()
    tr = obs.get_tracer()
    if plant_slow:
        # negative control for the perfdiff pipeline: slow one span by a
        # known amount and check the diff ranks it first
        name, _, secs = plant_slow.partition(":")
        tr.plant_slowdown(name, float(secs or 0.0))
    try:
        with obs.tracing() as tracer:
            with tracer.span("antarctica.build", resolution_km=resolution_km, layers=layers):
                test = AntarcticaTest.build(cfg)
            sol = test.run()
    finally:
        tr.clear_slowdowns()
    spans = tracer.spans
    annotated = obs.annotate_roofline(spans, spec)
    mismatches = obs.reconcile_rocprof_bytes(spans)
    series = obs.get_series()
    snapshot = obs.get_metrics().snapshot()
    aggregate = tracer.aggregate()

    counter_pid = 0
    process_labels = None
    export_spans = spans
    stitched = None
    if nparts > 1:
        # per-rank streams -> one clock-aligned trace: rank p on Chrome
        # pid p, driver timeline (Newton/GMRES) on pid nparts
        streams, driver = obs.split_rank_streams(spans, nparts)
        obs.align_clocks(streams)
        stitched = obs.stitch_spans(streams, driver, nparts)
        export_spans = stitched
        process_labels = obs.stitch_process_labels(nparts)
        counter_pid = obs.DRIVER_PID(nparts)
    path = obs.write_chrome_trace(
        out,
        export_spans,
        metrics=snapshot,
        process_labels=process_labels,
        series=series,
        counter_pid=counter_pid,
    )
    if jsonl:
        obs.write_jsonl(jsonl, export_spans)
        print(f"span log:     {jsonl} ({len(export_spans)} spans)")
    if series_jsonl:
        obs.write_series_jsonl(series_jsonl, series)
        npts = sum(len(s.points) for s in series.all())
        print(f"series log:   {series_jsonl} ({npts} points)")
    if openmetrics_out:
        obs.write_openmetrics(openmetrics_out, snapshot, series)
        print(f"openmetrics:  {openmetrics_out}")
    if snapshot_out:
        doc = {
            "kind": obs.perfdiff.SNAPSHOT_KIND,
            "schema_version": obs.perfdiff.SNAPSHOT_SCHEMA,
            "label": f"profile res={resolution_km:g}km nz={layers} nparts={nparts}",
            "spans": {
                name: {
                    "count": a["count"],
                    "total_s": a["total_s"],
                    "self_s": a["self_s"],
                    "cat": a["cat"],
                }
                for name, a in aggregate.items()
            },
            "counters": dict(snapshot.get("counters", {})),
        }
        with open(snapshot_out, "w") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"perf snapshot: {snapshot_out} ({len(doc['spans'])} span aggregates)")
    print(f"chrome trace: {path} ({len(export_spans)} spans) -- open at https://ui.perfetto.dev")
    print(f"mean |u| = {sol.mean_velocity:.6f} m/yr over {sol.diagnostics['num_cells']} cells")
    if mismatches:
        print(f"WARNING: {len(mismatches)} span(s) fail rocprof byte reconciliation:")
        for m in mismatches:
            print(f"  {m}")
    print()
    print(obs.summary_table(spans, wall_s=sol.diagnostics["solve_seconds"]))
    print()
    print(obs.roofline_table(spans, spec))
    if stitched is not None:
        records = obs.halo_compute_split(stitched)
        if records:
            print()
            print(obs.critical_path_table(records))
    print()
    print(obs.ascii_flame(spans))
    print()
    print(obs.metrics_table(snapshot))


def chaos(
    schedule: str = "reference",
    seed: int = 2024,
    resolution_km: float = 350.0,
    layers: int = 4,
    nparts: int = 4,
    check: bool = False,
) -> int:
    """Coarse Antarctica SPMD solve under a named fault schedule.

    Solves fault-free first, then arms the fault plane and solves again
    with recovery enabled; prints every injection/detection/recovery
    event and the recovered-vs-clean solution error.  Returns nonzero
    (for ``--check``) if any scheduled fault went undelivered or the
    recovered solution strays beyond ``10 x newton_tol`` (relative) from
    the fault-free one.
    """
    import dataclasses

    import numpy as np

    from repro import resilience as res
    from repro.app import AntarcticaConfig, AntarcticaTest
    from repro.app.config import VelocityConfig

    cfg = AntarcticaConfig(
        resolution_km=resolution_km,
        num_layers=layers,
        velocity=dataclasses.replace(VelocityConfig(), nparts=nparts),
    )
    test = AntarcticaTest.build(cfg)
    problem = test.problem
    print(
        f"fault-free solve: {nparts} ranks, {problem.dofmap.num_dofs} dofs, "
        f"{problem.mesh.num_elems} cells"
    )
    clean = problem.solve()

    if schedule not in res.SCHEDULES:
        raise SystemExit(f"unknown schedule {schedule!r}; have {sorted(res.SCHEDULES)}")
    sched = res.SCHEDULES[schedule](seed=seed, nparts=nparts)
    policy = res.RecoveryPolicy()
    print(f"chaos solve: schedule {schedule!r}, seed {seed}")
    with res.fault_injection(sched, policy=policy) as plane:
        sol = problem.solve(resilience=policy)
        undelivered = [inj.describe() for inj in plane.schedule.pending()]

    r = sol.diagnostics["resilience"]
    rows = [
        [
            e["category"], e["kind"], e["site"],
            ", ".join(f"{k}={v}" for k, v in e.items() if k not in ("category", "kind", "site")),
        ]
        for e in r["events"]
    ]
    print(format_table(
        ["category", "kind", "site", "detail"],
        rows,
        title=(
            f"chaos events: {r['injections']} injected / "
            f"{r['detections']} detected / {r['recoveries']} recovered"
        ),
    ))

    uref = max(1.0, float(np.max(np.abs(clean.u))))
    rel_err = float(np.max(np.abs(sol.u - clean.u))) / uref
    tol = 10.0 * cfg.velocity.newton_tol
    print(f"dead ranks: {r['dead_ranks'] or 'none'}")
    print(f"mean |u|: chaos {sol.mean_velocity:.6f} / clean {clean.mean_velocity:.6f} m/yr")
    print(f"recovered-vs-clean solution error: {rel_err:.3e} (bar: {tol:.1e})")
    ok = not undelivered and rel_err <= tol and r["recoveries"] > 0
    if undelivered:
        print(f"UNDELIVERED injections: {undelivered}")
    print("chaos check:", "PASS" if ok else "FAIL")
    return 0 if (ok or not check) else 1


def tune(
    mesh: str = "antarctica",
    resolution_km: float = 350.0,
    layers: int = 4,
    budget: int = 5,
    seed: int = 0,
    gpu: str | None = None,
    cache_path: str | None = None,
    force: bool = False,
) -> int:
    """Warm the autotuner cache for one (mesh, GPU) pair."""
    from repro.app.config import VelocityConfig
    from repro.app.velocity_solver import StokesVelocityProblem
    from repro.gpusim.specs import ALL_GPUS, default_tuning_spec
    from repro.mesh.extrude import extrude_footprint
    from repro.mesh.planar import masked_quad_footprint
    from repro.tune import AutoTuner, TuneCache, cache_key

    spec = ALL_GPUS[gpu] if gpu else default_tuning_spec()
    vcfg = VelocityConfig()
    if mesh == "antarctica":
        from repro.app import AntarcticaConfig, AntarcticaTest

        acfg = AntarcticaConfig(resolution_km=resolution_km, num_layers=layers)
        test = AntarcticaTest.build(acfg)
        geometry, emesh, mesh_key = test.geometry, test.mesh, acfg.key
    elif mesh == "greenland":
        from repro.mesh.geometry import greenland_geometry

        geometry = greenland_geometry()
        res_m = resolution_km * 1.0e3
        nx = max(4, int(round(geometry.lx / res_m)))
        ny = max(4, int(round(geometry.ly / res_m)))
        fp = masked_quad_footprint(nx, ny, geometry.lx, geometry.ly, geometry.mask)
        emesh = extrude_footprint(fp, geometry, layers)
        mesh_key = f"greenland_res{resolution_km:g}km_nz{layers}_{vcfg.kernel_impl}"
    else:
        raise SystemExit(f"unknown mesh {mesh!r}; have: antarctica, greenland")

    cache = TuneCache(cache_path)
    key = cache_key(mesh_key, spec.name)
    existing = cache.get(key)
    if existing is not None and not force:
        print(f"cache hit for {key} (cost {existing.cost_bytes:.3e} bytes, "
              f"{existing.trials} trials recorded); use --force to retune")
        print(f"tuned config: {existing.candidate.describe()}")
        print(f"cache: {cache.path}")
        return 0

    tuner = AutoTuner(
        lambda c: StokesVelocityProblem(emesh, geometry, c),
        vcfg,
        mesh_key,
        spec=spec,
        cache=cache,
        budget=budget,
        seed=seed,
    )
    report = tuner.tune()
    rows = []
    for t in report.trials:
        marker = "*" if t.candidate == report.record.candidate else ("" if t.valid else "x")
        rows.append([
            marker,
            t.candidate.describe(),
            t.gmres_iterations,
            f"{t.kernel_bytes / 1e9:.3f}",
            f"{t.solver_bytes / 1e9:.3f}",
            f"{t.cost_bytes / 1e9:.3f}",
            f"{t.cost_bytes / report.trials[0].cost_bytes:.2f}x",
            f"{t.wall_seconds:.2f}",
        ])
    print(format_table(
        ["", "candidate", "gmres its", "kernel GB", "solver GB", "cost GB", "vs default", "wall [s]"],
        rows,
        title=f"autotuner trials: {mesh_key} on {spec.name} "
        f"({report.num_candidates} candidates, {len(report.trials)} measured)",
    ))
    rec = report.record
    print(f"winner: {rec.candidate.describe()}")
    print(f"deterministic cost: {rec.cost_bytes:.3e} bytes "
          f"({rec.cost_bytes / rec.default_cost_bytes:.2f}x the hand-picked default)")
    print(f"persisted to {cache.path} under key {key!r}")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["transient"]:
        # the transient runner owns its flag set (scenario names, resume
        # paths, kill scripting); delegate before the artifact parser
        from repro.transient.cli import main as transient_main

        return transient_main(argv[1:])
    ap = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    ap.add_argument(
        "artifact",
        choices=[
            "table2", "table3", "table4", "fig3", "fig5",
            "solve", "profile", "perfdiff", "chaos", "verify", "tune", "serve", "all",
        ],
    )
    ap.add_argument(
        "paths", nargs="*",
        help="perfdiff: BASELINE and CURRENT perf documents "
        "(profile --snapshot files, Chrome traces, or BENCH docs)",
    )
    ap.add_argument("--out", default="trace.json", help="profile: Chrome trace output path")
    ap.add_argument("--jsonl", default=None, help="profile: also write a JSON-lines span log")
    ap.add_argument(
        "--snapshot", default=None,
        help="profile: write a perfdiff-ready span/counter aggregate JSON",
    )
    ap.add_argument(
        "--openmetrics", default=None,
        help="profile: write metrics + convergence series as OpenMetrics text",
    )
    ap.add_argument(
        "--series-jsonl", default=None,
        help="profile: write convergence time-series points as JSON lines",
    )
    ap.add_argument(
        "--plant-slow", default=None, metavar="NAME:SECONDS",
        help="profile: plant a deliberate slowdown on one span name "
        "(perfdiff negative control)",
    )
    ap.add_argument(
        "--top", type=int, default=15, help="perfdiff: rows per section in the diff table"
    )
    ap.add_argument(
        "--json", default=None, metavar="PATH",
        help="perfdiff: also write the full report as JSON to PATH",
    )
    ap.add_argument(
        "--min-delta", type=float, default=None,
        help="perfdiff: ignore span deltas smaller than this many seconds",
    )
    ap.add_argument(
        "--resolution-km", type=float, default=None,
        help="footprint resolution [km] (default: profile 300, chaos 350)",
    )
    ap.add_argument(
        "--layers", type=int, default=None,
        help="extruded layer count (default: profile 5, chaos 4)",
    )
    ap.add_argument(
        "--nparts", type=int, default=None,
        help="SPMD rank count (default: profile 1, chaos 4)",
    )
    ap.add_argument(
        "--schedule", default="reference", help="chaos: named fault schedule to arm"
    )
    ap.add_argument("--seed", type=int, default=2024, help="chaos: fault-schedule RNG seed")
    ap.add_argument(
        "--check", action="store_true",
        help="chaos/verify: exit nonzero on failure (the CI gate)",
    )
    ap.add_argument(
        "--suite", default="all",
        help="verify: oracle suite to run (all|kernels|jacobian|spmd|bytes|matvec)",
    )
    ap.add_argument(
        "--fixture", default="none",
        help="verify: treat a planted defect as production (none|racy|perturbed)",
    )
    ap.add_argument(
        "--mesh", default="antarctica",
        help="tune: mesh family to tune for (antarctica|greenland)",
    )
    ap.add_argument("--budget", type=int, default=5, help="tune: measured-trial budget")
    ap.add_argument(
        "--gpu", default=None,
        help="tune/profile: modeled architecture "
        "(A100|MI250X-GCD; default REPRO_TUNE_GPU or MI250X-GCD)",
    )
    ap.add_argument(
        "--cache", default=None,
        help="tune: cache file (default REPRO_TUNE_CACHE or ~/.cache/repro/tuned_configs.json)",
    )
    ap.add_argument(
        "--force", action="store_true", help="tune: retune through an existing cache entry"
    )
    ap.add_argument(
        "--disarm-breaker", action="store_true",
        help="serve: disable the circuit breaker (--check negative control)",
    )
    ap.add_argument(
        "--workers", type=int, default=2, help="serve: worker thread count"
    )
    ap.add_argument("--host", default="127.0.0.1", help="serve: HTTP bind host")
    ap.add_argument("--port", type=int, default=8077, help="serve: HTTP bind port")
    args = ap.parse_args(argv)
    if args.artifact == "serve":
        from repro.serve.cli import serve as run_serve

        return run_serve(
            check=args.check,
            seed=args.seed,
            disarm_breaker=args.disarm_breaker,
            openmetrics_out=args.openmetrics,
            workers=args.workers,
            host=args.host,
            port=args.port,
        )
    if args.artifact == "verify":
        from repro.verify.cli import verify as run_verify

        return run_verify(suite=args.suite, check=args.check, fixture=args.fixture)
    if args.artifact == "profile":
        profile(
            out=args.out,
            jsonl=args.jsonl,
            resolution_km=args.resolution_km if args.resolution_km is not None else 300.0,
            layers=args.layers if args.layers is not None else 5,
            nparts=args.nparts if args.nparts is not None else 1,
            gpu=args.gpu,
            snapshot_out=args.snapshot,
            openmetrics_out=args.openmetrics,
            series_jsonl=args.series_jsonl,
            plant_slow=args.plant_slow,
        )
        return 0
    if args.artifact == "perfdiff":
        from repro.observability import perfdiff as pd

        if len(args.paths) != 2:
            ap.error("perfdiff needs exactly two paths: BASELINE CURRENT")
        extra = ["--top", str(args.top)]
        if args.json:
            extra += ["--json", args.json]
        if args.min_delta is not None:
            extra += ["--min-delta", str(args.min_delta)]
        return pd.main([*args.paths, *extra])
    if args.artifact == "tune":
        return tune(
            mesh=args.mesh,
            resolution_km=args.resolution_km if args.resolution_km is not None else 350.0,
            layers=args.layers if args.layers is not None else 4,
            budget=args.budget,
            seed=args.seed,
            gpu=args.gpu,
            cache_path=args.cache,
            force=args.force,
        )
    if args.artifact == "chaos":
        return chaos(
            schedule=args.schedule,
            seed=args.seed,
            resolution_km=args.resolution_km if args.resolution_km is not None else 350.0,
            layers=args.layers if args.layers is not None else 4,
            nparts=args.nparts if args.nparts is not None else 4,
            check=args.check,
        )
    if args.artifact == "all":
        profiles = _profiles()
        table2()
        print()
        table3(profiles)
        print()
        table4(profiles)
        fig3(profiles)
        fig5(profiles)
        print()
        solve()
    else:
        {"table2": table2, "table3": table3, "table4": table4,
         "fig3": fig3, "fig5": fig5, "solve": solve}[args.artifact]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
