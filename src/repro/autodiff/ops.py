"""Math functions that dispatch on plain numpy arrays and Fad values.

Physics code (Glen's-law viscosity, friction laws) is written once against
these functions and works for both the Residual evaluation (plain float64)
and the Jacobian evaluation (``SFad(16)``), mirroring how Albany templates
its evaluators on the scalar type.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.sfad import FadArray
from repro.verify.sanitizer import sanitizer

# disarmed fast path: each instrumented op pays one attribute read
_SAN = sanitizer()

__all__ = [
    "sqrt",
    "exp",
    "log",
    "power",
    "sin",
    "cos",
    "tanh",
    "hypot3",
    "maximum",
    "minimum",
    "where",
    "clip",
]


def sqrt(x):
    if isinstance(x, FadArray):
        r = np.sqrt(x.val)
        out = x._like(r, x.dx * (0.5 / r)[..., None])
    else:
        out = np.sqrt(x)
    if _SAN.active:
        _SAN.check("ops.sqrt", out, x)
    return out


def exp(x):
    if isinstance(x, FadArray):
        r = np.exp(x.val)
        out = x._like(r, x.dx * r[..., None])
    else:
        out = np.exp(x)
    if _SAN.active:
        _SAN.check("ops.exp", out, x)
    return out


def log(x):
    if isinstance(x, FadArray):
        out = x._like(np.log(x.val), x.dx / x.val[..., None])
    else:
        out = np.log(x)
    if _SAN.active:
        _SAN.check("ops.log", out, x)
    return out


def power(x, p):
    """``x**p`` with ``p`` a plain exponent (possibly non-integer)."""
    if isinstance(x, FadArray):
        out = x.__pow__(p)
    else:
        out = np.power(x, p)
    if _SAN.active:
        _SAN.check("ops.power", out, x)
    return out


def sin(x):
    if isinstance(x, FadArray):
        return x._like(np.sin(x.val), x.dx * np.cos(x.val)[..., None])
    return np.sin(x)


def cos(x):
    if isinstance(x, FadArray):
        return x._like(np.cos(x.val), -x.dx * np.sin(x.val)[..., None])
    return np.cos(x)


def tanh(x):
    if isinstance(x, FadArray):
        r = np.tanh(x.val)
        return x._like(r, x.dx * (1.0 - r * r)[..., None])
    return np.tanh(x)


def hypot3(x, y, z):
    """sqrt(x^2 + y^2 + z^2), AD-safe away from the origin."""
    return sqrt(x * x + y * y + z * z)


def _select(cond, a, b):
    """numpy.where generalized to Fad operands (derivatives selected too)."""
    cond = np.asarray(cond)
    a_fad = isinstance(a, FadArray)
    b_fad = isinstance(b, FadArray)
    if not a_fad and not b_fad:
        return np.where(cond, a, b)
    ref = a if a_fad else b
    n = ref.num_derivs
    av = a.val if a_fad else np.asarray(a, dtype=np.float64)
    bv = b.val if b_fad else np.asarray(b, dtype=np.float64)
    adx = a.dx if a_fad else np.zeros(np.shape(av) + (n,))
    bdx = b.dx if b_fad else np.zeros(np.shape(bv) + (n,))
    return ref._like(np.where(cond, av, bv), np.where(cond[..., None], adx, bdx))


def where(cond, a, b):
    return _select(cond, a, b)


def maximum(a, b):
    av = a.val if isinstance(a, FadArray) else np.asarray(a)
    bv = b.val if isinstance(b, FadArray) else np.asarray(b)
    return _select(av >= bv, a, b)


def minimum(a, b):
    av = a.val if isinstance(a, FadArray) else np.asarray(a)
    bv = b.val if isinstance(b, FadArray) else np.asarray(b)
    return _select(av <= bv, a, b)


def clip(x, lo, hi):
    return minimum(maximum(x, lo), hi)
