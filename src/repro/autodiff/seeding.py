"""Seeding independent variables and extracting Jacobians.

The element-Jacobian workflow mirrors Albany's ``GatherSolution`` /
``ScatterResidual`` pair: nodal unknowns are gathered into Fad values
seeded with the identity, the residual kernel runs on the Fad type, and
the local Jacobian is read off the derivative components.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.sfad import FadArray, SFad

__all__ = [
    "seed_independent",
    "seed_block",
    "extract_jacobian",
    "finite_difference_jacobian",
]


def seed_independent(values) -> FadArray:
    """Seed a flat vector of ``n`` unknowns as ``n`` independent variables.

    Returns an ``SFad(n)`` array of shape ``(n,)`` whose derivative matrix
    is the identity.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("seed_independent expects a 1-D vector of unknowns")
    n = values.shape[0]
    cls = SFad(n)
    return cls(values, np.eye(n))


def seed_block(values, num_derivs: int, offset: int = 0) -> FadArray:
    """Seed a batch of local unknown blocks as independent variables.

    Parameters
    ----------
    values:
        Array of shape ``(..., k)`` -- trailing axis enumerates the local
        unknowns of each block (e.g. per-element dofs).
    num_derivs:
        Total derivative components of the Fad type (e.g. 16).
    offset:
        Derivative index of the first local unknown; local unknown ``j``
        is seeded at component ``offset + j``.

    Returns an ``SFad(num_derivs)`` array of the same shape, vectorized
    over the leading axes.
    """
    values = np.asarray(values, dtype=np.float64)
    k = values.shape[-1]
    if offset + k > num_derivs:
        raise ValueError(
            f"block of {k} unknowns at offset {offset} exceeds {num_derivs} derivatives"
        )
    dx = np.zeros(values.shape + (num_derivs,))
    idx = np.arange(k)
    dx[..., idx, offset + idx] = 1.0
    return SFad(num_derivs)(values, dx)


def extract_jacobian(residual: FadArray) -> tuple[np.ndarray, np.ndarray]:
    """Split a Fad residual into (values, local Jacobian).

    For a residual of shape ``S`` with ``n`` derivative components the
    Jacobian has shape ``S + (n,)``.
    """
    return residual.val.copy(), residual.dx.copy()


def finite_difference_jacobian(f, x, eps: float = 1.0e-7) -> np.ndarray:
    """Dense central-difference Jacobian of ``f`` at ``x`` (testing aid)."""
    x = np.asarray(x, dtype=np.float64)
    f0 = np.asarray(f(x), dtype=np.float64)
    jac = np.zeros(f0.shape + x.shape)
    for j in np.ndindex(x.shape):
        h = eps * max(1.0, abs(x[j]))
        xp = x.copy()
        xm = x.copy()
        xp[j] += h
        xm[j] -= h
        jac[(...,) + j] = (np.asarray(f(xp)) - np.asarray(f(xm))) / (2.0 * h)
    return jac
