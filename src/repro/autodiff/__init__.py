"""Forward-mode automatic differentiation (Sacado analogue).

Albany computes element Jacobians by evaluating the residual kernel with
the Sacado ``SFad`` scalar type, which carries a value plus a fixed,
compile-time number of derivative components.  This package provides the
same algebra, vectorized over numpy arrays:

* :class:`FadArray` -- value + derivative array, the workhorse type.
* :func:`SFad` -- class factory producing fixed-size Fad types (the
  ``SFad<N>`` analogue); the derivative count is a class attribute so the
  performance model can reason about data volumes (``SFad<16>`` moves
  17x the data of a plain double).
* :class:`DFad` -- dynamically-sized variant.
* :mod:`repro.autodiff.ops` -- math functions (sqrt, exp, ...) that
  dispatch on plain arrays and Fad values alike.
* :mod:`repro.autodiff.seeding` -- helpers to seed independent variables
  and extract dense/local Jacobians.
"""

from repro.autodiff.sfad import FadArray, SFad, DFad, is_fad, fad_value, fad_derivs
from repro.autodiff.seeding import (
    seed_independent,
    seed_block,
    extract_jacobian,
    finite_difference_jacobian,
)
from repro.autodiff import ops

__all__ = [
    "FadArray",
    "SFad",
    "DFad",
    "is_fad",
    "fad_value",
    "fad_derivs",
    "seed_independent",
    "seed_block",
    "extract_jacobian",
    "finite_difference_jacobian",
    "ops",
]
