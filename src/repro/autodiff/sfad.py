"""Vectorized forward-mode AD scalar types (Sacado ``SFad``/``DFad`` analogues).

A :class:`FadArray` holds a value array ``val`` of shape ``S`` and a
derivative array ``dx`` of shape ``S + (n,)`` where ``n`` is the number of
derivative components.  All arithmetic propagates derivatives with the
chain rule and broadcasts exactly like numpy; mixing a ``FadArray`` with a
plain scalar or ndarray treats the latter as a constant.

The element-Jacobian evaluation in the Stokes kernels uses ``SFad(16)``:
8 nodes x 2 velocity components per hexahedral element.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FadArray", "SFad", "DFad", "is_fad", "fad_value", "fad_derivs"]


def _as_const(x):
    """Coerce a non-Fad operand to an ndarray (treated as a constant)."""
    return np.asarray(x, dtype=np.float64)


class FadArray:
    """Value + derivative-components array with numpy-style broadcasting.

    Parameters
    ----------
    val:
        Array-like of values, any shape ``S``.
    dx:
        Array-like of derivatives, shape ``S + (n,)``.  ``n`` must match
        ``NUM_DERIVS`` for fixed-size subclasses created via :func:`SFad`.
    """

    #: Fixed derivative count for SFad subclasses; ``None`` means dynamic.
    NUM_DERIVS: int | None = None

    # Beat ndarray in mixed binary ops so __r*__ methods run.
    __array_priority__ = 1000.0

    __slots__ = ("val", "dx")

    def __init__(self, val, dx):
        val = np.asarray(val, dtype=np.float64)
        dx = np.asarray(dx, dtype=np.float64)
        if dx.shape[: dx.ndim - 1] != val.shape or dx.ndim != val.ndim + 1:
            raise ValueError(
                f"derivative shape {dx.shape} incompatible with value shape {val.shape}"
            )
        n = dx.shape[-1]
        if self.NUM_DERIVS is not None and n != self.NUM_DERIVS:
            raise ValueError(
                f"{type(self).__name__} requires {self.NUM_DERIVS} derivative "
                f"components, got {n}"
            )
        self.val = val
        self.dx = dx

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, val, n: int | None = None):
        """A Fad with zero derivatives (an AD constant)."""
        val = np.asarray(val, dtype=np.float64)
        if n is None:
            n = cls.NUM_DERIVS
        if n is None:
            raise ValueError("derivative count required for dynamic Fad constants")
        return cls(val, np.zeros(val.shape + (n,)))

    @classmethod
    def independent(cls, val, index: int, n: int | None = None):
        """A Fad seeded as the ``index``-th independent variable."""
        val = np.asarray(val, dtype=np.float64)
        if n is None:
            n = cls.NUM_DERIVS
        if n is None:
            raise ValueError("derivative count required for dynamic Fad seeds")
        dx = np.zeros(val.shape + (n,))
        dx[..., index] = 1.0
        return cls(val, dx)

    def _like(self, val, dx):
        """Build a result of the same Fad type."""
        return type(self)(val, dx)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.val.shape

    @property
    def size(self):
        return self.val.size

    @property
    def num_derivs(self) -> int:
        return self.dx.shape[-1]

    def copy(self):
        return self._like(self.val.copy(), self.dx.copy())

    def __len__(self):
        return len(self.val)

    def __getitem__(self, idx):
        return self._like(self.val[idx], self.dx[idx])

    def __setitem__(self, idx, other):
        if isinstance(other, FadArray):
            self.val[idx] = other.val
            self.dx[idx] = other.dx
        else:
            self.val[idx] = _as_const(other)
            self.dx[idx] = 0.0

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], tuple):
            shape = shape[0]
        return self._like(self.val.reshape(shape), self.dx.reshape(shape + (self.num_derivs,)))

    def __repr__(self):
        return f"{type(self).__name__}(n={self.num_derivs}, val={self.val!r})"

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        if isinstance(other, FadArray):
            return self._like(self.val + other.val, self.dx + other.dx)
        c = _as_const(other)
        return self._like(self.val + c, np.broadcast_to(self.dx, np.broadcast(self.val, c).shape + (self.num_derivs,)).copy())

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, FadArray):
            return self._like(self.val - other.val, self.dx - other.dx)
        c = _as_const(other)
        return self._like(self.val - c, np.broadcast_to(self.dx, np.broadcast(self.val, c).shape + (self.num_derivs,)).copy())

    def __rsub__(self, other):
        c = _as_const(other)
        return self._like(c - self.val, np.broadcast_to(-self.dx, np.broadcast(self.val, c).shape + (self.num_derivs,)).copy())

    def __mul__(self, other):
        if isinstance(other, FadArray):
            return self._like(
                self.val * other.val,
                self.dx * other.val[..., None] + other.dx * self.val[..., None],
            )
        c = _as_const(other)
        return self._like(self.val * c, self.dx * c[..., None])

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, FadArray):
            inv = 1.0 / other.val
            q = self.val * inv
            return self._like(q, (self.dx - other.dx * q[..., None]) * inv[..., None])
        c = _as_const(other)
        inv = 1.0 / c
        return self._like(self.val * inv, self.dx * inv[..., None])

    def __rtruediv__(self, other):
        c = _as_const(other)
        inv = 1.0 / self.val
        q = c * inv
        return self._like(q, -self.dx * (q * inv)[..., None])

    def __pow__(self, p):
        if isinstance(p, FadArray):
            # u**v = exp(v log u)
            logu = np.log(self.val)
            r = self.val**p.val
            return self._like(
                r,
                r[..., None]
                * (p.dx * logu[..., None] + self.dx * (p.val / self.val)[..., None]),
            )
        p = _as_const(p)
        r = self.val**p
        return self._like(r, self.dx * (p * self.val ** (p - 1.0))[..., None])

    def __rpow__(self, base):
        base = _as_const(base)
        r = base**self.val
        return self._like(r, self.dx * (r * np.log(base))[..., None])

    def __neg__(self):
        return self._like(-self.val, -self.dx)

    def __pos__(self):
        return self

    def __abs__(self):
        s = np.sign(self.val)
        return self._like(np.abs(self.val), self.dx * s[..., None])

    # ------------------------------------------------------------------
    # comparisons (on values, as in Sacado)
    # ------------------------------------------------------------------
    def _cmp_val(self, other):
        return other.val if isinstance(other, FadArray) else _as_const(other)

    def __lt__(self, other):
        return self.val < self._cmp_val(other)

    def __le__(self, other):
        return self.val <= self._cmp_val(other)

    def __gt__(self, other):
        return self.val > self._cmp_val(other)

    def __ge__(self, other):
        return self.val >= self._cmp_val(other)

    def __eq__(self, other):  # value equality, like Sacado's operator==
        return self.val == self._cmp_val(other)

    def __ne__(self, other):
        return self.val != self._cmp_val(other)

    __hash__ = None


_SFAD_CACHE: dict[int, type] = {}


def SFad(n: int) -> type:
    """Return the fixed-size Fad class with ``n`` derivative components.

    Mirrors Sacado's ``SFad<double, N>``: the derivative count is part of
    the type.  Classes are cached so ``SFad(16) is SFad(16)``.
    """
    if n <= 0:
        raise ValueError("SFad requires a positive derivative count")
    cls = _SFAD_CACHE.get(n)
    if cls is None:
        cls = type(f"SFad{n}", (FadArray,), {"NUM_DERIVS": n, "__slots__": ()})
        _SFAD_CACHE[n] = cls
    return cls


class DFad(FadArray):
    """Dynamically-sized Fad (Sacado ``DFad`` analogue)."""

    __slots__ = ()


def is_fad(x) -> bool:
    """True when ``x`` carries derivative components."""
    return isinstance(x, FadArray)


def fad_value(x):
    """The value part of ``x`` (identity for plain arrays/scalars)."""
    return x.val if isinstance(x, FadArray) else x


def fad_derivs(x, n: int | None = None):
    """The derivative part of ``x``; zeros for plain arrays."""
    if isinstance(x, FadArray):
        return x.dx
    if n is None:
        raise ValueError("derivative count required for non-Fad input")
    a = np.asarray(x, dtype=np.float64)
    return np.zeros(a.shape + (n,))
