"""End-to-end chaos acceptance: the ``python -m repro serve --check`` gate.

Runs the full deterministic chaos scenario in-process -- real meshes,
real Newton/GMRES solves, two scripted worker kills, injected
halo-corruption and NaN faults, a deadline storm that trips the
circuit breaker -- and asserts the harness's own verdict: every
completed request bitwise-identical to its fault-free reference.

The disarmed variant is the planted negative control: with the breaker
off, the storm assertions MUST fail.  A "chaos check" that cannot fail
is not a check.
"""

from repro.serve import run_chaos_check


class TestServeChaos:
    def test_chaos_check_passes(self, tmp_path):
        om = tmp_path / "serve.om"
        assert run_chaos_check(seed=2024, openmetrics_out=str(om), verbose=False) == 0
        # the exposition the check wrote is structurally valid and
        # carries the service's decision counters
        from repro.observability import parse_exposition

        families = parse_exposition(om.read_text())
        serve_families = [f for f in families if f.startswith("serve_")]
        assert "serve_requests" in families
        assert "serve_dedup" in families
        assert "serve_worker_deaths" in families
        assert len(serve_families) >= 10

    def test_disarmed_breaker_is_detected(self):
        assert run_chaos_check(seed=2024, disarm_breaker=True, verbose=False) == 1
