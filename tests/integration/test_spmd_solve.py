"""SPMD distributed velocity solve == serial solve, bit for bit.

The distributed path (``VelocityConfig(nparts=N)``) runs the full
Newton/GMRES velocity solve over a real RCB partition: rank-restricted
evaluator sweeps, owner-ordered residual/Jacobian exchanges,
row-partitioned SpMV with metered ghost refresh, and column-blocked
partitioned dot products.  Every one of those pieces is constructed to
reproduce the serial arithmetic bitwise (the E3SM BFB contract), so the
end-to-end check here is *exact equality* -- strictly stronger than the
rtol 1e-12 acceptance bar.  A second problem (Greenland) guards against
the path being specialized to the Antarctica footprint.
"""

import numpy as np
import pytest

from repro.app import AntarcticaConfig, AntarcticaTest, VelocityConfig
from repro.app.velocity_solver import StokesVelocityProblem
from repro.fem.distributed import DistributedMatrix
from repro.mesh import greenland_geometry
from repro.mesh.extrude import extrude_footprint
from repro.mesh.planar import masked_quad_footprint

NPARTS = 4


def _antarctica(nparts):
    # SPMD solves always assemble (the row-partitioned matrix is the
    # halo-exchange unit), so the serial side of every bitwise
    # comparison must share the assembled operator path -- pinned here
    # against the REPRO_OPERATOR_MODE environment override
    cfg = AntarcticaConfig(
        resolution_km=350.0,
        num_layers=4,
        velocity=VelocityConfig(nparts=nparts, operator_mode="assembled"),
    )
    return AntarcticaTest.build(cfg).problem


@pytest.fixture(scope="module")
def antarctica_pair():
    serial = _antarctica(1)
    spmd = _antarctica(NPARTS)
    return serial, spmd


class TestSpmdOperatorsBitwise:
    """Operator-level BFB: each distributed piece equals its serial twin."""

    def _state(self, problem):
        rng = np.random.default_rng(42)
        u = rng.normal(size=problem.dofmap.num_dofs) * 10.0
        u[problem.bc_dofs] = 0.0
        return u

    def test_residual_bitwise(self, antarctica_pair):
        serial, spmd = antarctica_pair
        u = self._state(serial)
        assert np.array_equal(serial.residual(u), spmd.residual(u))

    def test_jacobian_bitwise(self, antarctica_pair):
        serial, spmd = antarctica_pair
        u = self._state(serial)
        As = serial.jacobian(u)
        Ap = spmd.jacobian(u)
        assert isinstance(Ap, DistributedMatrix)
        Ag = Ap.gather_global()
        assert np.array_equal(As.indptr, Ag.indptr)
        assert np.array_equal(As.indices, Ag.indices)
        assert np.array_equal(As.data, Ag.data)

    def test_spmv_bitwise(self, antarctica_pair):
        serial, spmd = antarctica_pair
        u = self._state(serial)
        As, Ap = serial.jacobian(u), spmd.jacobian(u)
        rng = np.random.default_rng(7)
        for _ in range(3):
            v = rng.normal(size=len(u))
            assert np.array_equal(As.matvec(v), Ap.matvec(v))

    def test_fused_matches_split(self, antarctica_pair):
        _, spmd = antarctica_pair
        u = self._state(spmd)
        f, A = spmd.residual_and_jacobian(u)
        assert np.array_equal(f, spmd.residual(u))
        assert np.array_equal(A.gather_global().data, spmd.jacobian(u).gather_global().data)

    def test_rank_partition_structure(self, antarctica_pair):
        _, spmd = antarctica_pair
        a = spmd.spmd
        elems = np.concatenate([a.owned_elems(p) for p in range(NPARTS)])
        assert len(elems) == spmd.mesh.num_elems
        assert len(np.unique(elems)) == spmd.mesh.num_elems
        dofs = np.concatenate([a.owned_dofs(p) for p in range(NPARTS)])
        assert len(dofs) == spmd.dofmap.num_dofs
        assert len(np.unique(dofs)) == spmd.dofmap.num_dofs


class TestSpmdSolveMatchesSerial:
    @pytest.fixture(scope="class")
    def solutions(self, antarctica_pair):
        serial, spmd = antarctica_pair
        return serial.solve(), spmd.solve()

    def test_velocities_exact(self, solutions):
        sol_s, sol_p = solutions
        # the acceptance bar is rtol 1e-12; the BFB construction gives
        # exact equality, which we assert so regressions are loud
        scale = np.abs(sol_s.u).max()
        assert np.allclose(sol_p.u, sol_s.u, rtol=1.0e-12, atol=1.0e-12 * scale)
        assert np.array_equal(sol_p.u, sol_s.u)

    def test_newton_trajectory_identical(self, solutions):
        sol_s, sol_p = solutions
        assert sol_p.newton.residual_norms == sol_s.newton.residual_norms
        assert sol_p.newton.linear_iterations == sol_s.newton.linear_iterations
        assert sol_p.newton.step_lengths == sol_s.newton.step_lengths

    def test_spmd_diagnostics_present(self, solutions):
        _, sol_p = solutions
        d = sol_p.diagnostics["spmd"]
        assert d["nparts"] == NPARTS
        assert d["elem_imbalance"] >= 1.0
        assert len(d["halo"]["ghost_nodes"]) == NPARTS
        assert d["measured_vs_analytic_ghost_ratio"] > 0.0
        traffic = d["traffic"]
        for channel in ("vector_gather", "vector_scatter", "matrix_export", "allreduce"):
            assert traffic["channel_bytes"].get(channel, 0) > 0, channel
        assert traffic["total_bytes"] > 0
        assert len(traffic["sent_bytes_per_rank"]) == NPARTS

    def test_serial_solution_has_no_spmd_block(self, solutions):
        sol_s, _ = solutions
        assert "spmd" not in sol_s.diagnostics


class TestSpmdGreenland:
    """The SPMD path is not specialized to the Antarctica footprint."""

    def test_greenland_solve_exact(self):
        geo = greenland_geometry()
        fp = masked_quad_footprint(9, 15, geo.lx, geo.ly, geo.mask)
        mesh = extrude_footprint(fp, geo, 5)
        # assembled on both sides: the SPMD path has no matrix-free mode
        sol_s = StokesVelocityProblem(
            mesh, geo, VelocityConfig(operator_mode="assembled")
        ).solve()
        sol_p = StokesVelocityProblem(
            mesh, geo, VelocityConfig(nparts=4, operator_mode="assembled")
        ).solve()
        assert np.array_equal(sol_p.u, sol_s.u)
        assert sol_p.newton.residual_norms == sol_s.newton.residual_norms
        assert sol_p.diagnostics["spmd"]["nparts"] == 4


class TestSpmdConfig:
    def test_nparts_validation(self):
        with pytest.raises(ValueError):
            VelocityConfig(nparts=0)
        assert VelocityConfig(nparts=1).nparts == 1
