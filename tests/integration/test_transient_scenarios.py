"""Integration tests of the transient engine on real velocity solves.

One module-scoped :class:`~repro.serve.cache.ArtifactCache` backs every
test (the same amortization the engine itself relies on), so the mesh
and AssemblyPlan are built once for the whole module.
"""

import numpy as np
import pytest

from repro.serve.cache import ArtifactCache
from repro.transient import (
    TransientEngine,
    TransientKilled,
    build_scenario_problem,
    get_scenario,
)

#: the closed-budget library scenario, truncated for test cost
STEPS = 5
KILL_AT = 1  # kill after step 2 of 5: resume covers most of the run


@pytest.fixture(scope="module")
def cache():
    return ArtifactCache(builder=build_scenario_problem)


@pytest.fixture(scope="module")
def scenario():
    return get_scenario("antarctica-closed").with_steps(STEPS)


@pytest.fixture(scope="module")
def baseline(cache, scenario):
    """The uninterrupted reference trajectory."""
    return TransientEngine(scenario, cache=cache).run()


class TestWarmStarts:
    def test_warm_steps_beat_the_cold_start(self, baseline):
        """The acceptance criterion: warm mean strictly below cold."""
        assert baseline.warm_started[0] is False
        assert all(baseline.warm_started[1:])
        cold = baseline.cold_iterations
        assert baseline.warm_mean_iterations < cold
        # and not just on average: every warm step individually wins
        assert all(n < cold for n in baseline.newton_iterations[1:])

    def test_explicit_zero_guess_matches_default(self, cache, scenario):
        """solve(u0=zeros) IS the cold solve, bitwise (the x0 seam)."""
        engine = TransientEngine(scenario, cache=cache)
        h = engine.initial_thickness()
        nodal_h = engine.evolver.node_thickness(h)
        nodal_s = engine.geometry.surface_for_thickness(engine._x2, engine._y2, nodal_h)
        engine.problem.refresh_geometry(nodal_h, nodal_s)
        a = engine.problem.solve()
        b = engine.problem.solve(u0=np.zeros(engine.problem.dofmap.num_dofs))
        assert np.array_equal(a.u, b.u)
        assert a.diagnostics["warm_started"] is False
        assert b.diagnostics["warm_started"] is False

    def test_warm_start_flag_reported(self, cache, scenario):
        engine = TransientEngine(scenario, cache=cache)
        h = engine.initial_thickness()
        nodal_h = engine.evolver.node_thickness(h)
        nodal_s = engine.geometry.surface_for_thickness(engine._x2, engine._y2, nodal_h)
        engine.problem.refresh_geometry(nodal_h, nodal_s)
        cold = engine.problem.solve()
        warm = engine.problem.solve(u0=cold.u, newton_tol=1.0e-6 * cold.newton.residual_norms[0])
        assert warm.diagnostics["warm_started"] is True
        assert warm.newton.iterations < cold.newton.iterations


class TestConservation:
    def test_closed_budget_volume_drift_at_roundoff(self, baseline):
        assert baseline.volume_drift <= 1.0e-12
        assert abs(baseline.diagnostics["volume_budget_residual"]) <= 1.0e-12 * abs(
            baseline.volumes[0]
        )

    def test_planted_leak_is_caught(self, cache, scenario):
        """The CI negative control, in miniature."""
        leaky = TransientEngine(scenario.with_steps(2), cache=cache).run(plant_leak=1.0e-6)
        assert leaky.volume_drift > 1.0e-12


class TestKillResume:
    def test_kill_then_resume_is_bitwise_identical(self, tmp_path, cache, scenario, baseline):
        """The acceptance criterion: resume forks nothing."""
        engine = TransientEngine(scenario, cache=cache)
        with pytest.raises(TransientKilled) as exc:
            engine.run(kill_at_step=KILL_AT, checkpoint_dir=tmp_path)
        kill = exc.value
        assert kill.checkpoint.step == KILL_AT + 1
        assert kill.path is not None and kill.path.exists()

        resumed = engine.run(resume_from=kill.path)
        assert np.array_equal(resumed.thickness, baseline.thickness)
        assert np.array_equal(resumed.u, baseline.u)
        assert np.array_equal(resumed.particles.xy, baseline.particles.xy)
        assert np.array_equal(resumed.particles.zeta, baseline.particles.zeta)
        assert np.array_equal(resumed.particles.active, baseline.particles.active)
        assert resumed.volumes == baseline.volumes
        assert resumed.dts == baseline.dts
        assert resumed.newton_iterations == baseline.newton_iterations

    def test_resume_refuses_foreign_scenario(self, tmp_path, cache, scenario):
        engine = TransientEngine(scenario, cache=cache)
        with pytest.raises(TransientKilled) as exc:
            engine.run(kill_at_step=0, checkpoint_dir=tmp_path)
        other = TransientEngine(scenario.with_steps(STEPS + 1), cache=cache)
        with pytest.raises(ValueError, match="fork"):
            other.run(resume_from=exc.value.path)


class TestArtifactReuse:
    def test_engines_share_the_cached_problem(self, cache, scenario):
        a = TransientEngine(scenario, cache=cache)
        b = TransientEngine(scenario, cache=cache)
        assert a.problem is b.problem
        assert a.test is b.test

    def test_geometry_refresh_keeps_symbolic_artifacts(self, cache, scenario):
        """Only the numeric geometry moves; topology-derived state is kept."""
        engine = TransientEngine(scenario, cache=cache)
        prob = engine.problem
        dofmap, plan = prob.dofmap, prob.plan
        fp_basis, elem_col = prob._fp_basis, prob._elem_col
        h = engine.initial_thickness() * 0.95
        nodal_h = engine.evolver.node_thickness(h)
        nodal_s = engine.geometry.surface_for_thickness(engine._x2, engine._y2, nodal_h)
        basis_before = prob.basis
        prob.refresh_geometry(nodal_h, nodal_s)
        assert prob.dofmap is dofmap
        assert prob.plan is plan
        assert prob._fp_basis is fp_basis
        assert prob._elem_col is elem_col
        assert prob.basis is not basis_before  # 3D basis WAS recomputed


class TestScenarioLibrary:
    @pytest.mark.parametrize("name", ["antarctica-retreat", "greenland-ramp", "shelf-collapse"])
    def test_forced_scenarios_lose_volume(self, cache, name):
        """Every forcing in the library removes mass; volume must drop."""
        result = TransientEngine(get_scenario(name).with_steps(2), cache=cache).run()
        assert result.volumes[-1] < result.volumes[0]
        # the budget closes: loss is explained by the credited sources
        assert abs(result.diagnostics["volume_budget_residual"]) <= 1.0e-10 * abs(
            result.volumes[0]
        )
