"""Manufactured-solution convergence of the FE substrate.

Solves a Poisson problem on the unit cube through the same pieces the
Stokes pipeline uses (hex basis data, dof maps, CSR assembly, GMRES) and
verifies the expected second-order L2 convergence of trilinear elements
-- the discretization-correctness test everything downstream rests on.
"""

import numpy as np
import pytest

from repro.fem import (
    compute_basis_data,
    DofMap,
    assemble_matrix,
    assemble_vector,
    apply_dirichlet,
)
from repro.solvers import gmres, JacobiSmoother


def _cube_mesh(n):
    xs = np.linspace(0.0, 1.0, n + 1)
    X, Y, Z = np.meshgrid(xs, xs, xs, indexing="ij")
    coords = np.stack([X.ravel(), Y.ravel(), Z.ravel()], axis=1)

    def nid(i, j, k):
        return (i * (n + 1) + j) * (n + 1) + k

    elems = []
    for i in range(n):
        for j in range(n):
            for k in range(n):
                elems.append(
                    [nid(i, j, k), nid(i + 1, j, k), nid(i + 1, j + 1, k), nid(i, j + 1, k),
                     nid(i, j, k + 1), nid(i + 1, j, k + 1), nid(i + 1, j + 1, k + 1), nid(i, j + 1, k + 1)]
                )
    return coords, np.asarray(elems, dtype=np.int64)


def _exact(x):
    return np.sin(np.pi * x[:, 0]) * np.sin(np.pi * x[:, 1]) * np.sin(np.pi * x[:, 2])


def _solve_poisson(n):
    """-Laplace(u) = f with u = sin(pi x) sin(pi y) sin(pi z)."""
    coords, elems = _cube_mesh(n)
    bd = compute_basis_data(coords, elems, "hex8", order=2)
    dm = DofMap(len(coords), 1, elems)

    # stiffness: K_ij = sum_q grad phi_i . wgrad phi_j
    ke = np.einsum("cnqd,cmqd->cnm", bd.grad_bf, bd.w_grad_bf)
    A = assemble_matrix(dm, ke)

    # load: f = 3 pi^2 u_exact evaluated at qps
    f_qp = 3.0 * np.pi**2 * _exact(bd.qp_coords.reshape(-1, 3)).reshape(bd.num_cells, bd.num_qps)
    fe = np.einsum("cq,cnq->cn", f_qp, bd.w_bf)
    b = assemble_vector(dm, fe)

    # homogeneous Dirichlet on the boundary of the cube
    on_bnd = np.any((coords < 1e-12) | (coords > 1 - 1e-12), axis=1)
    bc = np.flatnonzero(on_bnd)
    A, b = apply_dirichlet(A, b, bc, 0.0)

    res = gmres(A, b, tol=1e-10, restart=200, maxiter=2000, M=JacobiSmoother(A, iters=2))
    assert res.converged
    uh = res.x

    # L2 error via quadrature
    uh_qp = np.einsum("cn,qn->cq", uh[elems], bd.bf)
    ue_qp = _exact(bd.qp_coords.reshape(-1, 3)).reshape(bd.num_cells, bd.num_qps)
    err_sq = np.einsum("cq,cq,cq->", (uh_qp - ue_qp) ** 2, bd.det_j, np.broadcast_to(bd.weights, uh_qp.shape))
    return float(np.sqrt(err_sq))


class TestManufacturedPoisson:
    def test_second_order_convergence(self):
        errors = {n: _solve_poisson(n) for n in (4, 8)}
        rate = np.log2(errors[4] / errors[8])
        assert 1.8 < rate < 2.3, f"rate {rate}, errors {errors}"

    def test_absolute_accuracy(self):
        assert _solve_poisson(8) < 0.02
