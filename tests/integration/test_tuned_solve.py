"""Acceptance tests for the online autotuner (ISSUE: ROADMAP item 5).

The contract, measured on the coarse Antarctica *and* Greenland:

* the autotuned configuration's deterministic cost (modeled HBM bytes)
  is never worse than the hand-picked default, within a bounded trial
  budget -- guaranteed structurally because the default is always the
  first trial, and verified here against the persisted record;
* a second solve of the same (mesh, GPU) pair reuses the persisted
  winner with **zero** additional trials (asserted via the
  ``tune.trials`` counter) and produces the identical configuration;
* the whole search is deterministic: same seed + same mesh => the same
  trial sequence and the same winner.
"""

import pytest

from repro.app.antarctica import AntarcticaTest
from repro.app.config import AntarcticaConfig, VelocityConfig
from repro.app.velocity_solver import StokesVelocityProblem
from repro.gpusim.specs import MI250X_GCD
from repro.mesh import greenland_geometry
from repro.mesh.extrude import extrude_footprint
from repro.mesh.planar import masked_quad_footprint
from repro.observability import get_metrics
from repro.tune import AutoTuner, TuneCache, cache_key, candidate_from_config
from repro.tune.cache import CACHE_ENV

COARSE = dict(resolution_km=400.0, num_layers=4)


@pytest.fixture(scope="module")
def antarctica_mesh():
    test = AntarcticaTest.build(AntarcticaConfig(**COARSE))
    return test.geometry, test.mesh


@pytest.fixture(scope="module")
def greenland_mesh():
    geo = greenland_geometry()
    fp = masked_quad_footprint(6, 10, geo.lx, geo.ly, geo.mask)
    return geo, extrude_footprint(fp, geo, 4)


def _tune(geometry, mesh, tmp_path, tag: str, seed: int = 0, budget: int = 4):
    tuner = AutoTuner(
        lambda c: StokesVelocityProblem(mesh, geometry, c),
        VelocityConfig(),
        mesh_key=f"tuned-solve-{tag}",
        spec=MI250X_GCD,
        cache=TuneCache(tmp_path / f"{tag}.json"),
        budget=budget,
        seed=seed,
    )
    return tuner.tune()


class TestTunedBeatsDefault:
    @pytest.mark.parametrize("sheet", ["antarctica", "greenland"])
    def test_autotuned_cost_at_most_default(self, sheet, request, tmp_path):
        geometry, mesh = request.getfixturevalue(f"{sheet}_mesh")
        report = _tune(geometry, mesh, tmp_path, sheet)
        rec = report.record
        # bounded budget, default measured first, winner never worse
        assert len(report.trials) <= 4
        assert (
            report.trials[0].candidate.solver_axes
            == candidate_from_config(VelocityConfig()).solver_axes
        )
        assert rec.cost_bytes <= rec.default_cost_bytes
        assert rec.cost_bytes > 0.0
        # the winning trial solved the same physics as the default
        winner_trials = [t for t in report.trials if t.candidate == rec.candidate]
        assert winner_trials and winner_trials[0].valid


class TestDeterminism:
    def test_same_seed_same_sequence_and_winner(self, antarctica_mesh, tmp_path):
        geometry, mesh = antarctica_mesh
        a = _tune(geometry, mesh, tmp_path, "det-a", seed=3, budget=3)
        b = _tune(geometry, mesh, tmp_path, "det-b", seed=3, budget=3)
        assert a.trial_sequence == b.trial_sequence
        assert a.record.candidate == b.record.candidate
        assert a.record.cost_bytes == b.record.cost_bytes
        assert [t.gmres_iterations for t in a.trials] == [
            t.gmres_iterations for t in b.trials
        ]


class TestPersistedReuse:
    def test_second_build_hits_cache_with_zero_trials(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "cache.json"))
        monkeypatch.setenv("REPRO_TUNE_GPU", "MI250X-GCD")
        cfg = AntarcticaConfig(
            **COARSE, velocity=VelocityConfig(tuned="auto")
        )
        metrics = get_metrics()

        before = metrics.value("tune.trials")
        first = AntarcticaTest.build(cfg)
        spent = metrics.value("tune.trials") - before
        assert spent >= 2, "a cold cache must run measured trials"

        before = metrics.value("tune.trials")
        second = AntarcticaTest.build(cfg)
        assert metrics.value("tune.trials") - before == 0, (
            "a warm cache must resolve the config with zero trials"
        )
        # identical resolved configuration both times
        assert second.problem.config == first.problem.config
        assert first.problem.config.tuned == "auto"

        # the record is keyed by (mesh key, GPU)
        cache = TuneCache(tmp_path / "cache.json")
        assert cache.get(cache_key(cfg.key, "MI250X-GCD")) is not None

    def test_tuned_solve_matches_reference(self, tmp_path, monkeypatch):
        """A tuned solve still passes the stored regression check."""
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "cache.json"))
        monkeypatch.setenv("REPRO_TUNE_GPU", "MI250X-GCD")
        test = AntarcticaTest.build(
            AntarcticaConfig(**COARSE, velocity=VelocityConfig(tuned="auto"))
        )
        sol = test.run()
        passed, ref = test.check(sol)
        assert passed
        assert sol.diagnostics["tuned"] == "auto"
