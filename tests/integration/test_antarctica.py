"""Integration tests: the full Antarctica velocity solve (Section III-B).

These exercise the entire stack end to end: synthetic geometry ->
masked quad footprint -> 3-D extrusion -> evaluator DAG with the paper's
kernels (SFad Jacobian) -> Newton + GMRES + MDSC preconditioning ->
mean-solution regression at relative tolerance 1e-5.
"""

import numpy as np
import pytest

from repro.app import (
    AntarcticaConfig,
    AntarcticaTest,
    VelocityConfig,
    run_antarctica_test,
)

# coarse configuration: fast enough for CI, still runs 8 Newton steps
COARSE = AntarcticaConfig(resolution_km=300.0, num_layers=5)


@pytest.fixture(scope="module")
def coarse_solution():
    test = AntarcticaTest.build(COARSE)
    sol = test.run()
    return test, sol


class TestAntarcticaSolve:
    def test_mesh_structure(self, coarse_solution):
        test, _ = coarse_solution
        assert test.mesh.elem_type == "hex8"
        assert test.mesh.nlayers == 5
        assert test.mesh.num_elems == test.mesh.footprint.num_elems * 5

    def test_newton_ran_eight_steps(self, coarse_solution):
        _, sol = coarse_solution
        assert sol.newton.iterations == 8

    def test_residual_reduced_many_orders(self, coarse_solution):
        _, sol = coarse_solution
        norms = sol.newton.residual_norms
        assert norms[-1] < 1.0e-4 * norms[0]

    def test_all_linear_solves_converged(self, coarse_solution):
        _, sol = coarse_solution
        # linear iteration counts recorded per step, all under budget
        assert len(sol.newton.linear_iterations) == 8
        assert max(sol.newton.linear_iterations) < COARSE.velocity.gmres_maxiter

    def test_velocities_physical(self, coarse_solution):
        """Ice flows outward at glaciologically plausible speeds."""
        test, sol = coarse_solution
        assert 1.0 < sol.mean_velocity < 1000.0
        assert sol.max_velocity < 1.0e4
        # surface flows faster than the column average (shear profile)
        assert sol.surface_mean_velocity > sol.mean_velocity

    def test_flow_points_downslope(self, coarse_solution):
        """Depth-averaged flow correlates with the outward radial direction."""
        test, sol = coarse_solution
        mesh = test.mesh
        u = test.problem.dofmap.nodal_view(sol.u)
        surf = mesh.surface_nodes()
        xy = mesh.coords[surf, :2]
        cx, cy = test.geometry.center
        rad = xy - np.array([cx, cy])
        rn = np.linalg.norm(rad, axis=1)
        speeds = np.linalg.norm(u[surf], axis=1)
        # fast ice flows radially outward from the main dome; slow nodes
        # near the secondary (western) dome drain toward its own margin
        keep = (rn > 1.0e5) & (speeds > 5.0)
        assert keep.sum() > 20
        cosang = np.sum(u[surf][keep] * rad[keep], axis=1) / (rn[keep] * speeds[keep])
        assert np.mean(cosang > 0.0) > 0.9

    def test_lateral_dirichlet_enforced(self, coarse_solution):
        test, sol = coarse_solution
        assert np.allclose(sol.u[test.problem.bc_dofs], 0.0, atol=1e-12)

    def test_regression_against_reference(self, coarse_solution):
        test, sol = coarse_solution
        passed, ref = test.check(sol)
        assert ref is not None, "reference value missing for the coarse config"
        assert passed

    def test_run_helper_passes(self):
        sol = run_antarctica_test(COARSE)
        assert sol.diagnostics["regression_passed"]


class TestKernelImplEquivalence:
    """Paper invariant: the optimizations do not change the physics."""

    def test_baseline_matches_optimized_solution(self):
        sols = {}
        for impl in ("baseline", "optimized"):
            cfg = AntarcticaConfig(
                resolution_km=300.0, num_layers=5, velocity=VelocityConfig(kernel_impl=impl)
            )
            sols[impl] = AntarcticaTest.build(cfg).run()
        rel = abs(sols["baseline"].mean_velocity - sols["optimized"].mean_velocity) / abs(
            sols["optimized"].mean_velocity
        )
        assert rel < 1.0e-10

    def test_baseline_reference_stored(self):
        cfg = AntarcticaConfig(
            resolution_km=300.0, num_layers=5, velocity=VelocityConfig(kernel_impl="baseline")
        )
        test = AntarcticaTest.build(cfg)
        assert test.reference_value() is not None


class TestJacobianConsistency:
    """The assembled SFad Jacobian matches finite differences of F."""

    def test_jacobian_vs_fd_on_random_directions(self):
        test = AntarcticaTest.build(AntarcticaConfig(resolution_km=400.0, num_layers=3))
        p = test.problem
        rng = np.random.default_rng(0)
        u = rng.normal(size=p.dofmap.num_dofs) * 10.0
        u[p.bc_dofs] = 0.0
        F = p.residual(u)
        A = p.jacobian(u)
        for _ in range(3):
            v = rng.normal(size=len(u))
            eps = 1.0e-6 * max(1.0, np.linalg.norm(u)) / np.linalg.norm(v)
            fd = (p.residual(u + eps * v) - p.residual(u - eps * v)) / (2 * eps)
            ad = A.matvec(v)
            denom = np.linalg.norm(fd) + 1e-30
            assert np.linalg.norm(ad - fd) / denom < 2.0e-5


class TestPreconditionerOptions:
    def test_vline_and_mdsc_give_same_solution(self):
        base = None
        for precond in ("mdsc", "vline"):
            cfg = AntarcticaConfig(
                resolution_km=350.0,
                num_layers=4,
                velocity=VelocityConfig(preconditioner=precond),
            )
            sol = AntarcticaTest.build(cfg).run()
            if base is None:
                base = sol.mean_velocity
            else:
                assert sol.mean_velocity == pytest.approx(base, rel=1e-6)

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            VelocityConfig(preconditioner="ilu7")
        with pytest.raises(ValueError):
            VelocityConfig(kernel_impl="fastest")
        with pytest.raises(ValueError):
            AntarcticaConfig(resolution_km=-1.0)
