"""Integration tests for the fused residual+Jacobian assembly path.

The fused path must be invisible to the physics: the residual extracted
from the jacobian-mode SFad sweep equals the residual-mode sweep to
machine precision (both are evaluated with the same kernels; the value
component of the Fad arithmetic is the double arithmetic), the assembled
Jacobians are identical, and a full Newton solve performs exactly one
DAG sweep per accepted step plus one residual-only sweep per line-search
trial.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.app import AntarcticaConfig, AntarcticaTest, VelocityConfig

SMALL = AntarcticaConfig(resolution_km=400.0, num_layers=3)


def _problem(**velocity_kwargs):
    # this file verifies the assembled CSR fill specifically (bitwise
    # structure equality, num_matrix_fills accounting), so it pins
    # operator_mode against the REPRO_OPERATOR_MODE environment override
    velocity_kwargs.setdefault("operator_mode", "assembled")
    cfg = replace(SMALL, velocity=replace(SMALL.velocity, **velocity_kwargs))
    return AntarcticaTest.build(cfg)


class TestFusedEvaluation:
    @pytest.mark.parametrize("impl", ["baseline", "optimized"])
    def test_fused_residual_matches_residual_mode(self, impl):
        p = _problem(kernel_impl=impl).problem
        rng = np.random.default_rng(3)
        u = rng.normal(size=p.dofmap.num_dofs) * 10.0
        u[p.bc_dofs] = 0.0
        f_fused, _ = p.residual_and_jacobian(u)
        f_plain = p.residual(u)
        scale = np.max(np.abs(f_plain))
        assert np.allclose(f_fused, f_plain, atol=1e-12 * scale, rtol=1e-12)

    def test_fused_jacobian_matches_jacobian_mode(self):
        p = _problem().problem
        rng = np.random.default_rng(4)
        u = rng.normal(size=p.dofmap.num_dofs) * 10.0
        _, A_fused = p.residual_and_jacobian(u)
        A_plain = p.jacobian(u)
        assert np.array_equal(A_fused.indptr, A_plain.indptr)
        assert np.array_equal(A_fused.indices, A_plain.indices)
        assert np.array_equal(A_fused.data, A_plain.data)

    def test_zero_velocity_consistency(self):
        p = _problem().problem
        u0 = np.zeros(p.dofmap.num_dofs)
        f_fused, _ = p.residual_and_jacobian(u0)
        assert np.allclose(f_fused, p.residual(u0), rtol=1e-12, atol=1e-300)


class TestSweepAccounting:
    def test_one_sweep_per_step_plus_trials(self):
        """Fused solve: jacobian sweeps == accepted steps, residual
        sweeps == line-search trials -- the initial evaluation is the
        step-0 jacobian sweep, and the accepted trial's residual carries
        into the next step."""
        test = _problem(fused_assembly=True)
        sol = test.run()
        newton = sol.newton
        trials = sum(
            int(round(np.log2(1.0 / alpha))) + 1 for alpha in newton.step_lengths
        )
        sweeps = sol.diagnostics["eval_sweeps"]
        assert sweeps["jacobian"] == newton.iterations
        assert sweeps["residual"] == trials
        assert newton.num_jacobian_evals == newton.iterations
        assert newton.num_residual_evals == trials
        # the plan performed exactly one numeric fill per jacobian sweep
        assert test.problem.plan.num_matrix_fills == sweeps["jacobian"]

    def test_unfused_pays_one_extra_residual_sweep(self):
        fused = _problem(fused_assembly=True).run().diagnostics["eval_sweeps"]
        unfused = _problem(fused_assembly=False).run().diagnostics["eval_sweeps"]
        assert fused["jacobian"] == unfused["jacobian"]
        assert fused["residual"] == unfused["residual"] - 1

    def test_fused_and_unfused_solutions_match(self):
        a = _problem(fused_assembly=True).run()
        b = _problem(fused_assembly=False).run()
        rel = np.linalg.norm(a.u - b.u) / np.linalg.norm(b.u)
        assert rel < 1.0e-10


class TestPhaseDiagnostics:
    def test_phase_breakdown_present_and_sane(self):
        sol = _problem().run()
        d = sol.diagnostics
        assert d["fused_assembly"] is True
        assert set(d["phase_seconds"]) == {"evaluate", "scatter", "preconditioner", "gmres"}
        assert all(v >= 0.0 for v in d["phase_seconds"].values())
        assert sum(d["phase_seconds"].values()) <= d["solve_seconds"] * 1.05
        assert d["newton_steps_per_s"] > 0.0

    def test_invalid_config_rejected(self):
        with pytest.raises(TypeError):
            VelocityConfig(fused=True)  # the field is fused_assembly
