"""Golden-trajectory regression tests for the transient scenario library.

Each golden (``tests/goldens/transient_<scenario>.npz``, regenerated
with ``python tools/regen_goldens.py --transient``) stores the final
thickness, the volume time-series, the Newton iteration counts and the
particle end positions of a truncated (6-step) run.  The stored
``scenario_digest`` must match the live library entry: a knob change
that silently redefines a scenario fails loudly instead of comparing
incompatible trajectories.

Tolerance rationale -- the trajectories are deterministic for a fixed
operator mode, but tier-1 also runs under ``REPRO_OPERATOR_MODE=
matrix-free`` (different GMRES orthogonalization, different roundoff).
Measured assembled-vs-matrix-free drift over the 6-step goldens:
thickness <= 2e-16 relative, volumes bitwise, particle positions
<= 2e-10 m absolute, iteration counts identical.  Tolerances sit 3-6
orders above those measurements, far below any physically meaningful
change:

* ``H_RTOL = 1e-12``  (measured 1e-16; thickness is O(1e3) m)
* ``VOLUME_RTOL = 1e-12``  (measured 0; volume is O(1e16) m^3)
* ``PARTICLE_ATOL = 1e-4`` m  (measured 1e-10; displacements are O(1e4) m)
* Newton iteration counts and particle active masks compare exactly.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.transient import TransientEngine, get_scenario

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "goldens"

GOLDEN_STEPS = 6  # tools/regen_goldens.py TRANSIENT_GOLDEN_STEPS
H_RTOL = 1.0e-12
VOLUME_RTOL = 1.0e-12
PARTICLE_ATOL = 1.0e-4  # meters

SCENARIOS = [
    "antarctica-closed",
    "antarctica-retreat",
    "greenland-ramp",
    "shelf-collapse",
]


@pytest.mark.parametrize("name", SCENARIOS)
def test_transient_trajectory_matches_golden(name):
    path = GOLDEN_DIR / f"transient_{name}.npz"
    assert path.exists(), (
        f"missing golden {path.name}; run: "
        "PYTHONPATH=src python tools/regen_goldens.py --transient"
    )
    golden = np.load(path, allow_pickle=False)

    scenario = get_scenario(name).with_steps(GOLDEN_STEPS)
    assert str(golden["scenario_digest"]) == scenario.digest, (
        f"golden for {name!r} was generated from a different scenario "
        "definition; regenerate it (and review the drift) after an "
        "intentional scenario change"
    )

    result = TransientEngine(scenario).run()

    h_scale = float(np.max(np.abs(golden["thickness"])))
    np.testing.assert_allclose(
        result.thickness, golden["thickness"], rtol=0.0, atol=H_RTOL * h_scale
    )
    np.testing.assert_allclose(
        np.asarray(result.volumes), golden["volumes"], rtol=VOLUME_RTOL, atol=0.0
    )
    np.testing.assert_allclose(
        result.particles.xy, golden["particles_xy"], rtol=0.0, atol=PARTICLE_ATOL
    )
    assert np.array_equal(result.particles.active, golden["particles_active"])
    assert np.array_equal(
        np.asarray(result.newton_iterations, dtype=np.int64),
        golden["newton_iterations"],
    ), "Newton iteration trajectory changed: warm-start behavior drifted"
