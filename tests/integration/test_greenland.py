"""Integration test: the solver stack on a Greenland-like ice sheet.

MALI's other flagship configuration (Tezaur et al. 2015 validate both
Greenland and Antarctica).  Exercises the geometry layer's elongated
single-dome mode and shows the velocity solver is not specialized to the
Antarctica test case.
"""

import numpy as np
import pytest

from repro.app.config import VelocityConfig
from repro.app.velocity_solver import StokesVelocityProblem
from repro.mesh import greenland_geometry
from repro.mesh.extrude import extrude_footprint
from repro.mesh.planar import masked_quad_footprint


@pytest.fixture(scope="module")
def greenland():
    geo = greenland_geometry()
    fp = masked_quad_footprint(9, 15, geo.lx, geo.ly, geo.mask)
    mesh = extrude_footprint(fp, geo, 5)
    problem = StokesVelocityProblem(mesh, geo, VelocityConfig())
    sol = problem.solve()
    return geo, mesh, problem, sol


class TestGreenland:
    def test_geometry_elongated(self):
        geo = greenland_geometry()
        assert geo.aspect > 1.5
        assert not geo.secondary_dome
        # longer north-south than east-west
        x = np.linspace(0, geo.lx, 200)
        y = np.linspace(0, geo.ly, 200)
        cx, cy = geo.center
        extent_x = np.ptp(x[np.asarray(geo.mask(x, np.full_like(x, cy)))])
        extent_y = np.ptp(y[np.asarray(geo.mask(np.full_like(y, cx), y))])
        assert extent_y > 1.4 * extent_x

    def test_solver_converges(self, greenland):
        _, _, _, sol = greenland
        norms = sol.newton.residual_norms
        assert norms[-1] < 1.0e-3 * norms[0]
        assert all(i < 900 for i in sol.newton.linear_iterations)

    def test_velocities_physical(self, greenland):
        _, _, _, sol = greenland
        assert 5.0 < sol.mean_velocity < 500.0
        assert sol.surface_mean_velocity > sol.mean_velocity

    def test_flow_drains_along_major_axis_margins(self, greenland):
        """Fast ice concentrates near the margins, not at the divide."""
        geo, mesh, problem, sol = greenland
        u = problem.dofmap.nodal_view(sol.u)
        surf = mesh.surface_nodes()
        speed = np.hypot(u[surf, 0], u[surf, 1])
        xy = mesh.coords[surf, :2]
        cx, cy = geo.center
        r = np.hypot(xy[:, 0] - cx, (xy[:, 1] - cy) / geo.aspect)
        inner = speed[r < 0.3 * geo.radius]
        outer = speed[r > 0.55 * geo.radius]
        assert inner.size and outer.size
        assert inner.mean() < outer.mean()
