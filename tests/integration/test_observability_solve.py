"""End-to-end observability: traced solves, the profile CLI, overhead.

Covers the acceptance criteria of the observability subsystem:

* ``python -m repro profile`` writes a Perfetto-loadable Chrome trace
  containing Newton steps, per-kernel spans and GMRES iterations, with a
  metrics snapshot riding along;
* with ``nparts > 1`` the per-neighbor halo exchanges appear as nested
  spans;
* ``phase_seconds`` / ``eval_sweeps`` are per-solve, not cumulative
  (two successive ``solve()`` calls report the same counts);
* with no tool subscribed the hook registry's fast path keeps dispatch
  overhead within noise of the fully-disabled registry.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro import observability as obs
from repro.app.antarctica import AntarcticaTest
from repro.app.config import AntarcticaConfig, VelocityConfig
from repro.observability import hooks

REPO_ROOT = Path(__file__).resolve().parents[2]

#: tiny synthetic Antarctica: seconds per solve, all phases exercised
TINY = AntarcticaConfig(resolution_km=400.0, num_layers=4, velocity=VelocityConfig())


def _solve_traced(cfg: AntarcticaConfig):
    test = AntarcticaTest.build(cfg)
    with obs.tracing() as tr:
        sol = test.problem.solve()
    return sol, tr


class TestTracedSolve:
    def test_trace_contains_solver_structure(self):
        sol, tr = _solve_traced(TINY)
        names = {s.name for s in tr.spans}
        assert {
            "velocity.solve",
            "newton.step",
            "newton.evaluate",
            "gmres.solve",
            "gmres.cycle",
            "gmres.iteration",
            "stokes.evaluate",
            "stokes.scatter",
            "precond.setup",
        } <= names
        kernels = [s for s in tr.spans if s.cat == "kernel"]
        assert kernels, "parallel_for dispatches must appear as kernel spans"
        steps = [s for s in tr.spans if s.name == "newton.step"]
        assert len(steps) == sol.newton.iterations

    def test_diagnostics_embed_observability(self):
        sol, tr = _solve_traced(TINY)
        d = sol.diagnostics["observability"]
        assert d["tracing_active"] is True
        assert d["spans_recorded"] > 0
        counters = d["metrics"]["counters"]
        assert counters["newton.steps"] >= sol.newton.iterations
        assert counters["gmres.iterations"] > 0
        hist = d["metrics"]["histograms"]["gmres.iterations_per_solve"]
        assert hist["count"] >= sol.newton.iterations

    def test_phase_seconds_match_spans(self):
        sol, tr = _solve_traced(TINY)
        phases = sol.diagnostics["phase_seconds"]
        agg = tr.aggregate()
        # phase accounting is sourced from the same spans the trace holds
        assert phases["gmres"] == pytest.approx(agg["gmres.solve"]["total_s"], rel=1e-6)
        assert 0.0 < sum(phases.values()) <= sol.diagnostics["solve_seconds"] * 1.05

    def test_spmd_halo_spans(self):
        cfg = replace(TINY, velocity=replace(TINY.velocity, nparts=2))
        sol, tr = _solve_traced(cfg)
        names = {s.name for s in tr.spans}
        assert {"spmd.spmv", "halo.recv", "spmd.assemble_jacobian", "halo.ghost_refresh"} <= names
        # per-neighbor receives nest inside the SpMV refresh
        by_id = {s.id: s for s in tr.spans}
        recvs = [s for s in tr.spans if s.name == "halo.recv"]
        assert recvs and all(s.parent != -1 for s in recvs)
        assert any(by_id[s.parent].name == "spmd.spmv" for s in recvs)
        assert all(s.args["bytes"] > 0 for s in recvs)
        counters = sol.diagnostics["observability"]["metrics"]["counters"]
        assert counters["halo.bytes.vector_gather"] > 0
        assert any(k.startswith("halo.sent.r") for k in counters)


class TestPerSolveLifecycle:
    def test_two_solves_report_per_solve_numbers(self):
        # satellite regression: phase_seconds and eval_sweeps must reset
        # per solve -- a second solve() reports its own counts, not the
        # running total of both
        test = AntarcticaTest.build(TINY)
        d1 = test.problem.solve().diagnostics
        d2 = test.problem.solve().diagnostics
        assert d2["eval_sweeps"] == d1["eval_sweeps"]
        # a cumulative-lifecycle bug would carry solve 1's phase times
        # into solve 2's report, pushing their sum past solve 2's wall
        for d in (d1, d2):
            assert 0.0 < sum(d["phase_seconds"].values()) <= d["solve_seconds"] * 1.05
        # both sweeps counted something and stayed per-solve-sized
        assert 0 < d2["eval_sweeps"]["jacobian"] <= test.config.velocity.newton_steps + 1


class TestProfileCli:
    def test_profile_writes_valid_trace(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "spans.jsonl"
        rc = main(
            [
                "profile",
                "--out", str(out),
                "--jsonl", str(jsonl),
                "--resolution-km", "400",
                "--layers", "4",
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "chrome trace" in text and "Span summary" in text and "flame" in text

        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            from check_trace import check_trace
        finally:
            sys.path.pop(0)
        assert check_trace(str(out)) == []

        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"velocity.solve", "newton.step", "gmres.iteration"} <= names
        assert doc["otherData"]["metrics"]["counters"]["gmres.iterations"] > 0
        assert len(jsonl.read_text().splitlines()) > 0


class TestHookOverhead:
    def test_inactive_registry_overhead_under_5_percent(self):
        # acceptance: the default state (KERNEL_LOG shim subscribed) adds
        # < 5% to a coarse solve vs the fully-disabled registry.  Timing
        # a tiny solve is noisy, so: min of 3 runs each, plus an absolute
        # slack floor so a fast machine cannot fail on scheduler jitter.
        test = AntarcticaTest.build(TINY)
        test.problem.solve()  # warm caches outside the timed region

        def timed_solve() -> float:
            t0 = time.perf_counter()
            test.problem.solve()
            return time.perf_counter() - t0

        reg = hooks.registry()
        with reg.disabled():
            t_off = min(timed_solve() for _ in range(3))
        assert reg.active  # default state: the KERNEL_LOG shim is attached
        t_on = min(timed_solve() for _ in range(3))
        assert t_on <= 1.05 * t_off + 0.05, (t_on, t_off)
