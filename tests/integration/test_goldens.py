"""Golden-baseline diff tests (tier-1 regression gate).

Compares fresh solves and simulator runs against the ``.npz`` baselines
in ``tests/goldens/`` (regenerate with ``tools/regen_goldens.py`` after
an INTENTIONAL numerics change, never to silence a failure).

Tolerance rationale
-------------------
* Velocity fields (``u``): the whole pipeline is deterministic numpy,
  so same-platform reruns are bitwise; across BLAS builds the GMRES
  inner products can differ in the last bits and Newton amplifies that
  up to its own convergence tolerance.  We allow ``rtol=1e-5`` with
  ``atol = 1e-8 * max|u|`` -- anything beyond the solver's nonlinear
  tolerance is a real numerics change.
* Scalar diagnostics (mean/max/surface velocity): averages of the
  field, same argument, ``rtol=1e-6``.
* ``residual_norms[0]``: pure assembly arithmetic (no iterative solve
  in the initial residual), so ``rtol=1e-12``.  Later norms sit at the
  solver tolerance floor where tiny perturbations are relatively huge,
  so only their count and the final reduction factor are pinned.
* Table III speedups: closed-form machine-model arithmetic with no
  linear algebra at all -- ``rtol=1e-12`` (bitwise in practice, slack
  only for libm variation).
"""

from pathlib import Path

import numpy as np
import pytest

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "goldens"

U_RTOL = 1.0e-5
U_ATOL_FACTOR = 1.0e-8  # scaled by max|u_golden|
SCALAR_RTOL = 1.0e-6
ASSEMBLY_RTOL = 1.0e-12
MODEL_RTOL = 1.0e-12


def _load(name: str):
    path = GOLDEN_DIR / f"{name}.npz"
    if not path.exists():
        pytest.fail(f"missing golden {path}; run tools/regen_goldens.py")
    return np.load(path, allow_pickle=False)


def _check_velocity_solution(golden, sol):
    u_ref = golden["u"]
    atol = U_ATOL_FACTOR * float(np.max(np.abs(u_ref)))
    np.testing.assert_allclose(sol.u, u_ref, rtol=U_RTOL, atol=atol)
    for key in ("mean_velocity", "max_velocity", "surface_mean_velocity"):
        np.testing.assert_allclose(getattr(sol, key), float(golden[key]), rtol=SCALAR_RTOL)
    norms_ref = golden["residual_norms"]
    norms = np.asarray(sol.newton.residual_norms)
    assert len(norms) == len(norms_ref), "Newton step count changed"
    np.testing.assert_allclose(norms[0], norms_ref[0], rtol=ASSEMBLY_RTOL)
    # the final reduction factor is pinned to within 10x: the last norm
    # sits at the solver-tolerance floor, so only its order matters
    red, red_ref = norms[-1] / norms[0], norms_ref[-1] / norms_ref[0]
    assert red < 10.0 * red_ref, f"converged less deeply: {red:.2e} vs golden {red_ref:.2e}"


class TestAntarcticaGolden:
    def test_velocity_field_matches(self):
        from repro.app import AntarcticaConfig, AntarcticaTest

        golden = _load("antarctica")
        config = AntarcticaConfig(
            resolution_km=float(golden["resolution_km"]),
            num_layers=int(golden["num_layers"]),
        )
        sol = AntarcticaTest.build(config).run()
        assert sol.u.shape == golden["u"].shape, "mesh/dof layout changed; regen goldens"
        _check_velocity_solution(golden, sol)


class TestGreenlandGolden:
    def test_velocity_field_matches(self):
        from repro.app.config import VelocityConfig
        from repro.app.velocity_solver import StokesVelocityProblem
        from repro.mesh import greenland_geometry
        from repro.mesh.extrude import extrude_footprint
        from repro.mesh.planar import masked_quad_footprint

        golden = _load("greenland")
        nx, ny, nlayers = (int(v) for v in golden["grid"])
        geo = greenland_geometry()
        fp = masked_quad_footprint(nx, ny, geo.lx, geo.ly, geo.mask)
        mesh = extrude_footprint(fp, geo, nlayers)
        sol = StokesVelocityProblem(mesh, geo, VelocityConfig()).solve()
        assert sol.u.shape == golden["u"].shape, "mesh/dof layout changed; regen goldens"
        _check_velocity_solution(golden, sol)


class TestTable3Golden:
    def test_speedups_match(self):
        from repro.gpusim import A100, MI250X_GCD, GPUSimulator
        from repro.kokkos.policy import LaunchBounds

        golden = _load("table3")
        amd_tuned = LaunchBounds(128, 2)
        specs = {s.name: s for s in (A100, MI250X_GCD)}
        for i, (gpu, mode) in enumerate(zip(golden["gpu"], golden["mode"])):
            sim = GPUSimulator(specs[str(gpu)])
            b = sim.run(f"baseline-{mode}")
            lb = amd_tuned if specs[str(gpu)].vendor == "amd" else None
            o = sim.run(f"optimized-{mode}", launch_bounds=lb)
            np.testing.assert_allclose(
                b.time_s, golden["baseline_time_s"][i], rtol=MODEL_RTOL, err_msg=f"{gpu} {mode}"
            )
            np.testing.assert_allclose(
                o.time_s, golden["optimized_time_s"][i], rtol=MODEL_RTOL, err_msg=f"{gpu} {mode}"
            )
            np.testing.assert_allclose(
                b.time_s / o.time_s, golden["speedup"][i], rtol=MODEL_RTOL, err_msg=f"{gpu} {mode}"
            )

    def test_optimization_actually_pays(self):
        """The golden itself must encode a real speedup (sanity on the fixture)."""
        golden = _load("table3")
        assert np.all(golden["speedup"] > 1.5)
