"""Chaos acceptance: the coarse Antarctica solve survives the reference
fault schedule, and the disarmed fault plane costs nothing.

The reference schedule delivers every fault class the robustness bar
names -- a bit-flipped, a dropped and a duplicated halo payload, a
NaN-poisoned evaluator sweep, and a failed SPMD rank -- against the
4-rank coarse Antarctica solve.  Every recovery rung used here is
numerically exact (checksum-verified refetch, sweep re-evaluation,
BFB work redistribution), so the test asserts the *strongest* form of
the acceptance criterion: the recovered solution is bitwise equal to
the fault-free one, far inside the ``10 * tol`` bar.

The second half is the zero-overhead contract: with no schedule armed,
every instrumented site pays one attribute read and never enters any
resilience code (the CI ``chaos-solve`` job tracks the companion <5%
timing bar on the solver hot-path benchmark).
"""

from __future__ import annotations

import numpy as np

from repro import resilience as res
from repro.app import AntarcticaConfig, AntarcticaTest, VelocityConfig

#: the acceptance configuration: coarse Antarctica, 4 simulated ranks
CHAOS_CFG = AntarcticaConfig(
    resolution_km=350.0,
    num_layers=4,
    velocity=VelocityConfig(nparts=4),
)


def _build():
    return AntarcticaTest.build(CHAOS_CFG).problem


class TestReferenceChaosSolve:
    def test_solve_recovers_from_reference_schedule(self):
        problem = _build()
        clean = problem.solve()

        policy = res.RecoveryPolicy()
        schedule = res.reference_schedule(seed=2024, nparts=4)
        with res.fault_injection(schedule, policy=policy) as plane:
            chaos = problem.solve(resilience=policy)
            undelivered = plane.schedule.pending()

        # every scheduled fault was actually delivered mid-solve
        assert not undelivered, [inj.describe() for inj in undelivered]
        assert schedule.fired_count() == 5

        # acceptance bar: within 10 * tol of the fault-free solution --
        # met in its strongest form, since every recovery rung used by
        # this schedule is numerically exact
        tol = 10.0 * CHAOS_CFG.velocity.newton_tol
        scale = max(1.0, float(np.abs(clean.u).max()))
        assert float(np.abs(chaos.u - clean.u).max()) / scale <= tol
        assert np.array_equal(chaos.u, clean.u)
        assert chaos.newton.converged == clean.newton.converged

    def test_diagnostics_record_every_event(self):
        problem = _build()
        policy = res.RecoveryPolicy()
        with res.fault_injection(res.reference_schedule(nparts=4), policy=policy):
            chaos = problem.solve(resilience=policy)

        r = chaos.diagnostics["resilience"]
        assert r["injections"] == 5
        assert r["detections"] >= 5
        assert r["recoveries"] >= 5
        kinds = {
            (e["category"], e["kind"]) for e in r["events"]
        }
        # each fault class maps to its detection and its recovery rung
        assert ("injection", "bitflip") in kinds
        assert ("injection", "drop") in kinds
        assert ("injection", "duplicate") in kinds
        assert ("injection", "nan_poison") in kinds
        assert ("injection", "rank_failure") in kinds
        assert ("detection", "halo_checksum_mismatch") in kinds
        assert ("recovery", "halo_refetch") in kinds
        assert ("detection", "rank_failure") in kinds
        assert ("recovery", "rank_redistribution") in kinds
        # the schedule and the degraded decomposition ride along
        assert r["schedule"]["name"] == "reference"
        assert r["dead_ranks"] == [1]

    def test_armed_solve_reports_linear_flags(self):
        problem = _build()
        policy = res.RecoveryPolicy()
        with res.fault_injection(res.reference_schedule(nparts=4), policy=policy):
            chaos = problem.solve(resilience=policy)
        flags = chaos.diagnostics["linear_flags"]
        assert len(flags) == chaos.newton.iterations
        assert set(flags) <= set(res.GMRES_FLAGS)


class TestNoInjectorOverhead:
    def test_disarmed_solve_never_enters_resilience_code(self, monkeypatch):
        # acceptance: with no injectors registered the hot path pays one
        # attribute read per site.  Wall-clock comparison of a run
        # against itself only measures machine jitter (the CI
        # ``chaos-solve`` job tracks the timing bar on the hot-path
        # benchmark), so this test proves the stronger structural fact:
        # a disarmed solve executes *zero* resilience machinery.  Every
        # guarded entry point is replaced with a tripwire; the full SPMD
        # solve must complete without touching any of them.
        from repro.fem.distributed import DistributedMatrix
        from repro.mesh.partition import HaloExchange
        from repro.resilience.injectors import FaultPlane

        def tripwire(*a, **k):
            raise AssertionError("resilience path entered on a disarmed solve")

        monkeypatch.setattr(HaloExchange, "_refresh_ghosts_checked", tripwire)
        monkeypatch.setattr(DistributedMatrix, "_refresh_ghosts_checked", tripwire)
        monkeypatch.setattr(FaultPlane, "perturb", tripwire)
        monkeypatch.setattr(FaultPlane, "poke", tripwire)

        problem = _build()
        sol = problem.solve()
        assert sol.newton.iterations > 0

    def test_disarmed_solve_has_no_resilience_diagnostics(self):
        problem = _build()
        sol = problem.solve()
        assert "resilience" not in sol.diagnostics
