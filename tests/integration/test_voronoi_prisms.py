"""Integration tests for MALI's production meshing path: Voronoi + prisms.

The paper's test uses quadrilateral footprints (hexahedra); MALI in
general extrudes the triangulation dual to an MPAS Voronoi mesh into
prismatic (wedge) elements.  These tests run the identical solver stack
on that path: SFad(12) Jacobians (6 nodes x 2 dofs), wedge basis data,
triangular basal faces.
"""

import numpy as np
import pytest

from repro.app import AntarcticaConfig, AntarcticaTest, VelocityConfig

CFG = AntarcticaConfig(resolution_km=320.0, num_layers=5, footprint="voronoi")


@pytest.fixture(scope="module")
def prism_solution():
    test = AntarcticaTest.build(CFG)
    sol = test.run()
    return test, sol


class TestPrismPipeline:
    def test_mesh_is_wedges(self, prism_solution):
        test, _ = prism_solution
        assert test.mesh.elem_type == "wedge6"
        assert test.mesh.nodes_per_elem == 6
        assert test.mesh.footprint.elem_type == "tri3"

    def test_solve_converges(self, prism_solution):
        _, sol = prism_solution
        norms = sol.newton.residual_norms
        assert norms[-1] < 1.0e-4 * norms[0]
        assert all(
            its < CFG.velocity.gmres_maxiter for its in sol.newton.linear_iterations
        )

    def test_velocities_physical(self, prism_solution):
        _, sol = prism_solution
        assert 1.0 < sol.mean_velocity < 2000.0
        assert sol.surface_mean_velocity > sol.mean_velocity

    def test_regression_reference(self, prism_solution):
        test, sol = prism_solution
        passed, ref = test.check(sol)
        assert ref is not None
        assert passed

    def test_jacobian_is_sfad12(self, prism_solution):
        """Wedges carry 12 derivative components, not the hex 16."""
        test, _ = prism_solution
        p = test.problem
        u = np.zeros(p.dofmap.num_dofs)
        for _, _, ws in p._worksets(u, "jacobian"):
            assert ws.fad_size == 12
            assert ws.out_jacobian.shape[1:] == (12, 12)
            break

    def test_jacobian_matches_fd_on_wedges(self, prism_solution):
        test, _ = prism_solution
        p = test.problem
        rng = np.random.default_rng(1)
        u = rng.normal(size=p.dofmap.num_dofs) * 5.0
        u[p.bc_dofs] = 0.0
        A = p.jacobian(u)
        v = rng.normal(size=len(u))
        eps = 1.0e-6 / np.linalg.norm(v) * max(1.0, np.linalg.norm(u))
        fd = (p.residual(u + eps * v) - p.residual(u - eps * v)) / (2 * eps)
        ad = A.matvec(v)
        assert np.linalg.norm(ad - fd) / (np.linalg.norm(fd) + 1e-30) < 2.0e-5

    def test_baseline_matches_optimized_on_prisms(self):
        sols = {}
        for impl in ("baseline", "optimized"):
            cfg = AntarcticaConfig(
                resolution_km=320.0,
                num_layers=5,
                footprint="voronoi",
                velocity=VelocityConfig(kernel_impl=impl, newton_steps=4),
            )
            sols[impl] = AntarcticaTest.build(cfg).run()
        rel = abs(sols["baseline"].mean_velocity - sols["optimized"].mean_velocity)
        # kernel sums re-associate, and GMRES amplifies the last-bit noise
        # slightly over four Newton steps
        assert rel / abs(sols["optimized"].mean_velocity) < 1.0e-8
