"""End-to-end perf attribution: planted regressions, stitched CLI traces,
OpenMetrics artifacts, diagnostics stability, attribution overhead.

Covers the acceptance criteria of the attribution pipeline:

* a profile run with a planted slowdown diffs against a clean baseline
  and ``perfdiff`` ranks exactly the slowed span first (the CI
  perf-gate's negative control);
* ``--nparts 4`` produces a stitched Chrome trace with spans from all
  four ranks on their own pids, monotone clock-aligned timestamps, and
  a clean ``tools/check_trace.py`` verdict;
* the ``--openmetrics`` artifact parses under the stdlib OpenMetrics
  grammar checker;
* ``diagnostics["observability"]`` survives a JSON round-trip
  bitwise-stable;
* recording convergence series + per-cycle byte attribution keeps solve
  overhead within the observability subsystem's 5% envelope.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro import observability as obs
from repro.app.antarctica import AntarcticaTest
from repro.app.config import AntarcticaConfig, VelocityConfig

REPO_ROOT = Path(__file__).resolve().parents[2]

TINY = AntarcticaConfig(resolution_km=400.0, num_layers=4, velocity=VelocityConfig())


def _check_trace_fn():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        from check_trace import check_trace
    finally:
        sys.path.pop(0)
    return check_trace


def _profile(tmp_path, tag, *extra):
    from repro.__main__ import main

    out = tmp_path / f"trace_{tag}.json"
    snap = tmp_path / f"snap_{tag}.json"
    rc = main([
        "profile", "--out", str(out), "--snapshot", str(snap),
        "--resolution-km", "400", "--layers", "4", *extra,
    ])
    assert rc == 0
    return out, snap


class TestPlantedRegression:
    PLANT = "gmres.iteration"

    def test_perfdiff_ranks_planted_span_first(self, tmp_path, capsys):
        from repro.observability.perfdiff import main as perfdiff_main

        _, base = _profile(tmp_path, "base")
        _, cur = _profile(tmp_path, "slow", "--plant-slow", f"{self.PLANT}:0.001")
        capsys.readouterr()  # drop the profile chatter

        assert perfdiff_main([str(base), str(cur)]) == 0
        out = capsys.readouterr().out
        assert f"top regression: {self.PLANT}" in out
        assert "Span attribution by self time" in out
        # machine-readable check too: rank 1 by self-time delta
        report_path = tmp_path / "report.json"
        assert perfdiff_main([str(base), str(cur), "--json", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["top_regression"] == self.PLANT
        assert report["spans"][0]["name"] == self.PLANT
        # ~292 iterations x 1ms planted: the delta is large and positive
        assert report["spans"][0]["delta_s"] > 0.05

    def test_slowdown_does_not_leak_into_next_profile(self, tmp_path):
        _profile(tmp_path, "planted", "--plant-slow", f"{self.PLANT}:0.001")
        assert obs.get_tracer()._planted == {}


class TestStitchedProfileCli:
    def test_nparts4_trace_stitched_and_valid(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "stitched.json"
        om = tmp_path / "metrics.om"
        rc = main([
            "profile", "--out", str(out), "--openmetrics", str(om),
            "--resolution-km", "400", "--layers", "4", "--nparts", "4",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "Roofline attribution" in text
        assert "Critical path: halo wait vs compute" in text

        assert _check_trace_fn()(str(out)) == []
        doc = json.loads(out.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # all four rank lanes plus the driver lane are populated
        assert {e["pid"] for e in xs} == {0, 1, 2, 3, 4}
        rank_spans = [e for e in xs if isinstance(e["args"].get("rank"), int)]
        assert rank_spans and all(e["pid"] == e["args"]["rank"] for e in rank_spans)
        ts = [e["ts"] for e in xs]
        assert all(b >= a for a, b in zip(ts, ts[1:])) and min(ts) >= 0.0
        # driver lane carries the roofline-annotated solver phases
        annotated = [e for e in xs if "roofline" in e["args"]]
        assert annotated
        labels = {
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"rank 0", "rank 3", "driver"} <= labels

        from repro.observability import parse_exposition

        families = parse_exposition(om.read_text())
        assert "newton_residual" in families
        assert "gmres_iterations" in families


class TestSeriesFromSolve:
    def test_residual_series_recorded_per_solve(self):
        obs.get_series().reset()
        test = AntarcticaTest.build(TINY)
        sol = test.problem.solve()
        newton = obs.get_series().get("newton.residual")
        assert newton is not None
        assert newton.count >= sol.newton.iterations
        vals = newton.values()
        assert vals[-1] < vals[0]  # it converged
        gmres = [s for s in obs.get_series().all() if s.name == "gmres.residual"]
        assert gmres and all(s.labels.get("mode") for s in gmres)
        # the series summary rides the solve diagnostics
        summ = sol.diagnostics["observability"]["series"]
        assert any(k.startswith("newton.residual") for k in summ)


class TestDiagnosticsStability:
    def test_observability_diagnostics_json_round_trip_bitwise(self):
        obs.get_series().reset()
        test = AntarcticaTest.build(TINY)
        with obs.tracing():
            sol = test.problem.solve()
        d = sol.diagnostics["observability"]
        first = json.dumps(d, sort_keys=True)
        second = json.dumps(json.loads(first), sort_keys=True)
        assert first == second
        reparsed = json.loads(second)
        assert reparsed["metrics"]["counters"]["newton.steps"] >= 1


class TestAttributionOverhead:
    def test_attribution_overhead_under_5_percent(self):
        # re-run of the observability overhead acceptance with the
        # attribution emission sites live: series recording + per-cycle
        # byte math on vs off must stay within the same 5% envelope
        test = AntarcticaTest.build(TINY)
        test.problem.solve()  # warm caches outside the timed region

        def timed_solve() -> float:
            t0 = time.perf_counter()
            test.problem.solve()
            return time.perf_counter() - t0

        series = obs.get_series()
        with series.disabled():
            t_off = min(timed_solve() for _ in range(3))
        assert series.active
        t_on = min(timed_solve() for _ in range(3))
        assert t_on <= 1.05 * t_off + 0.05, (t_on, t_off)


class TestSnapshotReconciliation:
    def test_snapshot_self_never_exceeds_total(self, tmp_path):
        _, snap = _profile(tmp_path, "recon")
        doc = json.loads(snap.read_text())
        assert doc["kind"] == "perf_snapshot" and doc["schema_version"] == 1
        assert doc["spans"]
        for name, rec in doc["spans"].items():
            assert 0.0 <= rec["self_s"] <= rec["total_s"] + 1e-9, name
        # the root span's inclusive time bounds everyone's self time sum
        root = doc["spans"]["velocity.solve"]["total_s"]
        build = doc["spans"]["antarctica.build"]["total_s"]
        total_self = sum(r["self_s"] for r in doc["spans"].values())
        assert total_self <= (root + build) * 1.05
