"""Distributed-assembly consistency: partitioned residual == serial residual.

Exercises the MPI-substrate (`repro.mesh.partition`) against the real
physics: the footprint is split into parts, each part assembles the
residual over its owned element columns only, and the halo exchange's
additive scatter must reproduce the serial global residual bitwise-close.
This is the correctness contract MALI's one-rank-per-GPU decomposition
relies on.
"""

import numpy as np
import pytest

from repro.app import AntarcticaConfig, AntarcticaTest
from repro.fem.assembly import assemble_vector
from repro.mesh.partition import HaloExchange, partition_footprint


@pytest.fixture(scope="module")
def setup():
    test = AntarcticaTest.build(AntarcticaConfig(resolution_km=350.0, num_layers=4))
    rng = np.random.default_rng(7)
    u = rng.normal(size=test.problem.dofmap.num_dofs) * 10.0
    u[test.problem.bc_dofs] = 0.0
    return test, u


class TestDistributedAssembly:
    def test_partitioned_residual_matches_serial(self, setup):
        test, u = setup
        p = test.problem
        mesh = test.mesh
        fp = mesh.footprint
        nparts = 4
        part = partition_footprint(fp, nparts)

        # serial reference (without the BC row overwrite)
        serial = np.zeros(p.dofmap.num_dofs)
        local_blocks = np.empty((mesh.num_elems, p.dofmap.dofs_per_elem))
        for start, stop, ws in p._worksets(u, "residual"):
            local_blocks[start:stop] = ws.out_residual
        serial = assemble_vector(p.dofmap, local_blocks)

        # per-part assembly over owned element columns, then additive halo
        nz = mesh.nlayers
        partial = np.zeros_like(serial)
        covered = np.zeros(mesh.num_elems, dtype=bool)
        for rank in range(nparts):
            owned2d = part.owned_elems(rank)
            owned3d = (owned2d[:, None] * nz + np.arange(nz)[None, :]).ravel()
            covered[owned3d] = True
            np.add.at(
                partial,
                p.dofmap.elem_dofs()[owned3d].ravel(),
                local_blocks[owned3d].ravel(),
            )
        assert covered.all(), "parts must tile the element set"
        assert np.allclose(partial, serial, rtol=1e-13, atol=1e-9 * np.abs(serial).max())

    def test_ghost_regions_nonempty(self, setup):
        test, _ = setup
        part = partition_footprint(test.mesh.footprint, 4)
        # ownership is min-rank, so rank 0 never has ghosts; every other
        # rank touching a lower-ranked neighbor does
        with_ghosts = [rank for rank in range(4) if len(part.ghost_nodes(rank)) > 0]
        assert len(with_ghosts) >= 3
        assert 0 not in with_ghosts

    def test_halo_gather_roundtrip(self, setup):
        test, u = setup
        fp = test.mesh.footprint
        part = partition_footprint(fp, 3)
        halo = HaloExchange(part)
        field = np.arange(fp.num_nodes, dtype=float) * 2.0
        for rank in range(3):
            local = halo.gather(rank, field)
            assert np.array_equal(local, field[halo.local_nodes(rank)])

    def test_partition_balance_on_real_footprint(self, setup):
        test, _ = setup
        part = partition_footprint(test.mesh.footprint, 8)
        assert part.balance() < 1.25
