"""Seed determinism of chaos runs: same schedule, same bits, no RNG leaks.

A :class:`FaultSchedule` documents that its corruptions are a pure
function of ``(seed, call order)``.  This test holds the subsystem to
that contract end to end: two fault-injected solves with identical
schedules must produce bitwise-identical solutions AND identical
event-by-event :class:`ResilienceLog` records -- and none of it may
depend on (or disturb) numpy's process-global RNG state.
"""

from __future__ import annotations

import numpy as np

from repro import resilience as res
from repro.app import AntarcticaConfig, AntarcticaTest, VelocityConfig

CFG = AntarcticaConfig(
    resolution_km=350.0,
    num_layers=4,
    velocity=VelocityConfig(nparts=4),
)


def _chaos_solve(seed: int = 2024):
    problem = AntarcticaTest.build(CFG).problem
    policy = res.RecoveryPolicy()
    with res.fault_injection(res.reference_schedule(seed=seed, nparts=4), policy=policy):
        sol = problem.solve(resilience=policy)
    return sol


class TestChaosSeedDeterminism:
    def test_identical_runs_are_bitwise_identical(self):
        a = _chaos_solve()
        b = _chaos_solve()
        assert np.array_equal(a.u, b.u), "chaos solve is not seed-deterministic"
        assert a.newton.residual_norms == b.newton.residual_norms
        assert a.newton.linear_iterations == b.newton.linear_iterations

    def test_resilience_logs_identical_event_by_event(self):
        ra = _chaos_solve().diagnostics["resilience"]
        rb = _chaos_solve().diagnostics["resilience"]
        assert ra["injections"] == rb["injections"]
        assert len(ra["events"]) == len(rb["events"])
        for ea, eb in zip(ra["events"], rb["events"]):
            assert ea == eb, f"event diverged: {ea} vs {eb}"

    def test_different_seed_perturbs_corruptions_not_recovery(self):
        """The seed feeds the injected noise; exact recovery hides it again."""
        a = _chaos_solve(seed=2024)
        b = _chaos_solve(seed=7)
        # every recovery rung on the reference schedule is numerically
        # exact, so even different injected corruptions converge to the
        # same recovered solution -- while the injected payloads differ
        assert np.array_equal(a.u, b.u)
        assert a.diagnostics["resilience"]["injections"] == 5
        assert b.diagnostics["resilience"]["injections"] == 5

    def test_no_global_rng_leak(self):
        """Chaos machinery must neither read nor reseed np.random's
        global legacy state: all randomness flows through the schedule's
        own ``default_rng(seed)``."""
        np.random.seed(12345)
        state_before = np.random.get_state()
        a = _chaos_solve()
        state_after = np.random.get_state()
        assert state_before[0] == state_after[0]
        assert np.array_equal(state_before[1], state_after[1])
        assert state_before[2:] == state_after[2:]

        # and the solve's result must not depend on the global seed
        np.random.seed(99999)
        b = _chaos_solve()
        assert np.array_equal(a.u, b.u)
