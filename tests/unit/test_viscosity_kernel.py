"""Tests for the ViscosityFO kernel (the 'several kernels' extension)."""

import numpy as np
import pytest

from repro.autodiff.sfad import SFad
from repro.core.viscosity_kernel import ViscosityFOKernel, make_viscosity_fields
from repro.gpusim import A100, MI250X_GCD, GPUSimulator, ProblemSize, record_kernel_trace
from repro.kokkos.space import HostSerial
from repro.perf import theoretical_minimum
from repro.physics.viscosity import effective_strain_rate_squared, glen_viscosity


def _fill(f, seed=0):
    rng = np.random.default_rng(seed)
    if f.scalar.is_fad:
        f.Ugrad.data.val[...] = rng.normal(size=f.Ugrad.shape) * 1e-3
        f.Ugrad.data.dx[...] = rng.normal(size=f.Ugrad.shape + (16,)) * 1e-4
    else:
        f.Ugrad.data[...] = rng.normal(size=f.Ugrad.shape) * 1e-3
    f.flowFactor.data[...] = rng.uniform(5e-8, 2e-7, f.flowFactor.shape)
    return f


class TestNumerics:
    def test_matches_vectorized_evaluator(self):
        f = _fill(make_viscosity_fields(8))
        ViscosityFOKernel(f)(slice(None))
        g = f.Ugrad.data
        ref = glen_viscosity(
            effective_strain_rate_squared(
                g[:, :, 0, 0], g[:, :, 0, 1], g[:, :, 0, 2],
                g[:, :, 1, 0], g[:, :, 1, 1], g[:, :, 1, 2],
            ),
            flow_factor=f.flowFactor.data,
        )
        assert np.allclose(f.muLandIce.data, ref, rtol=1e-12)

    def test_vectorized_equals_serial(self):
        fv = _fill(make_viscosity_fields(4), seed=1)
        fs = _fill(make_viscosity_fields(4), seed=1)
        ViscosityFOKernel(fv)(slice(None))
        k = ViscosityFOKernel(fs)
        for c in range(4):
            k(c)
        assert np.allclose(fv.muLandIce.data, fs.muLandIce.data, rtol=1e-12)

    def test_jacobian_pass_derivatives_match_fd(self):
        f = _fill(make_viscosity_fields(2, mode="jacobian"), seed=2)
        ViscosityFOKernel(f)(slice(None))
        mu = f.muLandIce.data
        # directional FD through the value path
        eps = 1e-7
        rng = np.random.default_rng(3)
        d = rng.normal(size=16)
        fp = make_viscosity_fields(2)
        fm = make_viscosity_fields(2)
        fp.Ugrad.data[...] = f.Ugrad.data.val + eps * np.einsum("cqkdf,f->cqkd", f.Ugrad.data.dx, d)
        fm.Ugrad.data[...] = f.Ugrad.data.val - eps * np.einsum("cqkdf,f->cqkd", f.Ugrad.data.dx, d)
        fp.flowFactor.data[...] = f.flowFactor.data
        fm.flowFactor.data[...] = f.flowFactor.data
        ViscosityFOKernel(fp)(slice(None))
        ViscosityFOKernel(fm)(slice(None))
        fd = (fp.muLandIce.data - fm.muLandIce.data) / (2 * eps)
        ad = np.einsum("cqf,f->cq", mu.dx, d)
        assert np.allclose(ad, fd, rtol=1e-4, atol=1e-2 * np.abs(fd).max())

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            make_viscosity_fields(2, mode="gradient")


class TestSimulated:
    def test_streaming_kernel_hits_application_bound(self):
        """No reuse -> the streaming kernel sits on the wall on both GPUs."""
        for spec in (A100, MI250X_GCD):
            p = GPUSimulator(spec).run("viscosity-residual", ProblemSize(256_000))
            th = theoretical_minimum("viscosity-residual", 256_000)
            assert th.total_bytes / p.hbm_bytes > 0.99

    def test_trace_has_no_output_reads(self):
        prog = record_kernel_trace("viscosity-residual")
        assert prog.output_views == ("muLandIce",)
        reads = [s for s, w in zip(prog.slot_trace, prog.writes) if not w]
        assert all(s.view != "muLandIce" for s in reads)

    def test_jacobian_pass_moves_more(self):
        tr = theoretical_minimum("viscosity-residual", 1000)
        tj = theoretical_minimum("viscosity-jacobian", 1000)
        # Ugrad and mu are Fad; flowFactor stays double
        assert 10.0 < tj.total_bytes / tr.total_bytes <= 17.0

    def test_much_cheaper_than_stokes_kernel(self):
        sim = GPUSimulator(A100)
        v = sim.run("viscosity-residual", ProblemSize(256_000))
        r = sim.run("optimized-residual", ProblemSize(256_000))
        assert v.time_s < r.time_s
