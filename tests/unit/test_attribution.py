"""Roofline annotation: AI/%-of-roof math, bases, tables, reconciliation."""

from __future__ import annotations

import pytest

from repro.gpusim import ANTARCTICA_16KM, GPUSimulator, MI250X_GCD
from repro.gpusim.specs import ALL_GPUS
from repro.observability.attribution import (
    ROOFLINE_FIELDS,
    ROOFLINE_KEY,
    annotate_roofline,
    reconcile_rocprof_bytes,
    roofline_table,
    span_bytes,
)
from repro.observability.tracer import SpanTracer

SPEC = ALL_GPUS["MI250X-GCD"]


def _spans(*defs):
    """Build closed spans with controlled args via a private tracer."""
    tr = SpanTracer()
    tr.start()
    for name, args in defs:
        with tr.span(name, **args):
            pass
    return tr.spans


class TestSpanBytes:
    def test_explicit_bytes(self):
        (s,) = _spans(("k", {"bytes": 128.0}))
        assert span_bytes(s) == 128.0

    def test_matvec_plus_stream_split(self):
        (s,) = _spans(("gmres.cycle", {"matvec_bytes": 100.0, "stream_bytes": 28.0}))
        assert span_bytes(s) == 128.0

    def test_unpriced_and_garbage(self):
        a, b = _spans(("x", {}), ("y", {"bytes": "oops"}))
        assert span_bytes(a) == 0.0
        assert span_bytes(b) == 0.0


class TestAnnotateRoofline:
    def test_modeled_basis_exact_fractions(self):
        # bytes/flops/model_time chosen so the fractions are closed-form
        bw, pf = float(SPEC.hbm_bytes_per_s), float(SPEC.fp64_flops)
        (s,) = _spans(("gpusim.run", {
            "bytes": bw,            # 1 s of peak-bandwidth traffic
            "flops": 0.5 * pf,      # 0.5 s of peak flops
            "model_time_s": 2.0,
        }))
        assert annotate_roofline([s], SPEC) == 1
        r = s.args[ROOFLINE_KEY]
        assert r["basis"] == "modeled" and r["gpu"] == SPEC.name
        assert r["bw_frac"] == pytest.approx(0.5)
        assert r["ai"] == pytest.approx(0.5 * pf / bw)
        # compute-bound at this AI iff AI > ridge point
        attainable = min(pf, bw * r["ai"])
        assert r["roof_frac"] == pytest.approx((0.5 * pf / 2.0) / attainable)

    def test_pure_streaming_roof_is_bandwidth(self):
        (s,) = _spans(("mdsc.vcycle", {"bytes": 1e6, "model_time_s": 1e-3}))
        annotate_roofline([s], SPEC)
        r = s.args[ROOFLINE_KEY]
        assert r["flops"] == 0.0 and r["ai"] == 0.0
        assert r["roof_frac"] == pytest.approx(r["bw_frac"])

    def test_wall_basis_fallback(self):
        (s,) = _spans(("gmres.cycle", {"bytes": 4096.0}))
        assert s.dur_s > 0.0
        annotate_roofline([s], SPEC)
        assert s.args[ROOFLINE_KEY]["basis"] == "wall"

    def test_unpriced_spans_untouched(self):
        spans = _spans(("newton.step", {}), ("gmres.cycle", {"bytes": 1.0}))
        assert annotate_roofline(spans, SPEC) == 1
        assert ROOFLINE_KEY not in spans[0].args
        assert ROOFLINE_KEY in spans[1].args

    def test_annotation_carries_all_checked_fields(self):
        (s,) = _spans(("k", {"bytes": 10.0, "flops": 5.0}))
        annotate_roofline([s], SPEC)
        r = s.args[ROOFLINE_KEY]
        for f in ROOFLINE_FIELDS:
            assert isinstance(r[f], float) and r[f] >= 0.0


class TestRooflineTable:
    def test_rollup_by_name(self):
        spans = _spans(
            ("gmres.cycle", {"bytes": 2e9, "flops": 1e8}),
            ("gmres.cycle", {"bytes": 2e9, "flops": 1e8}),
            ("mdsc.vcycle", {"bytes": 1e9}),
        )
        annotate_roofline(spans, SPEC)
        table = roofline_table(spans, SPEC)
        assert "gmres.cycle" in table and "mdsc.vcycle" in table
        assert "4.000" in table  # 2 x 2e9 B = 4.000 GB rolled up
        assert "wall" in table and SPEC.name in table

    def test_empty_when_unannotated(self):
        spans = _spans(("a", {}))
        assert roofline_table(spans, SPEC) == "(no roofline-annotated spans)"


class TestRocprofReconciliation:
    def test_gpusim_spans_reconcile_exactly(self):
        # acceptance: span roofline byte args agree with the TCC_EA
        # 64 * (RDREQ + WRREQ) appendix formula on a real simulator run
        sim = GPUSimulator(MI250X_GCD)
        tr = SpanTracer()
        tr.start()
        import repro.observability.tracer as tracer_mod

        prev = tracer_mod._TRACER
        tracer_mod._TRACER = tr
        try:
            sim.run("optimized-jacobian", ANTARCTICA_16KM)
        finally:
            tracer_mod._TRACER = prev
        runs = [s for s in tr.spans if s.name == "gpusim.run"]
        assert runs, "gpusim.run span must be recorded"
        assert runs[0].args["bytes"] == runs[0].args["rocprof_bytes"]
        assert reconcile_rocprof_bytes(tr.spans) == []
        # and the annotation uses the simulated GPU time, not wall time
        annotate_roofline(tr.spans, SPEC)
        assert runs[0].args[ROOFLINE_KEY]["basis"] == "modeled"
        assert runs[0].args[ROOFLINE_KEY]["bw_frac"] > 0.01

    def test_mismatch_reported(self):
        (s,) = _spans(("gpusim.run", {"bytes": 100.0, "rocprof_bytes": 164.0}))
        errs = reconcile_rocprof_bytes([s])
        assert len(errs) == 1 and "gpusim.run" in errs[0]
        assert reconcile_rocprof_bytes([s], rtol=0.5) == []
