"""Chrome trace-event export tests (Perfetto-compatible schema)."""

from __future__ import annotations

import json

from repro import observability as obs
from repro.kokkos.parallel import parallel_for
from repro.observability.tracer import SpanTracer


def _sample_tracer() -> SpanTracer:
    """A short recorded session with nesting and a kernel dispatch."""
    with obs.tracing() as tr:
        with tr.span("solve", steps=2):
            for step in range(2):
                with tr.span("step", step=step):
                    parallel_for("kern", 4, lambda i: None)
    return tr


class TestChromeTraceExport:
    def test_json_round_trip(self, tmp_path):
        tr = _sample_tracer()
        path = obs.write_chrome_trace(tmp_path / "trace.json", tr.spans)
        doc = json.loads(path.read_text())  # must be loadable JSON
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"

    def test_complete_events_schema(self, tmp_path):
        tr = _sample_tracer()
        doc = obs.to_chrome_trace(tr.spans)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(tr.spans)
        for e in xs:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}

    def test_timestamps_monotone_and_non_negative(self):
        tr = _sample_tracer()
        xs = [e for e in obs.to_chrome_trace(tr.spans)["traceEvents"] if e["ph"] == "X"]
        for e in xs:
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
        # spans are appended in completion order: end times never decrease
        ends = [e["ts"] + e["dur"] for e in xs]
        assert all(b >= a - 1e-9 for a, b in zip(ends, ends[1:]))

    def test_child_intervals_contained_in_parents(self):
        tr = _sample_tracer()
        by_id = {s.id: s for s in tr.spans}
        children = [s for s in tr.spans if s.parent != -1]
        assert children  # the sample really nests
        for s in children:
            p = by_id[s.parent]
            assert s.ts_us >= p.ts_us - 1e-6
            assert s.end_us <= p.end_us + 1e-6
            assert s.depth == p.depth + 1

    def test_metadata_events_and_metrics(self):
        tr = _sample_tracer()
        snap = {"counters": {"x": 1}, "gauges": {}, "histograms": {}}
        doc = obs.to_chrome_trace(tr.spans, metrics=snap, process_labels={0: "rank zero"})
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert {"process_name", "thread_name"} <= names
        proc = next(e for e in meta if e["name"] == "process_name")
        assert proc["args"]["name"] == "rank zero"
        assert doc["otherData"]["metrics"] == snap

    def test_kernel_span_present_with_args(self):
        tr = _sample_tracer()
        doc = obs.to_chrome_trace(tr.spans)
        kerns = [e for e in doc["traceEvents"] if e.get("cat") == "kernel"]
        assert len(kerns) == 2
        assert all(e["name"] == "kern" and e["args"]["extent"] == 4 for e in kerns)

    def test_jsonl_export(self, tmp_path):
        tr = _sample_tracer()
        path = obs.write_jsonl(tmp_path / "spans.jsonl", tr.spans)
        lines = path.read_text().splitlines()
        assert len(lines) == len(tr.spans)
        recs = [json.loads(ln) for ln in lines]
        assert {r["name"] for r in recs} == {"solve", "step", "kern"}


class TestCounterEventExport:
    def test_series_become_counter_events(self):
        from repro.observability.timeseries import SeriesRegistry

        tr = _sample_tracer()
        reg = SeriesRegistry()
        reg.record("newton.residual", 10.0)
        reg.record("newton.residual", 0.5)
        reg.record("gmres.residual", 3.0, mode="assembled")
        doc = obs.to_chrome_trace(tr.spans, series=reg, counter_pid=4)
        cs = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(cs) == 3
        for e in cs:
            assert e["pid"] == 4 and e["ts"] >= 0.0
            assert set(e["args"]) == {"value"}
        tracks = {e["name"] for e in cs}
        assert "newton.residual" in tracks
        assert "gmres.residual{mode=assembled}" in tracks
        vals = [e["args"]["value"] for e in cs if e["name"] == "newton.residual"]
        assert vals == [10.0, 0.5]

    def test_no_series_no_counter_events(self):
        tr = _sample_tracer()
        doc = obs.to_chrome_trace(tr.spans)
        assert all(e["ph"] != "C" for e in doc["traceEvents"])

    def test_counter_events_pass_check_trace(self, tmp_path):
        import sys
        from pathlib import Path

        from repro.observability.timeseries import SeriesRegistry

        tr = _sample_tracer()
        reg = SeriesRegistry()
        reg.record("newton.residual", 1.0)
        path = obs.write_chrome_trace(tmp_path / "t.json", tr.spans, series=reg)
        tools = Path(__file__).resolve().parents[2] / "tools"
        sys.path.insert(0, str(tools))
        try:
            from check_trace import _check_counter
        finally:
            sys.path.pop(0)
        doc = json.loads(path.read_text())
        errors: list[str] = []
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        for i, e in enumerate(counters):
            _check_counter(i, e, errors)
        assert errors == []


class TestAsciiRenderings:
    def test_summary_table_smoke(self):
        tr = _sample_tracer()
        text = obs.summary_table(tr.spans)
        assert "solve" in text and "kern" in text and "share" in text

    def test_ascii_flame_smoke(self):
        tr = _sample_tracer()
        text = obs.ascii_flame(tr.spans)
        assert "solve" in text and "#" in text

    def test_metrics_table_smoke(self):
        snap = {
            "counters": {"gmres.iterations": 12},
            "gauges": {"occ": 0.5},
            "histograms": {"h": {"count": 1, "mean": 2.0, "min": 2.0, "max": 2.0, "sum": 2.0}},
        }
        text = obs.metrics_table(snap)
        assert "gmres.iterations" in text and "12" in text

    def test_metrics_table_shows_quantile_columns(self):
        from repro.observability.metrics import MetricsRegistry

        m = MetricsRegistry()
        h = m.histogram("iters")
        for v in (10, 20, 30, 40):
            h.observe(v)
        text = obs.metrics_table(m.snapshot())
        assert "p50" in text and "p95" in text

    def test_metrics_table_empty(self):
        assert "no metrics" in obs.metrics_table({})
