"""Config-layer regression tests.

The load-bearing one: ``AntarcticaConfig.velocity`` must build a fresh
``VelocityConfig`` per instance (``default_factory``), not share one
instance evaluated at import time.  The class-level-default variant
froze ``REPRO_OPERATOR_MODE`` as read when ``repro.app.config`` was
first imported, so ``monkeypatch.setenv`` in tests -- and any other
in-process environment change -- was silently ignored.
"""

import dataclasses

import pytest

from repro.app.config import AntarcticaConfig, VelocityConfig


class TestEnvDefaultsAfterImport:
    def test_operator_mode_env_set_after_import_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_OPERATOR_MODE", "matrix-free")
        assert AntarcticaConfig().velocity.operator_mode == "matrix-free"
        assert VelocityConfig().operator_mode == "matrix-free"

    def test_operator_mode_env_unset_after_import_is_honored(self, monkeypatch):
        monkeypatch.delenv("REPRO_OPERATOR_MODE", raising=False)
        assert AntarcticaConfig().velocity.operator_mode == "assembled"

    def test_velocity_default_is_not_a_shared_instance(self, monkeypatch):
        monkeypatch.delenv("REPRO_OPERATOR_MODE", raising=False)
        a = AntarcticaConfig()
        monkeypatch.setenv("REPRO_OPERATOR_MODE", "matrix-free")
        b = AntarcticaConfig()
        # a was constructed under the old environment and keeps it; b
        # sees the new one -- impossible with one import-time instance
        assert a.velocity.operator_mode == "assembled"
        assert b.velocity.operator_mode == "matrix-free"

    def test_explicit_constructor_argument_still_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_OPERATOR_MODE", "matrix-free")
        cfg = AntarcticaConfig(velocity=VelocityConfig(operator_mode="assembled"))
        assert cfg.velocity.operator_mode == "assembled"


class TestTunedAxis:
    def test_default_is_off(self):
        assert VelocityConfig().tuned == "off"

    def test_auto_accepted_and_replace_preserves_it(self):
        cfg = VelocityConfig(tuned="auto")
        assert dataclasses.replace(cfg, gmres_restart=77).tuned == "auto"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="tuned"):
            VelocityConfig(tuned="always")
