"""Tests for viscosity, evaluator DAG, and Fad-aware interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import SFad
from repro.constants import GLEN_A_DEFAULT, RHO_G_KPA
from repro.physics import (
    effective_strain_rate_squared,
    glen_viscosity,
    flow_factor_arrhenius,
    FieldManager,
    Workset,
    GatherSolution,
    DOFVecGradInterpolation,
    ViscosityFOEvaluator,
    BodyForceEvaluator,
    StokesFOResidEvaluator,
    BasalFrictionResidEvaluator,
    ScatterResidual,
    build_stokes_field_manager,
)
from repro.physics.evaluators import _interp_grad, _interp_value


class TestViscosity:
    def test_positive(self):
        rng = np.random.default_rng(0)
        comps = rng.normal(size=(6, 30)) * 1e-3
        mu = glen_viscosity(effective_strain_rate_squared(*comps))
        assert np.all(mu > 0)

    def test_shear_thinning(self):
        """Higher strain rate -> lower viscosity (n=3 shear thinning)."""
        mu_slow = glen_viscosity(np.array([1e-8]))
        mu_fast = glen_viscosity(np.array([1e-2]))
        assert mu_fast < mu_slow

    def test_strain_rate_invariant_nonnegative(self):
        rng = np.random.default_rng(1)
        comps = rng.normal(size=(6, 200))
        assert np.all(effective_strain_rate_squared(*comps) >= 0.0)

    @given(st.floats(min_value=-1e-2, max_value=1e-2), st.floats(min_value=-1e-2, max_value=1e-2))
    @settings(max_examples=40, deadline=None)
    def test_invariant_nonnegative_property(self, a, b):
        val = effective_strain_rate_squared(a, b, 0.0, -b, a, 0.0)
        assert val >= 0.0

    def test_fad_propagates(self):
        x = SFad(1).independent(np.array([1e-3]), 0)
        eps_sq = effective_strain_rate_squared(x, 0.0, 0.0, 0.0, 0.0, 0.0)
        mu = glen_viscosity(eps_sq)
        # d mu / d ux < 0 at positive ux (shear thinning)
        assert mu.dx[0, 0] < 0.0

    def test_bad_flow_factor(self):
        with pytest.raises(ValueError):
            glen_viscosity(np.array([1.0]), flow_factor=-1.0)

    def test_arrhenius_monotone(self):
        t = np.array([230.0, 250.0, 263.15, 270.0])
        a = flow_factor_arrhenius(t)
        assert np.all(np.diff(a) > 0)  # warmer ice deforms faster
        assert np.isclose(a[2], GLEN_A_DEFAULT)
        with pytest.raises(ValueError):
            flow_factor_arrhenius(np.array([-5.0]))


class TestInterp:
    def test_interp_grad_plain_matches_einsum(self):
        rng = np.random.default_rng(2)
        U = rng.normal(size=(3, 8, 2))
        g = rng.normal(size=(3, 8, 4, 3))
        out = _interp_grad(U, g)
        assert np.allclose(out, np.einsum("cnk,cnqd->cqkd", U, g))

    def test_interp_grad_fad_derivatives(self):
        rng = np.random.default_rng(3)
        nc, nn = 2, 8
        vals = rng.normal(size=(nc, nn, 2))
        dx = np.zeros((nc, nn, 2, 16))
        j = np.arange(16)
        dx.reshape(nc, 16, 16)[:, j, j] = 1.0
        U = SFad(16)(vals, dx)
        g = rng.normal(size=(nc, nn, 4, 3))
        out = _interp_grad(U, g)
        # derivative of Ugrad(c,q,k,d) w.r.t. local dof (n,k') = delta_kk' * g(c,n,q,d)
        for c in range(nc):
            for q in range(4):
                for d in range(3):
                    assert np.allclose(out.dx[c, q, 0, d].reshape(nn, 2)[:, 0], g[c, :, q, d])
                    assert np.allclose(out.dx[c, q, 0, d].reshape(nn, 2)[:, 1], 0.0)

    def test_interp_value(self):
        rng = np.random.default_rng(4)
        U = rng.normal(size=(2, 4, 2))
        bf = rng.normal(size=(3, 4))  # (nq, nn)
        out = _interp_value(U, bf)
        assert np.allclose(out, np.einsum("cnk,qn->cqk", U, bf))


def _make_workset(mode="residual", nc=5, nn=8, nq=8, seed=0, with_basal=False):
    rng = np.random.default_rng(seed)
    ws = Workset(
        mode=mode,
        solution_local=rng.normal(size=(nc, nn, 2)) * 10.0,
        w_bf=rng.uniform(0.5, 1.0, size=(nc, nn, nq)),
        w_grad_bf=rng.normal(size=(nc, nn, nq, 3)) * 1e-3,
        grad_bf=rng.normal(size=(nc, nn, nq, 3)) * 1e-3,
        flow_factor_qp=np.full((nc, nq), GLEN_A_DEFAULT),
        grad_s_qp=rng.normal(size=(nc, nq, 2)) * 1e-3,
    )
    if with_basal:
        nnf, nqf = 4, 4
        ws.basal_cells = np.array([0, 2]) if nc > 2 else np.array([0])
        nb = len(ws.basal_cells)
        ws.basal_w_bf = rng.uniform(0.5, 1.0, size=(nb, nnf, nqf))
        ws.basal_beta_qp = rng.uniform(1.0, 10.0, size=(nb, nqf))
        ws.basal_bf = rng.uniform(0.0, 1.0, size=(nqf, nnf))
    return ws


class TestFieldManager:
    def test_toposort_orders_dependencies(self):
        fm = build_stokes_field_manager("optimized")
        names = [type(e).__name__ for e in fm.evaluators]
        assert names.index("GatherSolution") < names.index("DOFVecGradInterpolation")
        assert names.index("DOFVecGradInterpolation") < names.index("ViscosityFOEvaluator")
        assert names.index("StokesFOResidEvaluator") < names.index("ScatterResidual")

    def test_duplicate_provider_rejected(self):
        with pytest.raises(ValueError):
            FieldManager([GatherSolution(), GatherSolution()])

    def test_missing_field_detected(self):
        fm = FieldManager([DOFVecGradInterpolation()])
        ws = _make_workset()
        with pytest.raises(KeyError):
            fm.evaluate(ws)

    def test_residual_pipeline_runs(self):
        fm = build_stokes_field_manager("optimized")
        ws = fm.evaluate(_make_workset("residual"))
        assert ws.out_residual is not None
        assert ws.out_residual.shape == (5, 16)
        assert ws.out_jacobian is None
        assert np.all(np.isfinite(ws.out_residual))

    def test_jacobian_pipeline_runs(self):
        fm = build_stokes_field_manager("optimized")
        ws = fm.evaluate(_make_workset("jacobian"))
        assert ws.out_jacobian is not None
        assert ws.out_jacobian.shape == (5, 16, 16)
        assert np.all(np.isfinite(ws.out_jacobian))

    def test_jacobian_matches_finite_difference(self):
        """The SFad Jacobian equals the FD Jacobian of the residual pipeline."""
        fm = build_stokes_field_manager("optimized")
        ws = fm.evaluate(_make_workset("jacobian", nc=2, seed=5, with_basal=True))
        jac_ad = ws.out_jacobian

        base = _make_workset("residual", nc=2, seed=5, with_basal=True)
        u0 = base.solution_local.copy()
        eps = 1.0e-4

        def resid(u_local):
            w = _make_workset("residual", nc=2, seed=5, with_basal=True)
            w.solution_local = u_local
            return fm.evaluate(w).out_residual

        for j in range(16):
            du = np.zeros_like(u0)
            du.reshape(2, 16)[:, j] = eps
            fd = (resid(u0 + du) - resid(u0 - du)) / (2 * eps)
            assert np.allclose(jac_ad[:, :, j], fd, rtol=2e-4, atol=1e-7), f"dof {j}"

    def test_baseline_and_optimized_pipelines_agree(self):
        for mode in ("residual", "jacobian"):
            ws_b = build_stokes_field_manager("baseline").evaluate(_make_workset(mode, seed=7))
            ws_o = build_stokes_field_manager("optimized").evaluate(_make_workset(mode, seed=7))
            assert np.allclose(ws_b.out_residual, ws_o.out_residual, rtol=1e-12, atol=1e-12)
            if mode == "jacobian":
                assert np.allclose(ws_b.out_jacobian, ws_o.out_jacobian, rtol=1e-12, atol=1e-12)

    def test_basal_friction_adds_to_bottom_nodes_only(self):
        fm = build_stokes_field_manager("optimized")
        ws_nof = fm.evaluate(_make_workset("residual", seed=9, with_basal=False))
        ws_f = fm.evaluate(_make_workset("residual", seed=9, with_basal=True))
        diff = (ws_f.out_residual - ws_nof.out_residual).reshape(5, 8, 2)
        # only basal cells 0 and 2, nodes 0..3 changed
        assert np.allclose(diff[[1, 3, 4]], 0.0)
        assert np.any(diff[0, :4] != 0.0)
        assert np.allclose(diff[0, 4:], 0.0)

    def test_force_scales_with_surface_gradient(self):
        fm = build_stokes_field_manager("optimized")
        ws = _make_workset("residual", seed=11)
        ws.grad_s_qp = np.zeros_like(ws.grad_s_qp)
        r0 = fm.evaluate(ws).out_residual
        ws2 = _make_workset("residual", seed=11)
        ws2.grad_s_qp = np.ones_like(ws2.grad_s_qp) * 1e-3
        r1 = fm.evaluate(ws2).out_residual
        assert not np.allclose(r0, r1)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            _make_workset("hessian")
        with pytest.raises(ValueError):
            StokesFOResidEvaluator(impl="superoptimized")
