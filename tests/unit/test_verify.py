"""Tests for the verification subsystem (race checker, oracles, sanitizer)."""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.sfad import SFad
from repro.verify.compare import first_divergence, max_abs_error
from repro.verify.fixtures import (
    PerturbedStokesFOResid,
    RacyNodalScatter,
    make_racy_fields,
    stokes_fields_factory,
)
from repro.verify.race import (
    RaceChecker,
    ShadowFields,
    check_order_independence,
    find_races,
    iteration_orders,
    record_access_sets,
)
from repro.verify.sanitizer import SanitizerError, sanitizer, sanitizing


class TestCompare:
    def test_equal_arrays_no_divergence(self):
        a = np.arange(12.0).reshape(3, 4)
        assert first_divergence("x", a, a.copy()) is None

    def test_bitwise_catches_ulp(self):
        a = np.ones(4)
        b = a.copy()
        b[2] = np.nextafter(1.0, 2.0)
        d = first_divergence("x", a, b)
        assert d is not None
        assert d.index == (2,)
        assert d.num_bad == 1

    def test_nan_never_agrees(self):
        a = np.array([1.0, np.nan])
        assert first_divergence("x", a, a.copy()) is not None

    def test_tolerance_mode(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.0 + 1e-14, 2.0])
        assert first_divergence("x", a, b, rtol=1e-12) is None
        assert first_divergence("x", a, b, rtol=1e-16) is not None

    def test_first_index_is_c_order(self):
        a = np.zeros((2, 3))
        b = a.copy()
        b[0, 2] = 1.0
        b[1, 0] = 1.0
        d = first_divergence("x", a, b)
        assert d.index == (0, 2)
        assert d.num_bad == 2

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            first_divergence("x", np.zeros(3), np.zeros(4))

    def test_max_abs_error(self):
        assert max_abs_error([1.0, 2.0], [1.0, 2.5]) == 0.5
        assert max_abs_error([], []) == 0.0

    def test_describe_mentions_slot(self):
        d = first_divergence("Residual", np.zeros(3), np.array([0.0, 1.0, 0.0]))
        assert "Residual[1]" in d.describe()


class TestRaceChecker:
    def test_racy_fixture_write_sets_flagged(self):
        fields = make_racy_fields()
        rec = record_access_sets(RacyNodalScatter, fields, fields.num_cells)
        findings = find_races(rec)
        assert findings, "shared-nodal scatter must produce race findings"
        assert any(f.kind == "write-write" for f in findings)
        assert all(f.view == "nodal" for f in findings)

    def test_racy_fixture_order_divergence(self):
        divs, orders = check_order_independence(
            RacyNodalScatter, lambda: make_racy_fields(), extent=12
        )
        assert "permuted" in orders and "reversed" in orders
        assert divs, "reassociated shared-node sums must diverge bitwise"

    def test_racy_report_end_to_end(self):
        report = RaceChecker(
            "racy", RacyNodalScatter, lambda: make_racy_fields()
        ).check()
        assert not report.passed
        assert "race" in report.describe()

    @pytest.mark.parametrize("mode", ["residual", "jacobian"])
    def test_production_kernels_clean(self, mode):
        from repro.core.variants import get_variant

        v = get_variant(f"optimized-{mode}")
        report = RaceChecker(
            v.key, v.make_functor, stokes_fields_factory(num_cells=4, mode=mode, seed=3)
        ).check()
        assert report.passed, report.describe()
        assert report.orders_checked == ("identity", "reversed", "strided", "permuted")

    def test_iteration_orders_are_permutations(self):
        orders = iteration_orders(17, seed=5)
        for name, order in orders.items():
            assert sorted(order) == list(range(17)), name
        assert not np.array_equal(orders["permuted"], orders["identity"])

    def test_shadow_fields_forwards_non_views(self):
        fields = make_racy_fields()
        rec = record_access_sets(RacyNodalScatter, fields, 2)
        # conn is a plain ndarray: forwarded, not recorded
        assert all(view == "nodal" or view == "cellval" for (view, _), _ in rec.writes.items())

    def test_shadow_rejects_non_integer_index(self):
        from repro.verify.race import AccessRecorder

        fields = make_racy_fields()
        shadow = ShadowFields(fields, AccessRecorder())
        with pytest.raises(TypeError):
            shadow.nodal[0:2]

    def test_perturbed_kernel_is_order_independent_but_wrong(self):
        """The perturbed fixture shows why oracles and race checks differ."""
        from repro.core.jacobian import run_kernel

        factory = stokes_fields_factory(num_cells=4, seed=9)
        report = RaceChecker("perturbed", PerturbedStokesFOResid, factory).check()
        assert report.passed  # deterministic...
        ref, alt = factory(), factory()
        run_kernel("baseline-residual", ref)
        functor = PerturbedStokesFOResid(alt)
        for c in range(alt.num_cells):
            functor(c)
        assert not np.allclose(  # ...but numerically wrong
            ref.Residual.values(), alt.Residual.values(), rtol=1e-9
        )


class TestSanitizer:
    def test_disarmed_by_default(self):
        assert sanitizer().active is False

    def test_nonfinite_creation_trapped(self):
        with sanitizing() as san:
            san.check("test.op", np.array([1.0, np.inf]), np.array([1.0, 2.0]))
        assert san.counts["nonfinite"] == 1
        assert san.events[0].op == "test.op"

    def test_propagation_not_retrapped(self):
        with sanitizing() as san:
            san.check("test.op", np.array([np.nan]), np.array([np.nan]))
        assert san.counts["nonfinite"] == 0

    def test_cancellation_trapped(self):
        with sanitizing(cancellation_ratio=1e-10) as san:
            a = 1.0e8
            san.check_cancellation("test.sub", a, a, a - np.nextafter(a, 2 * a))
        assert san.counts["cancellation"] == 1

    def test_denormal_trapped_and_optional(self):
        tiny = np.array([1.0e-320])
        with sanitizing() as san:
            san.check("test.op", tiny)
        assert san.counts["denormal"] == 1
        with sanitizing(trap_denormals=False) as san:
            san.check("test.op", tiny)
        assert san.counts["denormal"] == 0

    def test_raise_mode(self):
        with pytest.raises(SanitizerError, match="test.op"):
            with sanitizing(mode="raise"):
                sanitizer().check("test.op", np.array([np.nan]), np.array([1.0]))
        assert sanitizer().active is False  # context manager disarmed on the way out

    def test_nested_arming_rejected(self):
        with sanitizing():
            with pytest.raises(RuntimeError):
                with sanitizing():
                    pass

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            sanitizer().arm(mode="explode")

    def test_fad_operands(self):
        fad = SFad(2)(np.array([1.0]), np.array([[np.inf, 0.0]]))
        with sanitizing() as san:
            san.check("test.op", fad, np.array([1.0]))
        assert san.counts["nonfinite"] == 1

    def test_ops_log_creation_has_provenance(self):
        x = np.array([2.0, -1.0])
        with np.errstate(invalid="ignore"):
            assert not np.all(np.isfinite(ops.log(x)))  # disarmed: silent
            with sanitizing() as san:
                ops.log(x)
        assert san.counts["nonfinite"] == 1
        assert san.summary()["by_op"] == {"ops.log": 1}

    def test_ops_sqrt_exp_power_instrumented(self):
        with np.errstate(invalid="ignore", over="ignore"):
            with sanitizing() as san:
                ops.sqrt(np.array([-1.0]))
                ops.exp(np.array([1.0e300]))
                ops.power(np.array([-2.0]), 0.5)
        assert san.counts["nonfinite"] == 3

    def test_ops_clean_inputs_no_events(self):
        with sanitizing() as san:
            ops.sqrt(np.array([4.0]))
            ops.log(np.array([2.7]))
            ops.exp(np.array([1.0]))
        assert san.summary()["events"] == 0

    def test_gmres_runs_clean_under_sanitizer(self):
        from repro.solvers.gmres import gmres

        rng = np.random.default_rng(0)
        A = np.diag(rng.uniform(1.0, 2.0, 20)) + 0.01 * rng.normal(size=(20, 20))
        b = rng.normal(size=20)
        with sanitizing() as san:
            result = gmres(lambda v: A @ v, b, tol=1e-10)
        assert result.converged
        assert san.counts["nonfinite"] == 0

    def test_summary_shape(self):
        with sanitizing() as san:
            pass
        s = san.summary()
        assert set(s) == {"events", "nonfinite", "cancellation", "denormal", "by_op"}


class TestOracles:
    def test_registry_covers_all_suites(self):
        from repro.verify.oracles import ORACLES, suite_names

        assert set(suite_names()) == {"kernels", "jacobian", "spmd", "bytes", "matvec"}
        names = [o.name for o in ORACLES]
        assert len(names) == len(set(names)), "oracle names must be unique"
        # every kernel variant has a race oracle
        from repro.core.variants import variant_names

        for key in variant_names():
            assert f"race-{key}" in names

    def test_matvec_suite_passes(self):
        """The operator-mode differential oracles (matrix-free vs
        assembled J@v, fused vs reference orthogonalization, byte
        reconciliation, planted-defect detection) all hold."""
        from repro.verify.oracles import run_oracles

        results = run_oracles(["matvec"])
        failed = [r.describe() for r in results if not r.passed]
        assert not failed, failed
        names = {r.name for r in results}
        assert "matrix-free-vs-assembled-jv-antarctica" in names
        assert "matrix-free-vs-assembled-jv-greenland" in names
        assert "matvec-detects-perturbed-operator" in names

    def test_all_kernel_oracles_pass(self):
        from repro.verify.oracles import run_oracles

        results = run_oracles(["kernels"])
        failed = [r.describe() for r in results if not r.passed]
        assert not failed, failed
        by_name = {r.name: r for r in results}
        for impl in ("optimized", "fused"):
            for mode in ("residual", "jacobian"):
                assert f"{impl}-{mode}-vs-baseline" in by_name

    def test_perturbed_divergences_nonempty(self):
        from repro.verify.oracles import perturbed_divergences

        divs = perturbed_divergences()
        assert divs and divs[0].num_bad > 0

    def test_crashing_oracle_is_a_failure_not_an_abort(self):
        from repro.verify.oracles import Oracle, run_oracles

        bad = Oracle("boom", "kernels", "always raises", lambda: 1 / 0)
        import repro.verify.oracles as mod

        mod.ORACLES.append(bad)
        try:
            results = run_oracles(["kernels"])
        finally:
            mod.ORACLES.remove(bad)
        r = [x for x in results if x.name == "boom"][0]
        assert not r.passed and "raised" in r.detail

    def test_bytes_oracle_exact(self):
        from repro.verify.oracles import ORACLES

        oracle = [o for o in ORACLES if o.name == "rocprof-formula-vs-model"][0]
        divs, detail = oracle.fn()
        assert not divs, [d.describe() for d in divs]
        assert "exact" in detail
