"""Hook registry, span tracer and metrics registry unit tests."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import observability as obs
from repro.kokkos.parallel import (
    KERNEL_LOG,
    deep_copy,
    disable_kernel_log,
    enable_kernel_log,
    fence,
    parallel_for,
    parallel_reduce,
)
from repro.kokkos.view import DOUBLE, View
from repro.observability.hooks import HookRegistry, ToolSubscriber
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import SpanTracer, TracerSubscriber


class Recorder(ToolSubscriber):
    """Flat event log of every callback, for pairing assertions."""

    def __init__(self):
        self.events: list[tuple] = []

    def begin_parallel_for(self, name, extent, space, kid):
        self.events.append(("begin_for", name, extent, space, kid))

    def end_parallel_for(self, kid):
        self.events.append(("end_for", kid))

    def begin_parallel_reduce(self, name, extent, space, kid):
        self.events.append(("begin_reduce", name, extent, space, kid))

    def end_parallel_reduce(self, kid):
        self.events.append(("end_reduce", kid))

    def begin_deep_copy(self, dst_name, src_name, nbytes, kid):
        self.events.append(("begin_copy", dst_name, src_name, nbytes, kid))

    def end_deep_copy(self, kid):
        self.events.append(("end_copy", kid))

    def begin_fence(self, name, kid):
        self.events.append(("begin_fence", name, kid))

    def end_fence(self, kid):
        self.events.append(("end_fence", kid))

    def push_region(self, name):
        self.events.append(("push", name))

    def pop_region(self):
        self.events.append(("pop",))


@pytest.fixture
def recorder():
    """A Recorder attached to the global registry, detached afterwards."""
    rec = Recorder()
    obs.registry().subscribe(rec)
    try:
        yield rec
    finally:
        obs.registry().unsubscribe(rec)


# ----------------------------------------------------------------------
# hook registry
# ----------------------------------------------------------------------
class TestHookRegistry:
    def test_inactive_without_subscribers(self):
        reg = HookRegistry()
        assert not reg.active
        sub = reg.subscribe(ToolSubscriber())
        assert reg.active
        reg.unsubscribe(sub)
        assert not reg.active

    def test_disable_suppresses_active(self):
        reg = HookRegistry()
        reg.subscribe(ToolSubscriber())
        reg.disable()
        assert not reg.active
        reg.enable()
        assert reg.active

    def test_disabled_context_restores(self):
        reg = HookRegistry()
        reg.subscribe(ToolSubscriber())
        with reg.disabled():
            assert not reg.active
        assert reg.active

    def test_fan_out_to_multiple_subscribers(self):
        reg = HookRegistry()
        a, b = Recorder(), Recorder()
        reg.subscribe(a)
        reg.subscribe(b)
        kid = reg.begin_parallel_for("k", 10, "host")
        reg.end_parallel_for(kid)
        assert a.events == b.events == [("begin_for", "k", 10, "host", kid), ("end_for", kid)]

    def test_kernel_ids_increment(self):
        reg = HookRegistry()
        reg.subscribe(Recorder())
        k0 = reg.begin_parallel_for("a", 1, "host")
        k1 = reg.begin_parallel_reduce("b", 1, "host")
        k2 = reg.begin_fence("f")
        assert k0 < k1 < k2

    def test_parallel_for_emits_paired_events(self, recorder):
        parallel_for("test-kernel", 4, lambda i: None)
        begins = [e for e in recorder.events if e[0] == "begin_for"]
        ends = [e for e in recorder.events if e[0] == "end_for"]
        assert len(begins) == len(ends) == 1
        assert begins[0][1] == "test-kernel" and begins[0][2] == 4
        assert begins[0][4] == ends[0][1]  # same kernel id

    def test_parallel_reduce_emits_paired_events(self, recorder):
        def functor(i, acc):
            acc[i] = 1.0

        total = parallel_reduce("test-reduce", 8, functor)
        assert total == 8.0
        kinds = [e[0] for e in recorder.events]
        assert "begin_reduce" in kinds and "end_reduce" in kinds

    def test_deep_copy_emits_bytes(self, recorder):
        src = View("src", (5,), DOUBLE)
        dst = View("dst", (5,), DOUBLE)
        src.data[:] = np.arange(5.0)
        deep_copy(dst, src)
        begins = [e for e in recorder.events if e[0] == "begin_copy"]
        assert begins == [("begin_copy", "dst", "src", 40, begins[0][4])]
        assert np.array_equal(dst.data, src.data)

    def test_fence_emits_paired_begin_end(self, recorder):
        # satellite: fence() goes through the hook registry like a real
        # kokkosp_begin/end_fence pair, with a matching kernel id
        fence("sync-point")
        assert recorder.events[0][:2] == ("begin_fence", "sync-point")
        kid = recorder.events[0][2]
        assert recorder.events[1] == ("end_fence", kid)

    def test_region_context(self, recorder):
        with obs.region("setup"):
            parallel_for("inner", 2, lambda i: None)
        kinds = [e[0] for e in recorder.events]
        assert kinds[0] == "push" and kinds[-1] == "pop"
        assert "begin_for" in kinds[1:-1]

    def test_kernel_log_shim_round_trip(self):
        KERNEL_LOG.clear()
        parallel_for("logged", 3, lambda i: None)
        assert [k.name for k in KERNEL_LOG] == ["logged"]
        disable_kernel_log()
        try:
            parallel_for("silent", 3, lambda i: None)
            assert [k.name for k in KERNEL_LOG] == ["logged"]
        finally:
            enable_kernel_log()
        parallel_for("logged-again", 3, lambda i: None)
        assert [k.name for k in KERNEL_LOG] == ["logged", "logged-again"]
        KERNEL_LOG.clear()


# ----------------------------------------------------------------------
# span tracer
# ----------------------------------------------------------------------
class TestSpanTracer:
    def test_measures_without_recording(self):
        tr = SpanTracer()
        with tr.span("untracked") as sp:
            pass
        assert sp.dur_s >= 0.0
        assert tr.spans == []

    def test_nesting_parent_and_depth(self):
        tr = SpanTracer()
        tr.start()
        with tr.span("outer"):
            with tr.span("middle"):
                with tr.span("inner"):
                    pass
        tr.stop()
        by_name = {s.name: s for s in tr.spans}
        assert by_name["outer"].depth == 0 and by_name["outer"].parent == -1
        assert by_name["middle"].parent == by_name["outer"].id
        assert by_name["inner"].parent == by_name["middle"].id
        assert by_name["inner"].depth == 2

    def test_attributes_recorded(self):
        tr = SpanTracer()
        tr.start()
        with tr.span("step", cat="phase", step=3, mode="jacobian"):
            pass
        (s,) = tr.spans
        assert s.args == {"step": 3, "mode": "jacobian"} and s.cat == "phase"

    def test_instrument_decorator(self):
        tr = SpanTracer()

        @tr.instrument(name="my.fn")
        def f(x):
            return x + 1

        tr.start()
        assert f(1) == 2
        assert [s.name for s in tr.spans] == ["my.fn"]

    def test_clear_resets_clock_and_ids(self):
        tr = SpanTracer()
        tr.start()
        with tr.span("a"):
            pass
        tr.clear()
        with tr.span("b"):
            pass
        (s,) = tr.spans
        assert s.id == 0 and s.ts_us >= 0.0

    def test_aggregate(self):
        tr = SpanTracer()
        tr.start()
        for _ in range(3):
            with tr.span("hot"):
                pass
        with tr.span("cold"):
            pass
        agg = tr.aggregate()
        assert agg["hot"]["count"] == 3 and agg["cold"]["count"] == 1
        assert agg["hot"]["total_s"] >= agg["hot"]["max_s"] >= agg["hot"]["min_s"] >= 0.0

    def test_aggregate_self_time_excludes_children(self):
        tr = SpanTracer()
        tr.start()
        with tr.span("outer"):
            with tr.span("inner"):
                time.sleep(0.01)
        agg = tr.aggregate()
        # inner is a leaf: self == total; outer's self excludes inner
        assert agg["inner"]["self_s"] == agg["inner"]["total_s"]
        assert agg["outer"]["self_s"] < agg["outer"]["total_s"] - 0.005
        assert agg["outer"]["self_s"] >= 0.0

    def test_now_us_monotone_and_clear_resets_epoch(self):
        tr = SpanTracer()
        a = tr.now_us()
        b = tr.now_us()
        assert 0.0 <= a <= b
        tr.clear()
        assert tr.now_us() < b + 1e6  # fresh epoch, not the old clock

    def test_planted_slowdown_inflates_named_span_only(self):
        tr = SpanTracer()
        tr.plant_slowdown("victim", 0.02)
        tr.start()
        with tr.span("victim"):
            pass
        with tr.span("bystander"):
            pass
        by_name = {s.name: s for s in tr.spans}
        assert by_name["victim"].dur_s >= 0.02
        assert by_name["bystander"].dur_s < 0.02
        # survives clear() (sessions clear the trace after planting) ...
        tr.clear()
        with tr.span("victim"):
            pass
        assert tr.spans[0].dur_s >= 0.02
        # ... and zero-seconds / clear_slowdowns() remove it
        tr.plant_slowdown("victim", 0.0)
        tr.clear()
        with tr.span("victim"):
            pass
        assert tr.spans[-1].dur_s < 0.02
        tr.plant_slowdown("victim", 0.02)
        tr.clear_slowdowns()
        assert tr._planted == {}

    def test_rank_labels_pid(self):
        tr = SpanTracer()
        tr.set_rank(7)
        tr.start()
        with tr.span("x"):
            pass
        assert tr.spans[0].pid == 7

    def test_stop_mid_span_keeps_stack_consistent(self):
        tr = SpanTracer()
        tr.start()
        with tr.span("outer"):
            tr.stop()
        tr.start()
        with tr.span("root"):
            pass
        assert tr.spans[-1].parent == -1  # no leaked parent from "outer"


class TestTracerSubscriber:
    def test_kernel_dispatch_becomes_span(self):
        with obs.tracing() as tr:
            with tr.span("phase"):
                parallel_for("my-kernel", 4, lambda i: None)
        kernels = [s for s in tr.spans if s.cat == "kernel"]
        assert [s.name for s in kernels] == ["my-kernel"]
        phase = next(s for s in tr.spans if s.name == "phase")
        assert kernels[0].parent == phase.id
        assert kernels[0].args["extent"] == 4
        assert kernels[0].args["dispatch"] == "parallel_for"

    def test_fence_and_copy_categories(self):
        src = View("src", (3,), DOUBLE)
        dst = View("dst", (3,), DOUBLE)
        with obs.tracing() as tr:
            fence("f")
            deep_copy(dst, src)
        cats = {s.cat for s in tr.spans}
        assert "fence" in cats and "copy" in cats

    def test_session_detaches_subscriber(self):
        before = len(obs.registry().subscribers)
        with obs.tracing():
            assert len(obs.registry().subscribers) == before + 1
        assert len(obs.registry().subscribers) == before
        assert not obs.get_tracer().recording


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter(self):
        m = MetricsRegistry()
        c = m.counter("a.b")
        c.inc()
        c.inc(4)
        assert m.counter("a.b").value == 5

    def test_gauge(self):
        m = MetricsRegistry()
        m.gauge("occupancy").set(0.75)
        assert m.gauge("occupancy").value == 0.75

    def test_histogram_summary(self):
        m = MetricsRegistry()
        h = m.histogram("iters")
        for v in (10, 20, 30):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3 and s["min"] == 10 and s["max"] == 30
        assert s["mean"] == pytest.approx(20.0)

    def test_snapshot_shape(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.gauge("g").set(1.0)
        m.histogram("h").observe(2.0)
        snap = m.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset(self):
        m = MetricsRegistry()
        m.counter("c").inc(3)
        m.reset()
        assert m.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_histogram_quantiles(self):
        m = MetricsRegistry()
        h = m.histogram("h")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(50.0, abs=2.0)
        assert h.quantile(0.95) == pytest.approx(95.0, abs=2.0)
        assert h.quantile(0.0) == 1.0 and h.quantile(1.0) == 100.0
        s = h.summary()
        assert s["p50"] == h.quantile(0.5) and s["p95"] == h.quantile(0.95)

    def test_histogram_quantiles_empty(self):
        m = MetricsRegistry()
        s = m.histogram("empty").summary()
        assert s["p50"] == 0.0 and s["p95"] == 0.0

    def test_histogram_reservoir_bounded_and_representative(self):
        from repro.observability.metrics import Histogram

        h = Histogram()
        n = Histogram.RESERVOIR_CAP * 8
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert len(h._samples) <= Histogram.RESERVOIR_CAP
        # stride decimation keeps the sample spread across the range, so
        # quantiles stay near truth even after eviction
        assert h.quantile(0.5) == pytest.approx(n / 2, rel=0.1)
        assert h.quantile(0.95) == pytest.approx(0.95 * n, rel=0.1)


class TestMetricsThreadSafety:
    """Satellite: the concurrency contract of the metrics primitives."""

    THREADS = 8
    N = 5000

    def _hammer(self, fn):
        ts = [threading.Thread(target=fn) for _ in range(self.THREADS)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()

    def test_counter_increments_are_not_lost(self):
        m = MetricsRegistry()
        c = m.counter("c")
        self._hammer(lambda: [c.inc() for _ in range(self.N)])
        assert c.value == self.THREADS * self.N

    def test_histogram_observations_are_not_lost(self):
        m = MetricsRegistry()
        h = m.histogram("h")
        self._hammer(lambda: [h.observe(1.0) for _ in range(self.N)])
        s = h.summary()
        assert s["count"] == self.THREADS * self.N
        assert s["sum"] == pytest.approx(float(self.THREADS * self.N))
        assert s["min"] == s["max"] == 1.0

    def test_registry_creation_races_yield_one_instance(self):
        m = MetricsRegistry()
        seen = []

        def create():
            seen.append(m.counter("shared"))

        self._hammer(create)
        assert all(c is seen[0] for c in seen)
        seen[0].inc()
        assert m.counter("shared").value == 1
