"""Unit tests for the perf-trajectory gate (tools/check_bench.py)."""

import copy
import importlib.util
import json
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "check_bench", Path(__file__).parents[2] / "tools" / "check_bench.py"
)
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


BASELINE = {
    "bench": "solver_hotpath",
    "schema_version": 1,
    "deterministic": {
        "gmres": {
            "assembled": {"gmres_iterations": 500, "matvec_bytes": 2.0e9},
            "matrix-free": {"gmres_iterations": 500, "matvec_bytes": 1.4e9},
        },
        "newton": {"fused": {"eval_sweeps_residual": 13}},
        "bytes_per_iteration_ratio": 0.9,
    },
    "advisory": {"fused_solve_seconds": 0.5, "fused_speedup": 1.4},
}


class TestCompare:
    def test_identical_documents_pass(self):
        errors, warnings = check_bench.compare(BASELINE, copy.deepcopy(BASELINE))
        assert errors == [] and warnings == []

    def test_improvement_passes(self):
        better = copy.deepcopy(BASELINE)
        better["deterministic"]["gmres"]["assembled"]["gmres_iterations"] = 300
        errors, _ = check_bench.compare(BASELINE, better)
        assert errors == []

    def test_deterministic_regression_fails(self):
        worse = copy.deepcopy(BASELINE)
        worse["deterministic"]["gmres"]["assembled"]["gmres_iterations"] = 560  # +12%
        errors, _ = check_bench.compare(BASELINE, worse)
        assert len(errors) == 1
        assert "gmres_iterations" in errors[0]
        assert "+12.0%" in errors[0]

    def test_growth_within_rtol_passes(self):
        slight = copy.deepcopy(BASELINE)
        slight["deterministic"]["gmres"]["assembled"]["gmres_iterations"] = 515  # +3%
        errors, _ = check_bench.compare(BASELINE, slight)
        assert errors == []

    def test_missing_deterministic_leaf_fails(self):
        dropped = copy.deepcopy(BASELINE)
        del dropped["deterministic"]["gmres"]["matrix-free"]
        errors, _ = check_bench.compare(BASELINE, dropped)
        assert any("missing from candidate" in e for e in errors)

    def test_new_deterministic_leaf_only_warns(self):
        extended = copy.deepcopy(BASELINE)
        extended["deterministic"]["gmres"]["assembled"]["stream_bytes"] = 1.0e9
        errors, warnings = check_bench.compare(BASELINE, extended)
        assert errors == []
        assert any("new signal" in w for w in warnings)

    def test_wall_drift_warns_but_passes(self):
        slow = copy.deepcopy(BASELINE)
        slow["advisory"]["fused_solve_seconds"] = 0.7  # +40%
        errors, warnings = check_bench.compare(BASELINE, slow)
        assert errors == []
        assert any("wall drift" in w for w in warnings)

    def test_schema_version_mismatch_is_explicit_error(self):
        v2 = copy.deepcopy(BASELINE)
        v2["schema_version"] = 2
        errors, _ = check_bench.compare(BASELINE, v2)
        assert len(errors) == 1
        assert "schema_version" in errors[0]

    def test_missing_deterministic_section_fails(self):
        errors, _ = check_bench.compare(BASELINE, {"schema_version": 1})
        assert any("deterministic" in e for e in errors)

    def test_zero_baseline_growth_is_infinite(self):
        base = copy.deepcopy(BASELINE)
        base["deterministic"]["newton"]["fused"]["eval_sweeps_residual"] = 0
        cand = copy.deepcopy(BASELINE)
        errors, _ = check_bench.compare(base, cand)
        assert any("eval_sweeps_residual" in e for e in errors)


class TestNumericLeaves:
    def test_flatten_sorted_and_numeric_only(self):
        leaves = check_bench._numeric_leaves(
            {"b": {"y": 2, "label": "text", "flag": True}, "a": 1.5}
        )
        assert leaves == {"a": 1.5, "b.y": 2.0}

    def test_non_finite_ignored(self):
        assert check_bench._numeric_leaves({"x": float("nan")}) == {}


class TestCli:
    def _write(self, tmp_path, name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)

    def test_pass_exit_zero(self, tmp_path, capsys):
        b = self._write(tmp_path, "base.json", BASELINE)
        assert check_bench.main([b, b]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        worse = copy.deepcopy(BASELINE)
        worse["deterministic"]["bytes_per_iteration_ratio"] = 1.2
        b = self._write(tmp_path, "base.json", BASELINE)
        c = self._write(tmp_path, "cand.json", worse)
        assert check_bench.main([b, c]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_unreadable_input_exit_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        good = self._write(tmp_path, "base.json", BASELINE)
        assert check_bench.main([good, str(bad)]) == 2

    def test_rtol_flag_widens_gate(self, tmp_path):
        worse = copy.deepcopy(BASELINE)
        worse["deterministic"]["gmres"]["assembled"]["gmres_iterations"] = 560  # +12%
        b = self._write(tmp_path, "base.json", BASELINE)
        c = self._write(tmp_path, "cand.json", worse)
        assert check_bench.main([b, c]) == 1
        assert check_bench.main(["--rtol", "0.2", b, c]) == 0

    def test_selftest_passes(self, capsys):
        assert check_bench.main(["--selftest"]) == 0
        assert "selftest OK" in capsys.readouterr().out
