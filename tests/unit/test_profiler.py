"""Tests for the Nsight/rocprof profiler-interface emulation."""

import pytest

from repro.gpusim import (
    A100,
    MI250X_GCD,
    GPUSimulator,
    ProblemSize,
    NsightComputeReport,
    RocprofReport,
    profiler_report,
)


@pytest.fixture(scope="module")
def profiles():
    prob = ProblemSize(64_000)
    return {
        "a100": GPUSimulator(A100).run("optimized-jacobian", prob),
        "mi": GPUSimulator(MI250X_GCD).run("optimized-jacobian", prob),
    }


class TestNsight:
    def test_dram_bytes_matches_profile(self, profiles):
        rep = NsightComputeReport.from_profile(profiles["a100"])
        assert rep.dram_bytes() == pytest.approx(profiles["a100"].hbm_bytes)

    def test_read_write_split_sums(self, profiles):
        rep = NsightComputeReport.from_profile(profiles["a100"])
        total = rep.metrics["dram__bytes_read.sum"] + rep.metrics["dram__bytes_write.sum"]
        assert total == pytest.approx(profiles["a100"].hbm_bytes)

    def test_throughput_percentage_bounded(self, profiles):
        rep = NsightComputeReport.from_profile(profiles["a100"])
        pct = rep.metrics["dram__throughput.avg.pct_of_peak_sustained_elapsed"]
        assert 0.0 < pct <= 100.0

    def test_command_line_matches_appendix(self):
        cmd = NsightComputeReport.command_line("MyKernel")
        assert "nv-nsight-cu-cli" in cmd and "dram_bytes.sum" in cmd and "MyKernel" in cmd

    def test_render_contains_metrics(self, profiles):
        text = NsightComputeReport.from_profile(profiles["a100"]).render()
        assert "dram__bytes.sum" in text and "optimized-jacobian" in text


class TestRocprof:
    def test_formula_reproduces_bytes(self, profiles):
        """The appendix's TCC_EA formula recovers the simulated traffic."""
        rep = RocprofReport.from_profile(profiles["mi"])
        assert rep.gpu_bytes_moved() == pytest.approx(profiles["mi"].hbm_bytes, rel=0.01)

    def test_vgpr_columns(self, profiles):
        rep = RocprofReport.from_profile(profiles["mi"])
        assert rep.counters["arch_vgpr"] == profiles["mi"].arch_vgprs
        assert rep.counters["accum_vgpr"] == profiles["mi"].accum_vgprs

    def test_request_counters_consistent(self, profiles):
        rep = RocprofReport.from_profile(profiles["mi"])
        dm = profiles["mi"].data_movement
        scratch_reqs = int(profiles["mi"].timing.scratch_bytes / 64.0 / 2.0)
        assert rep.counters["TCC_EA_RDREQ_sum"] == dm.read_requests + scratch_reqs
        assert rep.counters["TCC_EA_WRREQ_sum"] == dm.write_requests + scratch_reqs
        # all our requests are full 64B requests
        assert rep.counters["TCC_EA_WRREQ_64B"] == rep.counters["TCC_EA_WRREQ_sum"]
        assert rep.counters["TCC_EA_RDREQ_32B"] == 0

    def test_input_file_matches_appendix(self):
        text = RocprofReport.input_file()
        assert "pmc : TCC_EA_RDREQ_32B_sum TCC_EA_RDREQ_sum" in text
        assert "kernel: StokesFOResid" in text
        assert "gpu: 0" in text

    def test_csv_row_parses(self, profiles):
        rep = RocprofReport.from_profile(profiles["mi"])
        header, row = rep.csv_row().splitlines()
        assert len(header.split(",")) == len(row.split(","))
        assert row.startswith("optimized-jacobian")

    def test_duration_matches_time(self, profiles):
        rep = RocprofReport.from_profile(profiles["mi"])
        assert rep.counters["DurationNs"] == int(profiles["mi"].time_s * 1e9)


class TestDispatch:
    def test_vendor_dispatch(self, profiles):
        assert isinstance(profiler_report(profiles["a100"]), NsightComputeReport)
        assert isinstance(profiler_report(profiles["mi"]), RocprofReport)
