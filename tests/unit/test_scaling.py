"""Tests for the multi-GPU scaling model."""

import pytest

from repro.app.scaling import InterconnectSpec, SLINGSHOT11, ScalingModel, ScalingPoint
from repro.gpusim import A100, MI250X_GCD


@pytest.fixture(scope="module")
def model():
    return ScalingModel(A100)


class TestPieces:
    def test_single_gpu_has_no_communication(self, model):
        pt = model.weak_scaling(100_000, [1])[0]
        assert pt.t_halo == 0.0
        assert pt.t_allreduce == 0.0
        assert pt.communication_fraction == 0.0

    def test_kernel_time_scales_with_cells(self, model):
        t1 = model.kernel_time_per_step(64_000)
        t2 = model.kernel_time_per_step(256_000)
        assert t2 > 2.0 * t1

    def test_ghost_columns_sublinear(self, model):
        g1 = model.ghost_columns(64_000)
        g4 = model.ghost_columns(256_000)
        assert g1 < g4 < 4.0 * g1  # surface-to-volume: ~2x for 4x cells

    def test_allreduce_grows_logarithmically(self, model):
        t2 = model.allreduce_time_per_step(2)
        t64 = model.allreduce_time_per_step(64)
        assert t64 == pytest.approx(6.0 * t2)

    def test_slingshot_numbers(self):
        assert SLINGSHOT11.bandwidth_per_nic == 25.0e9  # paper Section IV-A
        assert SLINGSHOT11.nics_per_node == 4


class TestProjections:
    def test_weak_scaling_monotone(self, model):
        pts = model.weak_scaling(256_000, [1, 4, 16, 64])
        eff = ScalingModel.efficiency(pts, "weak")
        assert eff[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(eff, eff[1:]))
        assert eff[-1] > 0.5

    def test_strong_scaling_speeds_up(self, model):
        pts = model.strong_scaling(1_024_000, [1, 4, 16])
        assert pts[-1].t_step < pts[0].t_step
        assert pts[-1].cells_per_gpu == 1_024_000 // 16

    def test_strong_scaling_ceiling_division(self, model):
        """The slowest rank carries ceil(total/P) cells, not floor.

        Regression: flooring under-counted the critical rank whenever P
        did not divide the cell count (1000 cells on 3 ranks -> one rank
        has 334, and that rank sets the step time).
        """
        pts = model.strong_scaling(1000, [3, 7])
        assert pts[0].cells_per_gpu == 334  # ceil(1000/3), not 333
        assert pts[1].cells_per_gpu == 143  # ceil(1000/7), not 142
        # never below the uniform split
        for total, p in [(1_024_001, 16), (17, 4)]:
            pt = model.strong_scaling(total, [p])[0]
            assert pt.cells_per_gpu * p >= total

    def test_efficiency_modes(self, model):
        pts = model.weak_scaling(128_000, [1, 8])
        with pytest.raises(ValueError):
            ScalingModel.efficiency(pts, "diagonal")
        assert ScalingModel.efficiency([], "weak") == []

    def test_mi250x_model_runs(self):
        pts = ScalingModel(MI250X_GCD).weak_scaling(128_000, [1, 8])
        assert all(p.t_step > 0 for p in pts)

    def test_slower_interconnect_hurts(self):
        slow = InterconnectSpec("slow", 1.0e9, 1, 4, 1.0e-5)
        fast_pts = ScalingModel(A100).weak_scaling(64_000, [16])
        slow_pts = ScalingModel(A100, interconnect=slow).weak_scaling(64_000, [16])
        assert slow_pts[0].t_step > fast_pts[0].t_step


class TestMeasuredHalo:
    """Measured partition statistics replacing the analytic ghost guess."""

    def test_halo_time_accepts_measured_ghosts(self):
        model = ScalingModel(A100, levels=6)
        analytic = model.halo_time_per_step(10_000, 4)
        measured = model.halo_time_per_step(10_000, 4, ghost_columns=1.0)
        assert measured < analytic  # tiny measured halo -> cheaper exchange
        assert model.halo_time_per_step(10_000, 1, ghost_columns=50.0) == 0.0

    def test_partitioned_strong_scaling_uses_real_partitions(self):
        from repro.mesh import quad_footprint
        from repro.mesh.partition import halo_statistics, partition_footprint

        fp = quad_footprint(16, 16, 1.0, 1.0)
        model = ScalingModel(A100, levels=6)
        pts = model.partitioned_strong_scaling(fp, [1, 2, 4])
        nz = model.levels - 1
        for pt in pts:
            assert pt.halo_source == "measured"
            stats = halo_statistics(partition_footprint(fp, pt.num_gpus))
            assert pt.cells_per_gpu == max(stats.owned_elems) * nz
            if pt.num_gpus == 1:
                assert pt.ghost_columns is None
                assert pt.t_halo == 0.0
            else:
                assert pt.ghost_columns == stats.max_ghost_nodes
                assert pt.t_halo > 0.0

    def test_measured_point_differs_from_analytic(self):
        from repro.mesh import quad_footprint

        fp = quad_footprint(16, 16, 1.0, 1.0)
        model = ScalingModel(A100, levels=6)
        measured = model.partitioned_strong_scaling(fp, [4])[0]
        analytic = model.strong_scaling(fp.num_elems * (model.levels - 1), [4])[0]
        assert analytic.halo_source == "analytic"
        # the RCB halo of a quarter of a 16x16 grid is not 4 sqrt(A)
        assert measured.ghost_columns != pytest.approx(analytic.ghost_columns)
